"""Setup shim.

Metadata lives in pyproject.toml.  This file exists so the package can be
installed in fully offline environments (no `wheel` distribution available
for PEP-517 editable builds) via ``python setup.py develop`` — see
README.md's install section.
"""

from setuptools import setup

setup()
