"""Command-line interface: regenerate any paper table or figure.

Examples
--------
::

    repro-kcenter list
    repro-kcenter run table3
    repro-kcenter run figure2a --scale paper
    repro-kcenter run table6 --m 50 --seed 7
    python -m repro.cli run figure4a

Output is the paper-layout table (or ASCII chart) plus, where the paper
published numbers, a side-by-side comparison and the qualitative shape
checks from :mod:`repro.analysis.report`.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis import run_experiment
from repro.analysis.configs import (
    EXPERIMENT_IDS,
    experiment_config,
    figure4_n_grid,
    resolve_scale,
)
from repro.analysis.figures import ascii_chart, series_over_k, series_over_n
from repro.analysis.paper import (
    PAPER_K_GRID,
    PAPER_PHI_GRID,
    SOLUTION_TABLES,
    TABLE6,
    TABLE7,
)
from repro.analysis.report import (
    check_phi_runtime_direction,
    check_runtime_ordering,
    check_winner_agreement,
    fallback_ks,
    render_checks,
    speedup_summary,
)
from repro.analysis.tables import phi_table, runtime_table, side_by_side, solution_value_table
from repro.utils.tables import format_table

__all__ = ["main"]

_STANDARD = ("MRG", "EIM", "GON")


def _progress(message: str) -> None:
    print(f"  .. {message}", file=sys.stderr, flush=True)


def _run_solution_table(exp: str, scale: str, m: int, seed: int, quiet: bool) -> None:
    spec = experiment_config(exp, scale=scale, m=m)
    spec = type(spec)(**{**spec.__dict__, "master_seed": seed})
    records = run_experiment(spec, progress=None if quiet else _progress)
    headers, rows = solution_value_table(records)
    desc, paper = SOLUTION_TABLES[exp]
    print(format_table(headers, rows, title=f"{exp}: solution value over k — {desc} "
                                            f"(measured at n={spec.n}, scale={scale})"))
    print()
    cmp_headers, cmp_rows = side_by_side(rows, paper)
    print(format_table(cmp_headers, cmp_rows, title=f"{exp}: measured vs paper "
                                                    f"(columns: {', '.join(_STANDARD)})"))
    print()
    checks = [
        check_winner_agreement(rows, paper),
        check_runtime_ordering(records),
    ]
    print(render_checks(checks))
    print()
    t_headers, t_rows = runtime_table(records)
    print(format_table(t_headers, t_rows, title=f"{exp}: simulated parallel runtime (s)"))


def _run_phi_table(exp: str, scale: str, m: int, seed: int, quiet: bool) -> None:
    spec = experiment_config(exp, scale=scale, m=m)
    spec = type(spec)(**{**spec.__dict__, "master_seed": seed})
    records = run_experiment(spec, progress=None if quiet else _progress)
    value = "radius" if exp == "table6" else "parallel_time"
    paper = TABLE6 if exp == "table6" else TABLE7
    what = "solution value" if exp == "table6" else "runtime (s)"
    headers, rows = phi_table(records, value)
    print(format_table(headers, rows, title=f"{exp}: EIM {what} over phi — "
                                            f"GAU (measured at n={spec.n}, scale={scale})"))
    print()
    cmp_headers, cmp_rows = side_by_side(
        rows, paper, label_measured="meas", label_paper="paper"
    )
    print(format_table(cmp_headers, cmp_rows,
                       title=f"{exp}: measured vs paper (columns: phi = "
                             f"{', '.join(f'{p:g}' for p in PAPER_PHI_GRID)})"))
    if exp == "table7":
        print()
        print(render_checks([check_phi_runtime_direction(records)]))


def _run_figure_k(exp: str, scale: str, m: int, seed: int, quiet: bool) -> None:
    spec = experiment_config(exp, scale=scale, m=m)
    spec = type(spec)(**{**spec.__dict__, "master_seed": seed})
    records = run_experiment(spec, progress=None if quiet else _progress)
    value = "radius" if exp == "figure1" else "parallel_time"
    label = "solution value" if exp == "figure1" else "runtime (s)"
    series = series_over_k(records, value, _STANDARD, list(PAPER_K_GRID))
    print(ascii_chart(series, title=f"{exp}: {label} over k — {spec.dataset} "
                                    f"(n={spec.n}, scale={scale}), log y",
                      xlabel="k"))
    print()
    if exp != "figure1":
        print(render_checks([check_runtime_ordering(records)]))
        ratios = speedup_summary(records)
        for algo, by_k in sorted(ratios.items()):
            pretty = ", ".join(f"k={k}: {v:.1f}x" for k, v in sorted(by_k.items()))
            print(f"  {algo} / MRG runtime ratio: {pretty}")
    fell_back = fallback_ks(records)
    if fell_back:
        print(f"  EIM fell back to sequential GON at k in {fell_back}")


def _run_figure4(exp: str, scale: str, m: int, seed: int, quiet: bool) -> None:
    spec = experiment_config(exp, scale=scale, m=m)
    spec = type(spec)(**{**spec.__dict__, "master_seed": seed})
    n_grid = figure4_n_grid(scale)
    series, records = series_over_n(
        spec, n_grid, progress=None if quiet else _progress
    )
    k = spec.ks[0]
    print(ascii_chart(series, title=f"{exp}: runtime (s) over n at k={k} "
                                    f"(scale={scale}), log y", xlabel="n"))
    print()
    fell_back = fallback_ks(records)
    if fell_back:
        print(f"  EIM fell back to sequential GON at k in {fell_back}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-kcenter",
        description="Reproduce tables/figures of McClintock & Wirth (ICPP 2016).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list reproducible experiment ids")
    run = sub.add_parser("run", help="run one experiment and print its table/figure")
    run.add_argument("experiment", choices=sorted(EXPERIMENT_IDS))
    run.add_argument("--scale", choices=["default", "paper"], default=None,
                     help="experiment sizes (default: scaled-down; see EXPERIMENTS.md)")
    run.add_argument("--m", type=int, default=50, help="simulated machines (paper: 50)")
    run.add_argument("--seed", type=int, default=2016, help="master seed")
    run.add_argument("--quiet", action="store_true", help="suppress progress lines")
    args = parser.parse_args(argv)

    if args.command == "list":
        for exp in sorted(EXPERIMENT_IDS):
            print(exp)
        return 0

    scale = resolve_scale(args.scale)
    exp = args.experiment
    t0 = time.perf_counter()
    if exp in SOLUTION_TABLES:
        _run_solution_table(exp, scale, args.m, args.seed, args.quiet)
    elif exp in ("table6", "table7"):
        _run_phi_table(exp, scale, args.m, args.seed, args.quiet)
    elif exp in ("figure1", "figure2a", "figure2b", "figure3a", "figure3b"):
        _run_figure_k(exp, scale, args.m, args.seed, args.quiet)
    elif exp in ("figure4a", "figure4b"):
        _run_figure4(exp, scale, args.m, args.seed, args.quiet)
    else:  # pragma: no cover - argparse choices prevent this
        parser.error(f"unknown experiment {exp}")
    print(f"\n[{exp} completed in {time.perf_counter() - t0:.1f}s at scale={scale}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
