"""Command-line interface: run solvers and regenerate paper tables/figures.

Examples
--------
::

    repro-kcenter list
    repro-kcenter solve list
    repro-kcenter solve eim --k 10
    repro-kcenter solve mrg --k 25 --n 100000 --dataset unif --m 50
    repro-kcenter solve eim --k 10 --opt phi=4 --opt eps=0.2
    repro-kcenter solve stream --k 25 --data points.npy
    repro-kcenter solve mr_hs --k 25 --data shards/
    repro-kcenter solve mrg --k 25 --n 200000 --shards 8
    repro-kcenter serve --backend thread --pool-size 4
    repro-kcenter solve gon --k 10 --connect 127.0.0.1:7227
    repro-kcenter run table3
    repro-kcenter run figure2a --scale paper
    repro-kcenter run table6 --m 50 --seed 7
    python -m repro.cli run figure4a

``solve`` routes through the unified :func:`repro.solve` facade, so any
algorithm registered via :func:`repro.solvers.register_solver` — including
downstream plugins — is immediately runnable and shown by ``solve list``.
``--data points.npy`` solves a file instead of a generated dataset: the
file is memory-mapped and consumed chunk by chunk through
:mod:`repro.store`, so inputs larger than RAM work (pair with the
``stream`` solver, whose working state is O(k)).  ``--data shards/``
solves a sharded directory, and ``--shards N`` shards a generated
dataset (or a ``.npy`` file) on the fly — the MapReduce solvers then run
each reducer against a per-shard view, never gathering the full
coordinate array.
``serve`` boots the :mod:`repro.serve` job server — a long-lived daemon
holding one warm executor pool, answering newline-delimited-JSON solve
requests over TCP — and ``solve --connect HOST:PORT`` turns the ``solve``
subcommand into a client of one: the dataset is generated (or the
``--data`` path forwarded) and shipped to the server, and the printed
result comes off the wire, bit-identical to the local run.
``run`` reproduces a paper experiment; its output is the paper-layout
table (or ASCII chart) plus, where the paper published numbers, a
side-by-side comparison and the qualitative shape checks from
:mod:`repro.analysis.report`.
"""

from __future__ import annotations

import argparse
import ast
import sys
import time

from repro.analysis import run_experiment
from repro.analysis.configs import (
    EXPERIMENT_IDS,
    experiment_config,
    figure4_n_grid,
    resolve_scale,
)
from repro.analysis.figures import ascii_chart, series_over_k, series_over_n
from repro.analysis.paper import (
    PAPER_K_GRID,
    PAPER_PHI_GRID,
    SOLUTION_TABLES,
    TABLE6,
    TABLE7,
)
from repro.analysis.report import (
    check_phi_runtime_direction,
    check_runtime_ordering,
    check_winner_agreement,
    fallback_ks,
    render_checks,
    speedup_summary,
)
from repro.analysis.tables import (
    STANDARD_COLUMNS,
    phi_table,
    runtime_table,
    side_by_side,
    solution_value_table,
)
from repro.data.registry import DATASETS, make_dataset
from repro.errors import InvalidParameterError, ReproError
from repro.solvers import SHARED_KNOBS, UNSET, get_solver, list_solvers, solve
from repro.utils.tables import format_table, format_value

__all__ = ["main"]

#: Display order of the standard algorithm family in paper-layout tables,
#: derived from the registry rather than hard-coded algorithm literals.
_STANDARD = STANDARD_COLUMNS


def _progress(message: str) -> None:
    print(f"  .. {message}", file=sys.stderr, flush=True)


def _run_solution_table(exp: str, scale: str, m: int, seed: int, quiet: bool) -> None:
    spec = experiment_config(exp, scale=scale, m=m)
    spec = type(spec)(**{**spec.__dict__, "master_seed": seed})
    records = run_experiment(spec, progress=None if quiet else _progress)
    headers, rows = solution_value_table(records)
    desc, paper = SOLUTION_TABLES[exp]
    print(format_table(headers, rows, title=f"{exp}: solution value over k — {desc} "
                                            f"(measured at n={spec.n}, scale={scale})"))
    print()
    cmp_headers, cmp_rows = side_by_side(rows, paper)
    print(format_table(cmp_headers, cmp_rows, title=f"{exp}: measured vs paper "
                                                    f"(columns: {', '.join(_STANDARD)})"))
    print()
    checks = [
        check_winner_agreement(rows, paper),
        check_runtime_ordering(records),
    ]
    print(render_checks(checks))
    print()
    t_headers, t_rows = runtime_table(records)
    print(format_table(t_headers, t_rows, title=f"{exp}: simulated parallel runtime (s)"))


def _run_phi_table(exp: str, scale: str, m: int, seed: int, quiet: bool) -> None:
    spec = experiment_config(exp, scale=scale, m=m)
    spec = type(spec)(**{**spec.__dict__, "master_seed": seed})
    records = run_experiment(spec, progress=None if quiet else _progress)
    value = "radius" if exp == "table6" else "parallel_time"
    paper = TABLE6 if exp == "table6" else TABLE7
    what = "solution value" if exp == "table6" else "runtime (s)"
    headers, rows = phi_table(records, value)
    print(format_table(headers, rows, title=f"{exp}: EIM {what} over phi — "
                                            f"GAU (measured at n={spec.n}, scale={scale})"))
    print()
    cmp_headers, cmp_rows = side_by_side(
        rows, paper, label_measured="meas", label_paper="paper"
    )
    print(format_table(cmp_headers, cmp_rows,
                       title=f"{exp}: measured vs paper (columns: phi = "
                             f"{', '.join(f'{p:g}' for p in PAPER_PHI_GRID)})"))
    if exp == "table7":
        print()
        print(render_checks([check_phi_runtime_direction(records)]))


def _run_figure_k(exp: str, scale: str, m: int, seed: int, quiet: bool) -> None:
    spec = experiment_config(exp, scale=scale, m=m)
    spec = type(spec)(**{**spec.__dict__, "master_seed": seed})
    records = run_experiment(spec, progress=None if quiet else _progress)
    value = "radius" if exp == "figure1" else "parallel_time"
    label = "solution value" if exp == "figure1" else "runtime (s)"
    series = series_over_k(records, value, _STANDARD, list(PAPER_K_GRID))
    print(ascii_chart(series, title=f"{exp}: {label} over k — {spec.dataset} "
                                    f"(n={spec.n}, scale={scale}), log y",
                      xlabel="k"))
    print()
    if exp != "figure1":
        print(render_checks([check_runtime_ordering(records)]))
        ratios = speedup_summary(records)
        for algo, by_k in sorted(ratios.items()):
            pretty = ", ".join(f"k={k}: {v:.1f}x" for k, v in sorted(by_k.items()))
            print(f"  {algo} / MRG runtime ratio: {pretty}")
    fell_back = fallback_ks(records)
    if fell_back:
        print(f"  EIM fell back to sequential GON at k in {fell_back}")


def _run_figure4(exp: str, scale: str, m: int, seed: int, quiet: bool) -> None:
    spec = experiment_config(exp, scale=scale, m=m)
    spec = type(spec)(**{**spec.__dict__, "master_seed": seed})
    n_grid = figure4_n_grid(scale)
    series, records = series_over_n(
        spec, n_grid, progress=None if quiet else _progress
    )
    k = spec.ks[0]
    print(ascii_chart(series, title=f"{exp}: runtime (s) over n at k={k} "
                                    f"(scale={scale}), log y", xlabel="n"))
    print()
    fell_back = fallback_ks(records)
    if fell_back:
        print(f"  EIM fell back to sequential GON at k in {fell_back}")


def _parse_solver_option(item: str) -> tuple[str, object]:
    """``--opt key=value`` with Python-literal values (fallback: string)."""
    key, sep, raw = item.partition("=")
    if not sep or not key.strip():
        raise argparse.ArgumentTypeError(
            f"solver option must look like key=value, got {item!r}"
        )
    try:
        value = ast.literal_eval(raw)
    except (ValueError, SyntaxError):
        value = raw
    return key.strip(), value


def _print_solver_registry() -> None:
    headers = ["name", "kind", "factor", "backends", "aliases", "options"]
    rows = []
    for spec in list_solvers():
        rows.append(
            [
                spec.name,
                spec.kind,
                "-" if spec.approx_factor is None else f"{spec.approx_factor:g}",
                ", ".join(spec.backends),
                ", ".join(spec.aliases) or "-",
                ", ".join(sorted(spec.options)) or "-",
            ]
        )
    print(format_table(headers, rows, title="registered k-center solvers"))
    print()
    for spec in list_solvers():
        print(f"  {spec.name:<6} {spec.summary}")


def _run_remote_solve(args: argparse.Namespace, spec) -> int:
    """``solve --connect``: ship the request to a running job server."""
    from repro.serve import ServeClient, parse_hostport

    if args.shards is not None:
        raise InvalidParameterError(
            "--shards shards locally; with --connect, point --data at a "
            "server-visible sharded directory instead"
        )
    host, port = parse_hostport(args.connect)
    options = dict(args.opt)
    if args.m is not None:
        options["m"] = args.m
    if args.capacity is not None:
        options["capacity"] = args.capacity
    if args.no_evaluate:
        options["evaluate"] = False
    points = data = None
    if args.data is not None:
        data = args.data
        source = f"{args.data} @ {host}:{port}"
    else:
        data_seed = args.data_seed if args.data_seed is not None else args.seed
        dataset = make_dataset(args.dataset, args.n, seed=data_seed)
        points = dataset.points
        source = f"{args.dataset} @ {host}:{port}"
        if not args.quiet:
            _progress(f"{args.dataset}: n={dataset.n}, dim={dataset.dim} "
                      f"(sent inline to {host}:{port})")
    if not args.quiet:
        _progress(f"requesting {spec.name}, k={args.k} from {host}:{port}")
    with ServeClient(host, port) as client:
        response = client.solve(
            spec.name, args.k, points=points, data=data,
            seed=args.seed, options=options,
        )
    result = response["result"]
    accounting = response.get("accounting", {})
    n = len(points) if points is not None else "?"
    rows = [[key, format_value(value)] for key, value in result.items()]
    rows += [
        [f"serve.{key}", format_value(value)]
        for key, value in accounting.items()
        if key != "summary"
    ]
    print(
        format_table(
            ["field", "value"],
            rows,
            title=f"{result['algorithm']} on {source} (n={n}, k={args.k})",
        )
    )
    return 0


def _run_serve_command(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve import KCenterServer, ServeConfig

    config = ServeConfig(
        host=args.host,
        port=args.port,
        metrics_port=args.metrics_port,
        backend=args.backend,
        pool_size=args.pool_size,
        max_queue=args.max_queue,
        max_inflight=args.max_inflight,
        max_points=args.max_points,
        cache_points=args.cache_points,
        default_timeout=args.timeout,
    )
    if args.log_json:
        from repro.obs import logs as _logs

        _logs.configure()

    async def main() -> None:
        server = KCenterServer(config)
        host, port = await server.start()
        pool = config.pool_size if config.pool_size is not None else "auto"
        print(
            f"repro-kcenter serve: listening on {host}:{port} "
            f"(backend={config.backend}, pool={pool}, "
            f"max_points={config.max_points}, cache_points={config.cache_points})",
            flush=True,
        )
        if server.metrics_address is not None:
            mhost, mport = server.metrics_address
            print(
                f"repro-kcenter serve: metrics on "
                f"http://{mhost}:{mport}/metrics",
                flush=True,
            )
        try:
            await server.serve_forever()
        finally:
            # Best-effort drain; on Ctrl-C the surrounding asyncio.run is
            # already cancelling us, so a second interrupt just exits.
            try:
                await asyncio.shield(server.stop())
            except asyncio.CancelledError:
                pass

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("repro-kcenter serve: interrupted, shutting down", file=sys.stderr)
    return 0


def _run_solve_command(args: argparse.Namespace) -> int:
    if args.algorithm == "list":
        _print_solver_registry()
        return 0
    spec = get_solver(args.algorithm)  # fail fast, before generating data
    if args.connect is not None:
        if args.trace is not None:
            raise InvalidParameterError(
                "--trace renders the in-process timeline; it cannot follow "
                "a request to a remote server (drop --connect)"
            )
        return _run_remote_solve(args, spec)
    flags = {"m": "--m", "capacity": "--capacity", "seed": "--seed",
             "evaluate": "--no-evaluate"}
    for key, _ in args.opt:
        if key in SHARED_KNOBS:
            hint = (f"use {flags[key]}" if key in flags
                    else "it is not settable from the CLI")
            raise InvalidParameterError(
                f"{key!r} is a shared knob, not a solver option; {hint}"
            )
    import contextlib
    import tempfile

    from repro.store import ChunkedMetricSpace, ShardedStream, as_stream, write_shards

    def _shard_tmp(stack):
        # The stream keeps lazy memmaps over the shard files until exit,
        # so cleanup must tolerate still-mapped files (Windows).
        return stack.enter_context(
            tempfile.TemporaryDirectory(
                prefix="repro-shards-", ignore_cleanup_errors=True
            )
        )

    with contextlib.ExitStack() as stack:
        if args.data is not None:
            stream = as_stream(args.data, chunk_size=args.chunk_size)
            source = args.data
            if args.shards is not None:
                if isinstance(stream, ShardedStream):
                    raise InvalidParameterError(
                        f"{args.data} is already a sharded directory; "
                        "--shards only applies when sharding a .npy file "
                        "or a generated dataset"
                    )
                stream = write_shards(stream, _shard_tmp(stack), args.shards)
                source = f"{args.data} [{args.shards} shards]"
            space = ChunkedMetricSpace(stream)
            n, dim = stream.n, stream.dim
            if not args.quiet:
                layout = (
                    f"{stream.n_shards} shards"
                    if isinstance(stream, ShardedStream)
                    else "memmap"
                )
                _progress(
                    f"{source}: n={n}, dim={dim} (out-of-core, {layout}, "
                    f"chunk={stream.chunk_size})"
                )
        elif args.shards is not None:
            from repro.data.registry import make_sharded

            data_seed = args.data_seed if args.data_seed is not None else args.seed
            stream = make_sharded(
                args.dataset, args.n, _shard_tmp(stack), args.shards,
                seed=data_seed, chunk_size=args.chunk_size,
            )
            space = ChunkedMetricSpace(stream)
            source, n = f"{args.dataset} [{args.shards} shards]", stream.n
            if not args.quiet:
                _progress(
                    f"{args.dataset}: n={stream.n}, dim={stream.dim} "
                    f"(sharded out-of-core, {stream.n_shards} shards, "
                    f"chunk={stream.chunk_size})"
                )
        else:
            data_seed = args.data_seed if args.data_seed is not None else args.seed
            dataset = make_dataset(args.dataset, args.n, seed=data_seed)
            space = dataset.space()
            source, n = args.dataset, dataset.n
            if not args.quiet:
                _progress(f"{args.dataset}: n={dataset.n}, dim={dataset.dim}")
        if not args.quiet:
            _progress(f"solving with {spec.name} (kind={spec.kind}), k={args.k}")
        tracer = None
        if args.trace is not None:
            from repro.obs import trace as _trace

            tracer = _trace.Tracer(detail=args.trace_detail)
            stack.enter_context(_trace.activate(tracer))
        result = solve(
            space,
            args.k,
            algorithm=spec.name,
            seed=args.seed,
            m=args.m if args.m is not None else UNSET,
            capacity=args.capacity if args.capacity is not None else UNSET,
            evaluate=False if args.no_evaluate else UNSET,
            **dict(args.opt),
        )
    if tracer is not None:
        tracer.export_chrome(args.trace)
        if not args.quiet:
            _progress(
                f"trace: {len(tracer.spans)} spans -> {args.trace} "
                f"(chrome://tracing / https://ui.perfetto.dev)"
            )
    summary = result.summary()
    rows = [[key, format_value(value)] for key, value in summary.items()]
    print(
        format_table(
            ["field", "value"],
            rows,
            title=f"{result.algorithm} on {source} (n={n}, k={args.k})",
        )
    )
    if result.approx_factor is not None:
        print(
            f"\n  a-priori guarantee: radius <= {result.approx_factor:g} x OPT"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-kcenter",
        description="Reproduce tables/figures of McClintock & Wirth (ICPP 2016).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list reproducible experiment ids")
    solve_cmd = sub.add_parser(
        "solve", help="run one registered solver on a generated dataset"
    )
    solve_cmd.add_argument(
        "algorithm",
        help='solver name or alias (see "repro-kcenter solve list")',
    )
    solve_cmd.add_argument("--k", type=int, default=10, help="number of centers")
    solve_cmd.add_argument("--n", type=int, default=20_000, help="dataset size")
    solve_cmd.add_argument(
        "--dataset", choices=sorted(DATASETS), default="gau",
        help="workload from the dataset registry (default: gau)",
    )
    solve_cmd.add_argument(
        "--data", metavar="PATH", default=None,
        help="solve a .npy point file (memmapped, chunked) or a sharded "
             "directory (write_shards/make_sharded layout) out-of-core "
             "instead of generating --dataset; --n/--data-seed are ignored",
    )
    solve_cmd.add_argument(
        "--chunk-size", type=int, default=None,
        help="rows per chunk for --data (default: the block byte budget)",
    )
    solve_cmd.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="shard the input into N chunk-aligned .npy groups in a "
             "temporary directory and solve out-of-core from them "
             "(works with a generated synthetic --dataset or a --data "
             ".npy file; MapReduce reducers then consume per-shard views)",
    )
    solve_cmd.add_argument(
        "--m", type=int, default=None,
        help="simulated machines (MapReduce solvers only; default: solver's)",
    )
    solve_cmd.add_argument(
        "--capacity", type=int, default=None,
        help="per-machine capacity (MapReduce solvers only)",
    )
    solve_cmd.add_argument("--seed", type=int, default=2016, help="algorithm seed")
    solve_cmd.add_argument(
        "--data-seed", type=int, default=None,
        help="dataset generation seed (default: --seed)",
    )
    solve_cmd.add_argument(
        "--no-evaluate", action="store_true",
        help="skip the full covering-radius evaluation (MapReduce solvers)",
    )
    solve_cmd.add_argument(
        "--opt", action="append", type=_parse_solver_option, default=[],
        metavar="KEY=VALUE",
        help="solver-specific option, repeatable (e.g. --opt phi=4)",
    )
    solve_cmd.add_argument("--quiet", action="store_true",
                           help="suppress progress lines")
    solve_cmd.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record an execution trace of the solve and write it as "
             "Chrome trace-event JSON (open in chrome://tracing or "
             "https://ui.perfetto.dev); in-process solves only",
    )
    solve_cmd.add_argument(
        "--trace-detail", choices=["task", "block"], default="task",
        help="trace granularity: per-task spans (default) or also "
             "per-kernel-block spans (verbose)",
    )
    solve_cmd.add_argument(
        "--connect", metavar="HOST:PORT", default=None,
        help="send the request to a running job server (repro-kcenter "
             "serve) instead of solving in-process; --data paths must be "
             "visible to the server, generated datasets are sent inline",
    )
    from repro.serve.scheduler import BACKENDS as _SERVE_BACKENDS

    serve_cmd = sub.add_parser(
        "serve", help="run the clustering job server (newline-JSON over TCP)"
    )
    serve_cmd.add_argument("--host", default="127.0.0.1",
                           help="bind address (default: 127.0.0.1)")
    serve_cmd.add_argument("--port", type=int, default=7227,
                           help="bind port; 0 picks an ephemeral port")
    serve_cmd.add_argument(
        "--backend", choices=list(_SERVE_BACKENDS), default="thread",
        help="executor the warm pool runs on (default: thread)",
    )
    serve_cmd.add_argument(
        "--pool-size", type=int, default=None,
        help="worker count of the warm pool (default: backend's choice)",
    )
    serve_cmd.add_argument("--max-queue", type=int, default=256,
                           help="admission cap on outstanding requests")
    serve_cmd.add_argument("--max-inflight", type=int, default=4,
                           help="concurrent coalesced batches on the pool")
    serve_cmd.add_argument("--max-points", type=int, default=200_000,
                           help="largest admissible request (points)")
    serve_cmd.add_argument(
        "--cache-points", type=int, default=0,
        help="enable the shared distance cache for spaces up to this many "
             "points (0 = off, the bit-exact default)",
    )
    serve_cmd.add_argument(
        "--timeout", type=float, default=None,
        help="default per-request deadline in seconds (requests may "
             "override; default: none)",
    )
    serve_cmd.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="also bind a plain-HTTP Prometheus scrape listener on this "
             "port (GET /metrics; 0 picks an ephemeral port; default: off)",
    )
    serve_cmd.add_argument(
        "--log-json", action="store_true",
        help="emit structured JSON logs (one object per line) on stderr",
    )
    run = sub.add_parser("run", help="run one experiment and print its table/figure")
    run.add_argument("experiment", choices=sorted(EXPERIMENT_IDS))
    run.add_argument("--scale", choices=["default", "paper"], default=None,
                     help="experiment sizes (default: scaled-down; see EXPERIMENTS.md)")
    run.add_argument("--m", type=int, default=50, help="simulated machines (paper: 50)")
    run.add_argument("--seed", type=int, default=2016, help="master seed")
    run.add_argument("--quiet", action="store_true", help="suppress progress lines")
    args = parser.parse_args(argv)

    if args.command == "list":
        for exp in sorted(EXPERIMENT_IDS):
            print(exp)
        return 0

    if args.command == "serve":
        try:
            return _run_serve_command(args)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.command == "solve":
        try:
            return _run_solve_command(args)
        except (ReproError, ConnectionError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except TypeError as exc:
            # Mis-typed --opt values (e.g. --opt phi=abc) surface as
            # TypeErrors inside the solver; report them like any other
            # bad input instead of a traceback.
            print(f"error: bad option value: {exc}", file=sys.stderr)
            return 2

    scale = resolve_scale(args.scale)
    exp = args.experiment
    t0 = time.perf_counter()
    if exp in SOLUTION_TABLES:
        _run_solution_table(exp, scale, args.m, args.seed, args.quiet)
    elif exp in ("table6", "table7"):
        _run_phi_table(exp, scale, args.m, args.seed, args.quiet)
    elif exp in ("figure1", "figure2a", "figure2b", "figure3a", "figure3b"):
        _run_figure_k(exp, scale, args.m, args.seed, args.quiet)
    elif exp in ("figure4a", "figure4b"):
        _run_figure4(exp, scale, args.m, args.seed, args.quiet)
    else:  # pragma: no cover - argparse choices prevent this
        parser.error(f"unknown experiment {exp}")
    print(f"\n[{exp} completed in {time.perf_counter() - t0:.1f}s at scale={scale}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
