"""EIM — the generalised Ene-Im-Moseley iterative-sampling algorithm
(paper Algorithms 2-3, Sections 4-6).

One iteration of the main loop is three MapReduce rounds:

1. **Sample** — each machine independently adds each of its points of R to
   the sample S with probability ``9 k n^eps log n / |R|`` and to the pivot
   pool H with probability ``4 n^eps log n / |R|``.
2. **Select** — a single machine receives H and S (plus the H-to-S
   distances) and picks the pivot ``v``: the ``phi * log(n)``-th farthest
   point of H from S.  The original Ene et al. scheme is ``phi = 8``; the
   paper's Section 6 shows the probabilistic guarantee survives for
   ``phi`` above a threshold (quoted as 5.15) and benchmarks
   ``phi in {1, 4, 6, 8}``.
3. **Remove** — every machine drops from its share of R the points whose
   distance to S is at most ``d(v, S)``.

The loop ends when ``|R| <= (4/eps) k n^eps log n``; the final candidate
set is ``C = S u R`` and one clean-up round runs a sequential k-center
algorithm (GON here, as in the paper) on C.

Termination fixes (paper Section 4.1), both on by default:

* removal uses ``<=`` (not ``<``) so points *at* the pivot distance — in
  particular freshly sampled points, which are at distance 0 from S — are
  removed;
* sampled points are removed from R explicitly even when the pivot pool H
  came up empty.

Setting ``legacy_removal=True`` restores the original strict-inequality
behaviour for the stall-reproduction ablation; the implementation then
detects stalled iterations and raises
:class:`~repro.errors.ConvergenceError` instead of looping forever.

The **fallback regime** of Figures 3b/4b is implicit: when the while
condition fails immediately (k too large relative to n), C = V and EIM
degenerates to one round of sequential GON on the whole input.

Distance maintenance is incremental: each point of R carries its current
distance to S, and each iteration folds only the *newly sampled* points
into that running minimum (total work ``sum_l |R_l| * |dS_l|``, the same
asymptotics as the paper's Round-3 count with a smaller constant).

Every round body is a **module-level function dispatched as a
:class:`~repro.mapreduce.tasks.TaskSpec`** — the repo-wide task contract
(see :mod:`repro.mapreduce.tasks`): randomness is bound as *seeds* before
dispatch and turned into a generator per call, distance work is counted
into a task-private counter reported via
:class:`~repro.mapreduce.tasks.TaskOutput`, and the Round-3 distance
min-fold returns its updated block (reassembled on the driver) instead of
mutating driver state from inside a task.  A retried or speculatively
duplicated task therefore reproduces its first execution bit for bit, the
round's ``dist_evals`` stay exact under any absorbed fault, and the same
task list runs unchanged on sequential, thread and process backends —
in-memory coordinates cross the process boundary once per job through
the shared-memory transport, exactly like MRG/MRHS.
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass

import numpy as np

from repro.core.assignment import covering_radius
from repro.core.gonzalez import gonzalez_trace
from repro.core.result import KCenterResult
from repro.errors import CapacityError, ConvergenceError, InvalidParameterError
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.executor import Executor
from repro.mapreduce.partition import block_partition
from repro.mapreduce.tasks import TaskOutput, TaskSpec
from repro.metric.base import MetricSpace, TaskCounter
from repro.store.shm import shared_space
from repro.utils.rng import SeedLike, SeedStream
from repro.utils.timing import Timer

__all__ = ["EIMParams", "eim"]


@dataclass(frozen=True)
class EIMParams:
    """Tunable parameters of the EIM scheme.

    Attributes
    ----------
    eps:
        The ``epsilon`` of the scheme; the loop runs O(1/eps) iterations
        w.h.p.  The paper confirms Ene et al.'s choice 0.1.
    phi:
        Pivot rank multiplier: the pivot is the ``phi * log(n)``-th
        farthest point of H from S.  8.0 reproduces the original scheme.
    sample_coeff:
        The ``9`` in the S-sampling probability ``9 k n^eps log n / |R|``.
    pivot_coeff:
        The ``4`` in the H-sampling probability ``4 n^eps log n / |R|``.
    threshold_coeff:
        The ``4`` in the loop threshold ``(4/eps) k n^eps log n``.
    legacy_removal:
        Reproduce the original strict-``<`` removal (ablation only).
    max_iterations:
        Hard stop; the theory predicts O(1/eps) iterations, so the default
        ``10 * ceil(1/eps) + 10`` only trips on genuine stalls.
    """

    eps: float = 0.1
    phi: float = 8.0
    sample_coeff: float = 9.0
    pivot_coeff: float = 4.0
    threshold_coeff: float = 4.0
    legacy_removal: bool = False
    max_iterations: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.eps < 1.0:
            raise InvalidParameterError(f"eps must be in (0, 1), got {self.eps}")
        if self.phi <= 0:
            raise InvalidParameterError(f"phi must be positive, got {self.phi}")
        if min(self.sample_coeff, self.pivot_coeff, self.threshold_coeff) <= 0:
            raise InvalidParameterError("all EIM coefficients must be positive")

    @property
    def iteration_cap(self) -> int:
        if self.max_iterations is not None:
            return self.max_iterations
        return 10 * math.ceil(1.0 / self.eps) + 10

    def loop_threshold(self, n: int, k: int) -> float:
        """|R| threshold below which the while loop stops."""
        if n <= 1:
            return float(n)
        return (self.threshold_coeff / self.eps) * k * n**self.eps * math.log(n)

    def sample_probability(self, n: int, k: int, r_size: int) -> float:
        """Per-point probability of joining S this iteration (clamped)."""
        if r_size <= 0:
            return 0.0
        p = self.sample_coeff * k * n**self.eps * math.log(n) / r_size
        return min(1.0, p)

    def pivot_probability(self, n: int, r_size: int) -> float:
        """Per-point probability of joining H this iteration (clamped)."""
        if r_size <= 0:
            return 0.0
        p = self.pivot_coeff * n**self.eps * math.log(n) / r_size
        return min(1.0, p)

    def pivot_rank(self, n: int) -> int:
        """0-based rank of the pivot in the farthest-first ordering of H."""
        return max(0, math.ceil(self.phi * math.log(max(n, 2))) - 1)


# ------------------------------------------------------------------------ #
# round task bodies — module-level (the task contract: picklable on every
# backend), all solver state bound explicitly through TaskSpec args
# ------------------------------------------------------------------------ #
def _task_shadow(space: MetricSpace) -> MetricSpace:
    """A shallow clone of ``space`` with a task-private counter.

    Distance work done through the shadow never touches the watched
    counter directly — it rides back in the :class:`TaskOutput`, so a
    re-executed (retried, speculated, duplicated) task cannot
    double-count and the round's ``dist_evals`` stay exact on every
    backend, process pools included.
    """
    shadow = copy.copy(space)
    shadow.counter = TaskCounter()
    return shadow


def _sample_task(shard: np.ndarray, p_s: float, p_h: float, *, seed):
    """Round 1 on one machine: Bernoulli-draw S and H members of ``shard``.

    ``seed`` (keyword-only, bound per task by :class:`TaskSpec`) builds a
    fresh generator per call: a stateful generator would make a retried /
    speculatively duplicated task draw different samples on its second
    execution.  Bit-identical to the historical generator binding, since
    ``SeedStream.generators`` is exactly ``default_rng`` over
    ``SeedStream.seeds``.  No distance work happens here.
    """
    rng = np.random.default_rng(seed)
    draw_s = rng.random(len(shard)) < p_s
    draw_h = rng.random(len(shard)) < p_h
    return shard[draw_s], shard[draw_h]


def _select_task(
    space: MetricSpace,
    d_h: np.ndarray,
    pivot_pool: np.ndarray,
    new_sample: np.ndarray,
    rank: int,
) -> TaskOutput:
    """Round 2 on one machine: fold new sample into the H distances, pick
    the pivot distance (the ``rank``-th farthest point of H from S).

    ``d_h`` is the maintained H-to-S_old distances; copied before the
    min-fold so the task is a pure function of its arguments even when
    two attempts run concurrently against the same driver-side array.
    """
    shadow = _task_shadow(space)
    d_h = np.array(d_h, copy=True)
    if len(new_sample):
        shadow.update_min_dists(d_h, pivot_pool, new_sample)
    rank = min(rank, len(d_h) - 1)
    # phi*log(n)-th farthest = descending order statistic.
    kth = len(d_h) - 1 - rank
    return TaskOutput(float(np.partition(d_h, kth)[kth]), shadow.counter.evals)


def _remove_task(
    space: MetricSpace,
    indices: np.ndarray,
    dists: np.ndarray,
    new_sample: np.ndarray,
    in_new_sample: np.ndarray,
    pivot_dist: float,
    has_pivot: bool,
    legacy_removal: bool,
) -> TaskOutput:
    """Round 3 on one machine: min-fold the new sample into this block's
    maintained distances, decide which points of the block survive.

    Returns ``(updated_dists, keep)`` for the driver to reassemble —
    tasks never mutate driver state in place, so the same body runs in a
    process worker, and re-execution trivially reproduces the first
    attempt (the min-fold against a fixed reference set is a pure
    function of the incoming block).
    """
    shadow = _task_shadow(space)
    dists = np.array(dists, copy=True)
    if len(new_sample):
        shadow.update_min_dists(dists, indices, new_sample)
    if legacy_removal:
        # Original rule: remove strictly-closer points only, and do not
        # force sampled points out of R.
        keep = dists >= pivot_dist if has_pivot else np.ones(len(dists), dtype=bool)
        return TaskOutput((dists, keep), shadow.counter.evals)
    keep = dists > pivot_dist if has_pivot else np.ones(len(dists), dtype=bool)
    keep &= ~in_new_sample
    return TaskOutput((dists, keep), shadow.counter.evals)


def _final_task(
    space: MetricSpace, candidates: np.ndarray, k: int, *, seed
) -> TaskOutput:
    """Clean-up round: sequential GON over the candidate set C = S u R.

    ``local`` shares its parent's counter, so the clean-up runs over a
    shadow copy with a private one — same re-execution safety as the
    loop rounds.
    """
    shadow = _task_shadow(space)
    local = shadow.local(candidates)
    trace = gonzalez_trace(local, k, seed=seed)
    return TaskOutput(candidates[trace.centers], shadow.counter.evals)


def eim(
    space: MetricSpace,
    k: int,
    m: int = 50,
    params: EIMParams | None = None,
    capacity: int | None = None,
    seed: SeedLike = None,
    executor: Executor | None = None,
    evaluate: bool = True,
    **param_overrides,
) -> KCenterResult:
    """Run EIM on ``space``; return centers, objective and round accounting.

    Parameters
    ----------
    space, k, m, capacity, seed, executor, evaluate:
        As for :func:`repro.core.mrg.mrg`.  ``capacity=None`` leaves the
        machines unbounded, matching the paper's experiments (they check
        the *sample* fits rather than engineering c); when a capacity is
        given, the Select and clean-up rounds enforce it.
    params:
        An :class:`EIMParams`; keyword overrides (``eps=0.2``, ``phi=4``,
        ...) may be passed directly instead.

    Notes
    -----
    With GON as the clean-up procedure and a feasible ``phi`` the result
    is a 10-approximation with sufficient probability (paper Lemma 7 with
    alpha = 2); ``approx_factor`` is set accordingly, or ``None`` when
    ``phi`` is below the paper's quoted 5.15 threshold.
    """
    if params is None:
        params = EIMParams(**param_overrides)
    elif param_overrides:
        raise InvalidParameterError(
            "pass either a params object or keyword overrides, not both"
        )
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    n = space.n
    if n == 0:
        return KCenterResult(
            algorithm="EIM", centers=np.empty(0, dtype=np.intp), radius=0.0, k=k
        )

    cluster = SimulatedCluster(m, capacity, executor=executor, dist_counter=space.counter)
    wall = Timer()
    threshold = params.loop_threshold(n, k)
    iteration_sizes: list[dict[str, int]] = []
    seeds = SeedStream(seed)

    # Same zero-copy scope as MRG/MRHS: in-memory coordinates published
    # once per job for process-pool rounds (repro.store.shm); every task
    # below binds ``task_space``, which pickles as a ~100-byte handle
    # inside the scope and is the space itself otherwise.
    with wall, shared_space(space, cluster.executor) as task_space:
        remaining = np.arange(n, dtype=np.intp)  # R, as sorted global indices
        # d(x, S_old) for x in R, aligned with `remaining`; maintained
        # incrementally (each iteration folds only the new sample points).
        dist_to_sample = np.full(n, np.inf)
        sample = np.empty(0, dtype=np.intp)  # S
        iteration = 0

        while len(remaining) > threshold:
            iteration += 1
            if iteration > params.iteration_cap:
                raise ConvergenceError(
                    f"EIM exceeded {params.iteration_cap} iterations "
                    f"(|R|={len(remaining)}, threshold={threshold:.1f}); "
                    + ("legacy removal rule stalls on this input"
                       if params.legacy_removal else "unexpected stall")
                )
            r_size = len(remaining)
            p_s = params.sample_probability(n, k, r_size)
            p_h = params.pivot_probability(n, r_size)

            # ---- Round 1: per-machine Bernoulli sampling of S and H ----
            n_machines = min(m, r_size)
            shard_pos = [p for p in block_partition(r_size, n_machines) if len(p)]
            shards = [remaining[p] for p in shard_pos]
            shard_starts = np.cumsum([0] + [len(s) for s in shards])
            machine_seeds = seeds.seeds(len(shards))

            pairs = cluster.run_round(
                f"eim.sample[{iteration}]",
                [
                    TaskSpec(
                        _sample_task,
                        args=(shard, p_s, p_h),
                        seed=machine_seeds[i],
                        counting="none",
                    )
                    for i, shard in enumerate(shards)
                ],
                task_sizes=[len(s) for s in shards],
            )
            new_sample = np.concatenate([p[0] for p in pairs])
            pivot_pool = np.concatenate([p[1] for p in pairs])
            sample = np.concatenate([sample, new_sample])

            # ---- Round 2: Select the pivot on a single machine ----------
            # One machine receives H and S plus the maintained H-to-S_old
            # distances; it folds the new sample points into them and picks
            # the phi*log(n)-th farthest as the pivot v, returning d(v, S).
            pivot_dist = -np.inf
            if len(pivot_pool) and len(sample):
                # H subset of R, and `remaining` is sorted, so positions are exact.
                pool_positions = np.searchsorted(remaining, pivot_pool)
                (pivot_dist,) = cluster.run_round(
                    f"eim.select[{iteration}]",
                    [
                        TaskSpec(
                            _select_task,
                            args=(
                                task_space,
                                dist_to_sample[pool_positions],
                                pivot_pool,
                                new_sample,
                                params.pivot_rank(n),
                            ),
                            counting="output",
                        )
                    ],
                    task_sizes=[len(pivot_pool) + len(sample)],
                    shuffle_elements=len(pivot_pool) + len(sample),
                )

            # ---- Round 3: distance update + removal, sharded ------------
            in_new_sample = np.isin(remaining, new_sample, assume_unique=False)
            has_pivot = pivot_dist > -np.inf

            blocks = cluster.run_round(
                f"eim.remove[{iteration}]",
                [
                    TaskSpec(
                        _remove_task,
                        args=(
                            task_space,
                            shards[i],
                            dist_to_sample[shard_starts[i] : shard_starts[i + 1]],
                            new_sample,
                            in_new_sample[shard_starts[i] : shard_starts[i + 1]],
                            float(pivot_dist),
                            has_pivot,
                            params.legacy_removal,
                        ),
                        counting="output",
                    )
                    for i in range(len(shards))
                ],
                task_sizes=[len(s) for s in shards],
                shuffle_elements=len(new_sample) + len(shards),
            )
            # block_partition yields contiguous, ordered blocks, so
            # concatenating the per-task results reassembles both arrays
            # in `remaining` order.
            dist_to_sample = np.concatenate([b[0] for b in blocks])
            keep = np.concatenate([b[1] for b in blocks])

            iteration_sizes.append(
                {
                    "R": r_size,
                    "new_S": int(len(new_sample)),
                    "H": int(len(pivot_pool)),
                    "removed": int(r_size - keep.sum()),
                }
            )
            if keep.all():
                raise ConvergenceError(
                    f"EIM iteration {iteration} removed no points "
                    f"(|R|={r_size}, |H|={len(pivot_pool)}, "
                    f"legacy_removal={params.legacy_removal})"
                )
            remaining = remaining[keep]
            dist_to_sample = dist_to_sample[keep]

        # ---- Clean-up round: sequential GON on C = S u R ----------------
        candidates = np.union1d(sample, remaining)
        if capacity is not None and len(candidates) > capacity:
            raise CapacityError(
                f"EIM candidate set of {len(candidates)} points exceeds the "
                f"machine capacity {capacity}; increase eps or capacity"
            )
        final_seed = seeds.seeds(1)[0]

        (centers,) = cluster.run_round(
            "eim.final",
            [
                TaskSpec(
                    _final_task,
                    args=(task_space, candidates, k),
                    seed=final_seed,
                    counting="output",
                )
            ],
            task_sizes=[len(candidates)],
        )

    eval_timer = Timer()
    radius = 0.0
    if evaluate:
        with eval_timer:
            radius = covering_radius(space, centers)

    # 4*alpha + 2 with alpha = 2 (GON) = 10, valid w.s.p. only above the
    # paper's phi threshold; no a-priori bound below it (Section 8.3).
    from repro.core.theory import PHI_PAPER_THRESHOLD

    factor = 10.0 if params.phi > PHI_PAPER_THRESHOLD else None
    return KCenterResult(
        algorithm="EIM",
        centers=centers,
        radius=radius,
        k=k,
        stats=cluster.stats,
        wall_time=wall.elapsed,
        eval_time=eval_timer.elapsed,
        approx_factor=factor,
        extra={
            "m": m,
            "params": params,
            "iterations": iteration,
            "loop_threshold": threshold,
            "sample_size": int(len(sample)),
            "candidate_size": int(len(candidates)),
            "iteration_sizes": iteration_sizes,
            "fallback_to_gon": iteration == 0,
        },
    )
