"""GON — Gonzalez's greedy 2-approximation (farthest-first traversal).

"This algorithm chooses an arbitrary vertex from the graph, and marks it as
a center.  At each following step, the vertex farthest from the existing
centers is marked as a new center, until k centers have been chosen"
(paper, Section 3.1).  The triangle inequality makes the result a factor-2
approximation [Gonzalez 1985], and the runtime is O(k*n) distance
evaluations: one fused vector pass per selected center, maintaining the
running minimum distance to the chosen set in place.

This module exposes both the low-level traversal (:func:`gonzalez_trace`,
returning the selection-radius trace that powers the certified lower bound
in :mod:`repro.core.bounds`) and the packaged :func:`gonzalez` entry point
returning a :class:`~repro.core.result.KCenterResult`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.result import KCenterResult
from repro.errors import InvalidParameterError
from repro.metric.base import MetricSpace
from repro.utils.rng import SeedLike, as_generator
from repro.utils.timing import Timer

__all__ = ["GonzalezTrace", "gonzalez_trace", "gonzalez"]


@dataclass
class GonzalezTrace:
    """Raw outcome of a farthest-first traversal over a space.

    Attributes
    ----------
    centers:
        Indices (into the space the traversal ran on) of the selected
        centers, in selection order.
    selection_radii:
        ``selection_radii[t]`` is the distance of the ``t``-th selected
        center to the previously selected set, for ``t >= 1`` (entry 0 is
        ``inf`` by convention: the seed is "infinitely far" from the empty
        set).  This sequence is non-increasing.
    final_dists:
        Distance of every point of the space to the selected set — the
        in-place running minimum at termination.  ``final_dists.max()`` is
        the covering radius, and is also the ``(k+1)``-th selection radius
        the lower-bound argument uses.
    """

    centers: np.ndarray
    selection_radii: np.ndarray
    final_dists: np.ndarray

    @property
    def radius(self) -> float:
        return float(self.final_dists.max()) if self.final_dists.size else 0.0


def gonzalez_trace(
    space: MetricSpace,
    k: int,
    seed: SeedLike = None,
    first_center: int | None = None,
) -> GonzalezTrace:
    """Run the farthest-first traversal; return the full trace.

    Parameters
    ----------
    space:
        Metric space to traverse (typically a compact
        :meth:`~repro.metric.base.MetricSpace.local` view).
    k:
        Number of centers to select; capped at ``space.n``.
    seed:
        RNG for the arbitrary initial center (ignored when
        ``first_center`` is given).
    first_center:
        Deterministic seed vertex — used by tests and by the adversarial
        tightness example.
    """
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    n = space.n
    if n == 0:
        return GonzalezTrace(
            centers=np.empty(0, dtype=np.intp),
            selection_radii=np.empty(0),
            final_dists=np.empty(0),
        )
    k_eff = min(k, n)
    if first_center is None:
        first = int(as_generator(seed).integers(n))
    else:
        first = int(first_center)
        if not 0 <= first < n:
            raise InvalidParameterError(
                f"first_center {first} out of range for a space of size {n}"
            )

    centers = np.empty(k_eff, dtype=np.intp)
    radii = np.empty(k_eff, dtype=np.float64)
    centers[0] = first
    radii[0] = np.inf
    # Running min-distance of every point to the selected set; one fused
    # vector pass per center keeps the whole loop at O(k n) with no
    # temporaries beyond a single length-n vector.
    dists = space.dists_to(None, first)
    for t in range(1, k_eff):
        farthest = int(dists.argmax())
        radii[t] = dists[farthest]
        if radii[t] == 0.0:
            # All remaining points coincide with chosen centers; selecting
            # duplicates would violate the distinct-centers contract.
            centers, radii = centers[:t], radii[:t]
            break
        centers[t] = farthest
        np.minimum(dists, space.dists_to(None, farthest), out=dists)
    return GonzalezTrace(centers=centers, selection_radii=radii, final_dists=dists)


def gonzalez(
    space: MetricSpace,
    k: int,
    seed: SeedLike = None,
    first_center: int | None = None,
) -> KCenterResult:
    """GON: sequential greedy 2-approximation for k-center.

    Returns a :class:`KCenterResult` whose ``radius`` is exact (the
    traversal's running minima give it for free) and whose
    ``approx_factor`` is 2.
    """
    timer = Timer()
    with timer:
        trace = gonzalez_trace(space, k, seed=seed, first_center=first_center)
    return KCenterResult(
        algorithm="GON",
        centers=trace.centers,
        radius=trace.radius,
        k=k,
        wall_time=timer.elapsed,
        approx_factor=2.0,
        extra={"selection_radii": trace.selection_radii},
    )
