"""Result type shared by every k-center algorithm in the package."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.mapreduce.accounting import JobStats

__all__ = ["KCenterResult"]


@dataclass
class KCenterResult:
    """Outcome of one k-center run.

    Attributes
    ----------
    algorithm:
        Short algorithm tag ("GON", "MRG", "EIM", ...).
    centers:
        Global indices (into the space the algorithm ran on) of the at most
        ``k`` chosen centers.
    radius:
        The solution value: the covering radius ``max_v min_{s in centers}
        d(v, s)`` over the full space.
    k:
        The requested number of centers (``len(centers) <= k``; fewer only
        when the space itself has fewer than ``k`` points).
    stats:
        MapReduce accounting for parallel algorithms (``None`` for purely
        sequential runs); ``stats.parallel_time`` is the paper's "Runtime".
    wall_time:
        End-to-end wall-clock seconds of the algorithm itself, excluding
        the final objective evaluation over all points.
    eval_time:
        Seconds spent computing ``radius`` over the full space (reported
        separately; the paper does not charge it to algorithm runtime).
    approx_factor:
        The a-priori guarantee this run carries (2 for GON, ``2(i+1)`` for
        MRG, ``4*alpha+2`` for EIM with a feasible ``phi``; ``None`` when
        no bound applies, e.g. EIM with ``phi`` below the threshold).
    extra:
        Algorithm-specific diagnostics (iteration counts, sample sizes,
        per-round traces, ...).
    """

    algorithm: str
    centers: np.ndarray
    radius: float
    k: int
    stats: JobStats | None = None
    wall_time: float = 0.0
    eval_time: float = 0.0
    approx_factor: float | None = None
    extra: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.centers = np.asarray(self.centers, dtype=np.intp)
        if self.centers.ndim != 1:
            raise ValueError(f"centers must be 1-D, got shape {self.centers.shape}")
        if len(np.unique(self.centers)) != len(self.centers):
            raise ValueError("centers contain duplicates")
        if len(self.centers) > self.k:
            raise ValueError(
                f"{len(self.centers)} centers returned for k={self.k}"
            )
        if self.radius < 0:
            raise ValueError(f"negative covering radius {self.radius}")

    @property
    def n_centers(self) -> int:
        return len(self.centers)

    @property
    def parallel_time(self) -> float:
        """Simulated parallel runtime (falls back to wall time for GON)."""
        if self.stats is not None:
            return self.stats.parallel_time
        return self.wall_time

    @property
    def n_rounds(self) -> int:
        """MapReduce rounds used (0 for sequential algorithms)."""
        return self.stats.n_rounds if self.stats is not None else 0

    def summary(self) -> dict[str, Any]:
        """Flat record used by the experiment harness and benches."""
        out = {
            "algorithm": self.algorithm,
            "k": self.k,
            "n_centers": self.n_centers,
            "radius": self.radius,
            "wall_time": self.wall_time,
            "parallel_time": self.parallel_time,
            "eval_time": self.eval_time,
            "rounds": self.n_rounds,
            "approx_factor": self.approx_factor,
        }
        if self.stats is not None:
            out["cpu_time"] = self.stats.cpu_time
            out["dist_evals"] = self.stats.dist_evals
            out["shuffle_elements"] = self.stats.shuffle_elements
        return out
