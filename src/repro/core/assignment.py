"""Point-to-center assignment and objective evaluation.

The k-center objective (paper, Definition in Section 1.1) assigns every
point to its nearest chosen center; the solution value is the maximum
assignment distance (the covering radius).  Both operations here run
through the chunked space kernels, so they are safe at n = 10^6.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.metric.base import MetricSpace

__all__ = ["assign", "covering_radius", "cluster_sizes"]


def assign(
    space: MetricSpace,
    centers: np.ndarray,
    i_idx: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Assign each point to its nearest center.

    Parameters
    ----------
    space:
        The metric space.
    centers:
        Global indices of the chosen centers (non-empty).
    i_idx:
        Points to assign (default: all points of the space).

    Returns
    -------
    labels, dists:
        ``labels[t]`` is the *position within centers* of point ``t``'s
        nearest center (so ``centers[labels[t]]`` is its global index) and
        ``dists[t]`` the corresponding distance.
    """
    centers = np.asarray(centers, dtype=np.intp)
    if centers.size == 0:
        raise InvalidParameterError("assign requires at least one center")
    return space.nearest(i_idx, centers)


def covering_radius(
    space: MetricSpace,
    centers: np.ndarray,
    i_idx: np.ndarray | None = None,
) -> float:
    """The k-center objective: max distance to the nearest center."""
    centers = np.asarray(centers, dtype=np.intp)
    if centers.size == 0:
        raise InvalidParameterError("covering_radius requires at least one center")
    return space.covering_radius(centers, i_idx)


def cluster_sizes(labels: np.ndarray, n_centers: int) -> np.ndarray:
    """Histogram of assignment labels (diagnostics for the UNB data sets)."""
    if n_centers <= 0:
        raise InvalidParameterError(f"n_centers must be positive, got {n_centers}")
    return np.bincount(labels, minlength=n_centers)
