"""MRHS — MapReduce Hochbaum-Shmoys (the paper's future-work proposal).

Section 9: "Currently all such approaches rely on the sequential
algorithm of Gonzalez.  It would be interesting to compare with similar
adaptations of alternative sequential algorithms, such as that of
Hochbaum & Shmoys."  This module is that adaptation: Algorithm 1 with the
per-machine and final sub-procedure swapped from GON to HS.

Approximation.  For any subset ``S`` of ``V``, ``OPT(S) <= 2 OPT(V)``:
map each optimal cluster of V that intersects S to one representative in
S; by the triangle inequality every point of S is within ``2 OPT(V)`` of
its cluster's representative.  Hence

* round 1: HS covers each shard ``V_i`` within ``2 OPT(V_i) <= 4 OPT(V)``
  (HS's factor 2 against the shard's own optimum);
* final round: HS on the union ``C`` covers C within
  ``2 OPT(C) <= 4 OPT(V)``;
* triangle inequality: every point of V is within ``4 + 4 = 8 OPT(V)``.

So the two-round MRHS guarantee is **8** where MRG's is 4 — GON's
farthest-first structure is what buys the tighter Lemma 1, which is a
nice theoretical argument *for* MRG.  Empirically, however, HS tends to
return better-than-guarantee solutions (its binary search stops at the
smallest feasible radius), so the comparison the authors asked for is
genuinely interesting — ``benchmarks/bench_future_work_mrhs.py`` runs it.

Practical caveat inherited from HS: each machine materialises its shard's
candidate radii (O((n/m)^2) distances), so the per-machine shard is
capped (:data:`repro.core.hochbaum_shmoys.MAX_POINTS`).  MRHS therefore
targets moderate n with many machines — exactly the regime where a
sequential HS would already be infeasible and parallelism is the point.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.assignment import covering_radius
from repro.core.hochbaum_shmoys import MAX_POINTS, hochbaum_shmoys
from repro.core.mrg import _bind_views_eagerly
from repro.core.result import KCenterResult
from repro.errors import CapacityError, InvalidParameterError
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.tasks import TaskOutput, TaskSpec
from repro.mapreduce.executor import Executor
from repro.mapreduce.model import validate_cluster
from repro.mapreduce.partition import PARTITIONERS
from repro.metric.base import MetricSpace
from repro.store.shm import shared_space
from repro.store.space import machine_view
from repro.utils.rng import SeedLike, SeedStream
from repro.utils.timing import Timer

__all__ = ["mr_hochbaum_shmoys"]


def _hs_shard_task(
    space: MetricSpace, shard: np.ndarray, k: int, bound: bool = False
) -> TaskOutput:
    """One reducer: HS over a machine view of ``shard``; global center ids.

    Top-level (not a closure) and argument-picklable, so the same task
    list runs on sequential, thread and process executors.  The machine
    view carries a private counter — an out-of-core shard gathers only
    its own rows wherever the task runs — and the evaluation count rides
    back in the :class:`TaskOutput` for exact round accounting.
    ``bound=True`` means ``space`` is already this machine's view
    (prebuilt at schedule time so a process-pool task ships only its
    shard's rows; see :func:`repro.core.mrg._bind_views_eagerly`).
    """
    view = space if bound else machine_view(space, shard)
    try:
        centers = shard[hochbaum_shmoys(view, k).centers]
    finally:
        if hasattr(view, "release"):
            view.release()
    return TaskOutput(centers, view.counter.evals)


def mr_hochbaum_shmoys(
    space: MetricSpace,
    k: int,
    m: int = 50,
    capacity: int | None = None,
    partitioner="block",
    seed: SeedLike = None,
    executor: Executor | None = None,
    evaluate: bool = True,
) -> KCenterResult:
    """Two-round MapReduce k-center with Hochbaum-Shmoys sub-procedures.

    Parameters mirror :func:`repro.core.mrg.mrg`.  Unlike MRG there is no
    multi-round regime: HS per shard returns at most ``k`` centers, so the
    union has at most ``k * m`` points and the schedule is always two
    rounds (the capacity must accommodate ``k * m`` on one machine, and
    each shard must fit HS's ``MAX_POINTS`` cap).
    """
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    n = space.n
    if n == 0:
        return KCenterResult(
            algorithm="MRHS", centers=np.empty(0, dtype=np.intp), radius=0.0, k=k
        )
    capacity = max(math.ceil(n / m), k * m, 1) if capacity is None else int(capacity)
    validate_cluster(n, k, m, capacity)
    if k * m > capacity:
        raise CapacityError(
            f"MRHS has no multi-round fallback: k*m = {k * m} must fit the "
            f"final machine (capacity {capacity})"
        )
    shard_cap = math.ceil(n / m)
    if shard_cap > MAX_POINTS:
        raise CapacityError(
            f"HS materialises per-shard candidate radii: shard size "
            f"{shard_cap} exceeds its {MAX_POINTS}-point cap; use more "
            "machines or MRG"
        )

    try:
        part_fn = PARTITIONERS[partitioner] if not callable(partitioner) else partitioner
    except KeyError:
        raise InvalidParameterError(
            f"unknown partitioner {partitioner!r}; choose from {sorted(PARTITIONERS)}"
        ) from None

    cluster = SimulatedCluster(m, capacity, executor=executor, dist_counter=space.counter)
    seeds = SeedStream(seed)
    wall = Timer()

    # Same zero-copy scope as MRG: in-memory coordinates published once
    # per job for process-pool rounds (repro.store.shm).
    with wall, shared_space(space, cluster.executor) as task_space:
        n_machines = min(m, n)
        try:
            parts = part_fn(n, n_machines, seeds.seeds(1)[0])
        except TypeError:
            parts = part_fn(n, n_machines)
        shards = [np.asarray(p, dtype=np.intp) for p in parts if len(p)]

        eager = _bind_views_eagerly(task_space, cluster.executor)

        def bind(shard: np.ndarray) -> TaskSpec:
            if eager:
                return TaskSpec(
                    _hs_shard_task,
                    args=(machine_view(task_space, shard), shard, k, True),
                    counting="output",
                )
            return TaskSpec(
                _hs_shard_task, args=(task_space, shard, k), counting="output"
            )

        results = cluster.run_round(
            "mrhs.reduce",
            [bind(shard) for shard in shards],
            task_sizes=[len(s) for s in shards],
        )
        union = np.concatenate(results)

        (centers,) = cluster.run_round(
            "mrhs.final", [bind(union)], task_sizes=[len(union)]
        )

    eval_timer = Timer()
    radius = 0.0
    if evaluate:
        with eval_timer:
            radius = covering_radius(space, centers)

    return KCenterResult(
        algorithm="MRHS",
        centers=centers,
        radius=radius,
        k=k,
        stats=cluster.stats,
        wall_time=wall.elapsed,
        eval_time=eval_timer.elapsed,
        approx_factor=8.0,
        extra={"m": m, "capacity": capacity, "union_size": int(len(union))},
    )
