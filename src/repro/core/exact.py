"""Brute-force exact k-center oracle (testing only).

Enumerates every size-``k`` subset of the candidate centers and evaluates
the covering radius, returning a true optimum.  Complexity is
``C(n, k) * n * k`` distance reads, so a hard guard refuses instances with
more than :data:`MAX_COMBINATIONS` candidate subsets.  Used by the unit and
property tests to certify the 2-/4-approximation guarantees end to end.
"""

from __future__ import annotations

from itertools import combinations
from math import comb

import numpy as np

from repro.core.result import KCenterResult
from repro.errors import InvalidParameterError
from repro.metric.base import MetricSpace
from repro.utils.timing import Timer

__all__ = ["exact_kcenter", "MAX_COMBINATIONS"]

#: Refuse instances whose subset count exceeds this (keeps tests honest
#: about what "tiny" means: C(18, 4) = 3060, C(25, 3) = 2300, ...).
MAX_COMBINATIONS = 200_000


def exact_kcenter(space: MetricSpace, k: int) -> KCenterResult:
    """Optimal k-center by exhaustive search over center subsets."""
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    n = space.n
    if n == 0:
        return KCenterResult(
            algorithm="EXACT", centers=np.empty(0, dtype=np.intp), radius=0.0, k=k
        )
    k_eff = min(k, n)
    n_subsets = comb(n, k_eff)
    if n_subsets > MAX_COMBINATIONS:
        raise InvalidParameterError(
            f"exact oracle refuses C({n}, {k_eff}) = {n_subsets} subsets "
            f"(cap {MAX_COMBINATIONS}); this oracle is for tiny test instances"
        )

    timer = Timer()
    with timer:
        # One dense n x n matrix (tiny by the guard above); each candidate
        # subset is then a vectorised row-min + max.
        all_idx = np.arange(n, dtype=np.intp)
        dmat = space.cross(all_idx, all_idx)
        best_radius = np.inf
        best: tuple[int, ...] | None = None
        for subset in combinations(range(n), k_eff):
            radius = dmat[:, subset].min(axis=1).max()
            if radius < best_radius:
                best_radius = float(radius)
                best = subset
                if best_radius == 0.0:
                    break
    assert best is not None
    return KCenterResult(
        algorithm="EXACT",
        centers=np.asarray(best, dtype=np.intp),
        radius=best_radius,
        k=k,
        wall_time=timer.elapsed,
        approx_factor=1.0,
    )
