"""Hochbaum & Shmoys' bottleneck 2-approximation for k-center.

The paper's conclusion asks: "It would be interesting to compare with
similar adaptations of alternative sequential algorithms, such as that of
Hochbaum & Shmoys" — this module provides that alternative sequential
baseline (and the examples use it for the comparison the authors proposed).

The classic scheme: binary-search over the sorted distinct pairwise
distances; for a candidate radius ``r``, greedily pick any uncovered
vertex as a center and discard everything within ``2r`` of it.  If at most
``k`` centers are picked, ``r`` is feasible.  The smallest feasible ``r``
is at most OPT (OPT is one of the pairwise distances and is feasible), and
the greedy cover certifies radius ``<= 2r <= 2 OPT``.

The feasibility check is O(k n) via the chunked kernels, but collecting the
candidate radii needs the distinct pairwise distances — O(n^2) — so this
implementation guards ``n`` the same way the exact oracle does (it is a
sequential *baseline*, not a scalable system).
"""

from __future__ import annotations

import numpy as np

from repro.core.assignment import covering_radius
from repro.core.result import KCenterResult
from repro.errors import InvalidParameterError
from repro.metric.base import MetricSpace
from repro.utils.timing import Timer

__all__ = ["hochbaum_shmoys", "MAX_POINTS"]

#: n^2 distances are materialised once to get the candidate radii.
MAX_POINTS = 4096


def _greedy_cover(dmat: np.ndarray, r2: float, k: int) -> np.ndarray | None:
    """Greedy 2r-cover; returns chosen centers or None if more than k needed."""
    n = dmat.shape[0]
    uncovered = np.ones(n, dtype=bool)
    centers: list[int] = []
    while uncovered.any():
        if len(centers) == k:
            return None
        v = int(np.flatnonzero(uncovered)[0])
        centers.append(v)
        uncovered &= dmat[v] > r2
    return np.asarray(centers, dtype=np.intp)


def hochbaum_shmoys(space: MetricSpace, k: int) -> KCenterResult:
    """HS: bottleneck binary-search 2-approximation (small instances)."""
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    n = space.n
    if n == 0:
        return KCenterResult(
            algorithm="HS", centers=np.empty(0, dtype=np.intp), radius=0.0, k=k
        )
    if n > MAX_POINTS:
        raise InvalidParameterError(
            f"hochbaum_shmoys materialises n^2 distances; n={n} exceeds cap {MAX_POINTS}"
        )

    timer = Timer()
    with timer:
        all_idx = np.arange(n, dtype=np.intp)
        dmat = space.cross(all_idx, all_idx)
        candidates = np.unique(dmat)  # sorted ascending, includes 0
        lo, hi = 0, len(candidates) - 1
        best_centers = _greedy_cover(dmat, 2.0 * candidates[hi], k)
        assert best_centers is not None  # the max radius always covers
        while lo < hi:
            mid = (lo + hi) // 2
            centers = _greedy_cover(dmat, 2.0 * candidates[mid], k)
            if centers is not None:
                best_centers = centers
                hi = mid
            else:
                lo = mid + 1
        radius = float(dmat[:, best_centers].min(axis=1).max())
    return KCenterResult(
        algorithm="HS",
        centers=best_centers,
        radius=radius,
        k=k,
        wall_time=timer.elapsed,
        approx_factor=2.0,
    )
