"""MRG — "MapReduce Gonzalez" (paper Algorithm 1, Sections 3.1-3.3).

Round structure::

    S <- V
    while |S| > c:
        partition S across machines (|V_i| <= ceil(n/m) in round 1;
        later rounds use the minimal machine count ceil(|S|/c), Eq. (1))
        each machine runs GON on its shard, emitting k centers
        S <- union of the emitted centers
    one machine runs GON on S  ->  the k final centers

In the standard regime (``n/m <= c`` and ``k*m <= c``) the while loop runs
once and the schedule is two MapReduce rounds with a 4-approximation
(Lemma 2).  When ``k*m > c`` the loop iterates; each extra round adds 2 to
the approximation factor (Lemma 3), and convergence requires ``2k < c``
(the Eq. (1) geometric tail must allow the surviving centers to fit on one
machine).

Timing follows the paper's methodology: each reducer's GON is individually
wall-clocked, the round's simulated parallel time is the slowest reducer,
and the final objective evaluation over all of V is *not* charged to the
algorithm (reported separately as ``eval_time``).
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.core.assignment import covering_radius
from repro.core.gonzalez import gonzalez_trace
from repro.core.result import KCenterResult
from repro.errors import CapacityError, InvalidParameterError
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.tasks import TaskOutput, TaskSpec
from repro.mapreduce.executor import Executor
from repro.mapreduce.model import default_capacity, mrg_approximation_factor, validate_cluster
from repro.mapreduce.partition import PARTITIONERS, block_partition
from repro.metric.base import MetricSpace
from repro.store.shm import shared_space
from repro.store.space import ChunkedMetricSpace, machine_view
from repro.utils.rng import SeedLike, spawn_seeds
from repro.utils.timing import Timer

__all__ = ["mrg"]


def _bind_views_eagerly(space: MetricSpace, executor: Executor) -> bool:
    """Whether reducer tasks should carry a prebuilt machine view.

    Only worth it for in-memory spaces crossing a process boundary
    *without* a zero-copy route: pickling the prebuilt view ships just
    the shard's rows, where the parent space would ship the whole
    dataset to every worker.  Chunked spaces always bind lazily — they
    pickle by re-opening their backing (no data crosses) — and so do
    spaces published to shared memory (``space._shared`` set inside a
    :func:`repro.store.shm.shared_space` scope): they pickle as a
    ~100-byte handle, and the worker builds the view against the
    attached block, keeping even the shard-row copies off the driver.
    """
    return (
        getattr(executor, "crosses_process_boundary", False)
        and not isinstance(space, ChunkedMetricSpace)
        and getattr(space, "_shared", None) is None
    )


def _gon_shard_task(
    space: MetricSpace, shard: np.ndarray, k: int, bound: bool = False, *, seed=None
) -> TaskOutput:
    """One reducer: GON over a machine view of ``shard``; global center ids.

    Top-level and argument-picklable (any executor backend); the machine
    view's private counter rides back in the :class:`TaskOutput`.  A
    contiguous shard of an out-of-core space stays out-of-core — the
    round-1 partition of a sharded dataset never gathers ``(n, d)``
    anywhere, driver or worker.  ``bound=True`` means ``space`` is
    already this machine's view (see :func:`_bind_views_eagerly`);
    ``seed`` is keyword-only so :class:`~repro.mapreduce.tasks.TaskSpec`
    can bind it per task.
    """
    view = space if bound else machine_view(space, shard)
    try:
        trace = gonzalez_trace(view, k, seed=seed)
    finally:
        if hasattr(view, "release"):
            view.release()
    return TaskOutput(shard[trace.centers], view.counter.evals)


def _resolve_partitioner(partitioner) -> Callable:
    if callable(partitioner):
        return partitioner
    try:
        return PARTITIONERS[partitioner]
    except KeyError:
        raise InvalidParameterError(
            f"unknown partitioner {partitioner!r}; choose from {sorted(PARTITIONERS)}"
        ) from None


def _partition_indices(
    fn: Callable, current: np.ndarray, n_machines: int, seed
) -> list[np.ndarray]:
    """Partition positions of ``current`` into machine shards (global ids)."""
    if fn is block_partition or fn is PARTITIONERS["block"]:
        parts = fn(len(current), n_machines)
    else:
        try:
            parts = fn(len(current), n_machines, seed)
        except TypeError:
            parts = fn(len(current), n_machines)
    return [current[p] for p in parts if len(p)]


def mrg(
    space: MetricSpace,
    k: int,
    m: int = 50,
    capacity: int | None = None,
    partitioner="block",
    seed: SeedLike = None,
    executor: Executor | None = None,
    max_rounds: int = 64,
    evaluate: bool = True,
) -> KCenterResult:
    """Run MRG on ``space``; return centers, objective and round accounting.

    Parameters
    ----------
    space:
        The input metric space (all n points).
    k:
        Number of centers.
    m:
        Number of simulated machines (paper experiments fix m = 50).
    capacity:
        Per-machine capacity in points.  ``None`` chooses the smallest
        capacity for which the two-round regime applies
        (:func:`repro.mapreduce.model.default_capacity`), matching the
        paper's experimental setup, which never hits the capacity wall.
        Pass a small value to force the multi-round regime.
    partitioner:
        ``"block"`` (the paper's arbitrary partition), ``"random"``,
        ``"hash"``, or a callable ``(n, m[, seed]) -> list[index arrays]``.
    seed:
        Master seed; child seeds drive each machine's GON seeding and the
        partitioner, so runs are reproducible and executor-independent.
    executor:
        Task backend (sequential by default — the paper's methodology).
    max_rounds:
        Safety bound on while-loop iterations.
    evaluate:
        When true (default), compute the covering radius over all points
        (reported as ``radius``; timed separately in ``eval_time``).
    """
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    n = space.n
    if n == 0:
        return KCenterResult(
            algorithm="MRG", centers=np.empty(0, dtype=np.intp), radius=0.0, k=k
        )
    c = default_capacity(n, k, m) if capacity is None else int(capacity)
    validate_cluster(n, k, m, c)
    part_fn = _resolve_partitioner(partitioner)

    cluster = SimulatedCluster(m, c, executor=executor, dist_counter=space.counter)
    wall = Timer()

    # Publish the in-memory coordinate block once per job when the rounds
    # run in a process pool: reducer tasks then pickle a shared-memory
    # handle instead of their shard's rows (repro.store.shm).  The segment
    # lives exactly as long as the job, error paths included.
    with wall, shared_space(space, cluster.executor) as task_space:
        current = np.arange(n, dtype=np.intp)
        reduction_rounds = 0
        shard_history: list[list[int]] = []
        while len(current) > c:
            reduction_rounds += 1
            if reduction_rounds > max_rounds:
                raise CapacityError(
                    f"MRG did not converge within {max_rounds} reduction rounds "
                    f"(k={k}, m={m}, c={c})"
                )
            # Machine count per round.  Capacity requires at least
            # ceil(|S|/c) machines; progress requires k * machines < |S|
            # (otherwise the union of per-machine centers does not shrink
            # — the paper's "we further assume that n/m > k: if this is
            # not the case, then we can reduce the number of machines").
            # Round 1 uses as many machines as useful (full parallelism);
            # later rounds use the minimal count of Eq. (1), m' = ceil(|S|/c).
            size = len(current)
            min_machines = math.ceil(size / c)
            max_useful = (size - 1) // k  # size > c >= k, so >= 1
            if reduction_rounds == 1:
                n_machines = min(m, max_useful)
            else:
                n_machines = min_machines
            if not (min_machines <= n_machines <= min(m, max_useful)):
                raise CapacityError(
                    f"MRG cannot make progress with |S|={size}, k={k}, m={m}, "
                    f"c={c}: need ceil(|S|/c)={min_machines} machines for "
                    f"capacity but at most {max_useful} for the center set to "
                    "shrink (the paper's convergence condition 2k < c fails)"
                )
            part_seed, *machine_seeds = spawn_seeds(seed, n_machines + 1)
            shards = _partition_indices(part_fn, current, n_machines, part_seed)
            shard_history.append([len(s) for s in shards])

            eager = _bind_views_eagerly(task_space, cluster.executor)
            tasks = [
                TaskSpec(
                    _gon_shard_task,
                    args=(
                        machine_view(task_space, shard) if eager else task_space,
                        shard,
                        k,
                        eager,
                    ),
                    seed=machine_seeds[i],
                    counting="output",
                )
                for i, shard in enumerate(shards)
            ]
            results = cluster.run_round(
                f"mrg.reduce[{reduction_rounds}]",
                tasks,
                task_sizes=[len(s) for s in shards],
            )
            current = np.concatenate(results)

        # Final round: GON on the surviving sample, on a single machine.
        final_seed = spawn_seeds(seed, 1)[0] if seed is not None else None

        eager = _bind_views_eagerly(task_space, cluster.executor)
        (centers,) = cluster.run_round(
            "mrg.final",
            [
                TaskSpec(
                    _gon_shard_task,
                    args=(
                        machine_view(task_space, current) if eager else task_space,
                        current,
                        k,
                        eager,
                    ),
                    seed=final_seed,
                    counting="output",
                )
            ],
            task_sizes=[len(current)],
        )

    eval_timer = Timer()
    radius = float("nan")
    if evaluate:
        with eval_timer:
            radius = covering_radius(space, centers)

    total_rounds = reduction_rounds + 1
    # With zero reduction rounds (the whole input fit on one machine) the
    # schedule degenerated to a single round of sequential GON: factor 2.
    factor = 2.0 if total_rounds == 1 else float(mrg_approximation_factor(total_rounds))
    return KCenterResult(
        algorithm="MRG",
        centers=centers,
        radius=radius if evaluate else 0.0,
        k=k,
        stats=cluster.stats,
        wall_time=wall.elapsed,
        eval_time=eval_timer.elapsed,
        approx_factor=factor,
        extra={
            "m": m,
            "capacity": c,
            "reduction_rounds": reduction_rounds,
            "total_rounds": total_rounds,
            "shard_sizes": shard_history,
            "sample_size_final": len(current),
        },
    )
