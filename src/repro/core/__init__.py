"""Core k-center algorithms (systems S3-S6, S9).

* :func:`~repro.core.gonzalez.gonzalez` — GON, Gonzalez's sequential
  greedy 2-approximation (farthest-first traversal);
* :func:`~repro.core.mrg.mrg` — MRG, the paper's multi-round MapReduce
  parallelisation of GON (4-approximation in the two-round regime,
  ``2(i+1)`` with ``i`` reduction rounds);
* :func:`~repro.core.eim.eim` — EIM, the generalised Ene-Im-Moseley
  iterative-sampling MapReduce algorithm with the paper's termination
  fixes and pivot-rank parameter ``phi``;
* :func:`~repro.core.hochbaum_shmoys.hochbaum_shmoys` — the alternative
  sequential 2-approximation the paper's future-work section points to;
* :func:`~repro.core.streaming.stream_kcenter` — STREAM, the one-pass
  streaming 8-approximation (Charikar et al. doubling algorithm), the
  sequential-pass counterpoint to the paper's sharded scaling route;
* :func:`~repro.core.exact.exact_kcenter` — brute-force oracle for tiny
  instances (testing);
* :mod:`~repro.core.bounds` — certified lower bounds on OPT;
* :mod:`~repro.core.theory` — Table 1 formulas, Eq. (1)-(2) arithmetic.
"""

from repro.core.assignment import assign, covering_radius
from repro.core.bounds import greedy_lower_bound, packing_lower_bound
from repro.core.eim import EIMParams, eim
from repro.core.exact import exact_kcenter
from repro.core.gonzalez import gonzalez, gonzalez_trace
from repro.core.hochbaum_shmoys import hochbaum_shmoys
from repro.core.mr_hochbaum_shmoys import mr_hochbaum_shmoys
from repro.core.mrg import mrg
from repro.core.result import KCenterResult
from repro.core.streaming import (
    DoublingTrace,
    doubling_trace,
    stream_kcenter,
    stream_kcenter_from_stream,
)

__all__ = [
    "KCenterResult",
    "gonzalez",
    "gonzalez_trace",
    "mrg",
    "eim",
    "EIMParams",
    "hochbaum_shmoys",
    "mr_hochbaum_shmoys",
    "stream_kcenter",
    "stream_kcenter_from_stream",
    "doubling_trace",
    "DoublingTrace",
    "exact_kcenter",
    "assign",
    "covering_radius",
    "greedy_lower_bound",
    "packing_lower_bound",
]
