"""Certified lower bounds on the optimal k-center value.

The paper's experiments report raw solution values; for *testing* the
approximation guarantees at sizes where the exact oracle is hopeless we
need a certified lower bound on OPT.  Two classic ones:

* **packing bound** — any ``k+1`` points that are pairwise ``> 2r`` apart
  certify ``OPT > r``: by pigeonhole two of them share a center, and the
  triangle inequality would force their separation to be at most ``2 OPT``.
* **greedy bound** — the farthest-first traversal run for ``k`` centers
  has covering radius ``r_k``; the ``k+1`` points (the k chosen centers
  plus the farthest remaining point) are pairwise ``>= r_k`` apart, so
  ``OPT >= r_k / 2``.  This is the bound that makes GON a
  2-approximation, turned around into a certificate.

Both bounds are deterministic given the traversal, so property tests built
on them never flake.
"""

from __future__ import annotations

import numpy as np

from repro.core.gonzalez import gonzalez_trace
from repro.errors import InvalidParameterError
from repro.metric.base import MetricSpace
from repro.utils.rng import SeedLike

__all__ = ["greedy_lower_bound", "packing_lower_bound"]


def greedy_lower_bound(
    space: MetricSpace, k: int, seed: SeedLike = 0, first_center: int | None = 0
) -> float:
    """``OPT >= r_k / 2`` where ``r_k`` is the greedy covering radius.

    Deterministic by default (seed vertex 0) so repeated calls certify the
    same value.
    """
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    if space.n <= k:
        return 0.0  # every point can be its own center
    trace = gonzalez_trace(space, k, seed=seed, first_center=first_center)
    return trace.radius / 2.0


def packing_lower_bound(space: MetricSpace, witness: np.ndarray) -> float:
    """Lower bound from an explicit packing witness of ``k+1`` points.

    Given ``k+1`` point indices, returns ``min pairwise distance / 2``; any
    k-center solution must cover two of the witnesses with one center, so
    ``OPT >= min_pairwise / 2``.  The caller chooses ``k`` implicitly as
    ``len(witness) - 1``.
    """
    witness = np.asarray(witness, dtype=np.intp)
    if witness.size < 2:
        raise InvalidParameterError("a packing witness needs at least 2 points")
    if len(np.unique(witness)) != len(witness):
        raise InvalidParameterError("packing witness contains duplicate points")
    d = space.cross(witness, witness)
    iu = np.triu_indices(len(witness), k=1)
    return float(d[iu].min()) / 2.0
