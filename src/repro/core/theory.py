"""Theoretical results of the paper as checkable code (system S9).

Covers:

* **Table 1** — approximation factor, round count and asymptotic runtime
  of GON, MRG and EIM (:func:`table1_rows`,
  :func:`gon_cost` / :func:`mrg_cost` / :func:`eim_cost`);
* the predicted **EIM/MRG slowdown factor** ``n^eps (1-n^-eps)^-2 log n``
  (Section 5: "Comparing the dominant round of EIM to MRG, we expect EIM
  to be slower by a factor of ...");
* **Section 6's phi feasibility bound**, Inequality (2):
  the probabilistic 10-approximation survives when feasible values of the
  Chernoff parameters exist, i.e. when::

      (phi + x + sqrt(2 x phi + x^2)) / b  <=  phi + x/2 - sqrt(2 x phi + x^2 / 4)

  with ``b <= 5`` and ``x = 1 + gamma``.  :func:`phi_feasible` evaluates
  the inequality and :func:`phi_feasibility_threshold` solves for the
  smallest feasible ``phi`` by bisection.

  .. note::
     The paper quotes the threshold as ``phi > 5.15`` for ``x >= 1``.
     Evaluating Inequality (2) exactly as printed gives a slightly smaller
     threshold (~3.9 at ``x = 1``, ``b = 5``); the constant 5.15 appears
     to fold in additional slack from the surrounding analysis.  We expose
     both: :data:`PHI_PAPER_THRESHOLD` (the quoted 5.15, used wherever the
     reproduction mirrors the paper's narrative) and the exact solver (for
     the theory tests, which check monotonicity and the verdicts on the
     benchmarked grid phi in {1, 4, 6, 8}).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import InvalidParameterError

__all__ = [
    "PHI_PAPER_THRESHOLD",
    "gon_cost",
    "mrg_cost",
    "eim_cost",
    "eim_expected_slowdown",
    "phi_feasible",
    "phi_feasibility_threshold",
    "Table1Row",
    "table1_rows",
]

#: The phi threshold the paper quotes for the 10-approximation to hold
#: with sufficient probability (Section 6: "this implies that phi > 5.15").
PHI_PAPER_THRESHOLD = 5.15


# --------------------------------------------------------------------- #
# Table 1: asymptotic runtimes (unit constants)
# --------------------------------------------------------------------- #
def gon_cost(n: int, k: int) -> float:
    """GON: Theta(k n) distance evaluations."""
    _check_nk(n, k)
    return float(k) * n


def mrg_cost(n: int, k: int, m: int) -> float:
    """MRG (two rounds): O(k n / m + k^2 m).

    First round: m concurrent GONs on n/m points each -> k n / m per
    machine.  Second round: GON on the k m collected centers -> k^2 m.
    """
    _check_nk(n, k)
    if m <= 0:
        raise InvalidParameterError(f"m must be positive, got {m}")
    return k * n / m + float(k) * k * m


def eim_cost(n: int, k: int, m: int, eps: float = 0.1) -> float:
    """EIM's dominant Round 3: O(k n^(1+eps) log n / (m (1-n^-eps)^2)).

    The paper's Section 5 shows Round 3 (removal) dominates in practice;
    the three other rounds are asymptotically smaller whenever k < n.
    """
    _check_nk(n, k)
    if m <= 0:
        raise InvalidParameterError(f"m must be positive, got {m}")
    if not 0 < eps < 1:
        raise InvalidParameterError(f"eps must be in (0, 1), got {eps}")
    if n < 2:
        return 0.0
    damp = 1.0 - n**-eps
    return k * n ** (1.0 + eps) * math.log(n) / (m * damp * damp)


def eim_expected_slowdown(n: int, eps: float = 0.1) -> float:
    """Predicted EIM-over-MRG runtime ratio: n^eps (1-n^-eps)^-2 log n."""
    if n < 2:
        return 1.0
    if not 0 < eps < 1:
        raise InvalidParameterError(f"eps must be in (0, 1), got {eps}")
    damp = 1.0 - n**-eps
    return n**eps * math.log(n) / (damp * damp)


def _check_nk(n: int, k: int) -> None:
    if n < 0 or k < 0:
        raise InvalidParameterError(f"n and k must be >= 0 (n={n}, k={k})")


@dataclass(frozen=True)
class Table1Row:
    """One row of the paper's Table 1."""

    algorithm: str
    approx_factor: str
    rounds: str
    runtime: str


def table1_rows() -> list[Table1Row]:
    """The paper's Table 1, verbatim."""
    return [
        Table1Row("GON [9]", "2", "n/a", "k*n"),
        Table1Row("MRG", "4", "2", "k*n/m + k^2*m"),
        Table1Row(
            "EIM [8]",
            "10",
            "O(1/eps)",
            "k*n^(1+eps)*log(n) / (m*(1-n^-eps)^2)",
        ),
    ]


# --------------------------------------------------------------------- #
# Section 6: the phi feasibility bound, Inequality (2)
# --------------------------------------------------------------------- #
def phi_feasible(phi: float, gamma: float = 0.0, b: float = 5.0) -> bool:
    """Evaluate Inequality (2) for pivot parameter ``phi``.

    Feasible means values of the Chernoff parameters a, c, d exist so the
    iteration-shrinkage bounds of Lemma 5 hold with probability
    ``1 - 2 n^-(1+gamma)``, preserving the 10-approximation w.s.p.
    """
    if phi <= 0:
        raise InvalidParameterError(f"phi must be positive, got {phi}")
    if not 0 < b <= 5.0:
        raise InvalidParameterError(f"b must be in (0, 5] (paper requires b <= 5), got {b}")
    if gamma < 0:
        raise InvalidParameterError(f"gamma must be >= 0, got {gamma}")
    x = 1.0 + gamma
    lhs = (phi + x + math.sqrt(2 * x * phi + x * x)) / b
    rhs = phi + x / 2.0 - math.sqrt(2 * x * phi + x * x / 4.0)
    return lhs <= rhs


def phi_feasibility_threshold(
    gamma: float = 0.0, b: float = 5.0, tol: float = 1e-9
) -> float:
    """Smallest feasible ``phi`` under Inequality (2), by bisection.

    Both sides are continuous and the inequality is monotone in ``phi``
    for the relevant range (the RHS grows like ``phi`` while the LHS grows
    like ``phi / b`` with ``b >= 1``), so bisection on a bracket is exact
    to tolerance.
    """
    lo, hi = 1e-9, 1.0
    while not phi_feasible(hi, gamma=gamma, b=b):
        hi *= 2.0
        if hi > 1e9:
            raise InvalidParameterError(
                f"no feasible phi below 1e9 for gamma={gamma}, b={b}"
            )
    while hi - lo > tol:
        mid = (lo + hi) / 2.0
        if phi_feasible(mid, gamma=gamma, b=b):
            hi = mid
        else:
            lo = mid
    return hi
