"""STREAM — one-pass streaming k-center via the doubling algorithm.

The paper's MapReduce algorithms scale by *sharding* the input; the other
classic route is a *sequential pass* with bounded memory.  This module
implements the doubling algorithm of Charikar, Chekuri, Feder & Motwani
[CCFM 1997/2004], the standard one-pass 8-approximation: it keeps at most
``k`` centers and a growing threshold ``r`` that is always a certified
lower bound on OPT, and touches each point exactly once.

Invariants maintained while streaming (with current threshold ``r``):

1. the kept centers are pairwise more than ``4r`` apart;
2. every point seen so far is within ``8r`` of some kept center;
3. ``r < OPT`` whenever ``r > 0``.

A new point further than ``8r`` from all centers becomes a center (which
preserves 1 and 2).  When that makes ``k + 1`` centers, invariant 1 says
they are pairwise ``> 4r``, so by pigeonhole two of them share an optimal
center and ``OPT > 2r``; the algorithm *doubles* (``r <- 2r``, which keeps
invariant 3) and greedily drops every center within ``4r`` of an earlier
kept one (restoring 1; each dropped center is within ``4r`` of a keeper,
so coverage degrades from ``8r_old = 4r`` to at most ``8r`` — restoring
2).  At the end of the stream the covering radius is at most
``8r < 8 OPT``.

The first doubling bootstraps ``r`` from zero: until then the "centers"
are just the first ``k + 1`` distinct points, and ``r`` is initialised to
half their minimum pairwise distance (a valid lower bound by the same
pigeonhole argument).

The pass is order-sensitive — different arrival orders give different (all
certified) solutions.  ``shuffle=True`` randomises the order with ``seed``,
which is the knob the order-sensitivity tests exercise; the default is the
space's index order, making the solver fully deterministic.  Points are
consumed in vectorised batches of ``batch_size``: a batch is screened
against the current centers in one fused kernel call and only the rare
survivors take the scalar path, so the pass stays O(kn) distance
evaluations with O(k) state.  The *solution* — centers, threshold,
doubling count, and hence the radius — is identical for every
``batch_size``, because covered points never mutate the center state.
The incremental coverage certificate (:attr:`DoublingTrace.cover_bound`)
is always a valid upper bound, but its *tightness* can vary with batch
granularity: coverage distances are recorded against the batch-start
snapshot, which may be slightly stale for points whose batch also
promoted new centers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.assignment import covering_radius
from repro.core.result import KCenterResult
from repro.errors import InvalidParameterError
from repro.metric.base import MetricSpace
from repro.utils.rng import SeedLike, as_generator
from repro.utils.timing import Timer

__all__ = [
    "DoublingTrace",
    "doubling_trace",
    "stream_kcenter",
    "stream_kcenter_from_stream",
]


@dataclass
class DoublingTrace:
    """Raw outcome of one streaming pass.

    Attributes
    ----------
    centers:
        Indices (into the space) of the at most ``k`` kept centers, in the
        order they were first promoted.
    threshold:
        The final doubling threshold ``r``; once positive it is a
        *certified lower bound* on OPT (``OPT > r``).
    cover_bound:
        Certified upper bound on the covering radius of the kept centers,
        maintained incrementally during the pass (coverage distances seen,
        plus the merge slack accumulated at each doubling).  Always at
        most ``8 * threshold`` — the 8-approximation certificate — and
        usually much tighter.  Unlike the centers, this value may vary
        slightly with ``batch_size`` (screen distances are taken against
        the batch-start snapshot); every variant is a valid bound.
    doublings:
        Number of threshold doublings (including the bootstrap that sets
        ``r`` from zero).
    n_seen:
        Points consumed (the whole space: this is a single full pass).
    """

    centers: np.ndarray
    threshold: float
    cover_bound: float
    doublings: int
    n_seen: int


def _merge_centers(
    space: MetricSpace,
    centers: list[int],
    k: int,
    r: float,
    bound: float,
) -> tuple[float, float, list[int], int]:
    """Double ``r`` and thin ``centers`` until at most ``k`` remain.

    Returns the new ``(r, bound, centers, doublings)``.  Keeps the oldest
    center of every cluster of nearby centers, so the outcome depends only
    on promotion order.
    """
    doublings = 0
    while len(centers) > k:
        c_arr = np.asarray(centers, dtype=np.intp)
        dmat = space.cross(c_arr, c_arr)
        if r == 0.0:
            # Bootstrap: k+1 distinct points; half the minimum pairwise
            # distance lower-bounds OPT (pigeonhole + triangle inequality).
            off_diagonal = dmat[~np.eye(len(c_arr), dtype=bool)]
            r = float(off_diagonal.min()) / 2.0
        else:
            r = 2.0 * r
        doublings += 1
        keep: list[int] = []
        merge_dist = 0.0
        for i in range(len(c_arr)):
            nearest = float(dmat[i, keep].min()) if keep else np.inf
            if nearest > 4.0 * r:
                keep.append(i)
            else:
                merge_dist = max(merge_dist, nearest)
        if len(keep) < len(c_arr):
            # Points covered by a dropped center are now covered by its
            # keeper, at most merge_dist (<= 4r) further away.
            bound += merge_dist
        centers = [int(c_arr[i]) for i in keep]
    return r, bound, centers, doublings


def doubling_trace(
    space: MetricSpace,
    k: int,
    seed: SeedLike = None,
    shuffle: bool = False,
    batch_size: int = 2048,
) -> DoublingTrace:
    """Run the one-pass doubling algorithm; return the full trace.

    Parameters
    ----------
    space:
        Metric space whose points arrive as the stream.
    k:
        Number of centers to maintain (positive).
    seed:
        RNG for the arrival order when ``shuffle`` is set (unused
        otherwise — the default pass is deterministic).
    shuffle:
        Stream the points in a seeded random order instead of index
        order.  The algorithm is order-sensitive, so this is the knob for
        studying (and testing) arrival-order effects.
    batch_size:
        Vectorisation granularity of the coverage screen; has no effect
        on the computed centers (and hence the radius), only on kernel
        call sizes and the tightness of :attr:`DoublingTrace.cover_bound`.
    """
    if k <= 0:
        raise InvalidParameterError(f"k must be positive, got {k}")
    if batch_size <= 0:
        raise InvalidParameterError(f"batch_size must be positive, got {batch_size}")
    n = space.n
    if n == 0:
        return DoublingTrace(
            centers=np.empty(0, dtype=np.intp),
            threshold=0.0,
            cover_bound=0.0,
            doublings=0,
            n_seen=0,
        )
    if shuffle:
        order = as_generator(seed).permutation(n).astype(np.intp)
    else:
        order = np.arange(n, dtype=np.intp)

    centers: list[int] = [int(order[0])]
    r = 0.0
    bound = 0.0
    doublings = 0
    for start in range(1, n, batch_size):
        batch = order[start : start + batch_size]
        # Screen the whole batch against the centers as they stood at the
        # batch boundary.  A point within 8r of that snapshot stays within
        # 8r of the final set (centers only gain coverage; r only grows),
        # so only the screen's survivors need the exact scalar path.
        snapshot = np.asarray(centers, dtype=np.intp)
        dists = space.min_dists(batch, snapshot)
        covered = dists <= 8.0 * r
        if covered.any():
            bound = max(bound, float(dists[covered].max()))
        for p in batch[~covered]:
            current = np.asarray(centers, dtype=np.intp)
            d_p = float(space.min_dists(np.asarray([p], dtype=np.intp), current)[0])
            if d_p <= 8.0 * r:
                bound = max(bound, d_p)
                continue
            centers.append(int(p))
            if len(centers) > k:
                r, bound, centers, merges = _merge_centers(space, centers, k, r, bound)
                doublings += merges
    return DoublingTrace(
        centers=np.asarray(centers, dtype=np.intp),
        threshold=r,
        cover_bound=bound,
        doublings=doublings,
        n_seen=n,
    )


def stream_kcenter(
    space: MetricSpace,
    k: int,
    seed: SeedLike = None,
    shuffle: bool = False,
    batch_size: int = 2048,
    evaluate: bool = True,
) -> KCenterResult:
    """STREAM: one-pass streaming 8-approximation (doubling algorithm).

    Parameters are those of :func:`doubling_trace` plus ``evaluate``: when
    true (default) the exact covering radius is computed over the full
    space after the pass — a *second* pass, reported in ``eval_time`` and
    not charged to the algorithm, mirroring the MapReduce solvers'
    convention.  With ``evaluate=False`` the result stays strictly
    one-pass: ``radius`` is 0.0 and ``extra["radius_bound"]`` carries the
    certified upper bound from the trace.

    Returns a :class:`KCenterResult` with ``approx_factor`` 8;
    ``extra["threshold"]`` is a certified lower bound on OPT (once any
    doubling has occurred), so every run ships its own quality
    certificate: ``threshold < OPT <= radius <= radius_bound``.
    """
    timer = Timer()
    with timer:
        trace = doubling_trace(
            space, k, seed=seed, shuffle=shuffle, batch_size=batch_size
        )
    eval_timer = Timer()
    radius = 0.0
    if evaluate and trace.centers.size:
        with eval_timer:
            radius = covering_radius(space, trace.centers)
    return KCenterResult(
        algorithm="STREAM",
        centers=trace.centers,
        radius=radius,
        k=k,
        wall_time=timer.elapsed,
        eval_time=eval_timer.elapsed,
        approx_factor=8.0,
        extra={
            "threshold": trace.threshold,
            "radius_bound": trace.cover_bound,
            "doublings": trace.doublings,
            "batch_size": batch_size,
            "shuffle": shuffle,
        },
    )


def stream_kcenter_from_stream(
    data,
    k: int,
    chunk_size: int | None = None,
    **kwargs,
) -> KCenterResult:
    """Out-of-core STREAM: run the doubling pass directly over chunked data.

    ``data`` is anything :func:`repro.store.as_stream` accepts — a
    :class:`~repro.store.stream.PointStream`, a ``.npy`` path (memmapped,
    one chunk resident at a time), or an in-memory array.  The stream is
    wrapped in a :class:`~repro.store.space.ChunkedMetricSpace`, so the
    whole solve — including the second evaluation pass — allocates no
    ``(n, d)`` or ``(n, n)`` array and returns **bit-identical** centers,
    radius and distance-evaluation counts to :func:`stream_kcenter` over
    the materialised points.  Remaining ``kwargs`` are those of
    :func:`stream_kcenter`.

    The one-pass/O(k)-state structure of the doubling algorithm is what
    makes this pairing natural: the pass consumes each chunk once, in
    order, so disk (or generator) streaming is free.  ``shuffle=True``
    still works but defeats the sequential access pattern (every batch
    gathers scattered rows); prefer pre-shuffled files for arrival-order
    studies at scale.
    """
    # Local import: repro.store layers *on top of* the metric substrate;
    # importing it lazily keeps repro.core free of an import-time cycle if
    # store ever grows core-level dependencies.
    from repro.store import ChunkedMetricSpace, as_stream

    space = ChunkedMetricSpace(as_stream(data, chunk_size=chunk_size))
    return stream_kcenter(space, k, **kwargs)
