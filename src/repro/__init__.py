"""repro — parallel k-center clustering, reproducing McClintock & Wirth (ICPP 2016).

A production-quality implementation of the paper *Efficient Parallel
Algorithms for k-Center Clustering*: Gonzalez's sequential greedy
2-approximation (**GON**), its multi-round MapReduce parallelisation
(**MRG**, 4-approximation in two rounds), and the generalised
Ene-Im-Moseley iterative-sampling scheme (**EIM**, probabilistic
10-approximation with the paper's pivot-rank parameter ``phi``) — all on a
simulated-MapReduce substrate that reproduces the paper's timing
methodology.

Quickstart
----------
>>> import numpy as np
>>> from repro import EuclideanSpace, gonzalez, mrg, eim
>>> points = np.random.default_rng(0).normal(size=(10_000, 3))
>>> space = EuclideanSpace(points)
>>> result = mrg(space, k=10, m=50, seed=0)
>>> result.radius            # the k-center objective value  # doctest: +SKIP
>>> result.stats.parallel_time  # simulated parallel runtime  # doctest: +SKIP

See README.md for the architecture overview, DESIGN.md for the system
inventory and per-experiment index, and EXPERIMENTS.md for paper-vs-measured
results.
"""

from repro.core import (
    EIMParams,
    KCenterResult,
    assign,
    covering_radius,
    eim,
    exact_kcenter,
    gonzalez,
    gonzalez_trace,
    greedy_lower_bound,
    hochbaum_shmoys,
    mr_hochbaum_shmoys,
    mrg,
    packing_lower_bound,
)
from repro.data import Dataset, gau, kddcup99, make_dataset, poker_hand, unb, unif
from repro.errors import (
    CapacityError,
    ConvergenceError,
    DatasetError,
    ExperimentError,
    InvalidParameterError,
    MetricError,
    ReproError,
)
from repro.mapreduce import SimulatedCluster
from repro.metric import EuclideanSpace, MetricSpace, MinkowskiSpace, PrecomputedSpace

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # algorithms
    "gonzalez",
    "gonzalez_trace",
    "mrg",
    "eim",
    "EIMParams",
    "hochbaum_shmoys",
    "mr_hochbaum_shmoys",
    "exact_kcenter",
    "assign",
    "covering_radius",
    "greedy_lower_bound",
    "packing_lower_bound",
    "KCenterResult",
    # spaces
    "MetricSpace",
    "EuclideanSpace",
    "MinkowskiSpace",
    "PrecomputedSpace",
    # substrate
    "SimulatedCluster",
    # data
    "Dataset",
    "make_dataset",
    "unif",
    "gau",
    "unb",
    "poker_hand",
    "kddcup99",
    # errors
    "ReproError",
    "InvalidParameterError",
    "CapacityError",
    "MetricError",
    "DatasetError",
    "ConvergenceError",
    "ExperimentError",
]
