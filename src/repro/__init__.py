"""repro — parallel k-center clustering, reproducing McClintock & Wirth (ICPP 2016).

A production-quality implementation of the paper *Efficient Parallel
Algorithms for k-Center Clustering*: Gonzalez's sequential greedy
2-approximation (**GON**), its multi-round MapReduce parallelisation
(**MRG**, 4-approximation in two rounds), and the generalised
Ene-Im-Moseley iterative-sampling scheme (**EIM**, probabilistic
10-approximation with the paper's pivot-rank parameter ``phi``) — all on a
simulated-MapReduce substrate that reproduces the paper's timing
methodology.

Quickstart
----------
Every algorithm runs through the unified :func:`repro.solve` facade
(``algorithm`` is any name or alias from :func:`repro.list_solvers`):

>>> import numpy as np
>>> import repro
>>> points = np.random.default_rng(0).normal(size=(10_000, 3))
>>> space = repro.EuclideanSpace(points)
>>> result = repro.solve(space, k=10, algorithm="mrg", m=50, seed=0)
>>> result.algorithm, result.n_centers
('MRG', 10)
>>> result.radius > 0        # the k-center objective value
True
>>> batch = repro.solve_many(space, 10, algorithms=("gon", "eim"), seeds=(0,))
>>> sorted(key.algorithm for key in batch)
['eim', 'gon']
>>> repro.solve(space, k=10, algorithm="stream", seed=0).algorithm
'STREAM'

The per-algorithm entry points (:func:`gonzalez`, :func:`mrg`,
:func:`eim`, ...) remain available for direct calls with identical
results.  See README.md for the architecture overview and the registry
table, and EXPERIMENTS.md for paper-vs-measured results.
"""

from repro.core import (
    EIMParams,
    KCenterResult,
    assign,
    covering_radius,
    eim,
    exact_kcenter,
    gonzalez,
    gonzalez_trace,
    greedy_lower_bound,
    hochbaum_shmoys,
    mr_hochbaum_shmoys,
    mrg,
    packing_lower_bound,
    stream_kcenter,
    stream_kcenter_from_stream,
)
from repro.data import (
    Dataset,
    gau,
    kddcup99,
    make_dataset,
    make_sharded,
    make_stream,
    poker_hand,
    unb,
    unif,
)
from repro.errors import (
    CapacityError,
    ConvergenceError,
    DatasetError,
    ExperimentError,
    InvalidParameterError,
    MetricError,
    ReproError,
)
from repro.mapreduce import SimulatedCluster
from repro.metric import EuclideanSpace, MetricSpace, MinkowskiSpace, PrecomputedSpace
from repro.store import (
    ArrayStream,
    ChunkedMetricSpace,
    DistanceCache,
    GeneratorStream,
    MemmapStream,
    PointStream,
    as_space,
    as_stream,
)
from repro.solvers import (
    BatchKey,
    BatchResults,
    SolveConfig,
    SolverSpec,
    get_solver,
    list_solvers,
    register_solver,
    solve,
    solve_many,
    solver_names,
)

__version__ = "1.2.0"

__all__ = [
    "__version__",
    # solver facade & registry
    "solve",
    "solve_many",
    "BatchKey",
    "BatchResults",
    "SolveConfig",
    "SolverSpec",
    "register_solver",
    "get_solver",
    "list_solvers",
    "solver_names",
    # algorithms
    "gonzalez",
    "gonzalez_trace",
    "mrg",
    "eim",
    "EIMParams",
    "hochbaum_shmoys",
    "mr_hochbaum_shmoys",
    "stream_kcenter",
    "stream_kcenter_from_stream",
    "exact_kcenter",
    "assign",
    "covering_radius",
    "greedy_lower_bound",
    "packing_lower_bound",
    "KCenterResult",
    # spaces
    "MetricSpace",
    "EuclideanSpace",
    "MinkowskiSpace",
    "PrecomputedSpace",
    # store (out-of-core data layer)
    "PointStream",
    "ArrayStream",
    "MemmapStream",
    "GeneratorStream",
    "ChunkedMetricSpace",
    "DistanceCache",
    "as_stream",
    "as_space",
    # substrate
    "SimulatedCluster",
    # data
    "Dataset",
    "make_dataset",
    "make_sharded",
    "make_stream",
    "unif",
    "gau",
    "unb",
    "poker_hand",
    "kddcup99",
    # errors
    "ReproError",
    "InvalidParameterError",
    "CapacityError",
    "MetricError",
    "DatasetError",
    "ConvergenceError",
    "ExperimentError",
]
