"""Observability: tracing, metrics, and structured logging.

The package has three dependency-free modules, all designed around one
rule — **zero cost when disabled, bit-parity-neutral when enabled**:

* :mod:`repro.obs.trace` — contextvar-propagated spans
  (``solve`` -> ``round`` -> ``task`` -> kernel ``block``) with
  monotonic timestamps.  Spans cross process boundaries by stamping a
  picklable :class:`~repro.obs.trace.TaskTraceContext` into the task
  partials and folding the worker-side spans back through
  :class:`~repro.mapreduce.tasks.TaskOutput`; a finished trace exports
  as Chrome trace-event JSON (``chrome://tracing`` / Perfetto).
* :mod:`repro.obs.metrics` — a registry of Counters / Gauges /
  Histograms with Prometheus text-format exposition.  The process-wide
  default registry starts *disabled*; the serve layer enables it at
  startup, libraries and tests opt in via
  :func:`repro.obs.metrics.capture`.
* :mod:`repro.obs.logs` — structured JSON logging with
  ``run_id`` / ``request_id`` correlation carried by a contextvar
  (:func:`repro.obs.logs.bind`).  The ``repro`` logger tree carries a
  ``NullHandler`` by default, so nothing is emitted until
  :func:`repro.obs.logs.configure` is called.

Instrumented code emits **at commit points only** — where accounting
already folds into the driver (``run_round`` unwrapping, the solver
facade, the serve scheduler) — so retried, speculative and duplicated
attempts can never double-count: their results are discarded by the
resilient executor's dedup before any fold happens.  The losing attempts
remain *visible* as driver-side spans annotated ``abandoned``.
"""

from repro.obs import logs, metrics, trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

__all__ = ["trace", "metrics", "logs", "Tracer", "MetricsRegistry"]
