"""Structured JSON logging with run/request correlation.

Built on the stdlib ``logging`` tree under the ``"repro"`` root logger,
which carries a ``NullHandler`` — nothing is emitted until a process
opts in with :func:`configure` (the ``repro serve --log-json`` flag, or
any embedding application attaching its own handler).

Correlation travels in a contextvar, not in call signatures: code wraps
work in ``with logs.bind(request_id=..., run_id=...)`` and every log
record emitted inside the block — by any module — carries those fields.
Binding nests (inner binds add to, and shadow, outer ones) and is
async-safe; note that contextvars do **not** cross thread-pool
boundaries, so dispatch sites re-bind on the worker thread (see
``BatchScheduler._solve_group``).

One JSON object per line::

    {"ts": 1723024968.123456, "level": "info", "logger": "repro.serve",
     "msg": "request answered", "request_id": "r17", "queue_ms": 0.4}

Extra structured fields go in ``extra={"fields": {...}}`` on the log
call; exceptions land under ``"exc"``.
"""

from __future__ import annotations

import json
import logging
import sys
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Any, IO

__all__ = ["bind", "context", "get_logger", "configure", "JsonFormatter"]

_CONTEXT: ContextVar[tuple[tuple[str, Any], ...]] = ContextVar(
    "repro_obs_log_context", default=()
)

# Imported is silent: the repro tree emits nowhere until configured.
logging.getLogger("repro").addHandler(logging.NullHandler())


def context() -> dict[str, Any]:
    """The correlation fields bound in this context (later binds win)."""
    return dict(_CONTEXT.get())


@contextmanager
def bind(**fields: Any):
    """Attach correlation fields to every log record in the block."""
    token = _CONTEXT.set(_CONTEXT.get() + tuple(fields.items()))
    try:
        yield
    finally:
        _CONTEXT.reset(token)


class JsonFormatter(logging.Formatter):
    """One compact JSON object per record, correlation fields included."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        payload.update(context())
        fields = getattr(record, "fields", None)
        if isinstance(fields, dict):
            payload.update(fields)
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, separators=(",", ":"), default=str)


def get_logger(name: str = "repro") -> logging.Logger:
    """A logger in the ``repro`` tree (pass dotted suffixes freely)."""
    if name != "repro" and not name.startswith("repro."):
        name = f"repro.{name}"
    return logging.getLogger(name)


def configure(
    level: int | str = logging.INFO,
    stream: IO[str] | None = None,
    logger: str = "repro",
) -> logging.Handler:
    """Attach a JSON-lines handler to the ``repro`` tree; returns it.

    Idempotent enough for a CLI: call once per process.  Tests pass a
    ``StringIO`` stream and remove the returned handler when done.
    """
    root = logging.getLogger(logger)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter())
    root.addHandler(handler)
    root.setLevel(level)
    return handler
