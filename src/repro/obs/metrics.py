"""A dependency-free metrics registry with Prometheus text exposition.

:class:`MetricsRegistry` holds named Counters, Gauges and Histograms,
optionally labelled, and renders them in the Prometheus text format
(version 0.0.4) — the ``repro serve`` ``/metrics`` scrape surface.

Design rules:

* **Disabled is free.**  The process-wide default registry
  (:data:`REGISTRY`) starts disabled; every mutation
  (``inc``/``set``/``observe``) checks one boolean and returns.  The
  serve layer enables it at startup; tests and benches opt in through
  :func:`capture`.
* **Get-or-create by name.**  Call sites say
  ``metrics.counter("repro_task_retries_total", "...").inc()`` — the
  first call registers, later calls return the same metric.  A name
  re-registered with a different kind or label set raises: a metric's
  identity must be stable for scrapers.
* **Commit-point emission.**  Instrumented code increments where
  accounting folds into the driver (round unwrapping, the facade, the
  scheduler), never inside tasks — so retried / speculative attempts
  whose results are discarded can never double-count, and worker
  processes (whose registry is a separate, disabled copy) lose nothing
  that matters.

The metric *catalog* — which series exist and what they mean — is
documented in ``docs/architecture.md`` (Observability section).
"""

from __future__ import annotations

import bisect
import threading
from contextlib import contextmanager
from typing import Iterable, Mapping

from repro.errors import InvalidParameterError

__all__ = [
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "render",
    "capture",
    "CONTENT_TYPE",
    "DEFAULT_BUCKETS",
]

#: The scrape response content type (Prometheus text format).
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Default histogram buckets, tuned for solve/queue latencies (seconds).
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _escape_help(value: str) -> str:
    return str(value).replace("\\", "\\\\").replace("\n", "\\n")


def _fmt(value: float) -> str:
    # Prometheus accepts Go-style floats; repr() round-trips exactly.
    if value == float("inf"):
        return "+Inf"
    return repr(float(value))


class _Child:
    """One labelled series of a metric; exposes that metric's write op."""

    __slots__ = ("_metric", "_key")

    def __init__(self, metric: "_Metric", key: tuple):
        self._metric = metric
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        self._metric._inc(self._key, amount)

    def set(self, value: float) -> None:
        self._metric._set(self._key, value)

    def observe(self, value: float) -> None:
        self._metric._observe(self._key, value)


class _Metric:
    kind = "untyped"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        labelnames: tuple[str, ...],
    ):
        self.registry = registry
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self._series: dict[tuple, object] = {}

    # -- labelling ------------------------------------------------------ #
    def labels(self, **labelvalues: object) -> _Child:
        if tuple(sorted(labelvalues)) != tuple(sorted(self.labelnames)):
            raise InvalidParameterError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        return _Child(self, key)

    def _check_unlabelled(self) -> None:
        if self.labelnames:
            raise InvalidParameterError(
                f"metric {self.name!r} is labelled {self.labelnames}; "
                "use .labels(...)"
            )

    # -- write ops (subclasses pick theirs) ----------------------------- #
    def _inc(self, key: tuple, amount: float) -> None:
        raise InvalidParameterError(f"{self.kind} {self.name!r} has no inc()")

    def _set(self, key: tuple, value: float) -> None:
        raise InvalidParameterError(f"{self.kind} {self.name!r} has no set()")

    def _observe(self, key: tuple, value: float) -> None:
        raise InvalidParameterError(
            f"{self.kind} {self.name!r} has no observe()"
        )

    # -- read (tests / stats bridging) ---------------------------------- #
    def value(self, **labelvalues: object) -> float:
        key = (
            tuple(str(labelvalues[name]) for name in self.labelnames)
            if labelvalues or self.labelnames
            else ()
        )
        with self.registry._lock:
            return float(self._series.get(key, 0.0))  # type: ignore[arg-type]

    # -- render --------------------------------------------------------- #
    def _label_str(self, key: tuple, extra: str = "") -> str:
        parts = [
            f'{name}="{_escape_label(value)}"'
            for name, value in zip(self.labelnames, key)
        ]
        if extra:
            parts.append(extra)
        return "{" + ",".join(parts) + "}" if parts else ""

    def render(self) -> list[str]:
        lines = [
            f"# HELP {self.name} {_escape_help(self.help)}",
            f"# TYPE {self.name} {self.kind}",
        ]
        with self.registry._lock:
            series = dict(self._series)
        for key in sorted(series):
            lines.append(
                f"{self.name}{self._label_str(key)} {_fmt(series[key])}"
            )
        return lines


class Counter(_Metric):
    kind = "counter"

    def inc(self, amount: float = 1.0) -> None:
        self._check_unlabelled()
        self._inc((), amount)

    def _inc(self, key: tuple, amount: float) -> None:
        if not self.registry.enabled:
            return
        if amount < 0:
            raise InvalidParameterError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        with self.registry._lock:
            self._series[key] = self._series.get(key, 0.0) + amount


class Gauge(_Metric):
    kind = "gauge"

    def set(self, value: float) -> None:
        self._check_unlabelled()
        self._set((), value)

    def inc(self, amount: float = 1.0) -> None:
        self._check_unlabelled()
        self._inc((), amount)

    def _set(self, key: tuple, value: float) -> None:
        if not self.registry.enabled:
            return
        with self.registry._lock:
            self._series[key] = float(value)

    def _inc(self, key: tuple, amount: float) -> None:
        if not self.registry.enabled:
            return
        with self.registry._lock:
            self._series[key] = self._series.get(key, 0.0) + amount


class Histogram(_Metric):
    kind = "histogram"

    def __init__(self, registry, name, help, labelnames, buckets):
        super().__init__(registry, name, help, labelnames)
        clean = tuple(sorted(float(b) for b in buckets))
        if not clean:
            raise InvalidParameterError(
                f"histogram {self.name!r} needs at least one bucket"
            )
        self.buckets = clean

    def observe(self, value: float) -> None:
        self._check_unlabelled()
        self._observe((), value)

    def _observe(self, key: tuple, value: float) -> None:
        if not self.registry.enabled:
            return
        value = float(value)
        with self.registry._lock:
            state = self._series.get(key)
            if state is None:
                state = [[0] * (len(self.buckets) + 1), 0.0, 0]
                self._series[key] = state
            counts, _, _ = state
            counts[bisect.bisect_left(self.buckets, value)] += 1
            state[1] += value
            state[2] += 1

    def value(self, **labelvalues: object) -> float:
        """The observation *sum* (count is in :meth:`counts`)."""
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self.registry._lock:
            state = self._series.get(key)
            return float(state[1]) if state is not None else 0.0

    def counts(self, **labelvalues: object) -> int:
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        with self.registry._lock:
            state = self._series.get(key)
            return int(state[2]) if state is not None else 0

    def render(self) -> list[str]:
        lines = [
            f"# HELP {self.name} {_escape_help(self.help)}",
            f"# TYPE {self.name} {self.kind}",
        ]
        with self.registry._lock:
            series = {
                key: ([*state[0]], state[1], state[2])  # type: ignore[index]
                for key, state in self._series.items()
            }
        for key in sorted(series):
            counts, total, n = series[key]
            running = 0
            for bound, count in zip(self.buckets, counts):
                running += count
                le = 'le="' + _fmt(bound) + '"'
                lines.append(
                    f"{self.name}_bucket{self._label_str(key, le)} {running}"
                )
            inf = 'le="+Inf"'
            lines.append(
                f"{self.name}_bucket{self._label_str(key, inf)} {n}"
            )
            lines.append(f"{self.name}_sum{self._label_str(key)} {_fmt(total)}")
            lines.append(f"{self.name}_count{self._label_str(key)} {n}")
        return lines


class MetricsRegistry:
    """A named collection of metrics; thread-safe; renderable as text.

    ``enabled`` gates every write.  Registration is allowed while
    disabled (so import-time metric definitions cost nothing), and
    :meth:`render` always works — a disabled registry simply renders
    whatever it accumulated while enabled.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # get-or-create
    # ------------------------------------------------------------------ #
    def _get_or_create(self, cls, name, help, labelnames, **kwargs) -> _Metric:
        labelnames = tuple(labelnames)
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or existing.labelnames != labelnames:
                    raise InvalidParameterError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.labelnames}"
                    )
                return existing
            metric = cls(self, name, help, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)  # type: ignore[return-value]

    def gauge(
        self, name: str, help: str = "", labelnames: Iterable[str] = ()
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Iterable[str] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Zero every series (registrations are kept)."""
        with self._lock:
            for metric in self._metrics.values():
                metric._series.clear()

    # ------------------------------------------------------------------ #
    # exposition
    # ------------------------------------------------------------------ #
    def render(self) -> str:
        """The full registry in Prometheus text format 0.0.4."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        lines: list[str] = []
        for metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict[str, dict]:
        """``{name: {label-key: value}}`` for tests and stats bridging."""
        with self._lock:
            out: dict[str, dict] = {}
            for name, metric in self._metrics.items():
                if isinstance(metric, Histogram):
                    out[name] = {
                        key: {"sum": state[1], "count": state[2]}  # type: ignore[index]
                        for key, state in metric._series.items()
                    }
                else:
                    out[name] = dict(metric._series)
            return out


#: The process-wide default registry every instrumentation site writes
#: to.  Starts disabled (zero-cost); ``repro serve`` enables it.
REGISTRY = MetricsRegistry(enabled=False)


def counter(name: str, help: str = "", labelnames: Iterable[str] = ()) -> Counter:
    return REGISTRY.counter(name, help, labelnames)


def gauge(name: str, help: str = "", labelnames: Iterable[str] = ()) -> Gauge:
    return REGISTRY.gauge(name, help, labelnames)


def histogram(
    name: str,
    help: str = "",
    labelnames: Iterable[str] = (),
    buckets: Iterable[float] = DEFAULT_BUCKETS,
) -> Histogram:
    return REGISTRY.histogram(name, help, labelnames, buckets)


def render() -> str:
    return REGISTRY.render()


@contextmanager
def capture(reset: bool = True):
    """Enable the default registry for a block (tests, benches, the CLI).

    Resets accumulated series first by default, so assertions see only
    the block's own activity; restores the previous enabled state on
    exit (series are kept for inspection).
    """
    prior = REGISTRY.enabled
    if reset:
        REGISTRY.reset()
    REGISTRY.enabled = True
    try:
        yield REGISTRY
    finally:
        REGISTRY.enabled = prior
