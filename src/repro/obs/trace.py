"""End-to-end tracing: contextvar-propagated spans over the whole stack.

A :class:`Tracer` collects :class:`SpanRecord` entries — name, category,
monotonic start (``time.perf_counter``), duration, pid/tid, free-form
args.  It is *ambient*: callers install one with :func:`activate` and
instrumented code discovers it through :func:`current_tracer`, so no
signature anywhere grows a ``tracer=`` parameter.  With no tracer
installed (the default), every instrumentation site is a single
contextvar read returning ``None`` — the zero-cost contract.

Span hierarchy and cross-boundary propagation
---------------------------------------------
The span tree is ``solve`` -> ``round`` -> ``task`` -> ``block``:

* driver-side spans (``solve``, ``round``) are recorded directly into
  the ambient tracer;
* **task** spans execute wherever the executor puts them — possibly a
  worker process whose contextvars and objects are unreachable.  The
  dispatch site wraps each task via :func:`wrap_task` with a picklable
  :class:`TaskTraceContext`; inside the worker, :func:`run_traced_task`
  activates a fresh worker-local tracer, runs the task under its task
  span, and returns a :class:`~repro.mapreduce.tasks.TaskOutput`
  carrying the collected spans.  The dispatch site folds those spans
  back into the driver tracer when it unwraps the result — exactly the
  route the worker-side ``dist_evals`` accounting already takes.

This fold-through-the-result design is what makes tracing exact under
fault tolerance: a retried / speculative / duplicated attempt whose
result the :class:`~repro.mapreduce.resilient.ResilientExecutor`
discards never gets its spans folded — **exactly one committed task
span per task**, the winning attempt's.  The resilient executor
separately emits driver-side ``attempt`` spans annotated
``abandoned=True`` for every losing attempt, so wasted work stays
visible on the timeline without polluting the committed accounting.

Timestamps are ``time.perf_counter`` — ``CLOCK_MONOTONIC`` on Linux,
shared across processes on one host, so worker-task spans land on the
same timeline as driver spans.  (On platforms with per-process
monotonic epochs the lanes may be offset; durations are always exact.)

Live streaming: a tracer built with ``on_span=callback`` invokes the
callback at every span close (and at fold time for spans that arrive
from process workers).  The serve layer's ``progress`` op uses this to
push per-round events to clients mid-solve.  Under retries a *live*
sink may see a losing attempt's span before the dedup discards its
result — sinks are advisory; ``Tracer.spans`` is the committed truth.

Export: :meth:`Tracer.export_chrome` writes Chrome trace-event JSON
(``{"traceEvents": [...]}`` with ``"X"`` complete events, microsecond
units) loadable in ``chrome://tracing`` or https://ui.perfetto.dev.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

__all__ = [
    "SpanRecord",
    "Tracer",
    "TaskTraceContext",
    "activate",
    "current_tracer",
    "span",
    "block_span",
    "wrap_task",
    "run_traced_task",
    "DETAIL_TASK",
    "DETAIL_BLOCK",
]

#: Detail levels: ``"task"`` (default) traces down to task spans;
#: ``"block"`` additionally records per-kernel-call block spans.
DETAIL_TASK = "task"
DETAIL_BLOCK = "block"
DETAIL_LEVELS = (DETAIL_TASK, DETAIL_BLOCK)


@dataclass(frozen=True)
class SpanRecord:
    """One closed span: what ran, where, when, for how long.

    ``start`` is a raw ``time.perf_counter`` reading (seconds); export
    rebases onto the trace's earliest span.  ``args`` is free-form
    JSON-able metadata (round label, task index, ``abandoned`` flags...).
    """

    name: str
    cat: str  # "solve" | "round" | "task" | "block" | "attempt" | ...
    start: float
    duration: float
    pid: int
    tid: int
    args: dict = field(default_factory=dict)


class _NullSpan:
    """The no-op context manager returned when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


NULL_SPAN = _NullSpan()

_ACTIVE: ContextVar["Tracer | None"] = ContextVar("repro_obs_tracer", default=None)


class Tracer:
    """A thread-safe collector of spans for one traced run.

    Parameters
    ----------
    run_id:
        Correlation id stamped into task contexts and the export; a
        fresh short id by default.
    detail:
        ``"task"`` (default) or ``"block"`` — whether
        :func:`block_span` sites inside the distance kernels record.
    on_span:
        Optional live sink called with each :class:`SpanRecord` as it
        closes (or folds in from a worker).  Exceptions in the sink are
        swallowed: observability must never fail the run.
    """

    def __init__(
        self,
        run_id: str | None = None,
        detail: str = DETAIL_TASK,
        on_span: Callable[[SpanRecord], None] | None = None,
    ):
        if detail not in DETAIL_LEVELS:
            raise ValueError(
                f"detail must be one of {DETAIL_LEVELS}, got {detail!r}"
            )
        self.run_id = run_id if run_id is not None else uuid.uuid4().hex[:12]
        self.detail = detail
        self.on_span = on_span
        self.origin = time.perf_counter()
        self.spans: list[SpanRecord] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def record(self, span: SpanRecord, notify: bool = True) -> None:
        with self._lock:
            self.spans.append(span)
        if notify and self.on_span is not None:
            try:
                self.on_span(span)
            except Exception:  # noqa: BLE001 - sinks are advisory
                pass

    def emit(
        self,
        name: str,
        *,
        cat: str = "span",
        start: float,
        duration: float,
        notify: bool = True,
        **args: Any,
    ) -> SpanRecord:
        """Record one already-measured span (used for abandoned attempts)."""
        record = SpanRecord(
            name, cat, start, duration, os.getpid(),
            threading.get_native_id(), args,
        )
        self.record(record, notify=notify)
        return record

    @contextmanager
    def span(self, name: str, cat: str = "span", **args: Any):
        """Time a ``with`` block as one span (recorded even on error)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.emit(
                name, cat=cat, start=start,
                duration=time.perf_counter() - start, **args,
            )

    def fold(self, spans: Sequence[SpanRecord], notify: bool = True) -> None:
        """Adopt spans collected elsewhere (a worker-local tracer).

        ``notify=False`` skips the live sink — used when the sink
        already saw these spans live (in-process workers share it).
        """
        for record in spans:
            self.record(record, notify=notify)

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #
    def chrome_events(self) -> list[dict]:
        """The collected spans as Chrome trace-event ``"X"`` entries."""
        with self._lock:
            spans = list(self.spans)
        origin = min((s.start for s in spans), default=self.origin)
        return [
            {
                "name": s.name,
                "cat": s.cat,
                "ph": "X",
                "ts": (s.start - origin) * 1e6,  # microseconds
                "dur": s.duration * 1e6,
                "pid": s.pid,
                "tid": s.tid,
                "args": dict(s.args),
            }
            for s in spans
        ]

    def export_chrome(self, path: str | Path) -> Path:
        """Write the trace as Chrome trace-event JSON; returns the path."""
        payload = {
            "traceEvents": self.chrome_events(),
            "displayTimeUnit": "ms",
            "otherData": {
                "run_id": self.run_id,
                "detail": self.detail,
                "clock": "time.perf_counter (monotonic)",
            },
        }
        path = Path(path)
        path.write_text(json.dumps(payload, indent=1, default=str) + "\n")
        return path


# -------------------------------------------------------------------------- #
# ambient propagation
# -------------------------------------------------------------------------- #
def current_tracer() -> Tracer | None:
    """The ambient tracer of this context, or ``None`` (tracing off)."""
    return _ACTIVE.get()


@contextmanager
def activate(tracer: Tracer):
    """Install ``tracer`` as the ambient tracer for the ``with`` block."""
    token = _ACTIVE.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.reset(token)


def span(name: str, cat: str = "span", **args: Any):
    """An ambient-tracer span, or a shared no-op when tracing is off."""
    tracer = _ACTIVE.get()
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, cat=cat, **args)


def block_span(name: str, **args: Any):
    """A kernel-block span — records only at ``detail="block"``.

    The guard is one contextvar read plus one attribute compare, cheap
    against the BLAS work every kernel block performs.
    """
    tracer = _ACTIVE.get()
    if tracer is None or tracer.detail != DETAIL_BLOCK:
        return NULL_SPAN
    return tracer.span(name, cat="block", **args)


# -------------------------------------------------------------------------- #
# cross-boundary task wrapping
# -------------------------------------------------------------------------- #
@dataclass(frozen=True)
class TaskTraceContext:
    """The picklable span context stamped into a dispatched task.

    Carried inside the task partial across any executor boundary
    (thread or process); ``args`` is a tuple of extra ``(key, value)``
    pairs for the task span (everything must pickle).
    """

    run_id: str
    name: str
    index: int
    cat: str = "task"
    detail: str = DETAIL_TASK
    args: tuple = ()


def run_traced_task(
    task: Callable[[], Any],
    ctx: TaskTraceContext,
    sink: Callable[[SpanRecord], None] | None = None,
) -> Any:
    """Execute ``task`` under a worker-local tracer; spans ride the result.

    Module-level and driven by a picklable context, so
    ``partial(run_traced_task, task, ctx)`` crosses process boundaries
    whenever ``task`` does.  The return value is always a
    :class:`~repro.mapreduce.tasks.TaskOutput` whose ``spans`` carry
    everything recorded during the attempt (the task span itself plus
    any nested block spans); a task that already returned a
    ``TaskOutput`` keeps its value and ``dist_evals`` and gains the
    spans.  The dispatch site folds them into the driver tracer exactly
    when it commits the result — discarded (losing) attempts are never
    folded.
    """
    from repro.mapreduce.tasks import TaskOutput  # lazy: avoid cycle

    tracer = Tracer(run_id=ctx.run_id, detail=ctx.detail, on_span=sink)
    token = _ACTIVE.set(tracer)
    try:
        with tracer.span(ctx.name, cat=ctx.cat, task=ctx.index, **dict(ctx.args)):
            value = task()
    finally:
        _ACTIVE.reset(token)
    if isinstance(value, TaskOutput):
        inherited = list(value.spans) if value.spans else []
        return TaskOutput(value.value, value.dist_evals, inherited + tracer.spans)
    return TaskOutput(value, 0, tracer.spans)


def wrap_task(
    task: Callable[[], Any],
    ctx: TaskTraceContext,
    sink: Callable[[SpanRecord], None] | None = None,
) -> Callable[[], Any]:
    """The traced form of one dispatched task.

    Without a ``sink`` the wrapper is a picklable ``partial``; with one
    (live streaming — in-process backends only, callbacks don't pickle)
    it is a closure.
    """
    if sink is None:
        from functools import partial

        return partial(run_traced_task, task, ctx)

    def run() -> Any:
        return run_traced_task(task, ctx, sink)

    return run
