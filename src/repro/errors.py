"""Exception hierarchy for the :mod:`repro` package.

All errors raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors (``TypeError`` etc. are still
raised directly for mis-typed arguments).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidParameterError",
    "CapacityError",
    "MetricError",
    "DatasetError",
    "ConvergenceError",
    "ExperimentError",
    "TaskFailedError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class InvalidParameterError(ReproError, ValueError):
    """An algorithm or substrate parameter is out of its valid domain.

    Also a :class:`ValueError` so generic callers that validate inputs with
    ``except ValueError`` keep working.
    """


class CapacityError(ReproError):
    """A MapReduce machine-capacity constraint cannot be satisfied.

    Raised, e.g., when ``k > c`` so the final Gonzalez round can never fit
    its input on a single machine (paper, Section 3.3), or when the total
    cluster memory ``m * c`` is smaller than the input size ``n``.
    """


class MetricError(ReproError):
    """A metric-space operation failed (shape mismatch, axiom violation)."""


class DatasetError(ReproError):
    """A dataset generator or registry lookup failed."""


class ConvergenceError(ReproError):
    """An iterative procedure failed to make progress.

    EIM's original removal rule can loop indefinitely on small inputs
    (paper, Section 4.1); our implementation fixes this, but the ablation
    mode that reproduces the un-fixed behaviour raises this error after a
    bounded number of stalled iterations instead of hanging.
    """


class ExperimentError(ReproError):
    """An experiment specification is inconsistent or failed to run."""


class TaskFailedError(ReproError):
    """A task exhausted its fault-tolerance budget and cannot be retried.

    Raised by :class:`~repro.mapreduce.resilient.ResilientExecutor` when
    a task keeps failing (crash, timeout, lost result, broken worker
    pool) after ``FaultPolicy.max_retries`` re-dispatches.  Structured so
    callers can report *which* unit of work died and why — partial
    results are never returned in its place.

    Attributes
    ----------
    task_index:
        Position of the failed task within its batch/round.
    attempts:
        Total attempts made (initial dispatch + retries).
    label:
        The enclosing round's label when the failure happened inside a
        :class:`~repro.mapreduce.cluster.SimulatedCluster` round,
        ``None`` otherwise.
    __cause__:
        The final attempt's underlying exception (standard chaining).
    """

    def __init__(
        self,
        message: str,
        task_index: int | None = None,
        attempts: int | None = None,
        label: str | None = None,
    ):
        super().__init__(message)
        self.task_index = task_index
        self.attempts = attempts
        self.label = label
