"""Normalised solve configuration shared by every registered solver.

The six algorithms historically exposed six different signatures
(``gonzalez(space, k, seed, first_center)`` vs ``mrg(..., partitioner,
max_rounds)`` vs ``eim(..., params, **overrides)``).  :class:`SolveConfig`
is the one place those knobs are normalised:

* the **shared knobs** every MapReduce solver understands — ``m``,
  ``capacity``, ``seed``, ``executor``, ``evaluate`` — are first-class
  fields, left at :data:`UNSET` when the caller did not specify them (so
  each solver's own defaults apply and facade calls stay bit-identical to
  direct calls);
* **solver-specific options** (``phi``, ``partitioner``,
  ``first_center``, ...) travel in :attr:`options` and are validated
  against the target :class:`~repro.solvers.registry.SolverSpec` — an
  unknown key raises :class:`~repro.errors.InvalidParameterError` instead
  of a late ``TypeError`` deep inside the algorithm.

A shared knob explicitly set for a solver that does not take it is an
error, with one ergonomic exception: ``seed`` is silently dropped for
deterministic solvers (HS, EXACT), so seed sweeps can include them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any

from repro.errors import InvalidParameterError
from repro.solvers.registry import SolverSpec

__all__ = ["UNSET", "SHARED_KNOBS", "SolveConfig"]


class _Unset:
    """Sentinel distinguishing "not specified" from an explicit ``None``."""

    _instance = None

    def __new__(cls) -> "_Unset":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "UNSET"

    def __bool__(self) -> bool:
        return False


#: Marker for "caller did not specify this knob" (falsy, unpicklable-safe).
UNSET = _Unset()

#: The shared knobs, in the order :meth:`SolveConfig.kwargs_for` emits them.
SHARED_KNOBS = ("m", "capacity", "seed", "executor", "evaluate")

#: Shared knobs silently dropped (rather than rejected) when the target
#: solver does not accept them: a seed is meaningless but harmless to a
#: deterministic solver, and dropping it keeps ``solve(..., seed=s)``
#: uniform across the whole registry.
_DROPPABLE = frozenset({"seed"})


@dataclass
class SolveConfig:
    """One solve request's knobs, normalised and ready to validate.

    ``k`` is required and validated eagerly; every other field defaults to
    :data:`UNSET`, meaning "use the solver's own default".
    """

    k: int
    m: Any = UNSET
    capacity: Any = UNSET
    seed: Any = UNSET
    executor: Any = UNSET
    evaluate: Any = UNSET
    options: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        try:
            self.k = int(self.k)
        except (TypeError, ValueError):
            raise InvalidParameterError(
                f"k must be an integer, got {self.k!r}"
            ) from None
        if self.k <= 0:
            raise InvalidParameterError(f"k must be positive, got {self.k}")
        for knob in SHARED_KNOBS:
            if knob in self.options:
                raise InvalidParameterError(
                    f"shared knob {knob!r} must be passed as a field of "
                    "SolveConfig, not inside options"
                )

    def explicit_knobs(self) -> dict[str, Any]:
        """The shared knobs the caller actually specified."""
        return {
            knob: getattr(self, knob)
            for knob in SHARED_KNOBS
            if getattr(self, knob) is not UNSET
        }

    def kwargs_for(self, spec: SolverSpec) -> dict[str, Any]:
        """Validated keyword arguments for ``spec.fn(space, k, **kwargs)``.

        Raises
        ------
        InvalidParameterError
            If :attr:`options` contains a key ``spec`` does not accept, or
            a non-droppable shared knob was explicitly set for a solver
            whose signature does not take it.
        """
        unknown = sorted(set(self.options) - set(spec.options))
        if unknown:
            allowed = sorted(spec.options | spec.shared)
            raise InvalidParameterError(
                f"unknown option(s) {', '.join(map(repr, unknown))} for solver "
                f"{spec.name!r}; accepted: {', '.join(map(repr, allowed)) or 'none'}"
            )
        kwargs = dict(self.options)
        for knob, value in self.explicit_knobs().items():
            if knob in spec.shared:
                kwargs[knob] = value
            elif knob not in _DROPPABLE:
                raise InvalidParameterError(
                    f"solver {spec.name!r} ({spec.kind}) does not accept "
                    f"{knob!r}"
                )
        return kwargs

    def replace(self, **changes: Any) -> "SolveConfig":
        """A copy with ``changes`` applied (options dict is copied)."""
        state = {f.name: getattr(self, f.name) for f in fields(self)}
        state["options"] = dict(state["options"])
        state.update(changes)
        return SolveConfig(**state)
