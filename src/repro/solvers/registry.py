"""Solver registry: one canonical catalogue of k-center algorithms.

Every algorithm in :mod:`repro.core` is described by a :class:`SolverSpec`
— canonical name, aliases, execution kind, a-priori approximation factor,
and the exact set of keyword options it accepts — and registered with the
:func:`register_solver` decorator.  Consumers (the :func:`repro.solve`
facade, the CLI, the experiment harness) resolve algorithms exclusively
through :func:`get_solver` / :func:`list_solvers`, so adding a new solver
is one decorated registration, not a sweep over hand-written dispatch
tables.

Names are case-insensitive and dash/underscore-insensitive:
``"GON"``, ``"gon"`` and ``"gonzalez"`` all resolve to the same spec,
``"mr-hochbaum-shmoys"`` and ``"mr_hochbaum_shmoys"`` likewise.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from repro.errors import InvalidParameterError

__all__ = [
    "KINDS",
    "SolverSpec",
    "SolverRegistry",
    "REGISTRY",
    "register_solver",
    "get_solver",
    "list_solvers",
    "solver_names",
]

#: Execution kinds a solver may declare.
#:
#: * ``"sequential"`` — runs on one machine, no MapReduce accounting;
#: * ``"mapreduce"``  — runs on the :class:`~repro.mapreduce.cluster.SimulatedCluster`
#:   substrate and accepts the cluster knobs (``m``, ``capacity``, ...);
#: * ``"exact"``      — optimal oracle, feasible only on tiny instances.
KINDS = ("sequential", "mapreduce", "exact")


def canonical_key(name: str) -> str:
    """Normalise a solver name for lookup (case/dash/underscore-folded)."""
    return str(name).strip().lower().replace("-", "_").replace(" ", "_")


@dataclass(frozen=True)
class SolverSpec:
    """Everything the facade needs to know about one registered algorithm.

    Attributes
    ----------
    name:
        Canonical short name (``"gon"``, ``"mrg"``, ``"eim"``, ...); the
        registry key and the default label in experiment harnesses is
        :attr:`label` (its upper-case form, matching the paper's tags).
    fn:
        The underlying entry point; called as ``fn(space, k, **kwargs)``
        and must return a :class:`~repro.core.result.KCenterResult`.
    kind:
        One of :data:`KINDS`.
    summary:
        One-line human description (shown by ``repro-kcenter solve list``).
    aliases:
        Alternative lookup names (full spellings, legacy tags).
    approx_factor:
        The a-priori guarantee in the solver's standard regime, or ``None``
        when no uniform bound applies.
    shared:
        The subset of the shared :class:`~repro.solvers.config.SolveConfig`
        knobs (``m``, ``capacity``, ``seed``, ``executor``, ``evaluate``)
        this solver's signature accepts.
    options:
        Names of the solver-specific keyword options it accepts (anything
        else raises :class:`~repro.errors.InvalidParameterError`).
    """

    name: str
    fn: Callable[..., Any]
    kind: str
    summary: str = ""
    aliases: tuple[str, ...] = ()
    approx_factor: float | None = None
    shared: frozenset[str] = field(default_factory=frozenset)
    options: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise InvalidParameterError(
                f"solver kind must be one of {KINDS}, got {self.kind!r}"
            )
        object.__setattr__(self, "name", canonical_key(self.name))
        object.__setattr__(self, "aliases", tuple(self.aliases))
        object.__setattr__(self, "shared", frozenset(self.shared))
        object.__setattr__(self, "options", frozenset(self.options))

    @property
    def label(self) -> str:
        """Default display tag (``"GON"``, ``"MRG"``, ...) for tables."""
        return self.name.upper()

    @property
    def backends(self) -> tuple[str, ...]:
        """Executor backends the solver runs on, bit-identically.

        Every registered solver is process-capable under the task
        contract (:mod:`repro.mapreduce.tasks`): MapReduce solvers fan
        their rounds out as picklable :class:`TaskSpec`s, and
        sequential/exact solvers dispatch as one whole-run task through
        the same path (``solve_many`` fan-out and the resilient solo
        mode).  Derived, not stored, so a solver cannot claim a backend
        its dispatch layer does not deliver.
        """
        return ("sequential", "thread", "process")

    @property
    def all_names(self) -> tuple[str, ...]:
        return (self.name, *self.aliases)


class SolverRegistry:
    """Mapping from solver names/aliases to :class:`SolverSpec` objects."""

    def __init__(self) -> None:
        self._specs: dict[str, SolverSpec] = {}
        self._index: dict[str, str] = {}  # any normalised name -> canonical

    def register(self, spec: SolverSpec) -> SolverSpec:
        for name in spec.all_names:
            key = canonical_key(name)
            if key in self._index:
                raise InvalidParameterError(
                    f"solver name {name!r} already registered "
                    f"(by {self._index[key]!r})"
                )
        for name in spec.all_names:
            self._index[canonical_key(name)] = spec.name
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> SolverSpec:
        key = canonical_key(name)
        try:
            return self._specs[self._index[key]]
        except KeyError:
            close = difflib.get_close_matches(key, sorted(self._index), n=3)
            hint = f"; did you mean {', '.join(map(repr, close))}?" if close else ""
            raise InvalidParameterError(
                f"unknown algorithm {name!r}; registered solvers: "
                f"{', '.join(sorted(self._specs))}{hint}"
            ) from None

    def specs(self) -> list[SolverSpec]:
        return [self._specs[name] for name in sorted(self._specs)]

    def names(self) -> list[str]:
        return sorted(self._specs)

    def __contains__(self, name: str) -> bool:
        return canonical_key(name) in self._index

    def __iter__(self) -> Iterator[SolverSpec]:
        return iter(self.specs())

    def __len__(self) -> int:
        return len(self._specs)


#: The process-wide default registry the facade and CLI resolve against.
REGISTRY = SolverRegistry()


def register_solver(
    name: str,
    *,
    kind: str,
    summary: str = "",
    aliases: Iterable[str] = (),
    approx_factor: float | None = None,
    shared: Iterable[str] = (),
    options: Iterable[str] = (),
    registry: SolverRegistry | None = None,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Decorator registering ``fn`` as the solver ``name``.

    Returns the function unchanged, so existing direct call sites keep
    working; the registration is a side effect on ``registry`` (the global
    :data:`REGISTRY` by default).
    """

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        spec = SolverSpec(
            name=name,
            fn=fn,
            kind=kind,
            summary=summary,
            aliases=tuple(aliases),
            approx_factor=approx_factor,
            shared=frozenset(shared),
            options=frozenset(options),
        )
        (registry if registry is not None else REGISTRY).register(spec)
        return fn

    return decorate


def get_solver(name: str) -> SolverSpec:
    """Resolve a solver by canonical name or alias (case-insensitive)."""
    return REGISTRY.get(name)


def list_solvers() -> list[SolverSpec]:
    """All registered specs, sorted by canonical name."""
    return REGISTRY.specs()


def solver_names() -> list[str]:
    """Sorted canonical names of all registered solvers."""
    return REGISTRY.names()
