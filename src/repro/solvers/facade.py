"""`repro.solve` / `repro.solve_many`: the uniform solver entry points.

:func:`solve` resolves an algorithm through the registry, validates the
knobs against its :class:`~repro.solvers.registry.SolverSpec`, and calls
the underlying function with exactly the arguments the caller specified —
so ``solve(space, k, algorithm="mrg", seed=0)`` is bit-identical to
``mrg(space, k, seed=0)``.

:func:`solve_many` fans a (algorithms x seeds) grid out over the existing
:class:`~repro.mapreduce.executor.Executor` protocol and returns a result
map keyed by :class:`BatchKey`.  Each run's seed is fixed up-front, so the
batch is deterministic regardless of executor (sequential vs process
pool) and scheduling order.  The returned :class:`BatchResults` is a
plain ``dict`` plus a ``summary`` roll-up
(:class:`~repro.mapreduce.accounting.BatchSummary`: total distance
evaluations, cache hits/misses, parallel vs cpu time across the batch).
Pool backends are persistent, so back-to-back batches on one executor
reuse its workers; for process backends the input space's in-memory
coordinates are additionally published once per batch to shared memory
(:func:`repro.store.shm.shared_space`) and workers attach by name
instead of unpickling the rows per task.

Both entry points accept more than a ready-made space: a coordinate
array, a :class:`~repro.store.stream.PointStream`, a ``.npy`` file path,
or a sharded directory (``repro.store.write_shards`` output — solved
out-of-core through :class:`~repro.store.space.ChunkedMetricSpace`,
with MapReduce reducers consuming per-shard views so the driver never
gathers the coordinates) are coerced via :func:`repro.store.as_space`.
``solve`` additionally supports the algorithm-first calling form
``solve("stream", k, data="points.npy")`` and
``solve("mr_hs", k, data="shards/")``.
:func:`solve_many` can thread a shared
:class:`~repro.store.cache.DistanceCache` through a batch, so repeated
solves of one small space reuse a single precomputed distance matrix
with unchanged per-run records.
"""

from __future__ import annotations

import copy
import time
from typing import Any, Iterable, Mapping, NamedTuple, Sequence, Union

import repro.solvers.catalog  # noqa: F401  (side effect: populate REGISTRY)
from repro.core.result import KCenterResult
from repro.errors import InvalidParameterError
from repro.mapreduce.accounting import BatchSummary
from repro.mapreduce.executor import Executor, SequentialExecutor
from repro.mapreduce.tasks import TaskSpec, bind_round, commit
from repro.mapreduce.faults import FaultInjector
from repro.mapreduce.resilient import FaultPolicy, ResilientExecutor
from repro.metric.base import DistCounter, MetricSpace
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.solvers.config import SHARED_KNOBS, UNSET, SolveConfig
from repro.solvers.registry import SolverSpec, get_solver
from repro.store.cache import DistanceCache
from repro.store.shm import shared_space
from repro.store.space import SpaceLike, as_space

__all__ = ["solve", "solve_many", "BatchKey", "BatchResults", "AlgorithmLike"]

#: What :func:`solve_many` accepts per algorithm: a registry name/alias, a
#: ``(name, options)`` pair, or a resolved :class:`SolverSpec`.
AlgorithmLike = Union[str, SolverSpec, tuple]

# Commit-point metrics (see repro.obs.metrics): labelled by the canonical
# registry name — never by batch keys, whose labels are caller-chosen and
# would blow up series cardinality under the serve layer.
_M_SOLVES = _metrics.counter(
    "repro_solves_total", "Solver runs completed", ("algorithm",)
)
_M_SOLVE_SECONDS = _metrics.histogram(
    "repro_solve_duration_seconds",
    "End-to-end solver wall time",
    ("algorithm",),
)
_M_DIST_EVALS = _metrics.counter(
    "repro_dist_evals_total",
    "Distance evaluations charged to finished runs",
    ("algorithm",),
)


def _is_solver_name(name: str) -> bool:
    """Whether ``name`` resolves in the registry (used to catch the
    algorithm-first calling form with a forgotten ``data=``)."""
    try:
        get_solver(name)
    except InvalidParameterError:
        return False
    return True


class BatchKey(NamedTuple):
    """Key of one run in a :func:`solve_many` result map."""

    algorithm: str  # canonical registry name, or the entry's ``label``
    seed: Any

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.algorithm}[seed={self.seed}]"


def solve(
    space: SpaceLike,
    k: int,
    algorithm: str | None = None,
    *,
    data: SpaceLike | None = None,
    chunk_size: int | None = None,
    m: Any = UNSET,
    capacity: Any = UNSET,
    seed: Any = UNSET,
    executor: Any = UNSET,
    evaluate: Any = UNSET,
    fault_policy: FaultPolicy | None = None,
    fault_injector: FaultInjector | None = None,
    **options: Any,
) -> KCenterResult:
    """Run one registered k-center solver on ``space``.

    Parameters
    ----------
    space:
        Any :class:`~repro.metric.base.MetricSpace` — or anything
        :func:`repro.store.as_space` coerces into one: a coordinate
        array, a :class:`~repro.store.stream.PointStream`, a ``.npy``
        path, or a sharded directory (solved out-of-core, never
        materialising ``(n, d)``).
    k:
        Number of centers (positive).
    algorithm:
        Registry name or alias: ``"gon"``, ``"mrg"``, ``"eim"``, ``"hs"``,
        ``"mrhs"``, ``"stream"``, ``"exact"`` (case-insensitive; see
        :func:`repro.solvers.list_solvers`).  Default ``"eim"``.
    data:
        Alternative input slot enabling the algorithm-first form
        ``solve("stream", 25, data="points.npy")`` or
        ``solve("mr_hs", 25, data="shards/")`` — when given, the
        first positional argument is read as the algorithm name and
        ``data`` supplies the points.
    chunk_size:
        Chunk rows for file/stream inputs (default: the block byte
        budget); also forces the chunked adapter for in-memory arrays.
    m, capacity, seed, executor, evaluate:
        Shared knobs, forwarded only when explicitly given so each
        solver's own defaults apply.  Setting a knob the solver does not
        take raises :class:`~repro.errors.InvalidParameterError`
        (exception: ``seed`` is ignored by deterministic solvers).
    fault_policy, fault_injector:
        Fault tolerance (see :mod:`repro.mapreduce.resilient`).  When
        either is given the run executes under a
        :class:`~repro.mapreduce.resilient.ResilientExecutor` enforcing
        the policy (default :class:`FaultPolicy` when only an injector
        is passed): for MapReduce solvers the ``executor`` backend (or
        the sequential default) is wrapped so each *round's* tasks are
        retried / speculated individually; for single-machine solvers
        the whole run is one resilient task.  Results under any fault
        schedule the policy absorbs are bit-identical to the fault-free
        run — tasks bind their randomness before dispatch, so
        re-execution is exact, and accounting folds only winning
        attempts.  ``fault_injector`` is the deterministic chaos hook
        (:class:`~repro.mapreduce.faults.FaultSchedule` /
        :class:`~repro.mapreduce.faults.RandomFaults`) used by the test
        suite; production callers pass only a policy.
    **options:
        Solver-specific options (``phi=4.0``, ``partitioner="hash"``,
        ``first_center=0``, ...), validated against the registry spec.

    Returns
    -------
    KCenterResult
        Identical to calling the underlying free function directly with
        the same arguments.
    """
    if data is not None:
        if isinstance(space, str):
            if algorithm is not None:
                raise InvalidParameterError(
                    f"two algorithms given: {space!r} positionally and "
                    f"algorithm={algorithm!r}; pass one or the other"
                )
            algorithm = space
        elif space is not None:
            raise InvalidParameterError(
                "pass the input either as the first argument or as data=, "
                "not both"
            )
        space = as_space(data, chunk_size=chunk_size)
    else:
        if isinstance(space, str) and _is_solver_name(space):
            raise InvalidParameterError(
                f"{space!r} is an algorithm name, not an input; the "
                f"algorithm-first form needs the points via data= — "
                f"solve({space!r}, k, data=\"points.npy\")"
            )
        space = as_space(space, chunk_size=chunk_size)
    spec = get_solver(algorithm if algorithm is not None else "eim")
    solo_resilient: ResilientExecutor | None = None
    if fault_policy is not None or fault_injector is not None:
        policy = fault_policy if fault_policy is not None else FaultPolicy()
        if "executor" in spec.shared:
            # MapReduce solver: wrap its round executor, so individual
            # reducer tasks are retried/speculated and the result's
            # RoundStats carry the fault accounting.
            inner = executor if executor is not UNSET else None
            executor = ResilientExecutor(inner, policy, fault_injector)
        else:
            # Single-machine solver: the whole run is one resilient task.
            solo_resilient = ResilientExecutor(
                SequentialExecutor(), policy, fault_injector
            )
    config = SolveConfig(
        k=k,
        m=m,
        capacity=capacity,
        seed=seed,
        executor=executor,
        evaluate=evaluate,
        options=options,
    )
    kwargs = config.kwargs_for(spec)

    counter = getattr(space, "counter", None)
    evals_before = counter.evals if counter is not None else 0
    started = time.perf_counter()
    with _trace.span("solve", cat="solve", algorithm=spec.name, k=config.k):
        if solo_resilient is None:
            result = spec.fn(space, config.k, **kwargs)
        else:
            # The whole run is one task on the shared contract:
            # `_run_one` gives each attempt a shadow space with a private
            # counter, so a retried run leaves no failed-attempt
            # evaluations in the caller's books.
            solo = TaskSpec(
                _run_one,
                args=(space, config.k, spec.name, kwargs),
                name=f"{spec.name}.solo",
                trace_args=(("algorithm", spec.name),),
            )
            calls, sink = bind_round(
                f"{spec.name}.solo", [solo], executor=solo_resilient
            )
            (payload,), _ = solo_resilient.run(calls)
            # Commit point: only the winning attempt's payload survives
            # the resilient dedup, so its accounting alone folds.
            (payload,) = commit([payload], [solo], sink=sink)
            result, evals, hits, misses = payload
            # Fold the winning attempt's accounting into the caller's
            # counter — the side effect a bare `spec.fn(space, ...)` call
            # would have had.
            space.counter.add(evals)
            space.counter.cache_hits += hits
            space.counter.cache_misses += misses
    if _metrics.REGISTRY.enabled:
        _M_SOLVES.labels(algorithm=spec.name).inc()
        _M_SOLVE_SECONDS.labels(algorithm=spec.name).observe(
            time.perf_counter() - started
        )
        if counter is not None:
            _M_DIST_EVALS.labels(algorithm=spec.name).inc(
                counter.evals - evals_before
            )
    return result


class BatchResults(dict):
    """``{BatchKey: KCenterResult}`` plus a batch-level accounting roll-up.

    Behaves exactly like the plain dict :func:`solve_many` used to
    return; the extra :attr:`summary` is the merged
    :class:`~repro.mapreduce.accounting.BatchSummary` of the whole batch
    (total dist_evals, cache hits/misses, parallel vs cpu time), and
    :attr:`run_summaries` keeps the same accounting *per run* — a
    single-run :class:`BatchSummary` under each :class:`BatchKey`, so
    consumers that answer for individual requests (the
    :mod:`repro.serve` scheduler streams one response per coalesced
    request) report exact per-run numbers, not a batch-wide smear.
    ``summary`` is precisely the fold of ``run_summaries`` (with
    ``parallel_time`` the max rather than the sum).
    """

    def __init__(
        self,
        items,
        summary: BatchSummary,
        run_summaries: dict[BatchKey, BatchSummary] | None = None,
    ):
        super().__init__(items)
        self.summary = summary
        self.run_summaries: dict[BatchKey, BatchSummary] = run_summaries or {}


class _RunOutput(NamedTuple):
    """One batch task's result plus its run-private accounting.

    The counter a run evaluates distances into lives wherever the task
    ran — possibly a worker process — so its totals travel back in the
    task's return value, exactly like the reducer tasks'
    :class:`~repro.mapreduce.tasks.TaskOutput`.
    """

    result: KCenterResult
    dist_evals: int
    cache_hits: int
    cache_misses: int


def _run_one(
    space: MetricSpace,
    k: int,
    name: str,
    kwargs: dict,
    cache: DistanceCache | None = None,
) -> _RunOutput:
    """Top-level runner so batch tasks stay picklable for process pools.

    The run gets a shallow copy of the space with a *private*
    :class:`~repro.metric.base.DistCounter`: point data stays shared, but
    accounting state does not.  A shared counter would make each run's
    recorded ``dist_evals`` absorb whatever other tasks evaluated
    concurrently (the MapReduce solvers snapshot counter deltas per
    round), so per-run stats would depend on the executor's scheduling.
    With private counters, every field of every result — including the
    operation counts — is identical on sequential, thread and process
    backends.

    With a :class:`~repro.store.cache.DistanceCache`, runs over a
    cacheable (small) space are instead served a
    :class:`~repro.metric.precomputed.PrecomputedSpace` view of one
    shared distance matrix; the view charges the same evaluation tariff
    to its private counter, so records stay cache-invariant while the
    O(n^2) kernel work is paid once per batch, not once per run.
    """
    counter = DistCounter()
    if cache is not None and cache.cacheable(space):
        task_space = cache.space_for(space, counter)
    else:
        task_space = copy.copy(space)
        task_space.counter = counter
    result = get_solver(name).fn(task_space, k, **kwargs)
    return _RunOutput(
        result, counter.evals, counter.cache_hits, counter.cache_misses
    )


def _normalise_algorithms(
    algorithms: Union[AlgorithmLike, Iterable[AlgorithmLike]],
) -> list[tuple[SolverSpec, dict[str, Any]]]:
    if isinstance(algorithms, (str, SolverSpec)) or (
        isinstance(algorithms, tuple)
        and len(algorithms) == 2
        and isinstance(algorithms[1], Mapping)
    ):
        algorithms = [algorithms]
    resolved: list[tuple[SolverSpec, dict[str, Any]]] = []
    for entry in algorithms:
        opts: dict[str, Any] = {}
        if isinstance(entry, (tuple, list)):
            if len(entry) != 2 or not isinstance(entry[1], Mapping):
                raise InvalidParameterError(
                    "algorithm entries must be a name, a SolverSpec, or a "
                    f"(name, options-dict) pair; got {entry!r}"
                )
            entry, opts = entry[0], dict(entry[1])
        if isinstance(entry, SolverSpec):
            resolved.append((entry, opts))
        else:
            resolved.append((get_solver(entry), opts))
    if not resolved:
        raise InvalidParameterError("solve_many needs at least one algorithm")
    return resolved


def solve_many(
    space: SpaceLike,
    k: int,
    algorithms: Union[AlgorithmLike, Iterable[AlgorithmLike]] = ("gon", "mrg", "eim"),
    seeds: Sequence[Any] | None = (None,),
    *,
    executor: Executor | None = None,
    cache: DistanceCache | None = None,
    chunk_size: int | None = None,
    m: Any = UNSET,
    capacity: Any = UNSET,
    evaluate: Any = UNSET,
    fault_policy: FaultPolicy | None = None,
    fault_injector: FaultInjector | None = None,
    **options: Any,
) -> BatchResults:
    """Run an (algorithms x seeds) batch; return ``{BatchKey: result}``.

    The returned mapping is a :class:`BatchResults` — an ordinary dict
    whose extra ``summary`` attribute carries the batch's merged
    accounting (:class:`~repro.mapreduce.accounting.BatchSummary`).

    Parameters
    ----------
    space, k:
        As for :func:`solve` (arrays, streams and ``.npy`` paths are
        coerced through :func:`repro.store.as_space`); the same instance
        is shared by every run.
    algorithms:
        Iterable of registry names, ``(name, options)`` pairs, or
        :class:`SolverSpec` objects.  Per-entry options override the
        batch-wide ``**options``; the reserved option ``label`` renames
        the entry's key (so one algorithm can appear several times with
        different options, e.g. an EIM phi sweep), and the reserved
        option ``k`` overrides the batch-wide ``k`` for that entry — so
        one batch can mix requests for different center counts
        (``[("gon", {"k": 5}), ("gon", {"k": 25, "label": "g25"})]``),
        which is how the :mod:`repro.serve` scheduler coalesces a mixed
        request queue into one fan-out.
    seeds:
        One run is scheduled per (algorithm, seed) pair.  Seeds are bound
        before scheduling, so results are identical under any executor.
        Passing ``seeds=None`` switches to *entry-owned seeding*: each
        entry runs exactly once with the ``seed`` from its own options
        dict (default ``None``), so heterogeneous per-request seeds can
        share a batch — the grid and the per-entry forms are mutually
        exclusive, never mixed.
    executor:
        Backend for the *batch fan-out* (default
        :class:`~repro.mapreduce.executor.SequentialExecutor`).  It is not
        forwarded to the individual solvers — nesting a process pool
        inside each run would oversubscribe the machine; a per-entry
        ``executor`` (see below) overrides this for one entry's runs.
    cache:
        Optional shared :class:`~repro.store.cache.DistanceCache`.  Runs
        over a cacheable (small) space reuse one precomputed distance
        matrix instead of re-deriving distances per run; results and
        per-run accounting are unchanged (see the cache's module docs).
        Pass the same instance across several ``solve_many`` calls on
        the same space object to share the matrix batch-to-batch.  The
        cache lives in the driver process: sequential and thread
        fan-outs share it, but process-pool tasks unpickle a private
        snapshot each — no cross-run reuse, and the batch summary's
        ``cache_hits``/``cache_misses`` honestly record that.  Results
        are identical either way; only the reuse is.
    chunk_size:
        Chunk rows when ``space`` is a file path, stream or array to be
        solved out-of-core (see :func:`solve`).
    fault_policy, fault_injector:
        Fault tolerance for the *batch fan-out* (see :func:`solve`): the
        backend is wrapped in a
        :class:`~repro.mapreduce.resilient.ResilientExecutor`, so a run
        that crashes or stalls is re-executed — each run binds its seed
        up-front and evaluates into a private counter, so the re-run is
        bit-identical and only the winning attempt is accounted.  Retry /
        speculation / wasted-time numbers land in each run's
        ``run_summaries`` entry and the merged ``summary``.
    m, capacity, evaluate, **options:
        Batch-wide knobs/options, applied to each solver that accepts
        them and skipped for those that do not (so one batch can mix
        sequential and MapReduce solvers).  An option no solver in the
        batch accepts raises — a typo must not silently run defaults.
        Per-entry dicts may override both options and shared knobs
        (``("mrg", {"m": 8, "executor": SequentialExecutor()})``) and are
        strictly validated against that entry's solver; a per-entry
        ``seed`` is rejected — the ``seeds`` grid owns seeding.

    Raises
    ------
    InvalidParameterError
        Unknown algorithm, invalid per-entry option/knob, a batch-wide
        option accepted by no entry, or two entries producing the same
        ``(algorithm, seed)`` key.
    """
    space = as_space(space, chunk_size=chunk_size)
    entries = _normalise_algorithms(algorithms)
    entry_seeding = seeds is None
    if not entry_seeding:
        if not isinstance(seeds, (list, tuple, range)):
            seeds = list(seeds)
        if not seeds:
            raise InvalidParameterError("solve_many needs at least one seed")
    orphaned = sorted(
        key
        for key in options
        if not any(key in spec.options for spec, _ in entries)
    )
    if orphaned:
        raise InvalidParameterError(
            f"batch option(s) {', '.join(map(repr, orphaned))} accepted by "
            "no solver in this batch; check for typos or move them into a "
            "per-entry options dict"
        )

    backend = executor if executor is not None else SequentialExecutor()
    if fault_policy is not None or fault_injector is not None:
        backend = ResilientExecutor(
            backend,
            fault_policy if fault_policy is not None else FaultPolicy(),
            fault_injector,
        )
    keys: list[BatchKey] = []
    names: list[str] = []  # canonical registry names, aligned with keys
    tasks = []
    for spec, entry_opts in entries:
        # Batch-wide options apply only where accepted; per-entry options
        # and knobs are exact and validated below by kwargs_for.
        merged = {
            key: value for key, value in options.items() if key in spec.options
        }
        merged.update(entry_opts)
        label = str(merged.pop("label", spec.name))
        entry_k = merged.pop("k", k)
        if "seed" in merged and not entry_seeding:
            raise InvalidParameterError(
                "per-entry 'seed' is not allowed; the seeds grid assigns "
                "one run per (algorithm, seed) pair (pass seeds=None to "
                "switch to entry-owned seeding)"
            )
        entry_knobs = {
            knob: merged.pop(knob) for knob in SHARED_KNOBS if knob in merged
        }
        entry_seeds = (entry_knobs.pop("seed", None),) if entry_seeding else seeds
        for seed in entry_seeds:
            config = SolveConfig(
                k=entry_k,
                m=entry_knobs.get("m", m if "m" in spec.shared else UNSET),
                capacity=entry_knobs.get(
                    "capacity", capacity if "capacity" in spec.shared else UNSET
                ),
                seed=seed,
                executor=entry_knobs.get("executor", UNSET),
                evaluate=entry_knobs.get(
                    "evaluate", evaluate if "evaluate" in spec.shared else UNSET
                ),
                options=merged,
            )
            key = BatchKey(label, seed)
            if key in keys:
                raise InvalidParameterError(
                    f"duplicate batch entry {key}; list each "
                    "(algorithm, seed) pair at most once"
                )
            keys.append(key)
            names.append(spec.name)
            tasks.append((config.k, spec.name, config.kwargs_for(spec)))

    # Publish the space once per batch when the fan-out crosses a process
    # boundary: every task then pickles a shared-memory handle instead of
    # the coordinate rows (no-op for sequential/thread backends and
    # out-of-core spaces, which already cross by reference).
    with shared_space(space, backend) as task_space:
        specs = [
            TaskSpec(
                _run_one,
                args=(task_space, *args, cache),
                name=str(key),
                trace_args=(("algorithm", names[i]),),
            )
            for i, (args, key) in enumerate(zip(tasks, keys))
        ]
        calls, sink = bind_round("solve_many", specs, executor=backend)
        with _trace.span("solve_many", cat="solve", runs=len(calls)):
            outputs, times = backend.run(calls)
    outputs = commit(outputs, specs, sink=sink)
    fault_stats = (
        backend.pop_round_stats()
        if isinstance(backend, ResilientExecutor)
        else None
    )

    emit = _metrics.REGISTRY.enabled
    run_summaries: dict[BatchKey, BatchSummary] = {}
    for i, (key, out, seconds) in enumerate(zip(keys, outputs, times)):
        stats = out.result.stats
        if emit:
            _M_SOLVES.labels(algorithm=names[i]).inc()
            _M_SOLVE_SECONDS.labels(algorithm=names[i]).observe(seconds)
            _M_DIST_EVALS.labels(algorithm=names[i]).inc(out.dist_evals)
        run_summaries[key] = BatchSummary(
            runs=1,
            parallel_time=seconds,
            cpu_time=seconds,
            dist_evals=out.dist_evals,
            cache_hits=out.cache_hits,
            cache_misses=out.cache_misses,
            solver_rounds=stats.n_rounds if stats is not None else 0,
            retries=fault_stats.per_task_retries[i] if fault_stats else 0,
            speculative_wins=(
                fault_stats.per_task_speculative_wins[i] if fault_stats else 0
            ),
            wasted_task_seconds=(
                fault_stats.per_task_wasted_seconds[i] if fault_stats else 0.0
            ),
        )
    summary = BatchSummary.merged(run_summaries.values())
    return BatchResults(
        zip(keys, (out.result for out in outputs)), summary, run_summaries
    )
