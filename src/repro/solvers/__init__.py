"""Solver registry and facade (the package's single algorithm entry point).

This package decouples *what algorithm to run* from *how it is called*:

* :mod:`~repro.solvers.registry` — :class:`SolverSpec`,
  :func:`register_solver`, :func:`get_solver`, :func:`list_solvers`;
* :mod:`~repro.solvers.config` — :class:`SolveConfig`, the normalised
  knob set with per-solver option validation;
* :mod:`~repro.solvers.facade` — :func:`solve` and the batch
  :func:`solve_many` (fans out over the
  :class:`~repro.mapreduce.executor.Executor` protocol);
* :mod:`~repro.solvers.catalog` — registration of the six built-in
  algorithms (GON, MRG, EIM, HS, MRHS, EXACT).

Typical use::

    import repro
    result = repro.solve(space, k=10, algorithm="eim", seed=0, phi=4.0)
    batch = repro.solve_many(space, 10, algorithms=("gon", "mrg"), seeds=range(3))
"""

from repro.solvers.config import UNSET, SHARED_KNOBS, SolveConfig
from repro.solvers.facade import (
    AlgorithmLike,
    BatchKey,
    BatchResults,
    solve,
    solve_many,
)
from repro.solvers.registry import (
    REGISTRY,
    SolverRegistry,
    SolverSpec,
    get_solver,
    list_solvers,
    register_solver,
    solver_names,
)

# Populate the global registry with the built-in algorithms.
import repro.solvers.catalog  # noqa: E402,F401  isort:skip

__all__ = [
    "solve",
    "solve_many",
    "BatchKey",
    "BatchResults",
    "AlgorithmLike",
    "SolveConfig",
    "SolverSpec",
    "SolverRegistry",
    "REGISTRY",
    "register_solver",
    "get_solver",
    "list_solvers",
    "solver_names",
    "SHARED_KNOBS",
    "UNSET",
]
