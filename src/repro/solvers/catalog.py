"""Registration of the built-in k-center solvers.

Importing this module (done by :mod:`repro.solvers` itself) populates the
global registry with the seven algorithms the repository implements.  Each
entry records exactly the keyword surface of the underlying function, so
:class:`~repro.solvers.config.SolveConfig` can reject unknown options
before the algorithm runs.

To plug in a new solver, decorate its entry point.  The example below is
the *actual* registration of the one-pass streaming solver (run here
against a scratch registry so it can execute as a doctest; the real call
further down in this module targets the global one):

>>> from repro.core.streaming import stream_kcenter
>>> from repro.solvers.registry import SolverRegistry, register_solver
>>> scratch = SolverRegistry()
>>> register_solver(
...     "stream",
...     kind="sequential",
...     summary="one-pass streaming doubling algorithm (Charikar et al.)",
...     aliases=("streaming", "doubling", "charikar"),
...     approx_factor=8.0,
...     shared=("seed", "evaluate"),
...     options=("shuffle", "batch_size"),
...     registry=scratch,
... )(stream_kcenter) is stream_kcenter   # decorator returns fn unchanged
True
>>> scratch.get("doubling").name, scratch.get("stream").approx_factor
('stream', 8.0)

where ``stream_kcenter(space, k, seed=None, shuffle=False,
batch_size=2048, evaluate=True)`` returns the standard
:class:`~repro.core.result.KCenterResult`.  After registration,
``repro.solve(space, k, algorithm="stream")``, the CLI (``repro-kcenter
solve stream``) and ``solve_many`` batches pick the solver up with no
further wiring.
"""

from __future__ import annotations

from repro.core.eim import eim
from repro.core.exact import exact_kcenter
from repro.core.gonzalez import gonzalez
from repro.core.hochbaum_shmoys import hochbaum_shmoys
from repro.core.mr_hochbaum_shmoys import mr_hochbaum_shmoys
from repro.core.mrg import mrg
from repro.core.streaming import stream_kcenter
from repro.solvers.config import SHARED_KNOBS
from repro.solvers.registry import REGISTRY, register_solver

__all__: list[str] = []

# Registrations are process-global and must run exactly once.  When this
# file is executed a second time under a *different* module name —
# ``python -m doctest src/repro/solvers/catalog.py`` does exactly that,
# after its own import chain has already loaded the canonical
# ``repro.solvers.catalog`` — re-registering would raise "already
# registered", so the decorator degrades to a no-op instead.
if "gon" in REGISTRY:  # pragma: no cover - double-execution guard

    def register_solver(*args, **kwargs):  # noqa: F811
        del args, kwargs
        return lambda fn: fn

#: Shared-knob surface of the MapReduce family (mrg / mrhs / eim): the
#: full set — every cluster knob SolveConfig normalises is accepted by
#: each of these solvers' signatures.
_MAPREDUCE_KNOBS = SHARED_KNOBS

register_solver(
    "gon",
    kind="sequential",
    summary="Gonzalez farthest-first traversal (paper's GON baseline)",
    aliases=("gonzalez", "farthest_first"),
    approx_factor=2.0,
    shared=("seed",),
    options=("first_center",),
)(gonzalez)

register_solver(
    "mrg",
    kind="mapreduce",
    summary="MapReduce Gonzalez, paper Algorithm 1 (4-approx in two rounds)",
    aliases=("mapreduce_gonzalez", "mr_gonzalez"),
    approx_factor=4.0,
    shared=_MAPREDUCE_KNOBS,
    options=("partitioner", "max_rounds"),
)(mrg)

register_solver(
    "eim",
    kind="mapreduce",
    summary="Ene-Im-Moseley iterative sampling with the paper's phi knob",
    aliases=("ene_im_moseley", "iterative_sampling"),
    approx_factor=10.0,
    shared=_MAPREDUCE_KNOBS,
    options=(
        "params",
        "eps",
        "phi",
        "sample_coeff",
        "pivot_coeff",
        "threshold_coeff",
        "legacy_removal",
        "max_iterations",
    ),
)(eim)

register_solver(
    "hs",
    kind="sequential",
    summary="Hochbaum-Shmoys bottleneck 2-approximation (small n)",
    aliases=("hochbaum_shmoys",),
    approx_factor=2.0,
)(hochbaum_shmoys)

register_solver(
    "mrhs",
    kind="mapreduce",
    summary="MapReduce Hochbaum-Shmoys (paper's future-work adaptation)",
    aliases=("mr_hochbaum_shmoys", "mr_hs"),
    approx_factor=8.0,
    shared=_MAPREDUCE_KNOBS,
    options=("partitioner",),
)(mr_hochbaum_shmoys)

register_solver(
    "stream",
    kind="sequential",
    summary="one-pass streaming doubling algorithm (Charikar et al.)",
    aliases=("streaming", "doubling", "charikar"),
    approx_factor=8.0,
    shared=("seed", "evaluate"),
    options=("shuffle", "batch_size"),
)(stream_kcenter)

register_solver(
    "exact",
    kind="exact",
    summary="brute-force optimal oracle (tiny instances, testing)",
    aliases=("exact_kcenter", "bruteforce"),
    approx_factor=1.0,
)(exact_kcenter)
