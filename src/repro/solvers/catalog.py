"""Registration of the built-in k-center solvers.

Importing this module (done by :mod:`repro.solvers` itself) populates the
global registry with the six algorithms the repository implements.  Each
entry records exactly the keyword surface of the underlying function, so
:class:`~repro.solvers.config.SolveConfig` can reject unknown options
before the algorithm runs.

To plug in a new solver, decorate its entry point::

    from repro.solvers import register_solver

    @register_solver(
        "stream",
        kind="sequential",
        summary="one-pass streaming 8-approximation",
        shared=("seed",),
        options=("buffer_size",),
    )
    def stream_kcenter(space, k, seed=None, buffer_size=1024):
        ...

and ``repro.solve(space, k, algorithm="stream")``, the CLI and
``solve_many`` batches pick it up with no further wiring.
"""

from __future__ import annotations

from repro.core.eim import eim
from repro.core.exact import exact_kcenter
from repro.core.gonzalez import gonzalez
from repro.core.hochbaum_shmoys import hochbaum_shmoys
from repro.core.mr_hochbaum_shmoys import mr_hochbaum_shmoys
from repro.core.mrg import mrg
from repro.solvers.config import SHARED_KNOBS
from repro.solvers.registry import register_solver

__all__: list[str] = []

#: Shared-knob surface of the MapReduce family (mrg / mrhs / eim): the
#: full set — every cluster knob SolveConfig normalises is accepted by
#: each of these solvers' signatures.
_MAPREDUCE_KNOBS = SHARED_KNOBS

register_solver(
    "gon",
    kind="sequential",
    summary="Gonzalez farthest-first traversal (paper's GON baseline)",
    aliases=("gonzalez", "farthest_first"),
    approx_factor=2.0,
    shared=("seed",),
    options=("first_center",),
)(gonzalez)

register_solver(
    "mrg",
    kind="mapreduce",
    summary="MapReduce Gonzalez, paper Algorithm 1 (4-approx in two rounds)",
    aliases=("mapreduce_gonzalez", "mr_gonzalez"),
    approx_factor=4.0,
    shared=_MAPREDUCE_KNOBS,
    options=("partitioner", "max_rounds"),
)(mrg)

register_solver(
    "eim",
    kind="mapreduce",
    summary="Ene-Im-Moseley iterative sampling with the paper's phi knob",
    aliases=("ene_im_moseley", "iterative_sampling"),
    approx_factor=10.0,
    shared=_MAPREDUCE_KNOBS,
    options=(
        "params",
        "eps",
        "phi",
        "sample_coeff",
        "pivot_coeff",
        "threshold_coeff",
        "legacy_removal",
        "max_iterations",
    ),
)(eim)

register_solver(
    "hs",
    kind="sequential",
    summary="Hochbaum-Shmoys bottleneck 2-approximation (small n)",
    aliases=("hochbaum_shmoys",),
    approx_factor=2.0,
)(hochbaum_shmoys)

register_solver(
    "mrhs",
    kind="mapreduce",
    summary="MapReduce Hochbaum-Shmoys (paper's future-work adaptation)",
    aliases=("mr_hochbaum_shmoys",),
    approx_factor=8.0,
    shared=_MAPREDUCE_KNOBS,
    options=("partitioner",),
)(mr_hochbaum_shmoys)

register_solver(
    "exact",
    kind="exact",
    summary="brute-force optimal oracle (tiny instances, testing)",
    aliases=("exact_kcenter", "bruteforce"),
    approx_factor=1.0,
)(exact_kcenter)
