"""Simulated stand-ins for the paper's two UCI data sets.

We have no network access, so the real POKER HAND and KDD CUP 1999 files
cannot be downloaded.  Both are replaced by generators that reproduce the
*geometry the k-center algorithms actually see* (schema, value ranges,
scale structure and cluster/outlier composition); DESIGN.md records the
substitution rationale per the repository's substitution rule.

POKER HAND
----------
The UCI training set is 25,010 rows of 10 integer attributes: five cards,
each a (suit in 1..4, rank in 1..13) pair, dealt without replacement from
one deck.  :func:`poker_hand` deals exactly such hands.  Euclidean
distances on this encoding range up to ``sqrt(5 * (3^2 + 12^2)) ~ 27.7``,
matching the paper's reported solution values (8.4-19.4 over k).

KDD CUP 1999 (10% sample)
-------------------------
The real file is 494,021 network connections with 38 numeric features whose
scales span ten decades (byte counts up to ~10^9) and whose rows are
dominated by a couple of huge attack clusters (smurf ~57%, neptune ~22%)
plus rare outlier connections.  Figure 1's log-scale solution values
(10^4..10^9) are driven by exactly two properties: the heavy-tailed byte
columns and the dominated cluster structure.  :func:`kddcup99` generates a
Zipf-weighted mixture of "traffic type" clusters; each cluster fixes a
log-scale profile for the three byte/duration columns and a profile for the
bounded count/rate columns, points jitter around it log-normally, and a
small fraction of extreme-transfer outliers reaches ~10^9 bytes.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.utils.rng import SeedLike, as_generator

__all__ = ["poker_hand", "kddcup99", "POKER_N", "KDD_N"]

#: Size of the UCI POKER HAND training set used by the paper.
POKER_N = 25_010
#: Size of the KDD CUP 1999 10% sample used by the paper.
KDD_N = 494_021


def poker_hand(n: int = POKER_N, seed: SeedLike = None) -> np.ndarray:
    """Deal ``n`` five-card hands; return the UCI 10-column encoding.

    Columns are ``(S1, R1, S2, R2, ..., S5, R5)`` with suits in 1..4 and
    ranks in 1..13; cards within a hand are distinct (dealt from one
    52-card deck), as in the real data.  Column order within a hand is the
    deal order, not sorted — again as in the real file.
    """
    if n <= 0:
        raise DatasetError(f"dataset size must be positive, got {n}")
    rng = as_generator(seed)
    # Deal 5 distinct card ids in 0..51 per hand, vectorised: draw random
    # keys and take the positions of the 5 smallest per row.
    keys = rng.random((n, 52))
    cards = np.argpartition(keys, 5, axis=1)[:, :5]
    suits = cards // 13 + 1  # 1..4
    ranks = cards % 13 + 1  # 1..13
    out = np.empty((n, 10), dtype=np.float64)
    out[:, 0::2] = suits
    out[:, 1::2] = ranks
    return out


def kddcup99(
    n: int = KDD_N,
    n_clusters: int = 23,
    n_features: int = 38,
    outlier_fraction: float = 2e-4,
    seed: SeedLike = None,
    return_labels: bool = False,
):
    """Generate an n-point KDD-CUP-like connection table.

    Parameters
    ----------
    n:
        Number of connections (the paper's sample is 494,021; benches
        default to a scaled-down size — see EXPERIMENTS.md).
    n_clusters:
        Number of traffic/attack types (the real data has 23 classes).
    n_features:
        Numeric feature count (the real data has 38 numeric columns).
    outlier_fraction:
        Fraction of connections given extreme byte counts (up to ~10^9),
        the rows that dominate the k-center objective at small k.
    """
    if n <= 0:
        raise DatasetError(f"dataset size must be positive, got {n}")
    if n_clusters <= 1:
        raise DatasetError(f"n_clusters must be >= 2, got {n_clusters}")
    if n_features < 4:
        raise DatasetError(f"n_features must be >= 4, got {n_features}")
    if not 0.0 <= outlier_fraction < 1.0:
        raise DatasetError(
            f"outlier_fraction must be in [0, 1), got {outlier_fraction}"
        )
    rng = as_generator(seed)

    # Zipf-like cluster weights: two dominant attack types, a long tail.
    raw = 1.0 / np.arange(1, n_clusters + 1) ** 1.6
    weights = raw / raw.sum()
    labels = rng.choice(n_clusters, size=n, p=weights)

    points = np.empty((n, n_features), dtype=np.float64)

    # --- columns 0..2: duration / src_bytes / dst_bytes (heavy-tailed) ---
    # Each cluster has a log10-scale profile; points jitter log-normally.
    log_profile = rng.uniform(0.0, 5.5, size=(n_clusters, 3))  # 1 .. ~3*10^5
    jitter = rng.normal(0.0, 0.5, size=(n, 3))
    # Ordinary traffic is capped at 10^7 bytes; only the explicit outlier
    # rows below exceed it (they are what dominates the small-k objective).
    points[:, :3] = np.minimum(10.0 ** (log_profile[labels] + jitter), 1e7 - 1.0)

    # --- columns 3..5: connection counts in 0..511 (bounded integers) ---
    count_profile = rng.uniform(0.0, 511.0, size=(n_clusters, 3))
    counts = count_profile[labels] + rng.normal(0.0, 10.0, size=(n, 3))
    points[:, 3:6] = np.clip(np.rint(counts), 0, 511)

    # --- remaining columns: rates/flags in [0, 1] per cluster profile ----
    rest = n_features - 6
    rate_profile = rng.uniform(0.0, 1.0, size=(n_clusters, rest))
    rates = rate_profile[labels] + rng.normal(0.0, 0.05, size=(n, rest))
    points[:, 6:] = np.clip(rates, 0.0, 1.0)

    # --- extreme-transfer outliers: the 10^7..10^9-byte rows -------------
    n_out = int(round(outlier_fraction * n))
    if n_out:
        which = rng.choice(n, size=n_out, replace=False)
        col = rng.integers(1, 3, size=n_out)  # src_bytes or dst_bytes
        points[which, col] = 10.0 ** rng.uniform(7.0, 9.0, size=n_out)

    return (points, labels) if return_labels else points
