"""Dataset generators and registry (system S7).

Synthetic families exactly as Section 7.3 describes them
(:mod:`repro.data.synthetic`):

* **UNIF** — n points uniform in a two-dimensional square;
* **GAU** — k' cluster centers uniform in a cube, points assigned to
  clusters uniformly at random with Gaussian displacement (sigma = 1/10);
* **UNB** — like GAU but with roughly half the points in one cluster.

Simulated stand-ins for the two UCI data sets
(:mod:`repro.data.realistic`), with the substitution rationale in
DESIGN.md:

* **POKER HAND** — 25,010 hands, 10 integer attributes (5x suit 1-4,
  rank 1-13);
* **KDD CUP 1999 (10%)** — heavy-tailed network-connection features with
  a dominated cluster structure.

:mod:`repro.data.registry` maps experiment-facing names to generators.
"""

from repro.data.registry import (
    DATASETS,
    STREAMABLE,
    Dataset,
    make_dataset,
    make_sharded,
    make_stream,
)
from repro.data.realistic import kddcup99, poker_hand
from repro.data.synthetic import gau, unb, unif

__all__ = [
    "Dataset",
    "DATASETS",
    "STREAMABLE",
    "make_dataset",
    "make_sharded",
    "make_stream",
    "unif",
    "gau",
    "unb",
    "poker_hand",
    "kddcup99",
]
