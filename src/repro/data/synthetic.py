"""Synthetic data families from Section 7.3 of the paper.

Scale conventions
-----------------
The paper says GAU centers live in a "unit cube" with in-cluster sigma of
1/10, yet reports GAU solution values like 96.04 (k=2) alongside 0.961
(k=25): inter-cluster distances on the order of 100 and in-cluster radii on
the order of 1.  Those magnitudes are only consistent with centers drawn
from a cube of side ~100 and *absolute* sigma 0.1, so that is our default
(``scale=100.0``, ``sigma=0.1``); both are parameters.  UNIF's side length
defaults to 100: Gonzalez at k=2 lands at ~0.9x the side on a uniform
square, and side 100 reproduces the reported value range (91.3 at k=2
down to 9.14 at k=100 for n = 10^5) almost exactly.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError
from repro.utils.rng import SeedLike, as_generator

__all__ = ["unif", "gau", "unb", "clustered_points"]


def _check_n(n: int) -> None:
    if n <= 0:
        raise DatasetError(f"dataset size must be positive, got {n}")


def unif(n: int, side: float = 100.0, dim: int = 2, seed: SeedLike = None) -> np.ndarray:
    """UNIF: ``n`` points uniform in a ``dim``-dimensional cube of side ``side``.

    The paper uses the two-dimensional square; ``dim`` is exposed for
    ablations.
    """
    _check_n(n)
    if side <= 0:
        raise DatasetError(f"side must be positive, got {side}")
    if dim <= 0:
        raise DatasetError(f"dim must be positive, got {dim}")
    rng = as_generator(seed)
    return rng.uniform(0.0, side, size=(n, dim))


def clustered_points(
    n: int,
    centers: np.ndarray,
    weights: np.ndarray,
    sigma: float,
    seed: SeedLike = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Points drawn around ``centers`` with mixture ``weights``.

    Returns ``(points, labels)`` where ``labels`` are the generating
    cluster ids (ground truth for diagnostics; the algorithms never see
    them).
    """
    _check_n(n)
    centers = np.asarray(centers, dtype=np.float64)
    if centers.ndim != 2 or not len(centers):
        raise DatasetError(f"centers must be a non-empty 2-D array, got {centers.shape}")
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != (len(centers),) or (weights < 0).any() or weights.sum() == 0:
        raise DatasetError("weights must be non-negative, one per center, not all zero")
    if sigma < 0:
        raise DatasetError(f"sigma must be >= 0, got {sigma}")
    rng = as_generator(seed)
    labels = rng.choice(len(centers), size=n, p=weights / weights.sum())
    points = centers[labels] + rng.normal(0.0, sigma, size=(n, centers.shape[1]))
    return points, labels


def gau(
    n: int,
    k_prime: int = 25,
    dim: int = 3,
    scale: float = 100.0,
    sigma: float = 0.1,
    seed: SeedLike = None,
    return_labels: bool = False,
):
    """GAU: ``k_prime`` uniform cluster centers, balanced Gaussian clusters.

    "The k' cluster centers ... are uniformly randomly generated in a unit
    cube.  The n points are distributed into these clusters uniformly at
    random ...  Distance from points to the cluster center follows a
    Gaussian distribution with sigma = 1/10."  (Section 7.3; see the module
    docstring for the scale convention.)
    """
    _check_n(n)
    if k_prime <= 0:
        raise DatasetError(f"k_prime must be positive, got {k_prime}")
    rng = as_generator(seed)
    centers = rng.uniform(0.0, scale, size=(k_prime, dim))
    weights = np.ones(k_prime)
    points, labels = clustered_points(n, centers, weights, sigma, seed=rng)
    return (points, labels) if return_labels else points


def unb(
    n: int,
    k_prime: int = 25,
    dim: int = 3,
    scale: float = 100.0,
    sigma: float = 0.1,
    heavy_fraction: float = 0.5,
    seed: SeedLike = None,
    return_labels: bool = False,
):
    """UNB: like GAU but "around half of the points are in a single cluster".

    ``heavy_fraction`` of the mass goes to cluster 0; the remainder is
    uniform over the other ``k_prime - 1`` clusters.
    """
    _check_n(n)
    if k_prime <= 1:
        raise DatasetError(f"UNB needs k_prime >= 2, got {k_prime}")
    if not 0.0 < heavy_fraction < 1.0:
        raise DatasetError(f"heavy_fraction must be in (0, 1), got {heavy_fraction}")
    rng = as_generator(seed)
    centers = rng.uniform(0.0, scale, size=(k_prime, dim))
    weights = np.full(k_prime, (1.0 - heavy_fraction) / (k_prime - 1))
    weights[0] = heavy_fraction
    points, labels = clustered_points(n, centers, weights, sigma, seed=rng)
    return (points, labels) if return_labels else points
