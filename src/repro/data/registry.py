"""Named dataset registry used by the experiment harness and benches.

Every workload in the paper's evaluation maps to a registry name plus
parameters; :func:`make_dataset` is the single entry point the harness
calls, returning a :class:`Dataset` (points + provenance metadata).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.data.realistic import kddcup99, poker_hand
from repro.data.synthetic import gau, unb, unif
from repro.errors import DatasetError
from repro.metric.euclidean import EuclideanSpace
from repro.utils.rng import SeedLike

__all__ = [
    "Dataset",
    "DATASETS",
    "STREAMABLE",
    "make_dataset",
    "make_stream",
    "make_sharded",
]


@dataclass
class Dataset:
    """A concrete point set plus the parameters that produced it."""

    name: str
    points: np.ndarray
    params: dict[str, Any] = field(default_factory=dict)

    @property
    def n(self) -> int:
        return self.points.shape[0]

    @property
    def dim(self) -> int:
        return self.points.shape[1]

    def space(self, **kwargs) -> EuclideanSpace:
        """Euclidean metric space over the points (the paper's setting)."""
        return EuclideanSpace(self.points, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dataset({self.name!r}, n={self.n}, dim={self.dim}, params={self.params})"


def _make_unif(n: int, seed: SeedLike, **kw) -> np.ndarray:
    return unif(n, seed=seed, **kw)


def _make_gau(n: int, seed: SeedLike, k_prime: int = 25, **kw) -> np.ndarray:
    return gau(n, k_prime=k_prime, seed=seed, **kw)


def _make_unb(n: int, seed: SeedLike, k_prime: int = 25, **kw) -> np.ndarray:
    return unb(n, k_prime=k_prime, seed=seed, **kw)


def _make_poker(n: int, seed: SeedLike, **kw) -> np.ndarray:
    return poker_hand(n, seed=seed, **kw)


def _make_kdd(n: int, seed: SeedLike, **kw) -> np.ndarray:
    return kddcup99(n, seed=seed, **kw)


#: name -> generator(n, seed, **params) -> points
DATASETS: dict[str, Callable[..., np.ndarray]] = {
    "unif": _make_unif,
    "gau": _make_gau,
    "unb": _make_unb,
    "poker": _make_poker,
    "kddcup": _make_kdd,
}

#: Families with a chunked out-of-core generator (see :func:`make_stream`).
STREAMABLE = ("unif", "gau", "unb")


def make_stream(
    name: str,
    n: int,
    seed: SeedLike = None,
    chunk_size: int | None = None,
    **params,
):
    """Instantiate a registered synthetic family as a chunked stream.

    The out-of-core twin of :func:`make_dataset`: returns a
    :class:`~repro.store.generate.GeneratorStream` that produces the
    points chunk by chunk (write it to disk with ``stream.to_npy(path)``
    or solve it directly via ``repro.solve(stream, ...)``) without ever
    materialising an ``(n, dim)`` array.  Streamed datasets are
    reproducible functions of ``(name, n, params, seed)`` and independent
    of ``chunk_size``, but are distinct instances from the one-shot
    :func:`make_dataset` draws (per-chunk seeding; see
    :mod:`repro.store.generate`).

    Only the synthetic families stream (:data:`STREAMABLE`); the
    realistic workloads are sampled from fixed corpora and should be
    written to ``.npy`` once and re-read through
    :class:`~repro.store.stream.MemmapStream` instead.
    """
    if name not in STREAMABLE:
        raise DatasetError(
            f"dataset {name!r} has no chunked generator; "
            f"streamable families: {sorted(STREAMABLE)}"
        )
    from repro.store.generate import GeneratorStream

    return GeneratorStream(name, n, seed=seed, chunk_size=chunk_size, **params)


def make_sharded(
    name: str,
    n: int,
    path,
    shards: int,
    seed: SeedLike = None,
    chunk_size: int | None = None,
    overwrite: bool = False,
    **params,
):
    """Write a registered synthetic family as a sharded directory.

    The distributed-input twin of :func:`make_stream`: the family is
    generated chunk by chunk and split into ``shards`` chunk-aligned
    ``.npy`` groups under ``path``
    (:func:`repro.store.sharded.write_shards` — one chunk resident at a
    time, never ``(n, dim)``).  Returns the re-opened
    :class:`~repro.store.sharded.ShardedStream`; ``repro.solve(k=...,
    data=path)`` and the MapReduce solvers consume it per shard.  The
    dataset's bits are exactly those of ``make_stream(name, n, seed,
    chunk_size, **params)`` — sharding is layout, not identity.
    """
    from repro.store.sharded import write_shards

    stream = make_stream(name, n, seed=seed, chunk_size=chunk_size, **params)
    return write_shards(stream, path, shards, overwrite=overwrite)


def make_dataset(name: str, n: int, seed: SeedLike = None, **params) -> Dataset:
    """Instantiate a registered dataset.

    Parameters
    ----------
    name:
        One of ``unif``, ``gau``, ``unb``, ``poker``, ``kddcup``.
    n:
        Number of points.
    seed:
        Generator seed (experiments derive one per graph instance).
    params:
        Family-specific parameters (``k_prime`` for gau/unb, etc.).
    """
    try:
        factory = DATASETS[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; registered: {sorted(DATASETS)}"
        ) from None
    points = factory(n, seed, **params)
    return Dataset(name=name, points=points, params={"n": n, **params})
