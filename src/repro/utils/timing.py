"""Low-overhead wall-clock timing.

The MapReduce simulation (paper Section 7.1) wall-clocks each reducer's work
and takes the **maximum** per round as the simulated parallel time.  The
:class:`Timer` here is the single primitive used for all of that accounting,
so every measured number in the benchmarks flows through one code path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer", "timed"]


@dataclass
class Timer:
    """Accumulating stopwatch based on :func:`time.perf_counter`.

    Usage::

        t = Timer()
        with t:
            work()
        with t:            # accumulates
            more_work()
        t.elapsed          # total seconds across both blocks

    A Timer may be re-entered any number of times but is not re-entrant
    (no nesting of the *same* instance).
    """

    elapsed: float = 0.0
    _started_at: float | None = field(default=None, repr=False)

    def start(self) -> "Timer":
        if self._started_at is not None:
            raise RuntimeError("Timer is already running")
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop the clock; return the duration of the just-ended interval."""
        if self._started_at is None:
            raise RuntimeError("Timer is not running")
        interval = time.perf_counter() - self._started_at
        self._started_at = None
        self.elapsed += interval
        return interval

    @property
    def running(self) -> bool:
        return self._started_at is not None

    def reset(self) -> None:
        if self._started_at is not None:
            raise RuntimeError("cannot reset a running Timer")
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def timed(fn, *args, **kwargs):
    """Run ``fn(*args, **kwargs)``; return ``(result, seconds)``."""
    t0 = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - t0
