"""Bounded-memory block iteration.

All pairwise-distance work in :mod:`repro.metric.kernels` is blocked so that
no intermediate exceeds a configurable byte budget, per the cache-effects
guidance in the HPC guides: grouped, contiguous access beats both an n×n
materialisation (memory blow-up) and per-row Python loops (interpreter
overhead).
"""

from __future__ import annotations

from typing import Iterator

__all__ = [
    "chunk_bounds",
    "chunk_slices",
    "resolve_chunk_size",
    "DEFAULT_BLOCK_BYTES",
]

#: Default byte budget for one temporary distance block. 32 MiB keeps blocks
#: comfortably inside last-level cache pressure limits on commodity CPUs
#: while amortising BLAS call overhead; bench_kernels.py sweeps this choice.
DEFAULT_BLOCK_BYTES = 32 * 2**20


def chunk_bounds(total: int, chunk: int) -> Iterator[tuple[int, int]]:
    """Yield ``(start, stop)`` pairs covering ``range(total)`` in steps of ``chunk``.

    The final pair may span fewer than ``chunk`` elements.  ``total == 0``
    yields nothing.  This is the offset-based twin of :func:`chunk_slices`
    for consumers that need plain integers (the :mod:`repro.store` layer
    keys chunks and global offsets on them) rather than slice objects.
    """
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    if chunk <= 0:
        raise ValueError(f"chunk must be positive, got {chunk}")
    for start in range(0, total, chunk):
        yield start, min(start + chunk, total)


def chunk_slices(total: int, chunk: int) -> Iterator[slice]:
    """Yield contiguous slices covering ``range(total)`` in steps of ``chunk``.

    The final slice may be shorter.  ``total == 0`` yields nothing.
    """
    for start, stop in chunk_bounds(total, chunk):
        yield slice(start, stop)


def resolve_chunk_size(
    other_rows: int,
    itemsize: int = 8,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
    minimum: int = 16,
) -> int:
    """Rows per block so a ``rows x other_rows`` temp stays under the budget.

    Parameters
    ----------
    other_rows:
        Number of columns of the temporary (e.g. the current number of
        centers when computing a points-by-centers distance block).
    itemsize:
        Bytes per element of the temporary (8 for float64).
    block_bytes:
        Byte budget for the temporary block.
    minimum:
        Never return fewer rows than this, even if the budget is exceeded —
        degenerate tiny blocks would drown in per-call overhead.
    """
    if other_rows < 0:
        raise ValueError(f"other_rows must be >= 0, got {other_rows}")
    if itemsize <= 0 or block_bytes <= 0 or minimum <= 0:
        raise ValueError("itemsize, block_bytes and minimum must be positive")
    if other_rows == 0:
        return max(minimum, block_bytes // itemsize)
    return max(minimum, block_bytes // (itemsize * other_rows))
