"""Deterministic random-number discipline.

Every stochastic routine in :mod:`repro` accepts a *seed-like* argument: a
``None`` (fresh entropy), an ``int``, a :class:`numpy.random.SeedSequence`,
or an existing :class:`numpy.random.Generator`.  Internally we normalise
through :func:`as_generator`.

Parallel (simulated-)machines each get an *independent* child stream via
:func:`spawn_generators`, which uses ``SeedSequence.spawn``.  This guarantees
that results do not depend on the order in which reducers are simulated, and
that re-running an experiment with the same master seed is bit-identical.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

__all__ = [
    "SeedLike",
    "as_generator",
    "spawn_seeds",
    "spawn_generators",
    "SeedStream",
]

SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Normalise any seed-like value into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged (shared state), which
    lets a caller thread one stream through several sub-routines.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        f"seed must be None, int, SeedSequence or Generator, got {type(seed).__name__}"
    )


def _as_seed_sequence(seed: SeedLike) -> np.random.SeedSequence:
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if isinstance(seed, np.random.Generator):
        # Derive a child sequence from the generator's own stream. This keeps
        # spawn_* usable when the caller only holds a Generator; the parent
        # stream advances by one draw, which is documented behaviour.
        return np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    return np.random.SeedSequence(seed)


def spawn_seeds(seed: SeedLike, n: int) -> list[np.random.SeedSequence]:
    """Spawn ``n`` independent child seed-sequences from ``seed``."""
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of seeds (n={n})")
    return _as_seed_sequence(seed).spawn(n)


def spawn_generators(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Spawn ``n`` independent generators (one per simulated machine)."""
    return [np.random.default_rng(s) for s in spawn_seeds(seed, n)]


class SeedStream:
    """Stateful spawner of independent child seeds from one root.

    Iterative algorithms (EIM's main loop) need *fresh* independent seeds
    every iteration; calling :func:`spawn_seeds` repeatedly with the same
    root would hand back identical children.  A ``SeedStream`` wraps one
    :class:`numpy.random.SeedSequence` and keeps its spawn counter, so
    successive calls yield disjoint streams while remaining fully
    deterministic in the root seed.
    """

    def __init__(self, seed: SeedLike = None):
        self._root = _as_seed_sequence(seed)

    def seeds(self, n: int) -> list[np.random.SeedSequence]:
        """Next ``n`` child seed-sequences (never repeats earlier ones)."""
        if n < 0:
            raise ValueError(f"cannot spawn a negative number of seeds (n={n})")
        return self._root.spawn(n)

    def generators(self, n: int) -> list[np.random.Generator]:
        """Next ``n`` independent generators."""
        return [np.random.default_rng(s) for s in self.seeds(n)]

    def generator(self) -> np.random.Generator:
        """Next single independent generator."""
        return self.generators(1)[0]
