"""Plain-text table rendering for benchmark and experiment reports.

The benchmark harness regenerates every table of the paper as an aligned
ASCII table (optionally GitHub-flavoured markdown) so the console output can
be compared side-by-side with the published numbers.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "format_value"]


def format_value(value: Any, sig: int = 4) -> str:
    """Format a cell like the paper does: ~4 significant figures.

    The paper prints e.g. ``96.04``, ``0.961``, ``9.144`` — i.e. four
    significant digits with no exponent for moderate magnitudes.  Integers
    and strings pass through unchanged.
    """
    if isinstance(value, bool) or value is None:
        return str(value)
    if isinstance(value, str):
        return value
    if isinstance(value, int):
        return str(value)
    try:
        x = float(value)
    except (TypeError, ValueError):
        return str(value)
    if x != x:  # NaN
        return "nan"
    if x == 0:
        return "0.000"
    ax = abs(x)
    if ax >= 1e6 or ax < 1e-3:
        return f"{x:.{sig - 1}e}"
    from math import floor, log10

    decimals = max(0, sig - 1 - floor(log10(ax)))
    return f"{x:.{decimals}f}"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
    markdown: bool = False,
    sig: int = 4,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned text table."""
    str_rows = [[format_value(cell, sig=sig) for cell in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        body = " | ".join(c.rjust(w) for c, w in zip(cells, widths))
        return f"| {body} |" if markdown else body

    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    if markdown:
        lines.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    else:
        lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)
