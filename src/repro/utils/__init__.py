"""Shared utilities: RNG discipline, timing, chunk iteration, tables.

These helpers encode the HPC-Python idioms used throughout the package:

* deterministic, spawnable random streams (:mod:`repro.utils.rng`);
* wall-clock timers with negligible overhead (:mod:`repro.utils.timing`);
* bounded-memory block iteration for cache-friendly kernels
  (:mod:`repro.utils.chunking`);
* plain-text table rendering for benchmark reports
  (:mod:`repro.utils.tables`).
"""

from repro.utils.chunking import chunk_slices, resolve_chunk_size
from repro.utils.rng import as_generator, spawn_generators, spawn_seeds
from repro.utils.tables import format_table
from repro.utils.timing import Timer

__all__ = [
    "Timer",
    "as_generator",
    "spawn_generators",
    "spawn_seeds",
    "chunk_slices",
    "resolve_chunk_size",
    "format_table",
]
