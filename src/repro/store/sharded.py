"""Sharded point sets: a directory of per-shard ``.npy`` chunk groups.

The paper's MapReduce premise is data that *arrives* partitioned — each
machine holds a shard, no machine (and in particular no driver) ever
holds the whole point set.  This module is that layout on disk:

```
shards/
├── manifest.json       n, dim, chunk grid, shard table
├── shard-00000.npy     rows [0, r1)   — whole chunks
├── shard-00001.npy     rows [r1, r2)
└── ...
```

Shard boundaries are **chunk-aligned** (every shard holds whole chunks of
the global uniform grid, except that the final chunk of the data may be
short), so the global chunk grid of the directory is exactly the grid of
the stream it was written from: :func:`write_shards` followed by
:class:`ShardedStream` round-trips every chunk bit-for-bit.  Balance is
in chunks — shard sizes differ by at most one chunk, and when there are
fewer chunks than requested shards the trailing shards are empty (they
appear in the manifest with no file).

Three consumption patterns:

* **whole-dataset** — ``ShardedStream(dir)`` is an ordinary
  :class:`~repro.store.stream.PointStream`; wrap it in a
  :class:`~repro.store.space.ChunkedMetricSpace` (``repro.solve(k=...,
  data="shards/")`` does this) and any solver runs out-of-core over the
  directory;
* **per-shard** — ``stream.shard(j)`` opens shard ``j`` as its own
  independent stream (a plain :class:`~repro.store.stream.MemmapStream`
  over that one file), picklable and re-openable inside a process-pool
  worker with no reference to the rest of the directory;
* **machine views** — ``stream.shard_bounds`` feeds the shard-aligned
  mode of :func:`repro.mapreduce.partition.block_partition`, so MapReduce
  partitions can snap to shard files and every reducer touches one file.

Only the manifest is read at open time; shard files are memory-mapped
lazily on first access and validated against the manifest then.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_right
from pathlib import Path

import numpy as np

from repro.errors import DatasetError, InvalidParameterError
from repro.store.stream import ArrayStream, MemmapStream, PointStream

__all__ = ["ShardedStream", "write_shards", "MANIFEST_NAME", "SHARD_FORMAT"]

MANIFEST_NAME = "manifest.json"
SHARD_FORMAT = "repro-sharded-v1"


def _shard_row_bounds(n: int, chunk_size: int, shards: int) -> np.ndarray:
    """Chunk-aligned row offsets of ``shards`` balanced shard groups.

    The same linspace-then-snap rule as ``block_partition(align=...)``:
    shard sizes differ by at most one chunk; with fewer chunks than
    shards the trailing shards are empty.
    """
    n_chunks = -(-n // chunk_size)
    chunk_bounds = np.linspace(0, n_chunks, shards + 1).astype(np.intp)
    return np.minimum(chunk_bounds * chunk_size, n)


def write_shards(
    stream: PointStream, path: str | Path, shards: int, overwrite: bool = False
) -> "ShardedStream":
    """Split ``stream`` into a sharded directory; return it re-opened.

    One pass over the stream, one chunk resident at a time (each shard
    file is written through ``open_memmap``, exactly like
    :func:`~repro.store.stream.write_npy`).  The written chunk grid is
    the stream's own, so the round-tripped directory serves bit-identical
    chunks.

    Parameters
    ----------
    stream:
        Any non-empty :class:`~repro.store.stream.PointStream`.
    path:
        Target directory (created if missing).
    shards:
        Number of shard groups (positive; may exceed the chunk count, in
        which case trailing shards are empty manifest entries).
    overwrite:
        Allow replacing an existing manifest in ``path``.
    """
    if shards <= 0:
        raise InvalidParameterError(f"shards must be positive, got {shards}")
    if stream.n == 0:
        raise DatasetError("refusing to shard an empty stream")
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    manifest_path = path / MANIFEST_NAME
    if manifest_path.exists() and not overwrite:
        raise DatasetError(
            f"{manifest_path} already exists; pass overwrite=True to replace it"
        )

    cs = stream.chunk_size
    bounds = _shard_row_bounds(stream.n, cs, shards)
    entries = []
    for j in range(shards):
        row0, row1 = int(bounds[j]), int(bounds[j + 1])
        if row1 == row0:
            entries.append({"file": None, "offset": row0, "rows": 0})
            continue
        fname = f"shard-{j:05d}.npy"
        out = np.lib.format.open_memmap(
            path / fname, mode="w+", dtype=np.float64, shape=(row1 - row0, stream.dim)
        )
        try:
            for c in range(row0 // cs, -(-row1 // cs)):
                lo, hi = stream.chunk_span(c)
                out[lo - row0 : hi - row0] = stream.read_chunk(c)
            out.flush()
        finally:
            del out  # close the memmap promptly (Windows-safe file handling)
        entries.append({"file": fname, "offset": row0, "rows": row1 - row0})

    manifest = {
        "format": SHARD_FORMAT,
        "n": stream.n,
        "dim": stream.dim,
        "chunk_size": cs,
        "shards": entries,
    }
    manifest_path.write_text(json.dumps(manifest, indent=2) + "\n")
    return ShardedStream(path)


class ShardedStream(PointStream):
    """Stream over a sharded directory written by :func:`write_shards`.

    Serves the directory's global chunk grid: chunk ``i`` is read from
    the single shard file that holds it (boundaries are chunk-aligned by
    construction), memory-mapped lazily and copied out one block at a
    time — never a whole shard, never ``(n, dim)``.

    Parameters
    ----------
    path:
        The shard directory, or its ``manifest.json``.
    chunk_size:
        Must be ``None`` or equal to the manifest's chunk size; the grid
        is part of the on-disk layout and cannot be implicitly re-chunked.
    """

    def __init__(self, path: str | Path, chunk_size: int | None = None):
        path = Path(path)
        if path.name == MANIFEST_NAME:
            path = path.parent
        self.path = path
        manifest_path = path / MANIFEST_NAME
        if not manifest_path.exists():
            raise DatasetError(f"no shard manifest at {manifest_path}")
        try:
            manifest = json.loads(manifest_path.read_text())
        except json.JSONDecodeError as exc:
            raise DatasetError(f"unreadable shard manifest {manifest_path}: {exc}") from None
        if manifest.get("format") != SHARD_FORMAT:
            raise DatasetError(
                f"{manifest_path} has format {manifest.get('format')!r}; "
                f"expected {SHARD_FORMAT!r}"
            )
        n, dim, cs = manifest["n"], manifest["dim"], manifest["chunk_size"]
        if chunk_size is not None and chunk_size != cs:
            raise InvalidParameterError(
                f"sharded dataset has chunk_size={cs} on disk; "
                f"cannot implicitly re-chunk to {chunk_size}"
            )
        entries = manifest["shards"]
        offsets = [int(e["offset"]) for e in entries]
        rows = [int(e["rows"]) for e in entries]
        stops = [o + r for o, r in zip(offsets, rows)]
        if offsets != sorted(offsets) or stops != offsets[1:] + [n]:
            raise DatasetError(
                f"{manifest_path}: shard table is not a contiguous cover of "
                f"[0, {n})"
            )
        # Non-empty shards must start on the chunk grid (an empty trailing
        # entry may sit at n itself, which need not be a chunk multiple).
        if any(o % cs for o, r in zip(offsets, rows) if r):
            raise DatasetError(
                f"{manifest_path}: shard offsets are not chunk-aligned"
            )
        super().__init__(int(n), int(dim), int(cs))
        self._files = [e["file"] for e in entries]
        self._offsets = offsets
        self._rows = rows
        self._maps: dict[int, np.ndarray] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    @property
    def n_shards(self) -> int:
        """Number of shard entries (including empty ones)."""
        return len(self._files)

    @property
    def shard_bounds(self) -> np.ndarray:
        """Row offsets of the shard boundaries: ``n_shards + 1`` values
        from 0 to ``n`` — the ``boundaries`` argument for shard-aligned
        partitioning."""
        return np.asarray([*self._offsets, self._n], dtype=np.intp)

    def shard_span(self, j: int) -> tuple[int, int]:
        """Global ``(start, stop)`` row range of shard ``j``."""
        if not 0 <= j < self.n_shards:
            raise InvalidParameterError(
                f"shard {j} out of range for {self.n_shards} shards"
            )
        return self._offsets[j], self._offsets[j] + self._rows[j]

    def shard(self, j: int) -> PointStream:
        """Shard ``j`` as an independently-openable stream.

        A :class:`~repro.store.stream.MemmapStream` over the shard's own
        file (picklable; re-opens in process-pool workers), or an empty
        in-memory stream for manifest entries with no rows.
        """
        start, stop = self.shard_span(j)
        if stop == start:
            return ArrayStream(
                np.empty((0, self.dim)), chunk_size=self._chunk_size
            )
        return MemmapStream(self.path / self._files[j], chunk_size=self._chunk_size)

    # ------------------------------------------------------------------ #
    def _map(self, j: int) -> np.ndarray:
        with self._lock:
            mm = self._maps.get(j)
            if mm is None:
                mm = np.load(self.path / self._files[j], mmap_mode="r")
                if mm.shape != (self._rows[j], self.dim):
                    raise DatasetError(
                        f"shard file {self._files[j]} has shape {mm.shape}; "
                        f"manifest says ({self._rows[j]}, {self.dim})"
                    )
                self._maps[j] = mm
            return mm

    def read_chunk(self, i: int) -> np.ndarray:
        start, stop = self.chunk_span(i)
        # Chunk-aligned shards: the whole chunk lives in one shard.
        j = bisect_right(self._offsets, start) - 1
        off = self._offsets[j]
        return np.ascontiguousarray(
            self._map(j)[start - off : stop - off], dtype=np.float64
        )

    def __reduce__(self):
        # Memmaps (and locks) do not pickle; re-open from the directory.
        return (type(self), (str(self.path),))
