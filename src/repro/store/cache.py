"""Shared distance-matrix cache for repeated small-space solves.

``solve_many`` runs every (algorithm, seed) cell of a batch against the
*same* space, and experiment grids revisit the same space across many
cells — each run re-deriving the same distances from scratch.  For spaces
small enough that the full ``(n, n)`` matrix is affordable,
:class:`DistanceCache` computes it once and hands every subsequent run a
:class:`~repro.metric.precomputed.PrecomputedSpace` view over the shared
matrix.

Accounting is unchanged by design: the precomputed view charges the same
``|I| * |J|`` scalar-evaluation tariff to its
:class:`~repro.metric.base.DistCounter` as the coordinate space would, so
per-run ``dist_evals`` records — the paper's operation counts — are
identical with and without the cache.  Cache effectiveness is tracked
separately: the cache's own :attr:`hits`/:attr:`misses` totals, and the
per-run ``cache_hits``/``cache_misses`` fields on ``DistCounter``.

Numerics: the matrix is built through the space's own ``cross`` kernel
(then diagonal-zeroed — ``d(i, i) = 0`` exactly, where the GEMM expansion
can leave round-off dust).  Matrix-served distances agree with on-demand
evaluation to kernel round-off (identical bits for the block kernels,
~1e-12 relative for the fused point kernel); selections on non-degenerate
inputs are unaffected.

Thread-safe: ``solve_many`` fans runs out over thread pools; get-or-build
is serialised per cache.  Under a *process* pool the cache is pickled
into each worker — prewarmed entries still hit, but hit counts observed
in workers do not flow back to the parent.
"""

from __future__ import annotations

import copy
import threading
from collections import OrderedDict

import numpy as np

from repro.errors import InvalidParameterError
from repro.metric.base import DistCounter, MetricSpace
from repro.metric.precomputed import PrecomputedSpace
from repro.obs import metrics as _metrics

__all__ = ["DistanceCache"]

_M_CACHE_HITS = _metrics.counter(
    "repro_cache_hits_total", "Distance-matrix cache lookups served from cache"
)
_M_CACHE_MISSES = _metrics.counter(
    "repro_cache_misses_total", "Distance-matrix cache lookups that built a matrix"
)


class DistanceCache:
    """Capped cache of full distance matrices, keyed on space *content*.

    Keys are the spaces' :meth:`~repro.metric.base.MetricSpace.fingerprint`
    — a digest over metric family, shape and data bytes — so two
    separately-constructed equal spaces (e.g. the same dataset rebuilt
    across harness re-instantiations, or an in-memory space and its
    out-of-core twin) share one matrix.  A space that cannot fingerprint
    itself (a custom subclass without data access) falls back to object
    identity, with the space pinned inside the entry so a recycled
    ``id()`` can never serve a stale matrix to an unrelated space.

    Parameters
    ----------
    max_points:
        Spaces with ``n`` above this are never cached (the matrix is
        O(n^2); 2048 points = 32 MiB of float64).
    max_entries:
        Matrices kept at once; least-recently-used entries are evicted.
    max_bytes:
        Optional cap on the *total* bytes of all cached matrices.
        Least-recently-used entries are evicted until the total fits, so
        a long-lived process (the :mod:`repro.serve` daemon keeps one
        cache for its whole lifetime) holds bounded memory no matter how
        many distinct spaces pass through.  A space whose matrix alone
        exceeds the cap is simply not cacheable — :meth:`space_for`
        passes it through untouched, exactly like an over-``max_points``
        space.  ``None`` (default) keeps the entry-count bound only.
    """

    def __init__(
        self,
        max_points: int = 2048,
        max_entries: int = 8,
        max_bytes: int | None = None,
    ):
        if max_points <= 0:
            raise InvalidParameterError(
                f"max_points must be positive, got {max_points}"
            )
        if max_entries <= 0:
            raise InvalidParameterError(
                f"max_entries must be positive, got {max_entries}"
            )
        if max_bytes is not None and max_bytes <= 0:
            raise InvalidParameterError(
                f"max_bytes must be positive or None, got {max_bytes}"
            )
        self.max_points = int(max_points)
        self.max_entries = int(max_entries)
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        self.hits = 0
        self.misses = 0
        # fingerprint (or identity key) -> (pin, matrix).  ``pin`` is None
        # for content keys; for the identity fallback it is the space
        # itself, kept alive so the id cannot be recycled out from under
        # the entry.
        self._entries: OrderedDict[
            object, tuple[MetricSpace | None, np.ndarray]
        ] = OrderedDict()
        self._lock = threading.Lock()

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]  # locks do not pickle (process-pool workers)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def cacheable(self, space: MetricSpace) -> bool:
        """Whether ``space`` is small enough to cache."""
        if not 0 < space.n <= self.max_points:
            return False
        if self.max_bytes is not None and 8 * space.n * space.n > self.max_bytes:
            return False
        return True

    def _total_bytes(self) -> int:
        return sum(matrix.nbytes for _, matrix in self._entries.values())

    def matrix_for(self, space: MetricSpace) -> np.ndarray:
        """The full distance matrix of ``space``, computed at most once
        per distinct *content* (see the class docstring for the keying).
        Raises for spaces above the size cap.
        """
        return self._matrix_for(space)[0]

    def _matrix_for(self, space: MetricSpace) -> tuple[np.ndarray, bool]:
        """(matrix, was_hit) — get-or-build, serialised per cache."""
        if not self.cacheable(space):
            raise InvalidParameterError(
                f"space of size {space.n} exceeds the cache cap "
                f"(max_points={self.max_points})"
            )
        fp = space.fingerprint()
        key = ("id", id(space)) if fp is None else fp
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and (fp is not None or entry[0] is space):
                self._entries.move_to_end(key)
                self.hits += 1
                _M_CACHE_HITS.inc()
                return entry[1], True
            self.misses += 1
            _M_CACHE_MISSES.inc()
            matrix = self._build(space)
            self._entries[key] = (space if fp is None else None, matrix)
            while len(self._entries) > self.max_entries or (
                self.max_bytes is not None
                and len(self._entries) > 1
                and self._total_bytes() > self.max_bytes
            ):
                self._entries.popitem(last=False)
            return matrix, False

    @staticmethod
    def _build(space: MetricSpace) -> np.ndarray:
        # Build through a shadow copy with a throwaway counter: the
        # one-off n^2 construction must not pollute any run's accounting.
        shadow = copy.copy(space)
        shadow.counter = DistCounter()
        matrix = shadow.cross(None, None)
        np.fill_diagonal(matrix, 0.0)
        return matrix

    def space_for(
        self, space: MetricSpace, counter: DistCounter | None = None
    ) -> MetricSpace:
        """A solve-ready view of ``space`` backed by the shared matrix.

        Returns a :class:`PrecomputedSpace` over the cached matrix when
        ``space`` is cacheable, else ``space`` itself (callers need no
        size check of their own).  ``counter`` becomes the view's private
        accounting sink; its ``cache_hits``/``cache_misses`` fields
        record whether this call reused an existing matrix.
        """
        if not self.cacheable(space):
            return space
        matrix, hit = self._matrix_for(space)
        view = PrecomputedSpace(matrix, counter=counter, validate=False)
        view.counter.count_cache(hit)
        return view

    def stats(self) -> dict[str, int]:
        """Flat snapshot for logs and batch roll-ups."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._entries),
            "bytes": self._total_bytes(),
            "max_points": self.max_points,
        }

    def clear(self) -> None:
        """Drop all cached matrices (counters are kept)."""
        with self._lock:
            self._entries.clear()
