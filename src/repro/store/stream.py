"""Chunked point streams: the out-of-core data interface.

A :class:`PointStream` is a finite sequence of points exposed as fixed-size
coordinate *chunks* plus their global row offsets.  It is the contract
between data that may not fit in memory (``.npy`` files, synthetic
generators) and the consumers that only ever need one block at a time (the
:class:`~repro.store.space.ChunkedMetricSpace` adapter, ``to_npy`` export,
chunk-aligned MapReduce partitioning).

The chunk grid is uniform: chunk ``i`` covers global rows
``[i * chunk_size, min((i + 1) * chunk_size, n))``, so any global index
maps to (chunk, offset-within-chunk) by integer division — random access
never needs an index structure.  Two access styles:

* **sequential** — ``for block, offset in stream:`` yields every chunk
  once, in order (the one-pass pattern of the streaming solver and of
  ``to_npy``);
* **random** — ``read_chunk(i)`` returns one chunk by number (the gather
  pattern of :class:`~repro.store.space.ChunkedMetricSpace`).

Implementations must be *deterministic*: ``read_chunk(i)`` returns the
same bits every call, so a stream can be re-read (second evaluation pass)
and cached chunk-by-chunk.
"""

from __future__ import annotations

import abc
from pathlib import Path
from typing import Iterator, Union

import numpy as np

from repro.errors import DatasetError, InvalidParameterError
from repro.metric import kernels
from repro.utils.chunking import chunk_bounds, resolve_chunk_size

__all__ = [
    "PointStream",
    "ArrayStream",
    "MemmapStream",
    "SliceStream",
    "as_stream",
    "default_chunk_rows",
    "write_npy",
    "DEFAULT_CHUNK_BYTES",
]

#: Default byte budget for one stream chunk.  Deliberately much smaller
#: than the kernels' temporary-block budget (``DEFAULT_BLOCK_BYTES``):
#: a chunk is *resident coordinate data* (several live at once in the
#: chunk LRU, plus copies at the read boundary), not a transient, so a
#: 32 MiB chunk would make out-of-core peak memory approach the file
#: size for medium inputs.  4 MiB keeps peak O(a few chunks) while
#: still amortising read/generate overhead.
DEFAULT_CHUNK_BYTES = 4 * 2**20

#: What :func:`as_stream` accepts: an existing stream, a coordinate
#: array(-like), or a path to a ``.npy`` file.
StreamLike = Union["PointStream", np.ndarray, str, Path]


def default_chunk_rows(
    dim: int, itemsize: int = 8, chunk_bytes: int = DEFAULT_CHUNK_BYTES
) -> int:
    """Rows per chunk so one ``(rows, dim)`` block stays under the budget."""
    if dim <= 0:
        raise InvalidParameterError(f"dim must be positive, got {dim}")
    return resolve_chunk_size(dim, itemsize=itemsize, block_bytes=chunk_bytes)


class PointStream(abc.ABC):
    """Abstract chunked view of an ``(n, dim)`` point set.

    Subclasses call ``super().__init__(n, dim, chunk_size)`` and implement
    :meth:`read_chunk`; everything else (iteration, bounds, export) is
    derived.  ``chunk_size`` defaults to :func:`default_chunk_rows` when
    the subclass passes ``None``.
    """

    def __init__(self, n: int, dim: int, chunk_size: int | None):
        if n < 0:
            raise InvalidParameterError(f"stream size must be >= 0, got {n}")
        if dim <= 0:
            raise InvalidParameterError(f"stream dim must be positive, got {dim}")
        if chunk_size is None:
            chunk_size = default_chunk_rows(dim)
        if chunk_size <= 0:
            raise InvalidParameterError(
                f"chunk_size must be positive, got {chunk_size}"
            )
        self._n = int(n)
        self._dim = int(dim)
        self._chunk_size = int(chunk_size)

    # ------------------------------------------------------------------ #
    # geometry of the chunk grid
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Total number of points."""
        return self._n

    @property
    def dim(self) -> int:
        """Coordinate dimension."""
        return self._dim

    @property
    def chunk_size(self) -> int:
        """Nominal rows per chunk (the final chunk may be shorter)."""
        return self._chunk_size

    @property
    def n_chunks(self) -> int:
        """Number of chunks covering the stream."""
        return -(-self._n // self._chunk_size) if self._n else 0

    @property
    def dtype(self) -> np.dtype:
        """Element dtype of the chunks :meth:`read_chunk` returns."""
        return np.dtype(np.float64)

    def __len__(self) -> int:
        return self._n

    def chunk_span(self, i: int) -> tuple[int, int]:
        """Global ``(start, stop)`` row range of chunk ``i``."""
        if not 0 <= i < self.n_chunks:
            raise InvalidParameterError(
                f"chunk {i} out of range for a stream of {self.n_chunks} chunks"
            )
        start = i * self._chunk_size
        return start, min(start + self._chunk_size, self._n)

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def read_chunk(self, i: int) -> np.ndarray:
        """Chunk ``i`` as a ``(rows, dim)`` array (deterministic per call)."""

    def __iter__(self) -> Iterator[tuple[np.ndarray, int]]:
        """Yield every ``(chunk_array, global_offset)`` pair, in order."""
        for i, (start, _stop) in enumerate(chunk_bounds(self._n, self._chunk_size)):
            yield self.read_chunk(i), start

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #
    def to_npy(self, path: str | Path) -> Path:
        """Write the stream to ``path`` as a ``.npy`` file, one chunk at a
        time — peak extra memory is one chunk, never ``(n, dim)``."""
        return write_npy(self, path)


def write_npy(stream: PointStream, path: str | Path) -> Path:
    """Stream ``stream`` into a ``.npy`` file without materialising it.

    Uses :func:`numpy.lib.format.open_memmap` so only the chunk being
    written is ever resident.  Returns the path, ready for
    :class:`MemmapStream`.
    """
    path = Path(path)
    if stream.n == 0:
        raise DatasetError("refusing to write an empty stream to disk")
    out = np.lib.format.open_memmap(
        path, mode="w+", dtype=np.float64, shape=(stream.n, stream.dim)
    )
    try:
        for block, offset in stream:
            out[offset : offset + block.shape[0]] = block
        out.flush()
    finally:
        del out  # close the memmap promptly (Windows-safe file handling)
    return path


class ArrayStream(PointStream):
    """Stream view over an in-memory ``(n, dim)`` array.

    The adapter that lets everything written against :class:`PointStream`
    also run on ordinary arrays (and the reference implementation the
    out-of-core parity tests compare against).  Chunks are views — no
    copies.
    """

    def __init__(self, points, chunk_size: int | None = None):
        pts = kernels.as_points(points)
        super().__init__(pts.shape[0], pts.shape[1], chunk_size)
        self.points = pts

    def read_chunk(self, i: int) -> np.ndarray:
        start, stop = self.chunk_span(i)
        return self.points[start:stop]


class MemmapStream(PointStream):
    """Stream over an on-disk ``.npy`` file via :func:`numpy.load` memmap.

    Only the chunk being read is materialised (a copy of that block);
    the file itself is mapped read-only and never loaded wholesale.  The
    file must hold a 2-D real-valued array; chunks are converted to
    C-contiguous float64 at the read boundary.
    """

    def __init__(self, path: str | Path, chunk_size: int | None = None):
        self.path = Path(path)
        if not self.path.exists():
            raise DatasetError(f"no such dataset file: {self.path}")
        try:
            mm = np.load(self.path, mmap_mode="r")
        except ValueError as exc:
            raise DatasetError(f"not a loadable .npy file: {self.path} ({exc})") from None
        if not isinstance(mm, np.ndarray):
            # np.load returns an NpzFile for .npz archives
            raise DatasetError(
                f"{self.path} is an archive, not a single-array .npy file"
            )
        if mm.ndim != 2:
            raise DatasetError(
                f"{self.path} holds a {mm.ndim}-D array; point files must be (n, dim)"
            )
        if not np.issubdtype(mm.dtype, np.number) or np.issubdtype(mm.dtype, np.complexfloating):
            raise DatasetError(
                f"{self.path} has non-real dtype {mm.dtype}; point files must be numeric"
            )
        super().__init__(mm.shape[0], mm.shape[1], chunk_size)
        self._mm = mm
        self._file_dtype = mm.dtype

    @property
    def file_dtype(self) -> np.dtype:
        """Dtype as stored on disk (chunks are served as float64)."""
        return self._file_dtype

    def read_chunk(self, i: int) -> np.ndarray:
        start, stop = self.chunk_span(i)
        # np.ascontiguousarray copies exactly this block out of the map;
        # nothing outside [start, stop) is touched.
        return np.ascontiguousarray(self._mm[start:stop], dtype=np.float64)

    def __reduce__(self):
        # Memmaps do not pickle; re-open from the path (process-pool tasks).
        return (type(self), (str(self.path), self._chunk_size))


class SliceStream(PointStream):
    """Contiguous row-range view ``[start, stop)`` of another stream.

    This is the *machine view* of a larger dataset: a MapReduce reducer
    whose partition is a contiguous global row range can consume exactly
    its rows out-of-core, re-chunked onto the view's own grid (nominal
    chunk size inherited from the parent).  Chunks that straddle parent
    chunk boundaries are stitched from at most two parent reads; nothing
    beyond one parent chunk is ever resident here.

    Picklable whenever the parent stream is — a process-pool worker
    re-opens the parent backing (memmap, shard directory, generator) and
    slices it locally, so coordinate data never crosses the pickle
    boundary for file-backed parents.
    """

    def __init__(self, parent: PointStream, start: int, stop: int):
        if not 0 <= start <= stop <= parent.n:
            raise InvalidParameterError(
                f"slice [{start}, {stop}) out of range for a stream of {parent.n} rows"
            )
        super().__init__(stop - start, parent.dim, parent.chunk_size)
        self.parent = parent
        self.start = int(start)
        self.stop = int(stop)

    def read_chunk(self, i: int) -> np.ndarray:
        lo, hi = self.chunk_span(i)
        lo, hi = lo + self.start, hi + self.start
        cs = self.parent.chunk_size
        b_first, b_last = lo // cs, (hi - 1) // cs
        parts = []
        for b in range(b_first, b_last + 1):
            b_start = b * cs
            block = self.parent.read_chunk(b)
            parts.append(block[max(lo, b_start) - b_start : hi - b_start])
        if len(parts) == 1:
            # Real copy (a row slice is already contiguous, so
            # ascontiguousarray would alias): a cached view chunk must
            # not pin the whole parent chunk it was cut from.
            return parts[0].copy()
        return np.concatenate(parts, axis=0)


def as_stream(data: StreamLike, chunk_size: int | None = None) -> PointStream:
    """Coerce stream-like input into a :class:`PointStream`.

    * a stream passes through unchanged (``chunk_size`` must then be
      ``None`` or match — re-chunking an existing stream is not implicit);
    * a ``str`` / :class:`~pathlib.Path` to a ``.npy`` file opens a
      :class:`MemmapStream`; a directory (or its ``manifest.json``) opens
      a :class:`~repro.store.sharded.ShardedStream`;
    * anything array-like wraps in an :class:`ArrayStream`.
    """
    if isinstance(data, PointStream):
        if chunk_size is not None and chunk_size != data.chunk_size:
            raise InvalidParameterError(
                f"stream already has chunk_size={data.chunk_size}; "
                f"cannot implicitly re-chunk to {chunk_size}"
            )
        return data
    if isinstance(data, (str, Path)):
        path = Path(data)
        if path.is_dir() or path.name == "manifest.json":
            from repro.store.sharded import ShardedStream

            return ShardedStream(path, chunk_size=chunk_size)
        return MemmapStream(data, chunk_size=chunk_size)
    return ArrayStream(data, chunk_size=chunk_size)
