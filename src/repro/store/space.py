"""Out-of-core Euclidean metric space over a :class:`PointStream`.

:class:`ChunkedMetricSpace` implements the full
:class:`~repro.metric.base.MetricSpace` contract while holding at most a
handful of chunks in memory: every primitive that touches "all points"
iterates the stream's chunk grid, and index-array arguments are gathered
chunk-by-chunk through a small LRU.  Nothing here ever allocates an
``(n, dim)`` or ``(n, n)`` array — the only full-length temporaries are
1-D (running minima, assignment output), exactly as in the in-memory
kernels.

Numerical contract: results are **bit-identical** to
:class:`~repro.metric.euclidean.EuclideanSpace` over the materialised
points.  All heavy math goes through the same :mod:`repro.metric.kernels`
functions, and every kernel used here is row-independent (per-row GEMM
expansion / running minima), so chunk granularity cannot change a single
output bit.  Distance-evaluation accounting is likewise identical: each
primitive charges ``|I| * |J|`` scalar evaluations to the shared
:class:`~repro.metric.base.DistCounter`, the same tariff
``EuclideanSpace`` applies.

Access-pattern guidance (mirrors the in-memory space):

* pass ``i_idx=None`` for whole-space sweeps — they stream chunk by
  chunk with bounded memory;
* small, hot index sets (the current centers) are served from a
  dedicated row cache, so re-gathering them per batch costs nothing even
  on regenerating streams;
* :meth:`local` *materialises* its subset as an in-memory
  ``EuclideanSpace`` — intended for partition-sized machine views
  (``n/m`` points), the MapReduce contract, not for the whole space.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Union

import numpy as np

from repro.errors import MetricError
from repro.metric import kernels
from repro.metric.base import DistCounter, MetricSpace, TaskCounter
from repro.metric.euclidean import EuclideanSpace, kernels_fingerprint
from repro.store.stream import PointStream, SliceStream, StreamLike, as_stream
from repro.utils.chunking import DEFAULT_BLOCK_BYTES, chunk_slices, resolve_chunk_size

__all__ = ["ChunkedMetricSpace", "as_space", "machine_view"]

SpaceLike = Union[MetricSpace, StreamLike]


class ChunkedMetricSpace(MetricSpace):
    """Euclidean :class:`MetricSpace` backed by a chunked point stream.

    Parameters
    ----------
    stream:
        A :class:`~repro.store.stream.PointStream` (or anything
        :func:`~repro.store.stream.as_stream` accepts: array, ``.npy``
        path).
    counter:
        Optional shared distance-evaluation counter.
    block_bytes:
        Memory budget per temporary distance block (forwarded to the
        chunked kernels, as in ``EuclideanSpace``).
    max_cached_chunks:
        Chunks kept hot in the LRU.  Two suffices for the sequential
        patterns; raise it for workloads that revisit a working set of
        chunks.
    max_cached_rows:
        Cap on the individual-row cache serving small hot index sets
        (centers).  Bounded, so memory stays O(chunks + rows), never O(n).
    """

    def __init__(
        self,
        stream: StreamLike,
        counter: DistCounter | None = None,
        block_bytes: int = DEFAULT_BLOCK_BYTES,
        max_cached_chunks: int = 2,
        max_cached_rows: int = 4096,
    ):
        stream = as_stream(stream)
        super().__init__(stream.n, counter)
        if max_cached_chunks < 1:
            raise MetricError(
                f"max_cached_chunks must be >= 1, got {max_cached_chunks}"
            )
        self.stream = stream
        self.block_bytes = int(block_bytes)
        self.max_cached_chunks = int(max_cached_chunks)
        self.max_cached_rows = int(max_cached_rows)
        # chunk index -> (coords float64 C-contiguous, per-row sq norms)
        self._chunks: OrderedDict[int, tuple[np.ndarray, np.ndarray]] = OrderedDict()
        # global row index -> (coords row, sq norm): the hot-center cache
        self._rows: OrderedDict[int, tuple[np.ndarray, float]] = OrderedDict()
        # Index sets at most this large are served row-by-row from the hot
        # cache (center snapshots, re-screened every batch); larger sets
        # (screening batches, partitions) go chunk-grouped instead.
        self._hot_threshold = min(256, self.max_cached_rows)
        # Re-entrant: _gather_hot holds the lock while _gather_bulk/_chunk
        # re-acquire it.  Shared (like the caches) across shallow copies,
        # so thread-pool batch runs serialise their cache mutations.
        self._lock = threading.RLock()

    @property
    def dim(self) -> int:
        """Coordinate dimension of the space."""
        return self.stream.dim

    def _compute_fingerprint(self) -> str:
        # Same tag family as EuclideanSpace: chunked results are
        # bit-identical to the in-memory kernels over the same points, so
        # equal data must fingerprint equally regardless of backing.
        # Reads every chunk once; the base class memoises the digest.
        return kernels_fingerprint(
            (self.n, self.dim),
            (self.stream.read_chunk(b) for b in range(self.stream.n_chunks)),
        )

    def range_view(
        self, start: int, stop: int, counter: DistCounter | None = None
    ) -> "ChunkedMetricSpace":
        """Out-of-core sub-space over the contiguous rows ``[start, stop)``.

        The machine-view twin of :meth:`local`: where ``local``
        materialises its subset, a range view stays chunked (a
        :class:`~repro.store.stream.SliceStream` over this space's
        stream), so a MapReduce reducer whose partition is a contiguous
        row range works out-of-core end to end.  The view has its own
        chunk caches and — unlike ``local`` — its *own* counter by
        default (reducer tasks report their evaluation counts back
        explicitly; see :class:`repro.mapreduce.tasks.TaskOutput`).
        """
        return ChunkedMetricSpace(
            SliceStream(self.stream, start, stop),
            counter=counter,
            block_bytes=self.block_bytes,
            max_cached_chunks=self.max_cached_chunks,
            max_cached_rows=self.max_cached_rows,
        )

    def release(self) -> None:
        """Drop the chunk and row caches (re-reads repopulate them).

        Reducer tasks call this when they finish so a round's worth of
        per-machine views does not pin one LRU of chunks each.
        """
        with self._lock:
            self._chunks.clear()
            self._rows.clear()

    def __copy__(self) -> "ChunkedMetricSpace":
        # Share the stream, caches and cache lock but allow the counter to
        # be swapped afterwards (the facade gives each batch run a private
        # counter).
        clone = object.__new__(type(self))
        clone.__dict__.update(self.__dict__)
        return clone

    def __getstate__(self):
        # Locks do not pickle (process-pool tasks); caches are dropped too
        # — workers rebuild them from the (re-openable) stream.
        state = self.__dict__.copy()
        del state["_lock"]
        state["_chunks"] = OrderedDict()
        state["_rows"] = OrderedDict()
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # chunk & row plumbing
    # ------------------------------------------------------------------ #
    def _chunk(self, b: int) -> tuple[np.ndarray, np.ndarray]:
        """Chunk ``b`` as (coords, squared norms), LRU-cached."""
        with self._lock:
            cached = self._chunks.get(b)
            if cached is not None:
                self._chunks.move_to_end(b)
                return cached
            coords = kernels.as_points(self.stream.read_chunk(b), f"chunk {b}")
            sq = np.einsum("ij,ij->i", coords, coords)
            self._chunks[b] = (coords, sq)
            while len(self._chunks) > self.max_cached_chunks:
                self._chunks.popitem(last=False)
            return coords, sq

    def _gather(self, idx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Coordinates and squared norms for an arbitrary index array.

        Grouped by chunk so each needed chunk is read once.  Small index
        sets go through (and populate) the row cache — the hot path for
        center sets re-screened on every batch.
        """
        if idx.size == 0:
            return np.empty((0, self.dim)), np.empty(0)
        if idx.size <= self._hot_threshold:
            return self._gather_hot(idx)
        return self._gather_bulk(idx)

    def _gather_bulk(self, idx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        cs = self.stream.chunk_size
        out = np.empty((idx.size, self.dim))
        sq_out = np.empty(idx.size)
        blocks = idx // cs
        for b in np.unique(blocks):
            mask = blocks == b
            coords, sq = self._chunk(int(b))
            local = idx[mask] - b * cs
            out[mask] = coords[local]
            sq_out[mask] = sq[local]
        return out, sq_out

    def _gather_hot(self, idx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        out = np.empty((idx.size, self.dim))
        sq_out = np.empty(idx.size)
        with self._lock:
            missing: list[int] = []
            for t, i in enumerate(idx):
                cached = self._rows.get(int(i))
                if cached is None:
                    missing.append(t)
                else:
                    out[t], sq_out[t] = cached
            if missing:
                miss_idx = idx[missing]
                coords, sq = self._gather_bulk(miss_idx)
                for t, i, row, s in zip(missing, miss_idx, coords, sq):
                    out[t], sq_out[t] = row, s
                    self._rows[int(i)] = (row.copy(), float(s))
                while len(self._rows) > self.max_cached_rows:
                    self._rows.popitem(last=False)
        return out, sq_out

    # ------------------------------------------------------------------ #
    # MetricSpace primitives
    # ------------------------------------------------------------------ #
    def dists_to(self, i_idx: np.ndarray | None, j: int) -> np.ndarray:
        i_idx = self._check(i_idx, "i_idx")
        if not 0 <= int(j) < self.n:
            raise MetricError(f"point index {j} out of range for n={self.n}")
        p, _ = self._gather(np.asarray([int(j)], dtype=np.intp))
        p = p[0]
        if i_idx is None:
            out = np.empty(self.n)
            for b in range(self.stream.n_chunks):
                start, stop = self.stream.chunk_span(b)
                coords, _ = self._chunk(b)
                out[start:stop] = kernels.dists_to_point(coords, p)
        else:
            x, _ = self._gather(i_idx)
            out = kernels.dists_to_point(x, p)
        self.counter.add(out.shape[0])
        return out

    def cross(self, i_idx: np.ndarray | None, j_idx: np.ndarray | None) -> np.ndarray:
        i_idx = self._check(i_idx, "i_idx")
        j_idx = self._check(j_idx, "j_idx")
        n_i, n_j = self._size(i_idx), self._size(j_idx)
        if n_i * n_j > kernels.MAX_DENSE_ELEMENTS:
            raise MetricError(
                f"cross({n_i}, {n_j}) exceeds the dense cap; "
                "use update_min_dists/nearest instead"
            )
        x, x_sq = self._gather_all() if i_idx is None else self._gather(i_idx)
        if j_idx is None:
            # one pass over the stream when both sides are "all points"
            y, y_sq = (x, x_sq) if i_idx is None else self._gather_all()
        else:
            y, y_sq = self._gather(j_idx)
        self.counter.add(n_i * n_j)
        out = kernels.sq_dists_block(x, y, x_sq, y_sq)
        np.sqrt(out, out=out)
        return out

    def _gather_all(self) -> tuple[np.ndarray, np.ndarray]:
        """All coordinates — only reachable under the dense-element cap
        (``cross`` on a small space, e.g. for distance-matrix caching)."""
        parts = [self._chunk(b) for b in range(self.stream.n_chunks)]
        if not parts:
            return np.empty((0, self.dim)), np.empty(0)
        coords = np.concatenate([c for c, _ in parts], axis=0)
        sq = np.concatenate([s for _, s in parts])
        return coords, sq

    def _x_segments(self, i_idx: np.ndarray | None):
        """Query points as (output slice, coords, sq norms) segments.

        ``None`` streams the chunk grid (bounded memory); an index array
        materialises its ``(len(i_idx), dim)`` gather — the documented
        contract for explicit index sets.
        """
        if i_idx is None:
            for b in range(self.stream.n_chunks):
                start, stop = self.stream.chunk_span(b)
                coords, sq = self._chunk(b)
                yield slice(start, stop), coords, sq
        else:
            x, x_sq = self._gather(i_idx)
            yield slice(0, x.shape[0]), x, x_sq

    def update_min_dists(
        self,
        current: np.ndarray,
        i_idx: np.ndarray | None,
        j_idx: np.ndarray | None,
    ) -> np.ndarray:
        i_idx = self._check(i_idx, "i_idx")
        j_idx = self._check(j_idx, "j_idx")
        n_i = self._size(i_idx)
        if current.shape != (n_i,):
            raise MetricError(
                f"current has shape {current.shape}, expected ({n_i},)"
            )
        n_j = self._size(j_idx)
        if n_j == 0:
            return current
        self.counter.add(n_i * n_j)
        if j_idx is None and self.stream.n_chunks > 1:
            # Full-space reference set: fold one reference chunk at a time
            # (running minima compose exactly) — never gathers (n, dim).
            # The fold computes through sq_dists_block directly rather
            # than kernels.update_min_dists, whose 1-row fused shortcut
            # would give a 1-row trailing chunk different bits than the
            # same column inside the in-memory space's whole-set GEMM.
            ws = kernels.workspace()  # blocks are folded before reuse
            for b in range(self.stream.n_chunks):
                y, y_sq = self._chunk(b)
                for out_sl, x, x_sq in self._x_segments(i_idx):
                    cur = current[out_sl]
                    x_rows = resolve_chunk_size(
                        y.shape[0], block_bytes=self.block_bytes
                    )
                    for sl in chunk_slices(x.shape[0], x_rows):
                        sq = kernels.sq_dists_block(x[sl], y, x_sq[sl], y_sq, ws=ws)
                        block_min = sq.min(axis=1, out=ws.take("rowmin", (sq.shape[0],)))
                        np.sqrt(block_min, out=block_min)
                        np.minimum(cur[sl], block_min, out=cur[sl])
            return current
        # Explicit reference set — or a single-chunk stream, where the
        # whole reference set reaches the kernel in one call exactly as
        # the in-memory space would pass it (1-row shortcut included).
        y, _ = (
            self._chunk(0) if j_idx is None else self._gather(j_idx)
        )
        for out_sl, x, _x_sq in self._x_segments(i_idx):
            kernels.update_min_dists(
                current[out_sl], x, y, block_bytes=self.block_bytes
            )
        return current

    def nearest(
        self, i_idx: np.ndarray | None, j_idx: np.ndarray | None
    ) -> tuple[np.ndarray, np.ndarray]:
        i_idx = self._check(i_idx, "i_idx")
        j_idx = self._check(j_idx, "j_idx")
        n_j = self._size(j_idx)
        if n_j == 0:
            raise MetricError("nearest requires a non-empty reference set")
        n_i = self._size(i_idx)
        self.counter.add(n_i * n_j)
        pos = np.empty(n_i, dtype=np.intp)
        dist = np.empty(n_i, dtype=np.float64)

        ws = kernels.workspace()  # blocks are argmin-consumed before reuse

        def _scan(out_sl, x, x_sq, y, y_sq):
            """Positions/dists within one reference block (the in-memory
            space's inner loop, over gathered or chunked queries)."""
            x_chunk = resolve_chunk_size(y.shape[0], block_bytes=self.block_bytes)
            p_out, d_out = pos[out_sl], dist[out_sl]
            for sl in chunk_slices(x.shape[0], x_chunk):
                sq = kernels.sq_dists_block(x[sl], y, x_sq[sl], y_sq, ws=ws)
                p = sq.argmin(axis=1)
                p_out[sl] = p
                d = sq[np.arange(sq.shape[0]), p]
                np.sqrt(d, out=d)
                d_out[sl] = d

        if j_idx is not None:
            y, y_sq = self._gather(j_idx)
            for out_sl, x, x_sq in self._x_segments(i_idx):
                _scan(out_sl, x, x_sq, y, y_sq)
            return pos, dist

        # Full-space reference set: running argmin over reference chunks
        # (strict < keeps the earliest minimum, matching a whole-row
        # argmin) — never gathers (n, dim).
        best_sq = np.full(n_i, np.inf)
        pos.fill(0)
        for out_sl, x, x_sq in self._x_segments(i_idx):
            b_sq, b_pos = best_sq[out_sl], pos[out_sl]
            for b in range(self.stream.n_chunks):
                offset = b * self.stream.chunk_size
                y, y_sq = self._chunk(b)
                x_chunk = resolve_chunk_size(
                    y.shape[0], block_bytes=self.block_bytes
                )
                for sl in chunk_slices(x.shape[0], x_chunk):
                    sq = kernels.sq_dists_block(x[sl], y, x_sq[sl], y_sq, ws=ws)
                    p = sq.argmin(axis=1)
                    d = sq[np.arange(sq.shape[0]), p]
                    better = d < b_sq[sl]
                    b_sq[sl] = np.where(better, d, b_sq[sl])
                    b_pos[sl] = np.where(better, p + offset, b_pos[sl])
        np.sqrt(best_sq, out=dist)
        return pos, dist

    def local(self, i_idx: np.ndarray) -> EuclideanSpace:
        """Compact **in-memory** sub-space over ``i_idx``.

        Materialises ``(len(i_idx), dim)`` coordinates — the MapReduce
        machine-view contract (a partition must fit on its machine).
        Shares this space's counter.
        """
        i_idx = self._check(i_idx, "i_idx")
        coords, _ = self._gather(i_idx)
        return EuclideanSpace(
            coords, counter=self.counter, block_bytes=self.block_bytes
        )


def machine_view(
    space: MetricSpace, idx: np.ndarray, counter: DistCounter | None = None
) -> MetricSpace:
    """The sub-space one simulated machine works on, with private accounting.

    A contiguous index range over a :class:`ChunkedMetricSpace` stays
    out-of-core (:meth:`ChunkedMetricSpace.range_view` over a stream
    slice — the sharded-input fast path, where the driver never gathers
    coordinate data); any other combination materialises via
    :meth:`~repro.metric.base.MetricSpace.local`.  Either way the view
    gets its own private counter (``counter``, or a fresh lock-free
    :class:`~repro.metric.base.TaskCounter` — the view is owned by one
    reducer task, so per-block locking buys nothing) instead of sharing
    the parent's, so a reducer task can run anywhere — including a
    process-pool worker — and report its evaluation count back
    explicitly, one locked fold per task.  Results are bit-identical
    between the two paths (the store layer's parity contract).
    """
    counter = TaskCounter() if counter is None else counter
    idx = np.asarray(idx, dtype=np.intp)
    if (
        isinstance(space, ChunkedMetricSpace)
        and idx.size
        and idx[-1] - idx[0] + 1 == idx.size
        and bool(np.all(np.diff(idx) == 1))
    ):
        return space.range_view(int(idx[0]), int(idx[-1]) + 1, counter=counter)
    local = space.local(idx)
    local.counter = counter
    return local


def as_space(data: SpaceLike, chunk_size: int | None = None) -> MetricSpace:
    """Coerce solve-facade input into a :class:`MetricSpace`.

    * a :class:`MetricSpace` passes through unchanged (``chunk_size``
      must then be left unset);
    * a :class:`~repro.store.stream.PointStream`, a ``.npy`` path, or a
      sharded directory (see :mod:`repro.store.sharded`) wraps in a
      :class:`ChunkedMetricSpace` (out-of-core);
    * anything array-like becomes an in-memory
      :class:`~repro.metric.euclidean.EuclideanSpace` — unless a
      ``chunk_size`` is given, which requests the chunked adapter over an
      :class:`~repro.store.stream.ArrayStream` instead.
    """
    if isinstance(data, MetricSpace):
        if chunk_size is not None:
            raise MetricError(
                "chunk_size cannot be applied to an existing MetricSpace"
            )
        return data
    from pathlib import Path

    if isinstance(data, (PointStream, str, Path)) or chunk_size is not None:
        return ChunkedMetricSpace(as_stream(data, chunk_size=chunk_size))
    return EuclideanSpace(data)
