"""Out-of-core dataset layer (system S7): chunked streams, mapped spaces.

The paper's premise is inputs too large for one machine, yet coordinate
arrays are the one thing the rest of the package assumed to be resident.
``repro.store`` removes that assumption:

:class:`~repro.store.stream.PointStream`
    The chunked-data contract — ``(chunk_array, global_offset)`` blocks
    over a uniform chunk grid with known ``n``/``dim``/``dtype``.
:class:`~repro.store.stream.ArrayStream` /
:class:`~repro.store.stream.MemmapStream` /
:class:`~repro.store.generate.GeneratorStream`
    In-memory, on-disk (``.npy`` via memmap, one block resident at a
    time), and never-materialised synthetic backings.
:class:`~repro.store.sharded.ShardedStream` / :func:`~repro.store.sharded.write_shards`
    The MapReduce input layout: a directory of chunk-aligned per-shard
    ``.npy`` groups + JSON manifest; each shard independently openable
    and picklable, the whole directory solvable as one stream
    (``solve(k=..., data="shards/")``), with reducers consuming
    per-shard views (:func:`~repro.store.space.machine_view`).
:class:`~repro.store.space.ChunkedMetricSpace`
    Full :class:`~repro.metric.base.MetricSpace` over any stream —
    bit-identical results and identical distance accounting to the
    in-memory Euclidean space, with bounded memory.
:class:`~repro.store.cache.DistanceCache`
    Shared small-space distance matrices for repeated-space batches
    (``solve_many(..., cache=...)``), keyed on content fingerprints so
    equal spaces share entries across re-instantiations.
:func:`~repro.store.shm.shared_space` / :class:`~repro.store.shm.SharedPoints`
    Zero-copy transport of *in-memory* spaces into process-pool
    workers: coordinates published once to ``multiprocessing``
    shared memory (temp-``.npy`` spill fallback), workers attach by
    name instead of unpickling the rows per task.

Typical use::

    import repro
    from repro.store import GeneratorStream

    stream = GeneratorStream("gau", n=2_000_000, seed=0)   # never materialised
    path = stream.to_npy("gau2m.npy")                       # chunked write
    result = repro.solve(path, k=25, algorithm="stream")    # out-of-core solve
"""

from repro.store.cache import DistanceCache
from repro.store.generate import DEFAULT_GEN_BLOCK, GeneratorStream
from repro.store.sharded import ShardedStream, write_shards
from repro.store.shm import SharedPoints, publish_points, shared_space
from repro.store.space import ChunkedMetricSpace, as_space, machine_view
from repro.store.stream import (
    ArrayStream,
    MemmapStream,
    PointStream,
    SliceStream,
    as_stream,
    default_chunk_rows,
    write_npy,
)

__all__ = [
    "PointStream",
    "ArrayStream",
    "MemmapStream",
    "SliceStream",
    "GeneratorStream",
    "ShardedStream",
    "ChunkedMetricSpace",
    "DistanceCache",
    "SharedPoints",
    "as_stream",
    "as_space",
    "machine_view",
    "publish_points",
    "shared_space",
    "write_shards",
    "write_npy",
    "default_chunk_rows",
    "DEFAULT_GEN_BLOCK",
]
