"""Zero-copy transport of in-memory spaces into process-pool workers.

The process backend pickles every task, and a task over an in-memory
:class:`~repro.metric.euclidean.EuclideanSpace` used to drag the space's
``(rows, d)`` coordinate bytes through the pipe — once per task, every
round.  This module removes the copy: the driver **publishes** the
coordinate block once per job into a named
:mod:`multiprocessing.shared_memory` segment, and the space then pickles
as a tiny :class:`SharedPoints` *handle*; workers attach to the segment
by name and map the same physical pages read-only.  Out-of-core spaces
never needed this — their streams already pickle by re-opening files
(``MemmapStream.__reduce__``, shard directories) — so the transport
composes with, rather than replaces, that path: each backing crosses the
boundary by reference, never by value.

Mechanics and guarantees:

* **Publish once, attach once.**  :func:`shared_space` publishes at job
  start and unlinks in its ``finally``; workers cache attachments per
  process (a small LRU), so a 50-task round costs 50 handle pickles
  (~100 bytes each) and at most one attach + one squared-norm pass per
  worker — not 50 coordinate copies.
* **Same bits.**  The segment holds the exact float64 bytes of
  ``space.points``; workers recompute the cached squared norms with the
  same ``einsum`` the driver ran, so every kernel sees identical inputs
  and the executor-parity contract (bit-identical centers, radius,
  dist_evals) is untouched.
* **Spill fallback.**  Hosts where POSIX shared memory is unavailable or
  exhausted (tiny ``/dev/shm`` in containers) fall back to spilling the
  block into a temporary ``.npy`` that workers memory-map — still one
  copy on disk instead of one per task.  ``REPRO_SHM_TRANSPORT=spill``
  forces the fallback; ``REPRO_SHM_TRANSPORT=off`` disables publishing
  entirely (the solvers then revert to shipping prebuilt machine views).
* **Cleanup.**  The driver owns the segment: handles unpublish in the
  job's ``finally`` and an ``atexit`` sweep catches anything a crashed
  run left behind.  Attached workers keep their mapping valid after the
  unlink (POSIX semantics); their cached attachments are dropped LRU-so
  long-lived persistent pools do not accumulate dead segments.
"""

from __future__ import annotations

import atexit
import copy
import os
import tempfile
from collections import OrderedDict
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

import numpy as np

__all__ = ["SharedPoints", "publish_points", "shared_space", "transport_mode"]

#: Environment switch: ``shm`` (default), ``spill`` (always use the
#: temp-file fallback) or ``off`` (never publish).
_ENV = "REPRO_SHM_TRANSPORT"

#: Worker-side attachment cache size (segments, not bytes).  A worker in
#: a long-lived persistent pool sees one segment per job; keeping a few
#: lets interleaved batches share attachments while bounding how long a
#: dead segment's pages stay mapped.
_MAX_ATTACHED = 8

# name/path -> cache entry {"points": ndarray, "sq": ndarray | None, "seg": ...}
_attached: OrderedDict[str, dict] = OrderedDict()

# token -> SharedMemory segment published (and so owned) by this process.
_published: dict[str, object] = {}


def transport_mode() -> str:
    """The active transport mode: ``shm``, ``spill`` or ``off``.

    Unrecognised ``REPRO_SHM_TRANSPORT`` values fall back to the default
    with a warning — silently re-enabling the transport someone tried to
    disable with a typo ("none", "disabled") would be worse than noise.
    """
    raw = os.environ.get(_ENV)
    if raw is None:
        return "shm"
    mode = raw.strip().lower()
    if mode not in ("shm", "spill", "off"):
        import warnings

        warnings.warn(
            f"{_ENV}={raw!r} is not one of shm/spill/off; using 'shm'",
            RuntimeWarning,
            stacklevel=2,
        )
        return "shm"
    return mode


def _attach_segment(token: str):
    """Open an existing segment *without* claiming ownership of it.

    Python 3.13's ``track=False`` tells the resource tracker this process
    merely attaches.  On older interpreters attaching registers the name
    a second time; with fork-started pools (Linux default) workers share
    the driver's tracker process and the set-typed registry makes the
    duplicate harmless — the driver's ``unlink`` unregisters it exactly
    once.  (Spawn-started workers on old interpreters own a separate
    tracker and may print a benign "leaked shared_memory" notice at
    exit; there is no portable pre-3.13 fix that does not race the
    owner's registration.)
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(name=token, track=False)
    except TypeError:  # Python < 3.13: no track= keyword
        return shared_memory.SharedMemory(name=token)


class SharedPoints:
    """Picklable handle to one published ``(n, d)`` float64 block.

    ``kind`` is ``"shm"`` (a named shared-memory segment) or ``"spill"``
    (a temporary ``.npy`` file).  The handle is plain data — pickling it
    moves ~100 bytes regardless of ``n`` — and both sides resolve it
    through a per-process cache, so repeated attachment is free.
    """

    __slots__ = ("kind", "token", "shape")

    def __init__(self, kind: str, token: str, shape: tuple[int, int]):
        self.kind = kind
        self.token = token
        self.shape = (int(shape[0]), int(shape[1]))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SharedPoints({self.kind}:{self.token}, shape={self.shape})"

    def __getstate__(self):
        return (self.kind, self.token, self.shape)

    def __setstate__(self, state):
        self.kind, self.token, self.shape = state

    # ------------------------------------------------------------------ #
    # consumer side
    # ------------------------------------------------------------------ #
    def attach(self) -> np.ndarray:
        """The published block, mapped read-only (cached per process)."""
        return self._entry()["points"]

    def attach_with_sq(self) -> tuple[np.ndarray, np.ndarray]:
        """The block plus its per-row squared norms (both cached).

        The norms are computed once per process with the same
        ``einsum("ij,ij->i")`` the in-memory space runs at construction,
        over the same bytes — bit-identical inputs for the GEMM kernels.
        """
        entry = self._entry()
        if entry["sq"] is None:
            pts = entry["points"]
            entry["sq"] = np.einsum("ij,ij->i", pts, pts)
        return entry["points"], entry["sq"]

    def _entry(self) -> dict:
        entry = _attached.get(self.token)
        if entry is not None:
            _attached.move_to_end(self.token)
            return entry
        if self.kind == "shm":
            seg = _attach_segment(self.token)
            points = np.ndarray(self.shape, dtype=np.float64, buffer=seg.buf)
        else:
            seg = None
            points = np.load(self.token, mmap_mode="r")
        points.flags.writeable = False
        entry = {"points": points, "sq": None, "seg": seg}
        _attached[self.token] = entry
        while len(_attached) > _MAX_ATTACHED:
            _, old = _attached.popitem(last=False)
            seg_old = old.get("seg")
            if seg_old is not None:
                try:
                    seg_old.close()
                except BufferError:  # pragma: no cover - still referenced
                    pass  # a task still holds views; GC reclaims later
        return entry

    # ------------------------------------------------------------------ #
    # owner side
    # ------------------------------------------------------------------ #
    def unpublish(self) -> None:
        """Release the published block (owner side; idempotent).

        Unlinks the shared-memory segment or deletes the spill file.
        Workers that already attached keep a valid mapping (POSIX keeps
        the pages until the last map closes); new attachments fail, as
        they should once the job is over.
        """
        if self.kind == "shm":
            seg = _published.pop(self.token, None)
            if seg is not None:
                seg.close()
                try:
                    seg.unlink()
                except FileNotFoundError:  # pragma: no cover - already gone
                    pass
        else:
            _published.pop(self.token, None)
            try:
                os.unlink(self.token)
            except FileNotFoundError:
                pass
        # Drop any local attachment too (the driver may have round-tripped
        # its own handle through a sequential fallback).
        _attached.pop(self.token, None)


def publish_points(points: np.ndarray) -> SharedPoints | None:
    """Publish a coordinate block for zero-copy worker attachment.

    Copies ``points`` once into a fresh named segment (or, on failure or
    under ``REPRO_SHM_TRANSPORT=spill``, into a temporary ``.npy``) and
    returns the handle — or ``None`` when the transport is disabled.
    The caller owns the handle and must :meth:`~SharedPoints.unpublish`
    it (use :func:`shared_space` for scoped ownership).
    """
    mode = transport_mode()
    if mode == "off":
        return None
    arr = np.ascontiguousarray(points, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError(f"points must be 2-D, got shape {arr.shape}")
    if mode == "shm":
        try:
            return _publish_shm(arr)
        except (OSError, ValueError):  # no /dev/shm, or segment too large
            pass
    return _publish_spill(arr)


def _publish_shm(arr: np.ndarray) -> SharedPoints:
    from multiprocessing import shared_memory

    seg = shared_memory.SharedMemory(create=True, size=max(arr.nbytes, 1))
    try:
        view = np.ndarray(arr.shape, dtype=np.float64, buffer=seg.buf)
        view[...] = arr
    except BaseException:  # pragma: no cover - copy cannot realistically fail
        seg.close()
        seg.unlink()
        raise
    _published[seg.name] = seg
    return SharedPoints("shm", seg.name, arr.shape)


def _publish_spill(arr: np.ndarray) -> SharedPoints:
    fd, path = tempfile.mkstemp(prefix="repro-shm-spill-", suffix=".npy")
    try:
        with os.fdopen(fd, "wb") as fh:
            np.save(fh, arr)
    except BaseException:
        Path(path).unlink(missing_ok=True)
        raise
    _published[path] = None  # owned token; value unused for spill files
    return SharedPoints("spill", path, arr.shape)


@atexit.register
def _cleanup_published() -> None:  # pragma: no cover - interpreter teardown
    """Last-chance sweep: unlink anything a run failed to unpublish."""
    for token, seg in list(_published.items()):
        try:
            if seg is not None:
                seg.close()
                seg.unlink()
            else:
                os.unlink(token)
        except Exception:
            pass
        _published.pop(token, None)


def _publishable(space) -> bool:
    """Whether ``space`` carries an in-memory block we know how to ship."""
    from repro.metric.euclidean import EuclideanSpace
    from repro.metric.minkowski import MinkowskiSpace

    return isinstance(space, (EuclideanSpace, MinkowskiSpace))


@contextmanager
def shared_space(space, executor) -> Iterator:
    """Scope in which ``space`` crosses process boundaries by reference.

    When ``executor`` advertises ``crosses_process_boundary`` and
    ``space`` is a publishable in-memory space, yields a shallow clone
    whose pickling ships a :class:`SharedPoints` handle instead of the
    coordinate rows; otherwise yields ``space`` unchanged (sequential and
    thread backends share memory natively, out-of-core spaces re-open
    their backing).  The published segment lives exactly as long as the
    ``with`` block — error paths included — which is the solver-job /
    batch lifetime.
    """
    handle = None
    out = space
    if (
        getattr(executor, "crosses_process_boundary", False)
        and _publishable(space)
        and getattr(space, "_shared", None) is None
    ):
        handle = publish_points(space.points)
        if handle is not None:
            out = copy.copy(space)
            out._shared = handle
    try:
        yield out
    finally:
        if handle is not None:
            handle.unpublish()
