"""Chunked synthetic generation: datasets that are never materialised.

:class:`GeneratorStream` produces the paper's synthetic families (UNIF,
GAU, UNB, plus explicit ``clustered`` mixtures) chunk by chunk, so an
arbitrarily large dataset can be streamed into a solver or written to disk
(:meth:`~repro.store.stream.PointStream.to_npy`) with peak memory of one
block.

Determinism contract
--------------------
Points are generated in fixed-size *generation blocks* of ``gen_block``
rows, each from its own independent child seed
(:func:`repro.utils.rng.spawn_seeds` — the same SeedSequence discipline
the simulated machines use).  A user-facing chunk is assembled by slicing
those blocks, so **the dataset is a pure function of ``(kind, n, params,
seed, gen_block)`` — bit-identical for every ``chunk_size``** and for
random vs sequential access.  ``gen_block`` is therefore part of the
dataset's identity, not a performance knob; leave it at the default
unless you are deliberately defining a different dataset.

Scale conventions follow :mod:`repro.data.synthetic` (side 100 for UNIF,
scale 100 / sigma 0.1 for the Gaussian families); see that module's
docstring for the paper-units discussion.  The streamed families use
per-block seeds, so they are *statistically* identical to, but not
bit-identical with, the one-shot generators in ``repro.data.synthetic``
— a streamed dataset is its own reproducible instance.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

import numpy as np

from repro.errors import DatasetError, InvalidParameterError
from repro.store.stream import PointStream
from repro.utils.rng import SeedLike, spawn_seeds

__all__ = ["GeneratorStream", "DEFAULT_GEN_BLOCK"]

#: Rows per generation block.  Part of a streamed dataset's identity (see
#: the module docstring); 8192 keeps a block of any sane dimension far
#: below the chunk byte budget while amortising RNG call overhead.
DEFAULT_GEN_BLOCK = 8192


class _UnifFamily:
    """UNIF: uniform in a ``dim``-cube of side ``side``."""

    def __init__(self, side: float = 100.0, dim: int = 2):
        if side <= 0:
            raise DatasetError(f"side must be positive, got {side}")
        if dim <= 0:
            raise DatasetError(f"dim must be positive, got {dim}")
        self.side = float(side)
        self.dim = int(dim)

    def prepare(self, rng: np.random.Generator) -> None:
        del rng  # no shared state to draw

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return rng.uniform(0.0, self.side, size=(count, self.dim))

    def params(self) -> dict[str, Any]:
        return {"side": self.side, "dim": self.dim}


class _ClusteredFamily:
    """Gaussian mixture around explicit centers with explicit weights."""

    def __init__(self, centers, weights, sigma: float):
        self.centers = np.ascontiguousarray(centers, dtype=np.float64)
        if self.centers.ndim != 2 or not len(self.centers):
            raise DatasetError(
                f"centers must be a non-empty 2-D array, got {self.centers.shape}"
            )
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (len(self.centers),) or (w < 0).any() or w.sum() == 0:
            raise DatasetError(
                "weights must be non-negative, one per center, not all zero"
            )
        if sigma < 0:
            raise DatasetError(f"sigma must be >= 0, got {sigma}")
        self.weights = w / w.sum()
        self.sigma = float(sigma)
        self.dim = self.centers.shape[1]

    def prepare(self, rng: np.random.Generator) -> None:
        del rng  # centers given explicitly

    def sample(self, rng: np.random.Generator, count: int) -> np.ndarray:
        labels = rng.choice(len(self.centers), size=count, p=self.weights)
        return self.centers[labels] + rng.normal(
            0.0, self.sigma, size=(count, self.dim)
        )

    def params(self) -> dict[str, Any]:
        return {"k_prime": len(self.centers), "sigma": self.sigma}


class _GauFamily(_ClusteredFamily):
    """GAU/UNB: ``k_prime`` uniform centers, (un)balanced Gaussian clusters.

    Centers are drawn in :meth:`prepare` from the stream's dedicated
    shared-state seed, so they are independent of every block's noise.
    """

    def __init__(
        self,
        k_prime: int = 25,
        dim: int = 3,
        scale: float = 100.0,
        sigma: float = 0.1,
        heavy_fraction: float | None = None,
    ):
        if k_prime <= 0:
            raise DatasetError(f"k_prime must be positive, got {k_prime}")
        if scale <= 0:
            raise DatasetError(f"scale must be positive, got {scale}")
        if heavy_fraction is not None:
            if k_prime <= 1:
                raise DatasetError(f"UNB needs k_prime >= 2, got {k_prime}")
            if not 0.0 < heavy_fraction < 1.0:
                raise DatasetError(
                    f"heavy_fraction must be in (0, 1), got {heavy_fraction}"
                )
        if sigma < 0:
            raise DatasetError(f"sigma must be >= 0, got {sigma}")
        self.k_prime = int(k_prime)
        self.dim = int(dim)
        self.scale = float(scale)
        self.sigma = float(sigma)
        self.heavy_fraction = heavy_fraction
        if dim <= 0:
            raise DatasetError(f"dim must be positive, got {dim}")

    def prepare(self, rng: np.random.Generator) -> None:
        centers = rng.uniform(0.0, self.scale, size=(self.k_prime, self.dim))
        if self.heavy_fraction is None:
            weights = np.ones(self.k_prime)
        else:
            weights = np.full(
                self.k_prime, (1.0 - self.heavy_fraction) / (self.k_prime - 1)
            )
            weights[0] = self.heavy_fraction
        _ClusteredFamily.__init__(self, centers, weights, self.sigma)

    def params(self) -> dict[str, Any]:
        out = {"k_prime": self.k_prime, "scale": self.scale, "sigma": self.sigma}
        if self.heavy_fraction is not None:
            out["heavy_fraction"] = self.heavy_fraction
        return out


def _make_family(kind: str, params: dict[str, Any]):
    if kind == "unif":
        return _UnifFamily(**params)
    if kind == "gau":
        return _GauFamily(**params)
    if kind == "unb":
        params.setdefault("heavy_fraction", 0.5)
        return _GauFamily(**params)
    if kind == "clustered":
        return _ClusteredFamily(**params)
    raise DatasetError(
        f"unknown generator family {kind!r}; "
        "supported: 'unif', 'gau', 'unb', 'clustered'"
    )


class GeneratorStream(PointStream):
    """Synthetic dataset produced chunk-by-chunk, never materialised.

    Parameters
    ----------
    kind:
        ``"unif"``, ``"gau"``, ``"unb"`` or ``"clustered"`` (explicit
        ``centers`` / ``weights`` / ``sigma``).
    n:
        Total number of points (positive).
    seed:
        Root seed.  The whole dataset is a deterministic function of it.
    chunk_size:
        Rows per served chunk (presentation only — never affects the
        generated values; default from the block byte budget).
    gen_block:
        Rows per generation block; part of the dataset identity (see the
        module docstring).
    **params:
        Family parameters (``side``/``dim`` for unif; ``k_prime``/
        ``dim``/``scale``/``sigma`` for gau, plus ``heavy_fraction`` for
        unb; ``centers``/``weights``/``sigma`` for clustered).
    """

    def __init__(
        self,
        kind: str,
        n: int,
        seed: SeedLike = None,
        chunk_size: int | None = None,
        gen_block: int = DEFAULT_GEN_BLOCK,
        **params: Any,
    ):
        if n <= 0:
            raise DatasetError(f"dataset size must be positive, got {n}")
        if gen_block <= 0:
            raise InvalidParameterError(
                f"gen_block must be positive, got {gen_block}"
            )
        self.kind = str(kind)
        self._family = _make_family(self.kind, dict(params))
        self._gen_block = int(gen_block)
        n_blocks = -(-int(n) // self._gen_block)
        # One child seed per generation block, plus seeds[0] for shared
        # state (cluster centers); independence comes from SeedSequence
        # spawning, exactly like the simulated machines'.
        seeds = spawn_seeds(seed, n_blocks + 1)
        self._family.prepare(np.random.default_rng(seeds[0]))
        self._block_seeds = seeds[1:]
        super().__init__(int(n), self._family.dim, chunk_size)
        # Tiny block cache: sequential chunk reads straddle at most two
        # generation blocks, so two entries make re-reads free.  Guarded:
        # the stream may be shared by thread-pool batch runs.
        self._cache: OrderedDict[int, np.ndarray] = OrderedDict()
        self._lock = threading.Lock()

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]  # locks do not pickle (process-pool tasks)
        state["_cache"] = OrderedDict()
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    @property
    def gen_block(self) -> int:
        """Rows per generation block (dataset-identity parameter)."""
        return self._gen_block

    @property
    def params(self) -> dict[str, Any]:
        """Family parameters, for provenance records."""
        return dict(self._family.params())

    def _block(self, b: int) -> np.ndarray:
        with self._lock:
            cached = self._cache.get(b)
            if cached is not None:
                self._cache.move_to_end(b)
                return cached
            start = b * self._gen_block
            count = min(start + self._gen_block, self._n) - start
            rng = np.random.default_rng(self._block_seeds[b])
            block = np.ascontiguousarray(self._family.sample(rng, count))
            self._cache[b] = block
            while len(self._cache) > 2:
                self._cache.popitem(last=False)
            return block

    def read_chunk(self, i: int) -> np.ndarray:
        start, stop = self.chunk_span(i)
        b_first = start // self._gen_block
        b_last = (stop - 1) // self._gen_block
        parts = []
        for b in range(b_first, b_last + 1):
            b_start = b * self._gen_block
            lo = max(start, b_start) - b_start
            hi = min(stop, b_start + self._gen_block) - b_start
            parts.append(self._block(b)[lo:hi])
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts, axis=0)
