"""Rebuild the paper's tables from run records.

Each builder returns ``(headers, rows)`` ready for
:func:`repro.utils.tables.format_table`, in the exact row/column layout of
the corresponding paper table so console output can be compared cell by
cell with the transcription in :mod:`repro.analysis.paper`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.analysis.experiments import RunRecord, aggregate
from repro.errors import ExperimentError
from repro.solvers import get_solver

__all__ = [
    "STANDARD_COLUMNS",
    "solution_value_table",
    "runtime_table",
    "phi_table",
    "side_by_side",
]

#: Column order of the paper's solution/runtime tables, expressed as the
#: registry labels of the standard algorithm family.
STANDARD_COLUMNS = tuple(
    get_solver(name).label for name in ("mrg", "eim", "gon")
)


def _grid_values(
    records: Iterable[RunRecord],
    value: str,
    algorithms: Sequence[str],
    ks: Sequence[int],
) -> dict[tuple[str, int], float]:
    means = aggregate(records, value=value, by=("algorithm", "k"))
    missing = [
        (a, k) for a in algorithms for k in ks if (a, k) not in means
    ]
    if missing:
        raise ExperimentError(f"records are missing grid points: {missing[:5]}...")
    return means


def solution_value_table(
    records: Iterable[RunRecord],
    algorithms: Sequence[str] = STANDARD_COLUMNS,
    ks: Sequence[int] = (2, 5, 10, 25, 50, 100),
) -> tuple[list[str], list[list]]:
    """Tables 2-5 layout: rows are k, columns are algorithms (values)."""
    means = _grid_values(records, "radius", algorithms, ks)
    headers = ["k", *algorithms]
    rows = [[k, *(means[(a, k)] for a in algorithms)] for k in ks]
    return headers, rows


def runtime_table(
    records: Iterable[RunRecord],
    algorithms: Sequence[str] = STANDARD_COLUMNS,
    ks: Sequence[int] = (2, 5, 10, 25, 50, 100),
) -> tuple[list[str], list[list]]:
    """Runtime analogue of the solution tables (simulated parallel time)."""
    means = _grid_values(records, "parallel_time", algorithms, ks)
    headers = ["k", *algorithms]
    rows = [[k, *(means[(a, k)] for a in algorithms)] for k in ks]
    return headers, rows


def phi_table(
    records: Iterable[RunRecord],
    value: str,
    phis: Sequence[float] = (1.0, 4.0, 6.0, 8.0),
    ks: Sequence[int] = (2, 5, 10, 25, 50, 100),
) -> tuple[list[str], list[list]]:
    """Tables 6-7 layout: rows are k, columns are phi values.

    ``value`` is ``"radius"`` (Table 6) or ``"parallel_time"`` (Table 7).
    """
    algorithms = [f"EIM(phi={phi:g})" for phi in phis]
    means = _grid_values(records, value, algorithms, ks)
    headers = ["k", *[f"phi={phi:g}" for phi in phis]]
    rows = [[k, *(means[(a, k)] for a in algorithms)] for k in ks]
    return headers, rows


def side_by_side(
    measured_rows: list[list],
    paper_table: dict[int, tuple],
    label_measured: str = "measured",
    label_paper: str = "paper",
) -> tuple[list[str], list[list]]:
    """Interleave measured and paper columns for visual comparison.

    ``measured_rows`` must have k in column 0 and one value column per
    paper-table column, in the same order.
    """
    if not measured_rows:
        raise ExperimentError("no measured rows to compare")
    n_cols = len(measured_rows[0]) - 1
    sample = next(iter(paper_table.values()))
    if len(sample) != n_cols:
        raise ExperimentError(
            f"measured rows have {n_cols} value columns but the paper table has {len(sample)}"
        )
    headers = ["k"]
    for j in range(n_cols):
        headers += [f"{label_measured}[{j}]", f"{label_paper}[{j}]"]
    rows = []
    for row in measured_rows:
        k = int(row[0])
        if k not in paper_table:
            continue
        interleaved: list = [k]
        for j in range(n_cols):
            interleaved += [row[1 + j], paper_table[k][j]]
        rows.append(interleaved)
    return headers, rows
