"""Experiment specification and grid runner.

The paper's protocol (Section 7.3): "We generate three graphs of each size
and type, and run the algorithms twice over each data set, taking the
average.  This gives a total of six results for each type of data set ...
We run four tests over each of the real data sets, and take the average."

:func:`run_experiment` executes exactly that grid — datasets x runs x
algorithms x k — with a deterministic seed tree, producing flat
:class:`RunRecord` rows; :func:`aggregate` averages them per
(algorithm, k) the way the paper's tables do.

The inner (algorithm x run-seed) grid of every (instance, k) cell is
dispatched through :func:`repro.solve_many`, so one experiment fans out
over any :class:`~repro.mapreduce.executor.Executor` backend end-to-end:
pass ``executor=ThreadPoolExecutorBackend()`` (or the process-pool
backend) to :func:`run_experiment` and the grid's runs execute
concurrently with bit-identical records — seeds are bound before
scheduling, so the backend never changes the science, only the wall
clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import partial
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.core.result import KCenterResult
from repro.data.registry import make_dataset
from repro.errors import ExperimentError
from repro.mapreduce.executor import Executor
from repro.metric.euclidean import EuclideanSpace
from repro.solvers import BatchKey, get_solver, solve, solve_many
from repro.utils.rng import SeedStream

__all__ = [
    "AlgorithmSpec",
    "ExperimentSpec",
    "RunRecord",
    "run_experiment",
    "aggregate",
    "solver_spec",
    "gon_spec",
    "mrg_spec",
    "eim_spec",
]


@dataclass(frozen=True)
class AlgorithmSpec:
    """A named algorithm configuration runnable on any space.

    ``run(space, k, seed)`` must return a :class:`KCenterResult`.  Specs
    built by :func:`solver_spec` additionally carry their registry name
    and options in :attr:`algorithm` / :attr:`options`, which is what
    lets :func:`run_experiment` schedule them through
    :func:`repro.solve_many` (and hence any executor backend); a spec
    wrapping an opaque callable (``algorithm is None``) still runs, but
    only on the in-process sequential path.
    """

    name: str
    run: Callable[[EuclideanSpace, int, Any], KCenterResult]
    algorithm: str | None = None
    options: Mapping[str, Any] | None = None


def _solve_with(algorithm: str, options: dict, space, k, seed) -> KCenterResult:
    return solve(space, k, algorithm=algorithm, seed=seed, **options)


def solver_spec(algorithm: str, name: str | None = None, **options) -> AlgorithmSpec:
    """An :class:`AlgorithmSpec` routed through the solver registry.

    ``algorithm`` is any registry name or alias; ``options`` may mix the
    shared knobs (``m``, ``capacity``, ``evaluate``, ``executor``) with
    solver-specific options — both are validated by :func:`repro.solve`
    on the first run.  The harness supplies the per-run ``seed``, so it
    must not appear in ``options``.
    """
    spec = get_solver(algorithm)
    if "seed" in options:
        raise ExperimentError(
            "the experiment harness assigns per-run seeds; do not fix one "
            f"in solver_spec({algorithm!r})"
        )
    label = name if name is not None else spec.label
    return AlgorithmSpec(
        label,
        partial(_solve_with, spec.name, options),
        algorithm=spec.name,
        options=dict(options),
    )


def gon_spec(name: str = "GON") -> AlgorithmSpec:
    """The sequential baseline."""
    return solver_spec("gon", name=name)


def mrg_spec(m: int = 50, partitioner="block", name: str = "MRG", **kwargs) -> AlgorithmSpec:
    """MRG with the paper's defaults (m=50, arbitrary partition)."""
    return solver_spec("mrg", name=name, m=m, partitioner=partitioner, **kwargs)


def eim_spec(
    m: int = 50,
    eps: float = 0.1,
    phi: float = 8.0,
    name: str | None = None,
    **kwargs,
) -> AlgorithmSpec:
    """EIM with the paper's defaults (m=50, eps=0.1, phi=8)."""
    label = name if name is not None else ("EIM" if phi == 8.0 else f"EIM(phi={phi:g})")
    return solver_spec("eim", name=label, m=m, eps=eps, phi=phi, **kwargs)


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment grid: a workload, k values, and algorithm family.

    Attributes
    ----------
    name:
        Experiment id ("table2", "figure1", ...).
    dataset:
        Registry name ("gau", "unif", ...).
    n:
        Points per generated instance.
    dataset_params:
        Extra generator parameters (``k_prime`` etc.).
    ks:
        The k grid (the paper uses {2, 5, 10, 25, 50, 100}).
    algorithms:
        Algorithm specs to run at every grid point.
    n_instances:
        Independently generated data sets (3 for synthetic families).
    n_runs:
        Algorithm repetitions per instance (2 for synthetic; real data is
        modelled as 1 instance x 4 runs).
    master_seed:
        Root of the deterministic seed tree.
    """

    name: str
    dataset: str
    n: int
    ks: Sequence[int]
    algorithms: Sequence[AlgorithmSpec]
    dataset_params: dict[str, Any] = field(default_factory=dict)
    n_instances: int = 3
    n_runs: int = 2
    master_seed: int = 2016

    def scaled(self, n: int) -> "ExperimentSpec":
        """Same experiment at a different size (paper-scale vs default)."""
        return replace(self, n=n)


@dataclass
class RunRecord:
    """One algorithm execution at one grid point (flat, aggregation-ready)."""

    experiment: str
    dataset: str
    n: int
    instance: int
    run: int
    algorithm: str
    k: int
    radius: float
    parallel_time: float
    wall_time: float
    cpu_time: float
    rounds: int
    dist_evals: int
    extra: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_result(
        cls,
        spec: ExperimentSpec,
        instance: int,
        run: int,
        algorithm: str,
        result: KCenterResult,
    ) -> "RunRecord":
        stats = result.stats
        return cls(
            experiment=spec.name,
            dataset=spec.dataset,
            n=spec.n,
            instance=instance,
            run=run,
            algorithm=algorithm,
            k=result.k,
            radius=result.radius,
            parallel_time=result.parallel_time,
            wall_time=result.wall_time,
            cpu_time=stats.cpu_time if stats else result.wall_time,
            rounds=result.n_rounds,
            dist_evals=stats.dist_evals if stats else 0,
            extra={
                key: result.extra[key]
                for key in ("iterations", "fallback_to_gon", "total_rounds")
                if key in result.extra
            },
        )


def run_experiment(
    spec: ExperimentSpec,
    progress: Callable[[str], None] | None = None,
    executor: Executor | None = None,
) -> list[RunRecord]:
    """Execute the full grid of ``spec``; return flat run records.

    The seed tree guarantees: instance ``i`` of an experiment is the same
    point set no matter which algorithms run on it, and run ``j`` uses the
    same seed across algorithms and k values — so the k-sweep varies only
    k (like the paper's sweeps) and every algorithm sees identical
    randomness within a run (paired comparisons).

    ``executor`` is the backend for the per-cell (algorithm x run-seed)
    fan-out through :func:`repro.solve_many` — ``None`` runs sequentially
    (the default and the paper's methodology); a
    :class:`~repro.mapreduce.executor.ThreadPoolExecutorBackend` or
    :class:`~repro.mapreduce.executor.ProcessPoolExecutorBackend` runs the
    grid concurrently with bit-identical records, because every run's seed
    is bound before scheduling.  Executor fan-out requires every algorithm
    to be registry-backed (built with :func:`solver_spec`); grids
    containing opaque callables still run, but only in-process.
    """
    if not spec.ks:
        raise ExperimentError(f"experiment {spec.name!r} has an empty k grid")
    if not spec.algorithms:
        raise ExperimentError(f"experiment {spec.name!r} has no algorithms")
    names = [a.name for a in spec.algorithms]
    if len(set(names)) != len(names):
        raise ExperimentError(f"duplicate algorithm names in {spec.name!r}: {names}")

    # Registry-backed specs become solve_many entries; one opaque callable
    # forces the whole grid onto the in-process path (it cannot be
    # validated or, for process pools, pickled by the batch facade).
    entries: list[tuple[str, dict[str, Any]]] | None = []
    for algo in spec.algorithms:
        if algo.algorithm is None:
            entries = None
            break
        entries.append(
            (algo.algorithm, {**dict(algo.options or {}), "label": algo.name})
        )
    if entries is None and executor is not None:
        raise ExperimentError(
            "executor fan-out needs registry-backed algorithms; build them "
            "with solver_spec() (an AlgorithmSpec wrapping an opaque "
            "callable cannot be scheduled through solve_many)"
        )

    records: list[RunRecord] = []
    stream = SeedStream(spec.master_seed)
    for instance in range(spec.n_instances):
        data_seed = stream.seeds(1)[0]
        dataset = make_dataset(
            spec.dataset, spec.n, seed=data_seed, **spec.dataset_params
        )
        space = dataset.space()
        # Plain-integer run seeds: a SeedSequence object is *stateful*
        # (spawn() advances its child counter), so sharing one across the
        # algorithms of a batch would make results depend on scheduling
        # order.  Ints are immutable — every task derives its own streams.
        run_seeds = [
            int(s.generate_state(1)[0]) for s in stream.seeds(spec.n_runs)
        ]
        cell: dict[tuple[int, int, str], KCenterResult] = {}
        for k in spec.ks:
            # One (instance, k) cell is scheduled as a single batch, so
            # per-run liveness inside it is not observable; the messages
            # say "scheduling" to make that honest — the next burst only
            # appears once the previous cell's batch has completed.
            if progress is not None:
                for run in range(spec.n_runs):
                    for algo in spec.algorithms:
                        progress(
                            f"{spec.name}: instance {instance + 1}/{spec.n_instances} "
                            f"k={k} scheduling {algo.name} "
                            f"run {run + 1}/{spec.n_runs}"
                        )
            if entries is not None:
                batch = solve_many(
                    space,
                    int(k),
                    algorithms=entries,
                    seeds=run_seeds,
                    executor=executor,
                )
                for run, seed in enumerate(run_seeds):
                    for algo in spec.algorithms:
                        cell[(int(k), run, algo.name)] = batch[BatchKey(algo.name, seed)]
            else:
                for run, seed in enumerate(run_seeds):
                    for algo in spec.algorithms:
                        cell[(int(k), run, algo.name)] = algo.run(space, int(k), seed)
        # Emit in the historical (run, algorithm, k) order so downstream
        # consumers see a stable record layout regardless of batching.
        for run in range(spec.n_runs):
            for algo in spec.algorithms:
                for k in spec.ks:
                    records.append(
                        RunRecord.from_result(
                            spec, instance, run, algo.name,
                            cell[(int(k), run, algo.name)],
                        )
                    )
    return records


def aggregate(
    records: Iterable[RunRecord],
    value: str = "radius",
    by: Sequence[str] = ("algorithm", "k"),
) -> dict[tuple, float]:
    """Mean of ``value`` grouped by the ``by`` fields (paper protocol)."""
    sums: dict[tuple, float] = {}
    counts: dict[tuple, int] = {}
    for rec in records:
        key = tuple(getattr(rec, field_name) for field_name in by)
        sums[key] = sums.get(key, 0.0) + float(getattr(rec, value))
        counts[key] = counts.get(key, 0) + 1
    return {key: sums[key] / counts[key] for key in sums}
