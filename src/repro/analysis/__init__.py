"""Experiment harness (system S8): run the paper's evaluation protocol.

* :mod:`~repro.analysis.experiments` — algorithm/experiment specs and the
  grid runner implementing the paper's repeat-and-average protocol
  (synthetic: 3 graphs x 2 runs; real: 4 runs);
* :mod:`~repro.analysis.configs` — one config per paper table/figure, with
  both the paper-scale and the default scaled-down sizes;
* :mod:`~repro.analysis.tables` / :mod:`~repro.analysis.figures` — rebuild
  each table's rows and each figure's series from run records;
* :mod:`~repro.analysis.paper` — the published numbers, embedded for
  side-by-side comparison;
* :mod:`~repro.analysis.report` — paper-vs-measured comparison and the
  qualitative shape checks (who wins, crossovers, speedup factors).
"""

from repro.analysis.experiments import (
    AlgorithmSpec,
    ExperimentSpec,
    RunRecord,
    aggregate,
    eim_spec,
    gon_spec,
    mrg_spec,
    run_experiment,
    solver_spec,
)

__all__ = [
    "AlgorithmSpec",
    "ExperimentSpec",
    "RunRecord",
    "run_experiment",
    "aggregate",
    "solver_spec",
    "gon_spec",
    "mrg_spec",
    "eim_spec",
]
