"""Persistence for experiment records.

Long experiment grids (especially at ``REPRO_SCALE=paper``) are worth
saving: the CSV round-trip here lets a user run the grid once, archive the
records, and rebuild any table/figure offline.  Plain ``csv`` from the
standard library — no dataframe dependency.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable

from repro.analysis.experiments import RunRecord
from repro.errors import ExperimentError

__all__ = ["save_records", "load_records"]

_FIELDS = [
    "experiment",
    "dataset",
    "n",
    "instance",
    "run",
    "algorithm",
    "k",
    "radius",
    "parallel_time",
    "wall_time",
    "cpu_time",
    "rounds",
    "dist_evals",
    "extra",
]
_INT_FIELDS = {"n", "instance", "run", "k", "rounds", "dist_evals"}
_FLOAT_FIELDS = {"radius", "parallel_time", "wall_time", "cpu_time"}


def save_records(records: Iterable[RunRecord], path: str | Path) -> Path:
    """Write records as CSV (the ``extra`` dict is JSON-encoded)."""
    path = Path(path)
    rows = list(records)
    with path.open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=_FIELDS)
        writer.writeheader()
        for rec in rows:
            row = {name: getattr(rec, name) for name in _FIELDS[:-1]}
            row["extra"] = json.dumps(rec.extra, sort_keys=True)
            writer.writerow(row)
    return path


def load_records(path: str | Path) -> list[RunRecord]:
    """Read records written by :func:`save_records`."""
    path = Path(path)
    if not path.exists():
        raise ExperimentError(f"no record file at {path}")
    out: list[RunRecord] = []
    with path.open(newline="") as fh:
        reader = csv.DictReader(fh)
        if reader.fieldnames != _FIELDS:
            raise ExperimentError(
                f"{path} is not a records file (header {reader.fieldnames})"
            )
        for line_no, row in enumerate(reader, start=2):
            try:
                kwargs = {}
                for name in _FIELDS[:-1]:
                    value = row[name]
                    if name in _INT_FIELDS:
                        kwargs[name] = int(value)
                    elif name in _FLOAT_FIELDS:
                        kwargs[name] = float(value)
                    else:
                        kwargs[name] = value
                kwargs["extra"] = json.loads(row["extra"])
            except (KeyError, ValueError, json.JSONDecodeError) as exc:
                raise ExperimentError(f"{path}:{line_no}: bad record ({exc})") from exc
            out.append(RunRecord(**kwargs))
    return out
