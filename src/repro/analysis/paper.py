"""The paper's published numbers, embedded for side-by-side comparison.

Tables 2-7 are transcribed verbatim from the paper.  Figures 1-4 are
line plots whose exact values are not recoverable from the PDF; for those
we encode the *qualitative shape claims* the text makes (who is fastest,
the ~100x separation, the fallback regime), which
:mod:`repro.analysis.report` checks against measured series.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "PAPER_K_GRID",
    "PAPER_PHI_GRID",
    "TABLE2",
    "TABLE3",
    "TABLE4",
    "TABLE5",
    "TABLE6",
    "TABLE7",
    "SOLUTION_TABLES",
    "ShapeClaim",
    "FIGURE_CLAIMS",
]

#: The k grid every table and figure sweeps.
PAPER_K_GRID = (2, 5, 10, 25, 50, 100)
#: The phi grid of Tables 6-7.
PAPER_PHI_GRID = (1.0, 4.0, 6.0, 8.0)

# ---- Tables 2-5: solution value over k; columns are (MRG, EIM, GON) ---- #

#: Table 2: GAU (n = 1,000,000, k' = 25).
TABLE2: dict[int, tuple[float, float, float]] = {
    2: (96.04, 93.11, 95.86),
    5: (61.90, 61.58, 63.31),
    10: (41.31, 39.43, 39.72),
    25: (0.961, 0.854, 0.961),
    50: (0.762, 0.683, 0.719),
    100: (0.607, 0.556, 0.573),
}

#: Table 3: UNIF (n = 100,000).
TABLE3: dict[int, tuple[float, float, float]] = {
    2: (91.33, 95.80, 91.18),
    5: (50.68, 50.65, 53.14),
    10: (33.35, 31.12, 32.35),
    25: (18.49, 18.01, 18.27),
    50: (13.14, 12.39, 12.36),
    100: (9.144, 8.764, 8.727),
}

#: Table 4: UNB (n = 200,000, k' = 25).
TABLE4: dict[int, tuple[float, float, float]] = {
    2: (97.96, 93.69, 93.37),
    5: (64.61, 64.28, 61.72),
    10: (40.17, 40.05, 40.39),
    25: (0.932, 0.828, 0.939),
    50: (0.668, 0.643, 0.655),
    100: (0.515, 0.530, 0.500),
}

#: Table 5: POKER HAND (n = 25,010).
TABLE5: dict[int, tuple[float, float, float]] = {
    2: (19.41, 18.60, 18.17),
    5: (18.06, 17.07, 17.25),
    10: (15.12, 14.20, 15.03),
    25: (12.13, 11.98, 11.84),
    50: (10.07, 9.418, 9.617),
    100: (8.774, 9.241, 8.396),
}

#: Experiment id -> (workload description, table data).
SOLUTION_TABLES = {
    "table2": ("GAU (n=1,000,000, k'=25)", TABLE2),
    "table3": ("UNIF (n=100,000)", TABLE3),
    "table4": ("UNB (n=200,000, k'=25)", TABLE4),
    "table5": ("POKER HAND (n=25,010)", TABLE5),
}

# ---- Tables 6-7: EIM over phi, GAU (n = 200,000, k' = 25) -------------- #

#: Table 6: average solution value; columns are phi = 1, 4, 6, 8.
TABLE6: dict[int, tuple[float, float, float, float]] = {
    2: (88.4, 80.4, 85.5, 86.5),
    5: (59.9, 60.9, 56.5, 61.9),
    10: (36.2, 35.5, 34.7, 35.3),
    25: (0.796, 0.780, 0.826, 0.840),
    50: (0.630, 0.617, 0.610, 0.666),
    100: (0.478, 0.492, 0.505, 0.535),
}

#: Table 7: average runtime (seconds, the authors' C implementation).
TABLE7: dict[int, tuple[float, float, float, float]] = {
    2: (0.050, 0.059, 0.165, 0.135),
    5: (0.080, 0.130, 0.368, 0.314),
    10: (0.283, 0.480, 0.549, 0.552),
    25: (0.588, 0.505, 1.47, 1.42),
    50: (0.693, 0.816, 2.84, 2.24),
    100: (0.726, 0.757, 3.78, 3.59),
}


# ---- Figures 1-4: qualitative shape claims ------------------------------ #


@dataclass(frozen=True)
class ShapeClaim:
    """A checkable qualitative statement about a measured series."""

    id: str
    text: str


FIGURE_CLAIMS: dict[str, list[ShapeClaim]] = {
    "figure1": [
        ShapeClaim(
            "f1.decreasing",
            "Solution values decrease (weakly) as k grows, spanning several "
            "decades on the KDD CUP data (log-scale y axis 10^4..10^9).",
        ),
        ShapeClaim(
            "f1.eim_poor",
            "EIM performs poorly relative to MRG/GON on the KDD CUP sample "
            "(the one real data set where sampling hurts).",
        ),
    ],
    "figure2": [
        ShapeClaim(
            "f2.order",
            "EIM runs slower than both MRG and sequential GON; MRG is the "
            "fastest of the algorithms considered.",
        ),
        ShapeClaim(
            "f2.mrg_100x",
            "MRG is faster than GON and EIM by roughly two orders of "
            "magnitude at large n.",
        ),
    ],
    "figure3": [
        ShapeClaim(
            "f3.fallback",
            "When k becomes too large relative to n, EIM no longer samples "
            "and defaults to the sequential algorithm (EIM == GON runtimes).",
        ),
    ],
    "figure4": [
        ShapeClaim(
            "f4.linear_n",
            "Runtimes grow roughly linearly in n for fixed k; for small n "
            "and large k the k^2 m term makes MRG's curve flatter in n.",
        ),
        ShapeClaim(
            "f4.eim_gon_small_n",
            "For sufficiently small n relative to k, EIM behaves identically "
            "to GON (the while-loop condition is never met).",
        ),
    ],
}
