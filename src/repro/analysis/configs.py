"""One configuration per paper experiment, at two scales.

Every table/figure maps to an :class:`~repro.analysis.experiments.ExperimentSpec`
factory.  Two scales exist:

* ``"default"`` — sizes reduced so the whole benchmark suite completes in
  minutes on one commodity core (the shapes over k and n are preserved;
  EXPERIMENTS.md records which scale produced the committed numbers);
* ``"paper"`` — the sizes the paper used (n up to 10^6).  Select with
  ``REPRO_SCALE=paper`` in the environment or ``scale="paper"`` in code.

The scaled sizes are chosen so each experiment still exercises the regime
the paper highlights — e.g. Tables 6-7 keep ``n`` large enough that EIM's
sampling loop actually runs for k <= 50, and Figure 3b keeps the paper's
exact n = 50,000 because its point *is* the small-n fallback.
"""

from __future__ import annotations

import os
from typing import Sequence

from repro.analysis.experiments import (
    AlgorithmSpec,
    ExperimentSpec,
    solver_spec,
)
from repro.analysis.paper import PAPER_K_GRID, PAPER_PHI_GRID
from repro.errors import ExperimentError

__all__ = [
    "resolve_scale",
    "standard_algorithms",
    "phi_algorithms",
    "experiment_config",
    "figure4_n_grid",
    "EXPERIMENT_IDS",
]

#: Scaled-down default sizes (paper size in comments).
_DEFAULT_SIZES = {
    "table2": 50_000,  # paper: 1,000,000
    "table3": 50_000,  # paper: 100,000
    "table4": 50_000,  # paper: 200,000
    "table5": 25_010,  # paper: 25,010 (kept in full; it is small)
    "table6": 50_000,  # paper: 200,000
    "table7": 50_000,  # paper: 200,000
    "figure1": 50_000,  # paper: 494,021 (the 10% sample)
    "figure2a": 100_000,  # paper: 1,000,000
    "figure2b": 50_000,  # paper: 100,000
    "figure3a": 100_000,  # paper: 1,000,000
    "figure3b": 50_000,  # paper: 50,000 (kept: small-n is the point)
}

_PAPER_SIZES = {
    "table2": 1_000_000,
    "table3": 100_000,
    "table4": 200_000,
    "table5": 25_010,
    "table6": 200_000,
    "table7": 200_000,
    "figure1": 494_021,
    "figure2a": 1_000_000,
    "figure2b": 100_000,
    "figure3a": 1_000_000,
    "figure3b": 50_000,
}

EXPERIMENT_IDS = tuple(sorted(_DEFAULT_SIZES) + ["figure4a", "figure4b"])


def resolve_scale(scale: str | None = None) -> str:
    """Pick the active scale: explicit arg > REPRO_SCALE env > default."""
    value = scale if scale is not None else os.environ.get("REPRO_SCALE", "default")
    if value not in ("default", "paper"):
        raise ExperimentError(
            f"unknown scale {value!r}; use 'default' or 'paper'"
        )
    return value


def _size(exp: str, scale: str) -> int:
    table = _PAPER_SIZES if scale == "paper" else _DEFAULT_SIZES
    return table[exp]


def _reps(scale: str, real: bool = False) -> tuple[int, int]:
    """(n_instances, n_runs): paper protocol at paper scale, 1x1 default.

    Real data sets are one fixed file in the paper, modelled as a single
    instance with repeated runs.
    """
    if scale == "paper":
        return (1, 4) if real else (3, 2)
    return (1, 1)


def standard_algorithms(m: int = 50) -> list[AlgorithmSpec]:
    """The three algorithm families of Tables 2-5 / Figures 1-4."""
    return [
        solver_spec("mrg", m=m),
        solver_spec("eim", m=m),
        solver_spec("gon"),
    ]


def phi_algorithms(m: int = 50, phis: Sequence[float] = PAPER_PHI_GRID) -> list[AlgorithmSpec]:
    """EIM at each phi of Tables 6-7."""
    return [
        solver_spec("eim", name=f"EIM(phi={phi:g})", m=m, phi=phi) for phi in phis
    ]


def experiment_config(exp: str, scale: str | None = None, m: int = 50) -> ExperimentSpec:
    """Build the spec for one paper experiment id.

    Figure 4 sweeps n rather than k; use :func:`figure4_n_grid` plus this
    function's ``figure4a``/``figure4b`` base spec (fixed k, varying n via
    :meth:`ExperimentSpec.scaled`).
    """
    scale = resolve_scale(scale)
    ks = list(PAPER_K_GRID)
    if exp == "table2":
        inst, runs = _reps(scale)
        return ExperimentSpec(
            exp, "gau", _size(exp, scale), ks, standard_algorithms(m),
            dataset_params={"k_prime": 25}, n_instances=inst, n_runs=runs,
        )
    if exp == "table3":
        inst, runs = _reps(scale)
        return ExperimentSpec(
            exp, "unif", _size(exp, scale), ks, standard_algorithms(m),
            n_instances=inst, n_runs=runs,
        )
    if exp == "table4":
        inst, runs = _reps(scale)
        return ExperimentSpec(
            exp, "unb", _size(exp, scale), ks, standard_algorithms(m),
            dataset_params={"k_prime": 25}, n_instances=inst, n_runs=runs,
        )
    if exp == "table5":
        inst, runs = _reps(scale, real=True)
        return ExperimentSpec(
            exp, "poker", _size(exp, scale), ks, standard_algorithms(m),
            n_instances=inst, n_runs=runs,
        )
    if exp in ("table6", "table7"):
        inst, runs = _reps(scale)
        return ExperimentSpec(
            exp, "gau", _size(exp, scale), ks, phi_algorithms(m),
            dataset_params={"k_prime": 25}, n_instances=inst, n_runs=runs,
        )
    if exp == "figure1":
        inst, runs = _reps(scale, real=True)
        return ExperimentSpec(
            exp, "kddcup", _size(exp, scale), ks, standard_algorithms(m),
            n_instances=inst, n_runs=runs,
        )
    if exp in ("figure2a", "figure3a"):
        k_prime = 25 if exp == "figure2a" else 50
        inst, runs = _reps(scale)
        return ExperimentSpec(
            exp, "gau", _size(exp, scale), ks, standard_algorithms(m),
            dataset_params={"k_prime": k_prime}, n_instances=inst, n_runs=runs,
        )
    if exp == "figure2b":
        inst, runs = _reps(scale)
        return ExperimentSpec(
            exp, "unif", _size(exp, scale), ks, standard_algorithms(m),
            n_instances=inst, n_runs=runs,
        )
    if exp == "figure3b":
        inst, runs = _reps(scale)
        return ExperimentSpec(
            exp, "gau", _size(exp, scale), ks, standard_algorithms(m),
            dataset_params={"k_prime": 50}, n_instances=inst, n_runs=runs,
        )
    if exp in ("figure4a", "figure4b"):
        k = 10 if exp == "figure4a" else 100
        inst, runs = _reps(scale)
        # n is a placeholder; the figure-4 driver sweeps it via .scaled().
        return ExperimentSpec(
            exp, "gau", figure4_n_grid(scale)[-1], [k], standard_algorithms(m),
            dataset_params={"k_prime": 25}, n_instances=inst, n_runs=runs,
        )
    raise ExperimentError(f"unknown experiment id {exp!r}; known: {EXPERIMENT_IDS}")


def figure4_n_grid(scale: str | None = None) -> list[int]:
    """The n sweep of Figure 4 (10^4 .. 10^6 in the paper)."""
    scale = resolve_scale(scale)
    if scale == "paper":
        return [10_000, 50_000, 100_000, 250_000, 500_000, 1_000_000]
    return [10_000, 20_000, 50_000, 100_000]
