"""Rebuild the paper's figures as data series (plus ASCII rendering).

A *figure* here is a set of named series over a shared x grid.  The
builders return :class:`FigureSeries` objects; :func:`ascii_chart` renders
them on a log-scaled y axis in plain text, which is how the benchmark
harness "draws" Figures 1-4 in the console.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.analysis.experiments import (
    ExperimentSpec,
    RunRecord,
    aggregate,
    run_experiment,
)
from repro.errors import ExperimentError

__all__ = ["FigureSeries", "series_over_k", "series_over_n", "ascii_chart"]


@dataclass
class FigureSeries:
    """One labelled curve: y values over the shared x grid."""

    label: str
    x: list[float]
    y: list[float]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ExperimentError(
                f"series {self.label!r}: {len(self.x)} x values vs {len(self.y)} y values"
            )


def series_over_k(
    records: Iterable[RunRecord],
    value: str,
    algorithms: Sequence[str],
    ks: Sequence[int],
) -> list[FigureSeries]:
    """Figures 1-3: one curve per algorithm over the k grid."""
    means = aggregate(records, value=value, by=("algorithm", "k"))
    out = []
    for algo in algorithms:
        ys = []
        for k in ks:
            if (algo, k) not in means:
                raise ExperimentError(f"missing grid point ({algo}, k={k})")
            ys.append(means[(algo, k)])
        out.append(FigureSeries(algo, [float(k) for k in ks], ys))
    return out


def series_over_n(
    base_spec: ExperimentSpec,
    n_grid: Sequence[int],
    value: str = "parallel_time",
    progress: Callable[[str], None] | None = None,
) -> tuple[list[FigureSeries], list[RunRecord]]:
    """Figure 4: run the base spec at each n; one curve per algorithm.

    The base spec must have a single k (Figure 4 fixes k and sweeps n).
    Returns the series plus all raw records.
    """
    if len(base_spec.ks) != 1:
        raise ExperimentError("figure-4 specs fix exactly one k")
    k = base_spec.ks[0]
    all_records: list[RunRecord] = []
    per_n: dict[tuple[str, int], float] = {}
    for n in n_grid:
        records = run_experiment(base_spec.scaled(int(n)), progress=progress)
        all_records.extend(records)
        means = aggregate(records, value=value, by=("algorithm", "k"))
        for algo in (a.name for a in base_spec.algorithms):
            per_n[(algo, int(n))] = means[(algo, k)]
    series = [
        FigureSeries(
            algo.name,
            [float(n) for n in n_grid],
            [per_n[(algo.name, int(n))] for n in n_grid],
        )
        for algo in base_spec.algorithms
    ]
    return series, all_records


_MARKERS = "ox+*#@%&"


def ascii_chart(
    series: list[FigureSeries],
    width: int = 68,
    height: int = 18,
    logy: bool = True,
    title: str | None = None,
    ylabel: str = "",
    xlabel: str = "",
) -> str:
    """Render series as a plain-text chart (log y by default, like the paper).

    Positive y values only when ``logy`` is set; zeros are clamped to the
    smallest positive value present.
    """
    if not series:
        raise ExperimentError("nothing to plot")
    xs = sorted({x for s in series for x in s.x})
    ys_all = [y for s in series for y in s.y]
    if logy:
        positive = [y for y in ys_all if y > 0]
        if not positive:
            raise ExperimentError("log-scale chart needs at least one positive value")
        floor = min(positive)
        transform = lambda y: math.log10(max(y, floor))
    else:
        transform = float
    ty = [transform(y) for y in ys_all]
    y_lo, y_hi = min(ty), max(ty)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    x_lo, x_hi = min(xs), max(xs)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, s in enumerate(series):
        marker = _MARKERS[si % len(_MARKERS)]
        for x, y in zip(s.x, s.y):
            col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((transform(y) - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    top_label = f"{10 ** y_hi:.3g}" if logy else f"{y_hi:.3g}"
    bot_label = f"{10 ** y_lo:.3g}" if logy else f"{y_lo:.3g}"
    label_w = max(len(top_label), len(bot_label), len(ylabel)) + 1
    for i, row_cells in enumerate(grid):
        if i == 0:
            prefix = top_label.rjust(label_w)
        elif i == height - 1:
            prefix = bot_label.rjust(label_w)
        elif i == height // 2 and ylabel:
            prefix = ylabel.rjust(label_w)
        else:
            prefix = " " * label_w
        lines.append(f"{prefix} |{''.join(row_cells)}")
    lines.append(" " * label_w + " +" + "-" * width)
    x_axis = f"{x_lo:.3g}".ljust(width - 8) + f"{x_hi:.3g}"
    lines.append(" " * (label_w + 2) + x_axis + (f"   {xlabel}" if xlabel else ""))
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {s.label}" for i, s in enumerate(series)
    )
    lines.append(" " * (label_w + 2) + legend)
    return "\n".join(lines)
