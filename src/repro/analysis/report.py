"""Paper-vs-measured comparison and qualitative shape checks.

Absolute numbers are not expected to match (different hardware, different
implementation substrate, scaled-down default sizes); the *shape* is.  The
checks here operationalise "the shape holds":

* per-row winners of the solution tables (who has the smallest radius at
  each k) — allowing near-ties, since the paper's own margins are small;
* the runtime ordering and the MRG speedup factors (paper Section 8:
  "MRG is faster than the alternative procedures - often by orders of
  magnitude, with EIM running slower than the sequential algorithm");
* the phi trade-off direction (Tables 6-7: runtime drops as phi drops);
* EIM's fallback regime (EIM == GON when k is large relative to n).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.analysis.experiments import RunRecord, aggregate
from repro.errors import ExperimentError

__all__ = [
    "CheckResult",
    "check_winner_agreement",
    "check_runtime_ordering",
    "speedup_summary",
    "check_phi_runtime_direction",
    "fallback_ks",
    "render_checks",
]


@dataclass
class CheckResult:
    """Outcome of one qualitative shape check."""

    name: str
    passed: bool
    detail: str

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.name}: {self.detail}"


def check_winner_agreement(
    measured_rows: Sequence[Sequence[float]],
    paper_table: dict[int, tuple],
    tie_tolerance: float = 0.05,
    min_agreement: float = 0.5,
) -> CheckResult:
    """Does the best algorithm per k usually agree with the paper?

    A measured winner also counts as agreeing when its value is within
    ``tie_tolerance`` (relative) of the measured value in the paper-winner
    column — the published margins are themselves that small.
    """
    total = 0
    agree = 0
    details = []
    for row in measured_rows:
        k = int(row[0])
        if k not in paper_table:
            continue
        total += 1
        measured = [float(v) for v in row[1:]]
        paper = [float(v) for v in paper_table[k]]
        m_win = min(range(len(measured)), key=measured.__getitem__)
        p_win = min(range(len(paper)), key=paper.__getitem__)
        near_tie = measured[p_win] <= measured[m_win] * (1.0 + tie_tolerance)
        if m_win == p_win or near_tie:
            agree += 1
        else:
            details.append(f"k={k}: measured col {m_win} vs paper col {p_win}")
    if total == 0:
        raise ExperimentError("no comparable rows")
    frac = agree / total
    return CheckResult(
        "winner-agreement",
        frac >= min_agreement,
        f"{agree}/{total} rows agree (>= {min_agreement:.0%} required)"
        + (f"; disagreements: {'; '.join(details)}" if details else ""),
    )


def check_runtime_ordering(
    records: Iterable[RunRecord],
    slow: str = "EIM",
    fast: str = "MRG",
    middle: str = "GON",
    min_ks_ordered: float = 0.5,
    min_fast_fraction: float = 1.0,
) -> CheckResult:
    """Paper Section 8: EIM slower than GON; MRG fastest.

    Checked per k on mean simulated parallel times; passes when ``fast``
    is strictly fastest at at least ``min_fast_fraction`` of the grid and
    the full ordering ``fast < middle < slow`` holds for at least
    ``min_ks_ordered`` of it.  Single-shot sub-millisecond rounds are
    scheduler-noisy, so benches at default scale typically pass
    ``min_fast_fraction`` slightly below 1.
    """
    means = aggregate(records, value="parallel_time", by=("algorithm", "k"))
    ks = sorted({k for (_, k) in means})
    if not ks:
        raise ExperimentError("no records")
    fast_count = 0
    full_order = 0
    for k in ks:
        t_fast = means.get((fast, k))
        t_mid = means.get((middle, k))
        t_slow = means.get((slow, k))
        if None in (t_fast, t_mid, t_slow):
            raise ExperimentError(f"missing algorithm at k={k}")
        if t_fast < t_mid and t_fast < t_slow:
            fast_count += 1
        if t_fast < t_mid < t_slow:
            full_order += 1
    frac = full_order / len(ks)
    fast_frac = fast_count / len(ks)
    return CheckResult(
        "runtime-ordering",
        fast_frac >= min_fast_fraction and frac >= min_ks_ordered,
        f"{fast} fastest at {fast_count}/{len(ks)} k; "
        f"full {fast}<{middle}<{slow} ordering at {full_order}/{len(ks)} k values",
    )


def speedup_summary(
    records: Iterable[RunRecord],
    baseline: str = "MRG",
) -> dict[str, dict[int, float]]:
    """Per-k runtime ratios of every algorithm over ``baseline``.

    The paper's headline is that this ratio is ~100x for GON and EIM at
    large n.
    """
    means = aggregate(records, value="parallel_time", by=("algorithm", "k"))
    algos = sorted({a for (a, _) in means})
    ks = sorted({k for (_, k) in means})
    if baseline not in algos:
        raise ExperimentError(f"baseline {baseline!r} not in records ({algos})")
    out: dict[str, dict[int, float]] = {}
    for algo in algos:
        if algo == baseline:
            continue
        out[algo] = {
            k: means[(algo, k)] / means[(baseline, k)]
            for k in ks
            if means.get((baseline, k), 0.0) > 0.0 and (algo, k) in means
        }
    return out


def check_phi_runtime_direction(
    records: Iterable[RunRecord],
    phis: Sequence[float] = (1.0, 4.0, 6.0, 8.0),
    min_fraction: float = 0.5,
) -> CheckResult:
    """Table 7's direction: lowering phi does not slow EIM down.

    Passes when, for at least ``min_fraction`` of k values, the smallest
    phi's mean runtime is at most the largest phi's.
    """
    means = aggregate(records, value="parallel_time", by=("algorithm", "k"))
    lo, hi = f"EIM(phi={min(phis):g})", f"EIM(phi={max(phis):g})"
    ks = sorted({k for (a, k) in means if a == lo})
    if not ks:
        raise ExperimentError(f"no records for {lo}")
    good = sum(1 for k in ks if means[(lo, k)] <= means[(hi, k)] * 1.05)
    frac = good / len(ks)
    return CheckResult(
        "phi-runtime-direction",
        frac >= min_fraction,
        f"phi={min(phis):g} at most as slow as phi={max(phis):g} "
        f"at {good}/{len(ks)} k values",
    )


def fallback_ks(records: Iterable[RunRecord], algorithm: str = "EIM") -> list[int]:
    """k values at which every EIM run fell back to sequential GON."""
    by_k: dict[int, list[bool]] = {}
    for rec in records:
        if rec.algorithm == algorithm and "fallback_to_gon" in rec.extra:
            by_k.setdefault(rec.k, []).append(bool(rec.extra["fallback_to_gon"]))
    return sorted(k for k, flags in by_k.items() if flags and all(flags))


def render_checks(checks: Iterable[CheckResult]) -> str:
    """Multi-line report of check outcomes."""
    return "\n".join(str(c) for c in checks)
