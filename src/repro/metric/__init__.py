"""Metric-space substrate (system S1).

The paper computes Euclidean distances *on demand* ("a matrix representation
of a graph, with all distances stored explicitly, might result in a
significant proportion of the data ... being unnecessary", Section 7.2).
This package provides exactly that: metric spaces over point arrays whose
pairwise-distance work runs through bounded-memory, BLAS-friendly block
kernels, never materialising an ``n x n`` matrix.

Public types
------------
:class:`~repro.metric.base.MetricSpace`
    Abstract interface used by every algorithm in :mod:`repro.core`.
:class:`~repro.metric.euclidean.EuclideanSpace`
    Dense-coordinate Euclidean space with a ``x^2 + y^2 - 2 x.y`` GEMM
    fast path; the space used in all paper experiments.
:class:`~repro.metric.minkowski.MinkowskiSpace`
    L1 / L-infinity / general-p spaces (block ``cdist`` path).
:class:`~repro.metric.precomputed.PrecomputedSpace`
    Explicit distance matrix — for tiny oracles and metric-axiom tests.
"""

from repro.metric.base import DistCounter, MetricSpace, TaskCounter
from repro.metric.euclidean import EuclideanSpace
from repro.metric.kernels import (
    Workspace,
    min_dists,
    pairwise_dists,
    sq_dists_block,
    update_min_dists,
    workspace,
)
from repro.metric.minkowski import MinkowskiSpace
from repro.metric.precomputed import PrecomputedSpace
from repro.metric.validation import check_metric_axioms

__all__ = [
    "MetricSpace",
    "DistCounter",
    "TaskCounter",
    "EuclideanSpace",
    "MinkowskiSpace",
    "PrecomputedSpace",
    "check_metric_axioms",
    "sq_dists_block",
    "pairwise_dists",
    "min_dists",
    "update_min_dists",
    "Workspace",
    "workspace",
]
