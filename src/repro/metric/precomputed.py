"""Metric space backed by an explicit distance matrix.

Only sensible for small ``n`` (the matrix is O(n^2)); used by the exact
oracle, the Hochbaum–Shmoys bottleneck solver, metric-axiom tests, and any
user whose dissimilarities are not coordinate-derived (e.g. edit distances
between documents — the "least similar document" application from the
paper's introduction).
"""

from __future__ import annotations

import numpy as np

from repro.errors import MetricError
from repro.metric.base import DistCounter, MetricSpace, content_fingerprint

__all__ = ["PrecomputedSpace"]


class PrecomputedSpace(MetricSpace):
    """Finite metric space given by an ``(n, n)`` distance matrix.

    Parameters
    ----------
    dist_matrix:
        Square, symmetric, zero-diagonal, non-negative array-like.
    validate:
        When true (default) the matrix is checked for symmetry, zero
        diagonal and non-negativity.  Triangle-inequality checking is
        O(n^3) and left to :func:`repro.metric.validation.check_metric_axioms`.
    """

    def __init__(self, dist_matrix, counter: DistCounter | None = None, validate: bool = True):
        d = np.ascontiguousarray(dist_matrix, dtype=np.float64)
        if d.ndim != 2 or d.shape[0] != d.shape[1]:
            raise MetricError(f"distance matrix must be square, got shape {d.shape}")
        if validate and d.size:
            if not np.isfinite(d).all():
                raise MetricError("distance matrix contains non-finite values")
            if (d < 0).any():
                raise MetricError("distance matrix contains negative entries")
            if not np.allclose(d, d.T, rtol=1e-10, atol=1e-12):
                raise MetricError("distance matrix is not symmetric")
            if not np.allclose(np.diag(d), 0.0, atol=1e-12):
                raise MetricError("distance matrix diagonal is not zero")
        super().__init__(d.shape[0], counter)
        self.matrix = d

    def _compute_fingerprint(self) -> str:
        return content_fingerprint(f"matrix:{self.n}", [self.matrix])

    def _rows(self, idx: np.ndarray | None) -> np.ndarray:
        return self.matrix if idx is None else self.matrix[idx]

    def dists_to(self, i_idx: np.ndarray | None, j: int) -> np.ndarray:
        i_idx = self._check(i_idx, "i_idx")
        if not 0 <= int(j) < self.n:
            raise MetricError(f"point index {j} out of range for n={self.n}")
        col = self.matrix[:, int(j)]
        out = col.copy() if i_idx is None else col[i_idx]
        self.counter.add(out.shape[0])
        return out

    def cross(self, i_idx: np.ndarray | None, j_idx: np.ndarray | None) -> np.ndarray:
        i_idx = self._check(i_idx, "i_idx")
        j_idx = self._check(j_idx, "j_idx")
        block = self._rows(i_idx)
        block = block if j_idx is None else block[:, j_idx]
        self.counter.add(block.size)
        return np.ascontiguousarray(block)

    def update_min_dists(
        self,
        current: np.ndarray,
        i_idx: np.ndarray | None,
        j_idx: np.ndarray | None,
    ) -> np.ndarray:
        block = self.cross(i_idx, j_idx)
        if current.shape != (block.shape[0],):
            raise MetricError(
                f"current has shape {current.shape}, expected ({block.shape[0]},)"
            )
        if block.shape[1] == 0:
            return current
        np.minimum(current, block.min(axis=1), out=current)
        return current

    def nearest(
        self, i_idx: np.ndarray | None, j_idx: np.ndarray | None
    ) -> tuple[np.ndarray, np.ndarray]:
        block = self.cross(i_idx, j_idx)
        if block.shape[1] == 0:
            raise MetricError("nearest requires a non-empty reference set")
        pos = block.argmin(axis=1)
        return pos, block[np.arange(block.shape[0]), pos]

    def local(self, i_idx: np.ndarray) -> "PrecomputedSpace":
        i_idx = self._check(i_idx, "i_idx")
        sub = self.matrix[np.ix_(i_idx, i_idx)]
        return PrecomputedSpace(sub, counter=self.counter, validate=False)
