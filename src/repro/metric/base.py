"""Abstract metric-space interface used by every algorithm in :mod:`repro.core`.

Algorithms address points by **integer index** into a space.  A space knows
how to compute distances between indexed subsets with bounded memory, and it
counts every scalar distance evaluation it performs in a shared
:class:`DistCounter` — the raw material for validating the paper's Table 1
operation-count asymptotics.

Two access patterns matter:

* *global index arrays* — EIM keeps its sets R, S, H as index arrays into
  one parent space and computes cross-set distances;
* *local views* — MRG hands each simulated machine its own partition; the
  machine materialises a compact :meth:`MetricSpace.local` view once and
  then runs Gonzalez over contiguous local data (no repeated fancy
  indexing inside the O(kn) loop).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.errors import MetricError

__all__ = ["DistCounter", "MetricSpace", "as_index_array"]


@dataclass
class DistCounter:
    """Mutable tally of scalar distance evaluations.

    Shared between a parent space and all local views derived from it, so a
    whole algorithm run accumulates into one place.

    ``cache_hits`` / ``cache_misses`` record whether a run's space was
    served from a shared :class:`~repro.store.cache.DistanceCache` (a hit
    reuses a precomputed matrix; ``evals`` still counts the *logical*
    distance evaluations, so operation-count records are cache-invariant).
    """

    evals: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def add(self, n: int) -> None:
        self.evals += int(n)

    def reset(self) -> None:
        self.evals = 0
        self.cache_hits = 0
        self.cache_misses = 0


def as_index_array(idx, n: int, name: str = "indices") -> np.ndarray:
    """Validate an index array against a space of size ``n``."""
    arr = np.asarray(idx, dtype=np.intp)
    if arr.ndim != 1:
        raise MetricError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size:
        lo, hi = int(arr.min()), int(arr.max())
        if lo < 0 or hi >= n:
            raise MetricError(
                f"{name} out of range: values in [{lo}, {hi}] for a space of size {n}"
            )
    return arr


class MetricSpace(abc.ABC):
    """A finite metric space over points addressed by index ``0..n-1``.

    Concrete subclasses implement the block primitives; all are required to
    honour the metric axioms (see :func:`repro.metric.validation.check_metric_axioms`).

    Index arguments ``i_idx`` / ``j_idx`` are 1-D integer arrays, or ``None``
    meaning *all points* (an important fast path: no fancy-indexing copy).
    """

    def __init__(self, n: int, counter: DistCounter | None = None):
        if n < 0:
            raise MetricError(f"space size must be >= 0, got {n}")
        self._n = int(n)
        self.counter = counter if counter is not None else DistCounter()

    # ------------------------------------------------------------------ #
    # size / identity
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of points in the space."""
        return self._n

    def __len__(self) -> int:
        return self._n

    def _check(self, idx, name: str) -> np.ndarray | None:
        if idx is None:
            return None
        return as_index_array(idx, self._n, name)

    def _size(self, idx: np.ndarray | None) -> int:
        return self._n if idx is None else len(idx)

    # ------------------------------------------------------------------ #
    # abstract block primitives
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def dists_to(self, i_idx: np.ndarray | None, j: int) -> np.ndarray:
        """Distances from points ``i_idx`` (or all) to the single point ``j``."""

    @abc.abstractmethod
    def cross(self, i_idx: np.ndarray | None, j_idx: np.ndarray | None) -> np.ndarray:
        """Dense ``(|I|, |J|)`` distance matrix; guarded against blow-up."""

    @abc.abstractmethod
    def update_min_dists(
        self,
        current: np.ndarray,
        i_idx: np.ndarray | None,
        j_idx: np.ndarray | None,
    ) -> np.ndarray:
        """Fold reference points ``j_idx`` into the running minima ``current``.

        ``current[t] = min(current[t], d(I[t], j) for j in J)``, in place.
        """

    @abc.abstractmethod
    def nearest(
        self, i_idx: np.ndarray | None, j_idx: np.ndarray | None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Nearest reference for each query point.

        Returns ``(pos, dist)`` where ``pos[t]`` is the *position within
        j_idx* of the nearest reference to query ``t`` and ``dist[t]`` its
        distance.  ``j_idx`` must be non-empty.
        """

    @abc.abstractmethod
    def local(self, i_idx: np.ndarray) -> "MetricSpace":
        """Compact sub-space over ``i_idx`` (re-indexed ``0..len(i_idx)-1``).

        Shares this space's :class:`DistCounter`.
        """

    # ------------------------------------------------------------------ #
    # derived conveniences
    # ------------------------------------------------------------------ #
    def dist(self, i: int, j: int) -> float:
        """Scalar distance between points ``i`` and ``j``."""
        return float(
            self.dists_to(np.asarray([i], dtype=np.intp), int(j))[0]
        )

    def min_dists(
        self, i_idx: np.ndarray | None, j_idx: np.ndarray | None
    ) -> np.ndarray:
        """Distance from each point of I to its nearest point of J."""
        if self._size(self._check(j_idx, "j_idx")) == 0:
            raise MetricError("min_dists requires a non-empty reference set")
        out = np.full(self._size(self._check(i_idx, "i_idx")), np.inf)
        return self.update_min_dists(out, i_idx, j_idx)

    def covering_radius(
        self, center_idx: np.ndarray, i_idx: np.ndarray | None = None
    ) -> float:
        """Max over points (of I, default all) of distance to nearest center."""
        d = self.min_dists(i_idx, center_idx)
        return float(d.max()) if d.size else 0.0
