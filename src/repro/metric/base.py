"""Abstract metric-space interface used by every algorithm in :mod:`repro.core`.

Algorithms address points by **integer index** into a space.  A space knows
how to compute distances between indexed subsets with bounded memory, and it
counts every scalar distance evaluation it performs in a shared
:class:`DistCounter` — the raw material for validating the paper's Table 1
operation-count asymptotics.

Two access patterns matter:

* *global index arrays* — EIM keeps its sets R, S, H as index arrays into
  one parent space and computes cross-set distances;
* *local views* — MRG hands each simulated machine its own partition; the
  machine materialises a compact :meth:`MetricSpace.local` view once and
  then runs Gonzalez over contiguous local data (no repeated fancy
  indexing inside the O(kn) loop).
"""

from __future__ import annotations

import abc
import hashlib
import threading
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.errors import MetricError

__all__ = [
    "DistCounter",
    "TaskCounter",
    "MetricSpace",
    "as_index_array",
    "content_fingerprint",
]


def content_fingerprint(tag: str, blocks: Iterable[np.ndarray]) -> str:
    """Digest-based space fingerprint: ``tag`` + the raw data bytes.

    ``tag`` must encode everything besides the data that determines the
    distances — metric family, metric parameters, shape, dtype — and
    ``blocks`` must cover the defining array in canonical row-major,
    row-partitioned order, so a chunked backing and a monolithic backing
    of equal data produce equal fingerprints.
    """
    h = hashlib.blake2b(tag.encode("utf-8"), digest_size=16)
    for block in blocks:
        h.update(np.ascontiguousarray(block, dtype=np.float64).tobytes())
    return f"{tag}:{h.hexdigest()}"


@dataclass
class DistCounter:
    """Mutable tally of scalar distance evaluations.

    Shared between a parent space and all local views derived from it, so a
    whole algorithm run accumulates into one place.  Updates are
    lock-guarded: a space (and therefore its counter) may be shared by
    thread-pool tasks, and an unguarded ``+=`` loses increments when two
    threads interleave between the read and the write — totals must be
    exact, they are the paper's operation counts.  The lock is uncontended
    in sequential runs and is taken once per kernel *block*, not per
    scalar evaluation, so the guard costs nothing measurable.  Counters
    owned by exactly one task for their whole lifetime (machine views,
    per-run batch counters) use the lock-free :class:`TaskCounter`
    subclass instead and pay one lock acquisition per *task*, when the
    driver folds their total into the shared counter.

    ``cache_hits`` / ``cache_misses`` record whether a run's space was
    served from a shared :class:`~repro.store.cache.DistanceCache` (a hit
    reuses a precomputed matrix; ``evals`` still counts the *logical*
    distance evaluations, so operation-count records are cache-invariant).
    """

    evals: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]  # locks do not pickle (process-pool tasks)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def add(self, n: int) -> None:
        with self._lock:
            self.evals += int(n)

    def count_cache(self, hit: bool) -> None:
        """Record one distance-cache lookup (hit or miss), lock-guarded
        like :meth:`add` so shared counters stay exact under threads."""
        with self._lock:
            if hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1

    def reset(self) -> None:
        with self._lock:
            self.evals = 0
            self.cache_hits = 0
            self.cache_misses = 0


class TaskCounter(DistCounter):
    """Lock-free :class:`DistCounter` for **single-owner** accounting.

    A reducer task's machine view (see :func:`repro.store.machine_view`)
    is only ever touched by the one task that owns it; its total travels
    back to the driver explicitly
    (:class:`~repro.mapreduce.tasks.TaskOutput`) and is folded into
    the shared counter there — **one** lock acquisition per task,
    instead of one per kernel block.  Dropping the per-block lock is
    safe precisely because of that ownership contract: nothing else can
    observe the counter while the task runs.  Every MapReduce solver's
    round tasks work this way (EIM's shadow-space tasks included, since
    the :class:`~repro.mapreduce.tasks.TaskSpec` refactor hoisted its
    closures to task-private bodies).

    Do *not* use a TaskCounter anywhere several threads can reach it.
    Tasks evaluating distances against one genuinely shared space need
    the locked parent class to keep
    totals exact — and so does a ``solve_many`` run's private counter
    (``_run_one`` deliberately creates a locked ``DistCounter``): a
    per-entry *thread* executor makes that run's own reducer tasks hit
    the run counter concurrently, the very race the lock closes.
    """

    def add(self, n: int) -> None:
        self.evals += int(n)

    def count_cache(self, hit: bool) -> None:
        if hit:
            self.cache_hits += 1
        else:
            self.cache_misses += 1

    def reset(self) -> None:
        self.evals = 0
        self.cache_hits = 0
        self.cache_misses = 0


def as_index_array(idx, n: int, name: str = "indices") -> np.ndarray:
    """Validate an index array against a space of size ``n``."""
    arr = np.asarray(idx, dtype=np.intp)
    if arr.ndim != 1:
        raise MetricError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size:
        lo, hi = int(arr.min()), int(arr.max())
        if lo < 0 or hi >= n:
            raise MetricError(
                f"{name} out of range: values in [{lo}, {hi}] for a space of size {n}"
            )
    return arr


class MetricSpace(abc.ABC):
    """A finite metric space over points addressed by index ``0..n-1``.

    Concrete subclasses implement the block primitives; all are required to
    honour the metric axioms (see :func:`repro.metric.validation.check_metric_axioms`).

    Index arguments ``i_idx`` / ``j_idx`` are 1-D integer arrays, or ``None``
    meaning *all points* (an important fast path: no fancy-indexing copy).
    """

    def __init__(self, n: int, counter: DistCounter | None = None):
        if n < 0:
            raise MetricError(f"space size must be >= 0, got {n}")
        self._n = int(n)
        self.counter = counter if counter is not None else DistCounter()

    # ------------------------------------------------------------------ #
    # size / identity
    # ------------------------------------------------------------------ #
    @property
    def n(self) -> int:
        """Number of points in the space."""
        return self._n

    def __len__(self) -> int:
        return self._n

    def _check(self, idx, name: str) -> np.ndarray | None:
        if idx is None:
            return None
        return as_index_array(idx, self._n, name)

    def _size(self, idx: np.ndarray | None) -> int:
        return self._n if idx is None else len(idx)

    def fingerprint(self) -> str | None:
        """Content-based identity of this space, or ``None`` if unknowable.

        Two spaces with equal fingerprints must produce bit-identical
        distances, so derived artifacts (e.g. a cached distance matrix in
        :class:`~repro.store.cache.DistanceCache`) can be shared between
        separately-constructed instances.  Subclasses with access to their
        defining data (coordinates, a distance matrix) override
        :meth:`_compute_fingerprint` with a digest over metric parameters,
        shape, dtype and data bytes; the base implementation returns
        ``None``, telling consumers to fall back to object identity.

        The digest is computed once per instance (a space's data is
        immutable by contract), so repeated cache lookups stay O(1).
        """
        fp = getattr(self, "_fingerprint", None)
        if fp is None:
            fp = self._compute_fingerprint()
            if fp is not None:
                self._fingerprint = fp
        return fp

    def _compute_fingerprint(self) -> str | None:
        return None

    # ------------------------------------------------------------------ #
    # abstract block primitives
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def dists_to(self, i_idx: np.ndarray | None, j: int) -> np.ndarray:
        """Distances from points ``i_idx`` (or all) to the single point ``j``."""

    @abc.abstractmethod
    def cross(self, i_idx: np.ndarray | None, j_idx: np.ndarray | None) -> np.ndarray:
        """Dense ``(|I|, |J|)`` distance matrix; guarded against blow-up."""

    @abc.abstractmethod
    def update_min_dists(
        self,
        current: np.ndarray,
        i_idx: np.ndarray | None,
        j_idx: np.ndarray | None,
    ) -> np.ndarray:
        """Fold reference points ``j_idx`` into the running minima ``current``.

        ``current[t] = min(current[t], d(I[t], j) for j in J)``, in place.
        """

    @abc.abstractmethod
    def nearest(
        self, i_idx: np.ndarray | None, j_idx: np.ndarray | None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Nearest reference for each query point.

        Returns ``(pos, dist)`` where ``pos[t]`` is the *position within
        j_idx* of the nearest reference to query ``t`` and ``dist[t]`` its
        distance.  ``j_idx`` must be non-empty.
        """

    @abc.abstractmethod
    def local(self, i_idx: np.ndarray) -> "MetricSpace":
        """Compact sub-space over ``i_idx`` (re-indexed ``0..len(i_idx)-1``).

        Shares this space's :class:`DistCounter`.
        """

    # ------------------------------------------------------------------ #
    # derived conveniences
    # ------------------------------------------------------------------ #
    def dist(self, i: int, j: int) -> float:
        """Scalar distance between points ``i`` and ``j``."""
        return float(
            self.dists_to(np.asarray([i], dtype=np.intp), int(j))[0]
        )

    def min_dists(
        self, i_idx: np.ndarray | None, j_idx: np.ndarray | None
    ) -> np.ndarray:
        """Distance from each point of I to its nearest point of J."""
        if self._size(self._check(j_idx, "j_idx")) == 0:
            raise MetricError("min_dists requires a non-empty reference set")
        out = np.full(self._size(self._check(i_idx, "i_idx")), np.inf)
        return self.update_min_dists(out, i_idx, j_idx)

    def covering_radius(
        self, center_idx: np.ndarray, i_idx: np.ndarray | None = None
    ) -> float:
        """Max over points (of I, default all) of distance to nearest center."""
        d = self.min_dists(i_idx, center_idx)
        return float(d.max()) if d.size else 0.0
