"""Minkowski (L_p) metric spaces.

The paper only evaluates Euclidean inputs, but the algorithms it studies are
metric algorithms: GON's 2-approximation and MRG's 4-approximation hold in
*any* metric (the proofs use only the triangle inequality).  This space lets
the test suite exercise that generality (L1, L-infinity, fractional-free
p >= 1) and lets downstream users cluster under city-block or Chebyshev
geometry.

Block distances go through :func:`scipy.spatial.distance.cdist`, chunked to
the same byte budget as the Euclidean GEMM path.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial.distance import cdist

from repro.errors import MetricError
from repro.metric import kernels
from repro.metric.base import DistCounter, MetricSpace, content_fingerprint
from repro.utils.chunking import DEFAULT_BLOCK_BYTES, chunk_slices, resolve_chunk_size

__all__ = ["MinkowskiSpace"]


class MinkowskiSpace(MetricSpace):
    """Finite L_p space over an ``(n, d)`` coordinate array, ``p >= 1``.

    ``p = np.inf`` gives the Chebyshev metric.  ``p < 1`` is rejected: it
    does not satisfy the triangle inequality, which every approximation
    guarantee in the paper relies on.
    """

    def __init__(
        self,
        points,
        p: float = 1.0,
        counter: DistCounter | None = None,
        block_bytes: int = DEFAULT_BLOCK_BYTES,
    ):
        pts = kernels.as_points(points)
        if not (p >= 1.0):  # also rejects NaN
            raise MetricError(f"Minkowski p must be >= 1 (triangle inequality), got {p}")
        super().__init__(pts.shape[0], counter)
        self.points = pts
        self.p = float(p)
        self.block_bytes = int(block_bytes)
        # Zero-copy transport handle (repro.store.shm.shared_space); see
        # EuclideanSpace — Minkowski has no cached norms to rebuild.
        self._shared = None

    def __getstate__(self):
        state = self.__dict__.copy()
        if state.get("_shared") is not None:
            state["points"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        if self.points is None and self._shared is not None:
            self.points = self._shared.attach()

    @property
    def dim(self) -> int:
        return self.points.shape[1]

    def _compute_fingerprint(self) -> str:
        # p is part of the metric identity; a p=2 Minkowski space is NOT
        # interchangeable with EuclideanSpace (cdist vs GEMM differ in
        # the last bits), so the tag keeps the families apart.
        return content_fingerprint(
            f"minkowski:p={self.p!r}:{self.n}x{self.dim}", [self.points]
        )

    def _coords(self, idx: np.ndarray | None) -> np.ndarray:
        return self.points if idx is None else self.points[idx]

    def _cdist(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        if np.isinf(self.p):
            return cdist(x, y, metric="chebyshev")
        if self.p == 1.0:
            return cdist(x, y, metric="cityblock")
        if self.p == 2.0:
            return cdist(x, y, metric="euclidean")
        return cdist(x, y, metric="minkowski", p=self.p)

    # ------------------------------------------------------------------ #
    def dists_to(self, i_idx: np.ndarray | None, j: int) -> np.ndarray:
        i_idx = self._check(i_idx, "i_idx")
        if not 0 <= int(j) < self.n:
            raise MetricError(f"point index {j} out of range for n={self.n}")
        x = self._coords(i_idx)
        self.counter.add(x.shape[0])
        diff = np.abs(x - self.points[int(j)][None, :])
        if np.isinf(self.p):
            return diff.max(axis=1)
        if self.p == 1.0:
            return diff.sum(axis=1)
        return (diff**self.p).sum(axis=1) ** (1.0 / self.p)

    def cross(self, i_idx: np.ndarray | None, j_idx: np.ndarray | None) -> np.ndarray:
        i_idx = self._check(i_idx, "i_idx")
        j_idx = self._check(j_idx, "j_idx")
        x, y = self._coords(i_idx), self._coords(j_idx)
        n_el = x.shape[0] * y.shape[0]
        if n_el > kernels.MAX_DENSE_ELEMENTS:
            raise MetricError(
                f"cross({x.shape[0]}, {y.shape[0]}) exceeds the dense cap"
            )
        self.counter.add(n_el)
        return self._cdist(x, y)

    def update_min_dists(
        self,
        current: np.ndarray,
        i_idx: np.ndarray | None,
        j_idx: np.ndarray | None,
    ) -> np.ndarray:
        i_idx = self._check(i_idx, "i_idx")
        j_idx = self._check(j_idx, "j_idx")
        x, y = self._coords(i_idx), self._coords(j_idx)
        if current.shape != (x.shape[0],):
            raise MetricError(
                f"current has shape {current.shape}, expected ({x.shape[0]},)"
            )
        if y.shape[0] == 0:
            return current
        self.counter.add(x.shape[0] * y.shape[0])
        x_chunk = resolve_chunk_size(y.shape[0], block_bytes=self.block_bytes)
        for sl in chunk_slices(x.shape[0], x_chunk):
            block = self._cdist(x[sl], y)
            np.minimum(current[sl], block.min(axis=1), out=current[sl])
        return current

    def nearest(
        self, i_idx: np.ndarray | None, j_idx: np.ndarray | None
    ) -> tuple[np.ndarray, np.ndarray]:
        i_idx = self._check(i_idx, "i_idx")
        j_idx = self._check(j_idx, "j_idx")
        x, y = self._coords(i_idx), self._coords(j_idx)
        if y.shape[0] == 0:
            raise MetricError("nearest requires a non-empty reference set")
        self.counter.add(x.shape[0] * y.shape[0])
        pos = np.empty(x.shape[0], dtype=np.intp)
        dist = np.empty(x.shape[0], dtype=np.float64)
        x_chunk = resolve_chunk_size(y.shape[0], block_bytes=self.block_bytes)
        for sl in chunk_slices(x.shape[0], x_chunk):
            block = self._cdist(x[sl], y)
            p = block.argmin(axis=1)
            pos[sl] = p
            dist[sl] = block[np.arange(block.shape[0]), p]
        return pos, dist

    def local(self, i_idx: np.ndarray) -> "MinkowskiSpace":
        i_idx = self._check(i_idx, "i_idx")
        return MinkowskiSpace(
            self.points[i_idx],
            p=self.p,
            counter=self.counter,
            block_bytes=self.block_bytes,
        )
