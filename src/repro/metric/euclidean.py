"""Euclidean metric space over a dense coordinate array.

This is the space used by every experiment in the paper ("In all of the
experiments, the distance is Euclidean, computed as required from the
locations of the points", Section 7.2).  Squared norms are precomputed once
so each block distance is a single GEMM plus broadcasting.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MetricError
from repro.metric import kernels
from repro.metric.base import DistCounter, MetricSpace, content_fingerprint
from repro.utils.chunking import DEFAULT_BLOCK_BYTES, chunk_slices, resolve_chunk_size

__all__ = ["EuclideanSpace", "kernels_fingerprint"]


def kernels_fingerprint(shape, blocks) -> str:
    """Fingerprint of a Euclidean-block-kernel space over float64 points.

    Shared by every backing whose distances are bit-identical to
    :class:`EuclideanSpace` over the same coordinates (in particular the
    out-of-core :class:`~repro.store.space.ChunkedMetricSpace`), so equal
    data fingerprints equally regardless of residency.
    """
    n, dim = shape
    return content_fingerprint(f"points:{n}x{dim}", blocks)


class EuclideanSpace(MetricSpace):
    """Finite Euclidean space over an ``(n, d)`` coordinate array.

    Parameters
    ----------
    points:
        ``(n, d)`` array-like; converted once to C-contiguous float64.
    counter:
        Optional shared distance-evaluation counter.
    block_bytes:
        Memory budget per temporary distance block (see
        :mod:`repro.utils.chunking`).
    """

    def __init__(
        self,
        points,
        counter: DistCounter | None = None,
        block_bytes: int = DEFAULT_BLOCK_BYTES,
    ):
        pts = kernels.as_points(points)
        super().__init__(pts.shape[0], counter)
        self.points = pts
        self.block_bytes = int(block_bytes)
        self._sq = np.einsum("ij,ij->i", pts, pts)
        # Zero-copy transport handle (repro.store.shm.shared_space): when
        # set, pickling ships the handle and the far side re-attaches the
        # published block instead of copying the rows.
        self._shared = None

    def __getstate__(self):
        state = self.__dict__.copy()
        if state.get("_shared") is not None:
            state["points"] = None
            state["_sq"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        if self.points is None and self._shared is not None:
            self.points, self._sq = self._shared.attach_with_sq()

    @property
    def dim(self) -> int:
        """Coordinate dimension of the space."""
        return self.points.shape[1]

    def _compute_fingerprint(self) -> str:
        # The "points" family: any space whose distances are the plain
        # Euclidean block kernels over these float64 coordinates (the
        # chunked out-of-core space shares the tag — same bits by its
        # parity contract).
        return kernels_fingerprint(self.points.shape, [self.points])

    # ------------------------------------------------------------------ #
    def _coords(self, idx: np.ndarray | None) -> np.ndarray:
        return self.points if idx is None else self.points[idx]

    def _sqn(self, idx: np.ndarray | None) -> np.ndarray:
        return self._sq if idx is None else self._sq[idx]

    # ------------------------------------------------------------------ #
    def dists_to(self, i_idx: np.ndarray | None, j: int) -> np.ndarray:
        i_idx = self._check(i_idx, "i_idx")
        if not 0 <= int(j) < self.n:
            raise MetricError(f"point index {j} out of range for n={self.n}")
        x = self._coords(i_idx)
        self.counter.add(x.shape[0])
        return kernels.dists_to_point(x, self.points[int(j)])

    def cross(self, i_idx: np.ndarray | None, j_idx: np.ndarray | None) -> np.ndarray:
        i_idx = self._check(i_idx, "i_idx")
        j_idx = self._check(j_idx, "j_idx")
        x, y = self._coords(i_idx), self._coords(j_idx)
        n_el = x.shape[0] * y.shape[0]
        if n_el > kernels.MAX_DENSE_ELEMENTS:
            raise MetricError(
                f"cross({x.shape[0]}, {y.shape[0]}) exceeds the dense cap; "
                "use update_min_dists/nearest instead"
            )
        self.counter.add(n_el)
        out = kernels.sq_dists_block(x, y, self._sqn(i_idx), self._sqn(j_idx))
        np.sqrt(out, out=out)
        return out

    def update_min_dists(
        self,
        current: np.ndarray,
        i_idx: np.ndarray | None,
        j_idx: np.ndarray | None,
    ) -> np.ndarray:
        i_idx = self._check(i_idx, "i_idx")
        j_idx = self._check(j_idx, "j_idx")
        x = self._coords(i_idx)
        y = self._coords(j_idx)
        if current.shape != (x.shape[0],):
            raise MetricError(
                f"current has shape {current.shape}, expected ({x.shape[0]},)"
            )
        if y.shape[0] == 0:
            return current
        self.counter.add(x.shape[0] * y.shape[0])
        return kernels.update_min_dists(current, x, y, block_bytes=self.block_bytes)

    def nearest(
        self, i_idx: np.ndarray | None, j_idx: np.ndarray | None
    ) -> tuple[np.ndarray, np.ndarray]:
        i_idx = self._check(i_idx, "i_idx")
        j_idx = self._check(j_idx, "j_idx")
        x, y = self._coords(i_idx), self._coords(j_idx)
        if y.shape[0] == 0:
            raise MetricError("nearest requires a non-empty reference set")
        self.counter.add(x.shape[0] * y.shape[0])
        y_sq = self._sqn(j_idx)
        pos = np.empty(x.shape[0], dtype=np.intp)
        dist = np.empty(x.shape[0], dtype=np.float64)
        x_chunk = resolve_chunk_size(y.shape[0], block_bytes=self.block_bytes)
        x_sq_all = self._sqn(i_idx)
        ws = kernels.workspace()  # blocks are argmin-consumed before reuse
        for sl in chunk_slices(x.shape[0], x_chunk):
            sq = kernels.sq_dists_block(x[sl], y, x_sq_all[sl], y_sq, ws=ws)
            p = sq.argmin(axis=1)
            pos[sl] = p
            d = sq[np.arange(sq.shape[0]), p]
            np.sqrt(d, out=d)
            dist[sl] = d
        return pos, dist

    def local(self, i_idx: np.ndarray) -> "EuclideanSpace":
        i_idx = self._check(i_idx, "i_idx")
        return EuclideanSpace(
            self.points[i_idx], counter=self.counter, block_bytes=self.block_bytes
        )
