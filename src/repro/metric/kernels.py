"""Chunked pairwise-distance kernels.

These are the only functions in the package that touch O(|X| * |Y|) work,
and they do it in bounded-memory blocks whose inner operation is a BLAS
GEMM (squared-Euclidean expansion ``|x|^2 + |y|^2 - 2 x.y``).  Per the HPC
guides: vectorise the loop, block for cache, and prefer in-place running
minima over materialised temporaries.

All kernels take and return ``float64`` C-contiguous arrays.  Inputs with
other dtypes are converted once at the boundary.

Scratch reuse: the chunked kernels allocate the same block-sized
temporaries (GEMM output, row minima, difference blocks) over and over —
once per block, thousands of times per solve.  A :class:`Workspace` keeps
those buffers alive between calls and hands out resized views, and each
kernel writes into them with ``out=`` instead of allocating: same BLAS
routines, same bits, no per-block allocator traffic.  Workspaces are
**per thread** (see :func:`workspace`), so concurrent thread-pool tasks
never share scratch; only buffers that cannot escape a call (consumed by
a reduction before the kernel returns) are ever served from a workspace
— an array a caller may hold onto, such as :func:`sq_dists_block`'s
return value at the API boundary, is always freshly allocated unless the
caller explicitly opts in by passing its own workspace.

Accuracy note: the GEMM expansion trades a little absolute accuracy for a
large constant-factor speedup — the squared distance carries absolute error
of a few ulps of the squared coordinate magnitude.  Left alone, that error
is *catastrophic* for nearly-coincident points far from the origin: the
cancellation noise survives the square root at roughly
``1e-8 * max|coordinate|``, large relative to a near-zero distance.
:func:`sq_dists_block` therefore detects cancellation-dominated entries
(squared distance below :data:`CANCEL_RTOL` of the operands' squared
magnitudes) and recomputes exactly those through the direct
difference-then-square path, which is accurate to machine precision in the
*distance*.  Entries above the threshold keep the GEMM value, whose
relative error there is bounded by ``~eps / sqrt(CANCEL_RTOL)`` — far
below anything a selection could notice.  The refinement is per-entry
(row norms, not block extrema), so results remain independent of how
callers block their rows — the store layer's bit-parity contract.
"""

from __future__ import annotations

import math
import threading

import numpy as np

from repro.errors import MetricError
from repro.obs import trace as _trace
from repro.utils.chunking import DEFAULT_BLOCK_BYTES, chunk_slices, resolve_chunk_size

__all__ = [
    "as_points",
    "sq_dists_block",
    "pairwise_dists",
    "min_dists",
    "update_min_dists",
    "dists_to_point",
    "Workspace",
    "workspace",
    "MAX_DENSE_ELEMENTS",
    "MAX_RETAINED_BYTES",
    "CANCEL_RTOL",
]

#: Hard cap on elements of a *fully materialised* distance matrix requested
#: through :func:`pairwise_dists`.  128M float64 entries = 1 GiB; anything
#: larger is a programming error — use the chunked kernels instead.
MAX_DENSE_ELEMENTS = 128 * 2**20

#: Cap on a single retained :class:`Workspace` buffer.  Matches the
#: chunked kernels' temporary-block budget: every blocked path requests
#: at most ~``DEFAULT_BLOCK_BYTES`` per role, so the cap never affects
#: them; it only stops *unblocked* whole-array temporaries (a full-space
#: ``dists_to_point`` on a huge in-memory set) from being pinned by the
#: thread-local workspace after the call ends.
MAX_RETAINED_BYTES = DEFAULT_BLOCK_BYTES

#: Squared distances below this fraction of ``|x|^2 + |y|^2`` are
#: cancellation-dominated in the GEMM expansion and are recomputed through
#: the direct difference path.  At 1e-6, unrefined entries keep at least
#: half their significant digits (relative squared-distance error
#: ``<~ eps / 1e-6 = 2e-10``), while the refined set stays tiny for
#: non-degenerate data (only pairs closer than ~0.1% of their distance
#: from the origin qualify).
CANCEL_RTOL = 1e-6


def as_points(x: np.ndarray, name: str = "points") -> np.ndarray:
    """Validate and normalise a point array to 2-D C-contiguous float64."""
    arr = np.ascontiguousarray(x, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise MetricError(f"{name} must be a 2-D array, got shape {arr.shape}")
    if arr.size and not np.isfinite(arr).all():
        raise MetricError(f"{name} contains non-finite values")
    return arr


def _sq_norms(x: np.ndarray) -> np.ndarray:
    return np.einsum("ij,ij->i", x, x)


class Workspace:
    """Reusable scratch buffers for the chunked kernels.

    A workspace owns one flat ``float64`` buffer per *role* ("gemm",
    "rowmin", "diff", ...); :meth:`take` grows the buffer when needed and
    returns a C-contiguous view of the requested shape.  Buffers are
    recycled call-to-call, so a hot loop (Gonzalez's k passes, a round of
    reducer blocks) performs zero block-sized allocations after warm-up.

    Contract: a view obtained from :meth:`take` is valid only until the
    next ``take`` of the same role — callers must fully consume it (fold
    it into a running minimum, copy the reduction out) before the next
    kernel call on the same workspace.  The kernels in this module uphold
    that internally; the public entry points never return workspace
    memory unless the caller passed the workspace in explicitly.

    Retention is bounded: requests above :data:`MAX_RETAINED_BYTES`
    (the chunked kernels' block budget) are served as plain transient
    allocations instead of growing the held buffer, so a workspace that
    once saw a dataset-sized temporary (e.g. a whole-space
    ``dists_to_point`` pass) does not pin it for the life of the
    thread — held scratch stays O(block budget), never O(n·d).

    One workspace must not be shared between threads; use
    :func:`workspace` for a per-thread instance.
    """

    __slots__ = ("_bufs",)

    def __init__(self) -> None:
        self._bufs: dict[str, np.ndarray] = {}

    def take(self, role: str, shape: tuple[int, ...]) -> np.ndarray:
        """A ``shape``-d float64 view of the scratch buffer for ``role``.

        Oversized requests (beyond :data:`MAX_RETAINED_BYTES`) fall back
        to a fresh transient allocation — correct either way, it is just
        not recycled.
        """
        size = math.prod(shape)
        if size * 8 > MAX_RETAINED_BYTES:
            return np.empty(shape, dtype=np.float64)
        buf = self._bufs.get(role)
        if buf is None or buf.size < size:
            buf = np.empty(size, dtype=np.float64)
            self._bufs[role] = buf
        return buf[:size].reshape(shape)

    @property
    def nbytes(self) -> int:
        """Total bytes currently held across all roles (introspection)."""
        return sum(buf.nbytes for buf in self._bufs.values())

    def release(self) -> None:
        """Drop every held buffer (the next take re-allocates)."""
        self._bufs.clear()


_tls = threading.local()


def workspace() -> Workspace:
    """The calling thread's shared :class:`Workspace` (created on demand).

    Thread-local, so concurrent executor tasks each reuse their own
    scratch and never race on a buffer — the kernels default to this
    workspace for temporaries that cannot escape the call.
    """
    ws = getattr(_tls, "ws", None)
    if ws is None:
        ws = _tls.ws = Workspace()
    return ws


def sq_dists_block(
    x: np.ndarray,
    y: np.ndarray,
    x_sq: np.ndarray | None = None,
    y_sq: np.ndarray | None = None,
    ws: Workspace | None = None,
) -> np.ndarray:
    """Dense squared Euclidean distances between two *small* blocks.

    Uses the GEMM expansion; negative round-off is clipped to zero in
    place, and cancellation-dominated entries (below :data:`CANCEL_RTOL`
    of the operands' squared magnitudes) are recomputed through the
    numerically stable difference path — see the module accuracy note.
    Callers are responsible for keeping ``len(x) * len(y)`` within
    their memory budget — this function does not chunk.

    Parameters
    ----------
    x, y:
        ``(nx, d)`` and ``(ny, d)`` float64 arrays.
    x_sq, y_sq:
        Optional precomputed squared norms (saves a pass when the caller
        reuses them across many blocks).
    ws:
        Optional :class:`Workspace` the GEMM output is served from — the
        BLAS call then writes into recycled scratch via ``out=`` (same
        routine, same bits, no allocation).  Passing a workspace hands
        over ownership of the result: it is only valid until the next
        workspace-backed kernel call, so only callers that fully consume
        the block (running minima, argmin scans) may opt in.
    """
    if x.shape[1] != y.shape[1]:
        raise MetricError(
            f"dimension mismatch: x has d={x.shape[1]}, y has d={y.shape[1]}"
        )
    if x.shape[0] == 1 and y.shape[0] > 1:
        # A single-row GEMM dispatches to a different BLAS microkernel
        # (gemv-style) whose rounding can differ from the multi-row path
        # by an ulp.  Duplicate the row so every block shape runs the
        # same kernel: results are then independent of how callers block
        # their rows — the store layer's bit-parity contract, down to
        # chunk-size-1 streams.
        out = sq_dists_block(
            np.concatenate([x, x], axis=0),
            y,
            None if x_sq is None else np.concatenate([x_sq, x_sq]),
            y_sq,
            ws=ws,
        )
        return np.ascontiguousarray(out[:1])
    if y.shape[0] == 1 and x.shape[0] > 1:
        # Same stability fix on the reference side: a single-column GEMM
        # must produce the same bits as that column inside a wider block
        # (a 1-row trailing chunk of a streamed reference set).
        out = sq_dists_block(
            x,
            np.concatenate([y, y], axis=0),
            x_sq,
            None if y_sq is None else np.concatenate([y_sq, y_sq]),
            ws=ws,
        )
        return np.ascontiguousarray(out[:, :1])
    # The no-tracer (and detail="task") case is one contextvar read —
    # negligible against the GEMM this block performs.
    with _trace.block_span(
        "kernels.sq_dists_block", rows=int(x.shape[0]), cols=int(y.shape[0])
    ):
        if x_sq is None:
            x_sq = _sq_norms(x)
        if y_sq is None:
            y_sq = _sq_norms(y)
        # -2 x.y + |x|^2 + |y|^2, accumulated in place on the GEMM output.
        if ws is None:
            out = x @ y.T
        else:
            out = np.matmul(x, y.T, out=ws.take("gemm", (x.shape[0], y.shape[0])))
        out *= -2.0
        out += x_sq[:, None]
        out += y_sq[None, :]
        np.maximum(out, 0.0, out=out)
        _refine_cancelled(out, x, y, x_sq, y_sq)
        return out


def _refine_cancelled(
    out: np.ndarray,
    x: np.ndarray,
    y: np.ndarray,
    x_sq: np.ndarray,
    y_sq: np.ndarray,
) -> None:
    """Recompute cancellation-dominated entries of ``out`` in place.

    The refinement criterion uses only per-row squared norms, and each
    refined entry is recomputed from its own coordinate pair, so the
    output is independent of block shape (the bit-parity contract) and
    matches :func:`dists_to_point` bit-for-bit on the refined entries.
    The scalar pre-check below keeps the common (non-degenerate) case
    allocation-free; it only skips blocks in which *no* entry can be
    below its own per-pair threshold, so skipping never changes bits.
    """
    if out.size == 0:
        return
    if out.min() >= CANCEL_RTOL * (x_sq.max() + y_sq.max()):
        return
    thresh = x_sq[:, None] + y_sq[None, :]
    thresh *= CANCEL_RTOL
    ii, jj = np.nonzero(out < thresh)
    if ii.size:
        diff = x[ii] - y[jj]
        out[ii, jj] = np.einsum("ij,ij->i", diff, diff)


def pairwise_dists(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Full dense Euclidean distance matrix (guarded against blow-up).

    Intended for small index sets — e.g. the union of per-machine centers
    in MRG's final round, or the H-by-S matrix in EIM's Select step.
    """
    x = as_points(x, "x")
    y = as_points(y, "y")
    n_elements = x.shape[0] * y.shape[0]
    if n_elements > MAX_DENSE_ELEMENTS:
        raise MetricError(
            f"refusing to materialise a {x.shape[0]} x {y.shape[0]} distance "
            f"matrix ({n_elements} elements > cap {MAX_DENSE_ELEMENTS}); "
            "use min_dists/update_min_dists instead"
        )
    out = sq_dists_block(x, y)
    np.sqrt(out, out=out)
    return out


def dists_to_point(
    x: np.ndarray, p: np.ndarray, ws: Workspace | None = None
) -> np.ndarray:
    """Euclidean distances from every row of ``x`` to the single point ``p``.

    This is the inner step of Gonzalez's traversal; it is a single fused
    vector pass with no temporary larger than ``x`` itself — and that one
    ``(n, d)`` difference temporary is recycled through the calling
    thread's :class:`Workspace` (it is consumed by the reduction before
    the call returns, so reuse cannot escape).  The returned vector is
    always freshly allocated.
    """
    ws = workspace() if ws is None else ws
    diff = ws.take("diff", x.shape)
    np.subtract(x, p[None, :], out=diff)
    out = np.einsum("ij,ij->i", diff, diff)
    np.sqrt(out, out=out)
    return out


def update_min_dists(
    current: np.ndarray,
    x: np.ndarray,
    y: np.ndarray,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
    ws: Workspace | None = None,
) -> np.ndarray:
    """In-place ``current[i] = min(current[i], d(x[i], y))`` for all rows.

    ``current`` holds each point's distance to some existing reference set;
    this folds a batch of new reference points ``y`` into it.  It is the
    workhorse of EIM's Round 3 (removal) and of incremental assignment.
    Work is blocked over both ``x`` and ``y`` so the temporary block stays
    under ``block_bytes``; every block temporary (GEMM output, row minima)
    is recycled through the calling thread's :class:`Workspace` — each is
    folded into ``current`` before the next block is computed, so reuse
    never changes a bit.

    Returns ``current`` (modified in place) for chaining.
    """
    x = as_points(x, "x")
    y = as_points(y, "y")
    if current.shape != (x.shape[0],):
        raise MetricError(
            f"current has shape {current.shape}, expected ({x.shape[0]},)"
        )
    if y.shape[0] == 0:
        return current
    ws = workspace() if ws is None else ws
    if y.shape[0] == 1:
        np.minimum(current, dists_to_point(x, y[0], ws=ws), out=current)
        return current

    y_sq = _sq_norms(y)
    x_chunk = resolve_chunk_size(y.shape[0], block_bytes=block_bytes)
    for sl in chunk_slices(x.shape[0], x_chunk):
        xb = x[sl]
        sq = sq_dists_block(xb, y, y_sq=y_sq, ws=ws)
        block_min = sq.min(axis=1, out=ws.take("rowmin", (sq.shape[0],)))
        np.sqrt(block_min, out=block_min)
        np.minimum(current[sl], block_min, out=current[sl])
    return current


def min_dists(
    x: np.ndarray,
    y: np.ndarray,
    block_bytes: int = DEFAULT_BLOCK_BYTES,
    ws: Workspace | None = None,
) -> np.ndarray:
    """For each row of ``x``, the Euclidean distance to its nearest row of ``y``.

    ``y`` must be non-empty.  Equivalent to ``cdist(x, y).min(axis=1)`` but
    with bounded memory (block temporaries recycled through the thread's
    :class:`Workspace`; the returned vector is freshly allocated).
    """
    x = as_points(x, "x")
    y = as_points(y, "y")
    if y.shape[0] == 0:
        raise MetricError("min_dists requires a non-empty reference set y")
    out = np.full(x.shape[0], np.inf, dtype=np.float64)
    return update_min_dists(out, x, y, block_bytes=block_bytes, ws=ws)
