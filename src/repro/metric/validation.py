"""Metric-axiom checking.

Every approximation bound reproduced from the paper (GON's factor 2, MRG's
factor 4 / 2(i+1), EIM's factor 10) is a *metric* result: it holds exactly
when the dissimilarity obeys identity, symmetry and the triangle
inequality.  This module provides an O(n^2 d + n^3) checker used by the test
suite (and available to users who bring their own
:class:`~repro.metric.precomputed.PrecomputedSpace`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import MetricError
from repro.metric.base import MetricSpace

__all__ = ["check_metric_axioms"]


def check_metric_axioms(
    space: MetricSpace,
    max_points: int = 512,
    rtol: float = 1e-9,
    atol: float = 1e-6,
    raise_on_failure: bool = True,
) -> bool:
    """Verify the metric axioms on (a prefix of) a space.

    Checks, for all i, j, l among the first ``min(n, max_points)`` points:

    * non-negativity and zero self-distance;
    * symmetry ``d(i, j) == d(j, i)``;
    * triangle inequality ``d(i, l) <= d(i, j) + d(j, l)`` (with tolerance).

    The default ``atol`` accommodates the GEMM-expansion round-off of
    :mod:`repro.metric.kernels` (a few ulps of the squared coordinate
    magnitude); tighten it for exactly-representable precomputed matrices,
    or scale it up for coordinates much larger than ~10^3.

    Returns ``True`` when all hold; raises :class:`MetricError` (or returns
    ``False`` when ``raise_on_failure=False``) otherwise.
    """
    n = min(space.n, max_points)
    if n == 0:
        return True
    idx = np.arange(n, dtype=np.intp)
    d = space.cross(idx, idx)

    def fail(msg: str) -> bool:
        if raise_on_failure:
            raise MetricError(msg)
        return False

    if not np.isfinite(d).all():
        return fail("distances contain non-finite values")
    if (d < -atol).any():
        return fail("negative distances found")
    diag = np.abs(np.diag(d))
    if (diag > atol).any():
        return fail(f"non-zero self-distance (max {diag.max():.3g})")
    asym = np.abs(d - d.T)
    tol = atol + rtol * np.maximum(np.abs(d), np.abs(d.T))
    if (asym > tol).any():
        return fail(f"asymmetry up to {asym.max():.3g} found")

    # Triangle inequality via one matmul-free broadcast per intermediate j:
    # d[i, l] <= d[i, j] + d[j, l].  O(n^3) but n <= max_points.
    for j in range(n):
        bound = d[:, j][:, None] + d[j, :][None, :]
        violation = d - bound
        worst = violation.max()
        if worst > atol + rtol * max(1.0, float(d.max())):
            i, l = np.unravel_index(violation.argmax(), violation.shape)
            return fail(
                "triangle inequality violated: "
                f"d({i},{l})={d[i, l]:.6g} > d({i},{j})+d({j},{l})={bound[i, l]:.6g}"
            )
    return True
