"""The task contract: what may cross a ``run_round`` boundary.

PRs 4-8 grew an *implicit* contract for dispatched work — tasks are
picklable, bind their randomness as seeds before scheduling, count
distance work into task-private counters, and report accounting through
:class:`TaskOutput` so only the committed attempt of a retried or
speculated task is ever folded.  This module makes the contract
first-class and gives every dispatch site one codepath:

* :class:`TaskSpec` — one unit of dispatched work: a **module-level**
  (hence picklable) callable plus bound arguments, an optional per-task
  seed, trace naming, and a counter policy.  Closures and lambdas are
  rejected at construction, so a task that cannot cross a process (or
  future remote) boundary fails loudly at the solver, not lazily inside
  a pool worker.
* :func:`bind_round` — the dispatch side.  Validates that every task is
  a ``TaskSpec``, stamps the picklable
  :class:`~repro.obs.trace.TaskTraceContext` when a tracer is ambient,
  and returns executor-ready zero-argument callables.  Used by
  :meth:`~repro.mapreduce.cluster.SimulatedCluster.run_round`, the
  ``solve_many`` batch fan-out, and the facade's resilient solo path —
  previously three hand-rolled copies of the same wrapping.
* :func:`commit` — the commit side.  Unwraps :class:`TaskOutput`
  results, folding worker-side distance counts into the watched counter
  and worker-side spans into the ambient tracer exactly once per task
  (the winning attempt's; losers are discarded upstream by
  :class:`~repro.mapreduce.resilient.ResilientExecutor` and never reach
  this point).

Fault injection composes untouched: the resilient executor wraps the
spec-derived callables in ``partial(apply_fault, ...)`` over a
module-level function, picklable exactly when the spec is.

The contract in one sentence: **a task is a pure, picklable, pre-seeded
function of its arguments** — re-executing it (retry, speculation,
duplication) reproduces the first execution bit for bit, on any backend.
"""

from __future__ import annotations

import pickle
import weakref
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Sequence

from repro.errors import InvalidParameterError
from repro.obs import trace as _trace

__all__ = [
    "COUNTING",
    "TaskOutput",
    "TaskSpec",
    "bind_round",
    "capture_specs",
    "commit",
    "validate_task_callable",
]

#: Counter policies a :class:`TaskSpec` may declare:
#:
#: * ``"output"`` — the task does distance work and **must** report it by
#:   returning a :class:`TaskOutput` (enforced at commit);
#: * ``"none"``   — the task does no distance work and returns a bare value;
#: * ``"auto"``   — either is accepted (user-supplied reduce functions).
COUNTING = ("auto", "output", "none")


@dataclass
class TaskOutput:
    """A reducer task's return value plus its worker-side accounting.

    Tasks built over per-shard spaces (see
    :func:`repro.store.machine_view`) count their distance evaluations
    into a *private* counter — the space may live in another process, so
    in-place mutation of a shared counter cannot work in general.
    Wrapping the result in a ``TaskOutput`` tells the commit side
    (:func:`commit`, called by
    :meth:`~repro.mapreduce.cluster.SimulatedCluster.run_round`) to fold
    ``dist_evals`` back into the watched counter on the driver; callers
    receive the unwrapped ``value``.  Round accounting is then identical
    on sequential, thread and process backends.

    ``spans`` rides worker-side trace spans back over the same route
    (see :mod:`repro.obs.trace`); it is ``None`` for untraced runs so
    existing pickles and equality semantics are unchanged.
    """

    value: Any
    dist_evals: int = 0
    spans: list | None = None


# Callables already proven picklable-by-reference; functions support
# weakrefs and live for the process, so validation is paid once per
# function, not once per task.
_VALIDATED: "weakref.WeakSet[Callable]" = weakref.WeakSet()


def validate_task_callable(fn: Callable) -> Callable:
    """Reject callables that cannot honour the pickling contract.

    ``functools.partial`` chains are unwrapped to their root function.
    Lambdas and nested (``<locals>``) functions are rejected by
    qualname — the historical failure mode this layer exists to kill —
    and anything else must pickle by reference (cheap: functions pickle
    as their import path, no state is serialised here).
    """
    root = fn
    while isinstance(root, partial):
        root = root.func
    try:
        if root in _VALIDATED:
            return fn
    except TypeError:
        pass
    qualname = getattr(root, "__qualname__", "")
    if "<lambda>" in qualname or "<locals>" in qualname:
        raise InvalidParameterError(
            f"task callable {qualname or root!r} is a lambda or closure; "
            "the task contract requires module-level callables so every "
            "task can cross a process (or future remote) boundary — hoist "
            "the function to module scope and bind its state through "
            "TaskSpec args"
        )
    try:
        pickle.dumps(root)
    except Exception as exc:
        raise InvalidParameterError(
            f"task callable {root!r} does not pickle ({exc}); the task "
            "contract requires reference-picklable callables"
        ) from None
    try:
        _VALIDATED.add(root)
    except TypeError:  # pragma: no cover - unweakreffable callables are rare
        pass
    return fn


@dataclass(frozen=True)
class TaskSpec:
    """One unit of dispatched work, picklable end to end.

    Attributes
    ----------
    fn:
        A module-level (reference-picklable) callable.  ``partial``s are
        accepted when their root function is; lambdas and closures raise
        :class:`~repro.errors.InvalidParameterError` at construction.
    args, kwargs:
        Bound arguments.  The solver's live local state — shards, seeds,
        maintained distance arrays — crosses the boundary *here*, as
        explicit picklable values, instead of being captured by a
        closure.
    seed:
        Optional per-task seed (anything :func:`numpy.random.default_rng`
        accepts, e.g. a picklable ``SeedSequence``).  When set, it is
        passed to ``fn`` as the keyword ``seed=``; keeping it a
        first-class field makes the pre-bound randomness of every task
        inspectable, which is what the determinism-under-duplication
        tests key on.
    counting:
        One of :data:`COUNTING`; enforced by :func:`commit`.
    name, trace_args:
        Optional span naming: ``name`` overrides the default
        ``"{label}[{index}]"`` task-span name and ``trace_args`` the
        default ``(("round", label),)`` span attributes (the
        ``solve_many`` fan-out names spans after batch keys, not round
        indices).
    """

    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    seed: Any = None
    counting: str = "auto"
    name: str | None = None
    trace_args: tuple = ()

    def __post_init__(self) -> None:
        if self.counting not in COUNTING:
            raise InvalidParameterError(
                f"counting must be one of {COUNTING}, got {self.counting!r}"
            )
        validate_task_callable(self.fn)
        object.__setattr__(self, "args", tuple(self.args))
        object.__setattr__(self, "trace_args", tuple(self.trace_args))

    def __call__(self) -> Any:
        """Execute the task.  Zero-argument, so a ``TaskSpec`` drops into
        every slot a bare task callable fits — the :class:`Executor`
        protocol, trace wrapping, fault injection."""
        if self.seed is not None:
            return self.fn(*self.args, seed=self.seed, **self.kwargs)
        return self.fn(*self.args, **self.kwargs)


# ------------------------------------------------------------------ #
# capture hook: lets tests observe every spec that crosses a boundary
# ------------------------------------------------------------------ #
_CAPTURE: ContextVar[list | None] = ContextVar("repro_task_capture", default=None)


@contextmanager
def capture_specs():
    """Record every ``(label, [TaskSpec, ...])`` round bound in the block.

    The pickle-round-trip acceptance test runs each solver under this
    hook and round-trips every captured spec — proving no closure crosses
    a ``run_round`` boundary for any registered solver.
    """
    records: list[tuple[str, list[TaskSpec]]] = []
    token = _CAPTURE.set(records)
    try:
        yield records
    finally:
        _CAPTURE.reset(token)


# ------------------------------------------------------------------ #
# dispatch side
# ------------------------------------------------------------------ #
def bind_round(
    label: str,
    specs: Sequence[TaskSpec],
    *,
    executor: Any = None,
) -> tuple[list[Callable[[], Any]], Callable | None]:
    """Validate the contract and return executor-ready callables.

    Every element of ``specs`` must be a :class:`TaskSpec` — bare
    callables (the pre-contract closure style) raise
    :class:`~repro.errors.InvalidParameterError`.  When a tracer is
    ambient, each spec is wrapped with its picklable
    :class:`~repro.obs.trace.TaskTraceContext`; the returned ``sink`` is
    the tracer's live span callback when the executor stays in-process
    (``None`` otherwise — live sinks are closures and cannot cross a
    pickle boundary), and must be handed back to :func:`commit`.
    """
    specs = list(specs)
    for index, spec in enumerate(specs):
        if not isinstance(spec, TaskSpec):
            what = getattr(spec, "__qualname__", None) or repr(spec)
            raise InvalidParameterError(
                f"round {label!r} task {index} is a bare callable ({what}); "
                "the run_round boundary accepts only TaskSpec — wrap a "
                "module-level function with "
                "TaskSpec(fn, args=..., seed=...) so the task stays "
                "picklable on every backend"
            )
    captured = _CAPTURE.get()
    if captured is not None:
        captured.append((label, list(specs)))
    tracer = _trace.current_tracer()
    if tracer is None:
        return list(specs), None
    sink = None
    if tracer.on_span is not None and not getattr(
        executor, "crosses_process_boundary", False
    ):
        sink = tracer.on_span
    calls = [
        _trace.wrap_task(
            spec,
            _trace.TaskTraceContext(
                run_id=tracer.run_id,
                name=spec.name if spec.name is not None else f"{label}[{index}]",
                index=index,
                detail=tracer.detail,
                args=spec.trace_args if spec.trace_args else (("round", label),),
            ),
            sink,
        )
        for index, spec in enumerate(specs)
    ]
    return calls, sink


# ------------------------------------------------------------------ #
# commit side
# ------------------------------------------------------------------ #
def commit(
    results: Sequence[Any],
    specs: Sequence[TaskSpec] | None = None,
    *,
    counter: Any = None,
    sink: Callable | None = None,
) -> list[Any]:
    """Unwrap :class:`TaskOutput` results at the commit point.

    For each ``TaskOutput``: ``dist_evals`` folds into ``counter`` (a
    watched :class:`~repro.metric.base.DistCounter`, when given) and
    ``spans`` fold into the ambient tracer — with ``notify`` suppressed
    when a live ``sink`` already streamed them.  Only winning attempts
    reach this loop (the resilient executor deduplicates first), so
    exactly one attempt per task is ever folded.

    When ``specs`` is given, the ``counting="output"`` policy is
    enforced: such a task returning a bare value means its distance work
    silently vanished from the books — an accounting bug, raised here.
    """
    tracer = _trace.current_tracer()
    values: list[Any] = []
    for index, result in enumerate(results):
        if isinstance(result, TaskOutput):
            if counter is not None:
                counter.add(result.dist_evals)
            if tracer is not None and result.spans:
                tracer.fold(result.spans, notify=sink is None)
            values.append(result.value)
            continue
        spec = specs[index] if specs is not None else None
        if spec is not None and spec.counting == "output":
            raise InvalidParameterError(
                f"task {spec.name or index} declares counting='output' but "
                "returned a bare value; distance-counting tasks must wrap "
                "their result in TaskOutput(value, counter.evals)"
            )
        values.append(result)
    return values
