"""MapReduce simulation substrate (system S2).

The paper evaluates its parallel algorithms by *simulating* MapReduce on a
single machine: "We simulate the parallel machines sequentially on a single
machine, taking the longest processing time of the simulated machines as
the processing time for that MapReduce round" (Section 7.1), and it does
not charge data movement to the running time.  This package implements that
methodology exactly, plus the bookkeeping the paper's analysis needs:

* :class:`~repro.mapreduce.cluster.SimulatedCluster` — ``m`` machines of
  capacity ``c``; executes a round of reducer tasks and records a
  :class:`~repro.mapreduce.accounting.RoundStats`;
* :mod:`~repro.mapreduce.tasks` — the task contract:
  :class:`~repro.mapreduce.tasks.TaskSpec` (picklable callable + args +
  per-task seed + trace naming + counter policy), with the dispatch-side
  binding and commit-side accounting every dispatch site shares;
* :mod:`~repro.mapreduce.partition` — the mapper-side partitioners
  (block / random / hash) with the size invariant ``|V_i| <= ceil(n/m)``;
* :mod:`~repro.mapreduce.model` — the Karloff-et-al-style capacity
  arithmetic from Section 3 (two-round feasibility, the Eq. (1) machine
  recurrence, round counts for the multi-round regime);
* :mod:`~repro.mapreduce.executor` — sequential (default, faithful to the
  paper), thread-pool (shared memory, BLAS-released kernels overlap) and
  process-pool (real multicore) task executors behind one protocol;
* :mod:`~repro.mapreduce.resilient` /
  :mod:`~repro.mapreduce.faults` — fault tolerance over that protocol:
  :class:`~repro.mapreduce.resilient.ResilientExecutor` enforces a
  :class:`~repro.mapreduce.resilient.FaultPolicy` (retries, per-task
  timeouts, speculative re-execution, result dedup) around any backend,
  and the deterministic fault injectors
  (:class:`~repro.mapreduce.faults.FaultSchedule`,
  :class:`~repro.mapreduce.faults.RandomFaults`) test that absorbed
  faults leave results bit-identical to the fault-free run.
"""

from repro.mapreduce.accounting import BatchSummary, JobStats, RoundStats
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.tasks import TaskOutput, TaskSpec, capture_specs
from repro.mapreduce.executor import (
    ProcessPoolExecutorBackend,
    SequentialExecutor,
    ThreadPoolExecutorBackend,
)
from repro.mapreduce.faults import (
    Fault,
    FaultInjector,
    FaultSchedule,
    InjectedFault,
    RandomFaults,
)
from repro.mapreduce.job import MapReduceJob, MapReduceRound
from repro.mapreduce.model import (
    machines_after_rounds,
    mrg_approximation_factor,
    mrg_feasible_two_rounds,
    mrg_rounds_needed,
)
from repro.mapreduce.resilient import (
    FaultPolicy,
    ResilientExecutor,
    RoundFaultStats,
)
from repro.mapreduce.partition import (
    block_partition,
    hash_partition,
    random_partition,
    shard_aligned_partitioner,
)

__all__ = [
    "SimulatedCluster",
    "TaskOutput",
    "TaskSpec",
    "capture_specs",
    "RoundStats",
    "JobStats",
    "BatchSummary",
    "MapReduceJob",
    "MapReduceRound",
    "SequentialExecutor",
    "ThreadPoolExecutorBackend",
    "ProcessPoolExecutorBackend",
    "ResilientExecutor",
    "FaultPolicy",
    "RoundFaultStats",
    "Fault",
    "FaultInjector",
    "FaultSchedule",
    "InjectedFault",
    "RandomFaults",
    "block_partition",
    "random_partition",
    "hash_partition",
    "shard_aligned_partitioner",
    "mrg_feasible_two_rounds",
    "mrg_rounds_needed",
    "mrg_approximation_factor",
    "machines_after_rounds",
]
