"""Deterministic fault injection for the execution engine.

The paper's round-synchronous MapReduce structure makes fault tolerance a
well-defined contract: a round is a batch of pure, pre-seeded reducer
tasks, so any task may be re-executed (or executed twice, concurrently)
without changing the job's output.  This module supplies the *chaos* side
of testing that contract — a seedable harness that makes individual tasks
crash, hang, dawdle, die, duplicate or lose their results, addressed by
``(round index, task index)``, with bit-for-bit reproducible schedules.

The enforcement side lives in :mod:`repro.mapreduce.resilient`
(:class:`~repro.mapreduce.resilient.ResilientExecutor` consults an
injector at dispatch time and applies the policy's retries, timeouts and
speculative re-execution).  Nothing here ever fires in production paths:
without an injector, the resilient wrapper only reacts to *real*
failures.

Fault kinds
-----------
``crash``
    The attempt raises :class:`InjectedFault` before the task runs —
    a reducer process raising mid-round.
``hang``
    The attempt sleeps ``seconds`` before running the task — long enough
    to trip the policy's per-task timeout.  Injected hangs are always
    *finite* so test runs terminate even when no timeout is configured.
``delay``
    The attempt sleeps ``seconds`` then completes normally — a straggler
    (speculative re-execution bait), not a failure.
``drop``
    The task runs to completion, then the attempt raises — the work was
    done but the result was lost in transit.  Exercises that a discarded
    result's accounting (its :class:`~repro.mapreduce.tasks.TaskOutput`
    evaluation count) never leaks into the round's books.
``duplicate``
    The driver launches a second, concurrent copy of the task at
    dispatch time; both results come back and exactly one must win.
``die``
    The worker *process* exits hard (``os._exit``) — the pool-poisoning
    failure mode.  Refused with an ordinary :class:`InjectedFault` when
    the attempt would run in the driver process (sequential or thread
    execution), where a hard exit would kill the test, not a worker.

Addressing and wildcards
------------------------
A :class:`FaultSchedule` maps ``(round, task)`` keys to :class:`Fault`
specs; either component may be ``None``, meaning *any* ("crash task 1 of
every round": ``{(None, 1): Fault("crash")}``).  Rounds are counted by
the resilient executor — one per :meth:`ResilientExecutor.run` call,
which is one MapReduce round inside a solver, or one ``solve_many``
fan-out at the batch level.

:class:`RandomFaults` draws the schedule instead: a pure function of
``(seed, round, task)`` via :class:`numpy.random.SeedSequence`, so it
needs no advance knowledge of the job's shape (EIM's round count is
data-dependent) and two runs with one seed inject identical faults.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, Mapping, Protocol, runtime_checkable

import numpy as np

from repro.errors import InvalidParameterError

__all__ = [
    "ALWAYS",
    "FAULT_KINDS",
    "Fault",
    "FaultInjector",
    "FaultSchedule",
    "InjectedFault",
    "RandomFaults",
    "apply_fault",
]

#: Recognised fault kinds (see the module docs for semantics).
FAULT_KINDS = ("crash", "hang", "delay", "drop", "duplicate", "die")

#: ``Fault(times=ALWAYS)``: the fault fires on every attempt, exhausting
#: any finite retry budget.
ALWAYS = 2**31


class InjectedFault(RuntimeError):
    """A simulated worker failure raised by an injected fault.

    Deliberately *not* a :class:`~repro.errors.ReproError`: injected
    crashes stand in for arbitrary infrastructure failures (a dying
    worker raises whatever it raises), so the retry machinery must treat
    them like any foreign exception.
    """


@dataclass(frozen=True)
class Fault:
    """One injected fault: what goes wrong, how often, for how long.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    times:
        Number of *leading attempts* affected.  ``times=1`` (default)
        faults the first attempt only, so a policy with any retry budget
        absorbs it; :data:`ALWAYS` faults every attempt, so the budget
        exhausts and the task fails structurally.  ``duplicate`` ignores
        ``times`` — the clone is launched once, at first dispatch.
    seconds:
        Sleep length for ``hang`` / ``delay``; ignored otherwise.
    """

    kind: str
    times: int = 1
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise InvalidParameterError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if self.times < 1:
            raise InvalidParameterError(
                f"fault times must be >= 1, got {self.times}"
            )
        if self.seconds < 0:
            raise InvalidParameterError(
                f"fault seconds must be >= 0, got {self.seconds}"
            )

    def affects(self, attempt: int) -> bool:
        """Whether attempt number ``attempt`` (0-based) is faulted."""
        return attempt < self.times


@runtime_checkable
class FaultInjector(Protocol):
    """Anything that can answer "what goes wrong with this task?".

    ``fault_for`` must be *pure*: the same ``(round, task)`` always maps
    to the same answer, or retries would chase a moving target and the
    determinism contract (same seed, same faults) would not hold.
    """

    def fault_for(self, round_index: int, task_index: int) -> Fault | None: ...


class FaultSchedule:
    """Explicit ``{(round, task): Fault}`` schedule with wildcard keys.

    Key components may be ``None`` to match any round / any task; exact
    keys win over task wildcards, which win over round wildcards, which
    win over the global ``(None, None)`` entry.

    >>> schedule = FaultSchedule({(0, 1): Fault("crash"),
    ...                           (None, 2): Fault("delay", seconds=0.01)})
    >>> schedule.fault_for(0, 1).kind
    'crash'
    >>> schedule.fault_for(7, 2).kind
    'delay'
    >>> schedule.fault_for(1, 1) is None
    True
    """

    def __init__(self, faults: Mapping[tuple[int | None, int | None], Fault]):
        for key, fault in faults.items():
            if (
                not isinstance(key, tuple)
                or len(key) != 2
                or not all(part is None or isinstance(part, int) for part in key)
            ):
                raise InvalidParameterError(
                    f"schedule keys must be (round, task) int-or-None pairs, "
                    f"got {key!r}"
                )
            if not isinstance(fault, Fault):
                raise InvalidParameterError(
                    f"schedule values must be Fault instances, got {fault!r}"
                )
        self._faults = dict(faults)

    def fault_for(self, round_index: int, task_index: int) -> Fault | None:
        for key in (
            (round_index, task_index),
            (None, task_index),
            (round_index, None),
            (None, None),
        ):
            fault = self._faults.get(key)
            if fault is not None:
                return fault
        return None

    def __len__(self) -> int:
        return len(self._faults)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultSchedule({self._faults!r})"


class RandomFaults:
    """Seeded random fault schedule, shape-free and fully deterministic.

    Whether (and how) a given ``(round, task)`` is faulted is a pure
    function of ``(seed, round, task)``: each lookup derives a private
    :class:`numpy.random.SeedSequence` from the triple, so the schedule
    needs no advance knowledge of how many rounds or tasks the job will
    have, and any sub-schedule is reproducible in isolation.

    Parameters
    ----------
    seed:
        Schedule seed (required — an unseeded chaos schedule cannot be
        replayed, defeating the point).
    rate:
        Probability that a given task is faulted at all.
    kinds:
        Fault kinds to draw from, uniformly.  Defaults to the
        policy-absorbable pair ``("crash", "delay")``; include ``"hang"``
        / ``"drop"`` / ``"duplicate"`` for meaner schedules.  ``"die"``
        must be opted into explicitly — it is only meaningful on process
        backends.
    times:
        ``Fault.times`` for the failure kinds — keep it at or below the
        enforcing policy's ``max_retries`` for absorbable schedules.
    delay, hang:
        Sleep lengths (seconds) for the respective kinds.
    """

    def __init__(
        self,
        seed: int,
        rate: float = 0.25,
        kinds: tuple[str, ...] = ("crash", "delay"),
        times: int = 1,
        delay: float = 0.005,
        hang: float = 0.2,
    ):
        if not isinstance(seed, (int, np.integer)):
            raise InvalidParameterError(
                f"RandomFaults needs an integer seed, got {seed!r}"
            )
        if not 0.0 <= rate <= 1.0:
            raise InvalidParameterError(f"rate must be in [0, 1], got {rate}")
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise InvalidParameterError(
                    f"unknown fault kind {kind!r}; choose from {FAULT_KINDS}"
                )
        if not kinds:
            raise InvalidParameterError("RandomFaults needs at least one kind")
        self.seed = int(seed)
        self.rate = float(rate)
        self.kinds = tuple(kinds)
        self.times = int(times)
        self.delay = float(delay)
        self.hang = float(hang)

    def fault_for(self, round_index: int, task_index: int) -> Fault | None:
        rng = np.random.default_rng(
            np.random.SeedSequence(
                [self.seed, int(round_index), int(task_index)]
            )
        )
        if rng.random() >= self.rate:
            return None
        kind = self.kinds[int(rng.integers(len(self.kinds)))]
        seconds = 0.0
        if kind == "delay":
            seconds = self.delay
        elif kind == "hang":
            seconds = self.hang
        return Fault(kind, times=self.times, seconds=seconds)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RandomFaults(seed={self.seed}, rate={self.rate}, "
            f"kinds={self.kinds})"
        )


def apply_fault(task: Callable, kind: str, seconds: float, driver_pid: int):
    """Execute ``task`` under an injected fault.  Module-level: picklable.

    The resilient executor pre-resolves which attempt this wrapper is for
    (``Fault.affects``), so the wrapper itself is attempt-free and a
    plain ``partial`` over it crosses process boundaries exactly like the
    reducer tasks it wraps.
    """
    if kind == "crash":
        raise InjectedFault("injected crash before task start")
    if kind == "die":
        if os.getpid() != driver_pid:  # pragma: no cover - kills the worker
            os._exit(1)
        # Refuse to kill the driver (sequential / thread execution): a
        # hard exit here would take the whole program down, which is not
        # the failure being simulated.  Degrade to a crash.
        raise InjectedFault("injected worker death (refused in driver process)")
    if kind in ("hang", "delay"):
        time.sleep(seconds)
    value = task()
    if kind == "drop":
        raise InjectedFault("injected result drop after task completion")
    return value
