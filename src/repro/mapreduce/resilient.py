"""Fault-tolerant task execution: retries, timeouts, speculation.

:class:`ResilientExecutor` wraps any backend satisfying the
:class:`~repro.mapreduce.executor.Executor` protocol — Sequential,
ThreadPool or ProcessPool — and enforces a :class:`FaultPolicy` on every
batch it runs:

* a failed task (exception, per-attempt timeout, lost result, broken
  worker pool) is **re-dispatched** up to ``max_retries`` times, with
  optional backoff, *without* poisoning the underlying persistent pool;
* a **straggler** task still running after ``speculate_after`` seconds
  gets a concurrent speculative copy; the first attempt to finish wins
  and the loser's result is discarded — results are **deduplicated by
  task index**, so exactly one result (and exactly one
  :class:`~repro.mapreduce.tasks.TaskOutput` with its evaluation
  count) survives per task, keeping round accounting exact;
* a task that exhausts its budget raises a structured
  :class:`~repro.errors.TaskFailedError` in bounded time — never a hang,
  never partial results.

Correctness rests on the repo-wide task contract: reducer tasks are pure
and pre-seeded (randomness bound before scheduling), so re-execution —
even concurrent double execution — produces bit-identical values.  Under
any fault schedule the policy can absorb, a job's output is therefore
bit-identical to its fault-free run; only the timing fields differ.

Fault *injection* is strictly opt-in: pass a
:class:`~repro.mapreduce.faults.FaultInjector` (a
:class:`~repro.mapreduce.faults.FaultSchedule` or
:class:`~repro.mapreduce.faults.RandomFaults`) and the executor consults
it at dispatch time, wrapping the affected attempts.  Without one, the
wrapper reacts only to real failures and adds one dictionary lookup per
task to the happy path.

Accounting: each :meth:`ResilientExecutor.run` call is one *round*; the
per-round :class:`RoundFaultStats` (retries, speculative launches/wins,
wasted task-seconds) is consumed by
:meth:`~repro.mapreduce.cluster.SimulatedCluster.run_round` via
:meth:`pop_round_stats` and lands in
:class:`~repro.mapreduce.accounting.RoundStats`; ``solve_many`` folds the
same numbers into its :class:`~repro.mapreduce.accounting.BatchSummary`.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, NamedTuple, Sequence

from repro.errors import InvalidParameterError, TaskFailedError
from repro.mapreduce.executor import Executor, SequentialExecutor
from repro.mapreduce.faults import Fault, FaultInjector, apply_fault
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

import os
from functools import partial

__all__ = ["FaultPolicy", "RoundFaultStats", "ResilientExecutor"]

_M_RETRIES = _metrics.counter(
    "repro_task_retries_total", "Task attempts re-dispatched after a failure"
)
_M_SPEC_LAUNCHES = _metrics.counter(
    "repro_speculative_launches_total",
    "Speculative / duplicate task copies launched",
)
_M_SPEC_WINS = _metrics.counter(
    "repro_speculative_wins_total", "Rounds won by a speculative copy"
)
_M_WASTED = _metrics.counter(
    "repro_wasted_task_seconds_total",
    "Wall-clock seconds spent on attempts whose results were discarded",
)
_M_FAULTS = _metrics.counter(
    "repro_faults_injected_total", "Faults injected by a configured injector"
)
_M_POOL_RESTARTS = _metrics.counter(
    "repro_pool_restarts_total", "Worker pools dropped and reopened after breaking"
)


@dataclass(frozen=True)
class FaultPolicy:
    """What the executor tolerates, and how hard it fights back.

    Parameters
    ----------
    max_retries:
        Re-dispatches allowed per task after its first attempt fails
        (so a task runs at most ``1 + max_retries`` times *due to
        failures*; speculative copies are budgeted separately).  ``0``
        turns retries off — the first failure is final.
    task_timeout:
        Per-attempt wall-clock budget in seconds.  An attempt running
        longer is abandoned and counted as a failure; on pool backends
        the retry dispatches immediately (the stuck attempt keeps its
        worker until it finishes — workers are never killed mid-task).
        ``None`` (default) disables timeouts.
    backoff, backoff_factor:
        Delay before the ``i``-th retry: ``backoff * backoff_factor**i``
        seconds.  Default no delay (local pools fail fast; backoff
        matters for a future remote transport).
    speculate_after:
        Straggler threshold in seconds: a task whose only attempt has
        been running this long gets a concurrent speculative copy.
        ``None`` (default) disables speculation.
    max_clones:
        Speculative copies allowed per task (on top of retries).
    """

    max_retries: int = 2
    task_timeout: float | None = None
    backoff: float = 0.0
    backoff_factor: float = 2.0
    speculate_after: float | None = None
    max_clones: int = 1

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise InvalidParameterError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise InvalidParameterError(
                f"task_timeout must be positive, got {self.task_timeout}"
            )
        if self.backoff < 0 or self.backoff_factor < 0:
            raise InvalidParameterError("backoff terms must be >= 0")
        if self.speculate_after is not None and self.speculate_after <= 0:
            raise InvalidParameterError(
                f"speculate_after must be positive, got {self.speculate_after}"
            )
        if self.max_clones < 0:
            raise InvalidParameterError(
                f"max_clones must be >= 0, got {self.max_clones}"
            )

    def retry_delay(self, retry_index: int) -> float:
        """Backoff before retry number ``retry_index`` (0-based)."""
        return self.backoff * self.backoff_factor**retry_index


@dataclass
class RoundFaultStats:
    """Fault-tolerance accounting for one executor round.

    ``wasted_task_seconds`` totals the wall-clock of every attempt whose
    result did not make it into the round's output: failed attempts,
    timed-out attempts (charged their timeout), and losing speculative /
    duplicate copies — the price paid for resilience, kept separate from
    the winners' ``task_times`` so the paper-methodology timing stays
    clean.  The ``per_task_*`` lists align with the round's task order
    (``solve_many`` uses them for exact per-run summaries).
    """

    retries: int = 0
    speculative_launches: int = 0
    speculative_wins: int = 0
    wasted_task_seconds: float = 0.0
    faults_injected: int = 0
    per_task_retries: list[int] = field(default_factory=list)
    per_task_speculative_wins: list[int] = field(default_factory=list)
    per_task_wasted_seconds: list[float] = field(default_factory=list)

    @classmethod
    def for_tasks(cls, n: int) -> "RoundFaultStats":
        return cls(
            per_task_retries=[0] * n,
            per_task_speculative_wins=[0] * n,
            per_task_wasted_seconds=[0.0] * n,
        )

    def fold(self, other: "RoundFaultStats") -> None:
        """Accumulate ``other``'s counters (per-task lists are not kept)."""
        self.retries += other.retries
        self.speculative_launches += other.speculative_launches
        self.speculative_wins += other.speculative_wins
        self.wasted_task_seconds += other.wasted_task_seconds
        self.faults_injected += other.faults_injected


class _Attempt(NamedTuple):
    """One in-flight execution attempt of one task."""

    index: int
    attempt: int
    started: float
    speculative: bool


def _abandoned_span(
    tracer: "_trace.Tracer | None",
    index: int,
    attempt: int,
    started: float,
    seconds: float,
    reason: str,
    speculative: bool,
) -> None:
    """Record one losing attempt on the driver timeline.

    Losing attempts never fold their worker-side spans (their results are
    discarded before the commit point), so this driver-side ``attempt``
    span — annotated ``abandoned=True`` — is the only trace they leave.
    """
    if tracer is None:
        return
    tracer.emit(
        f"attempt[{index}]#{attempt}",
        cat="attempt",
        start=started,
        duration=seconds,
        task=index,
        attempt=attempt,
        abandoned=True,
        speculative=speculative,
        reason=reason,
    )


class ResilientExecutor:
    """Fault-tolerant wrapper composing with any :class:`Executor` backend.

    Satisfies the ``Executor`` protocol itself (``run``, lifecycle,
    ``crosses_process_boundary``), so it drops into every slot a bare
    backend fits: a MapReduce solver's ``executor=`` knob, the
    ``solve_many`` fan-out, the serve scheduler's warm pool.

    Parameters
    ----------
    inner:
        The backend that actually executes tasks (default
        :class:`~repro.mapreduce.executor.SequentialExecutor`).  Pool
        backends are driven through their persistent pool.
    policy:
        The :class:`FaultPolicy` to enforce (default: 2 retries, no
        timeout, no speculation).
    faults:
        Optional :class:`~repro.mapreduce.faults.FaultInjector` for
        deterministic chaos testing.  ``None`` in production.
    """

    def __init__(
        self,
        inner: Executor | None = None,
        policy: FaultPolicy | None = None,
        faults: FaultInjector | None = None,
    ):
        if isinstance(inner, ResilientExecutor):
            raise InvalidParameterError(
                "nesting ResilientExecutor inside ResilientExecutor would "
                "multiply retry budgets; wrap the innermost backend once"
            )
        self.inner: Executor = inner if inner is not None else SequentialExecutor()
        self.policy = policy if policy is not None else FaultPolicy()
        self.faults = faults
        self.totals = RoundFaultStats()
        # The serve scheduler drives one wrapper from several dispatch
        # threads at once: round numbering is an atomic counter and the
        # run -> pop_round_stats hand-off is thread-local, so concurrent
        # batches cannot swap accounting.  ``totals`` folds under a lock.
        self._round_counter = itertools.count()
        self._tls = threading.local()
        self._totals_lock = threading.Lock()
        self._driver_pid = os.getpid()

    # ------------------------------------------------------------------ #
    # lifecycle: delegate to the wrapped backend
    # ------------------------------------------------------------------ #
    @property
    def crosses_process_boundary(self) -> bool:
        return bool(getattr(self.inner, "crosses_process_boundary", False))

    def open(self) -> "ResilientExecutor":
        if hasattr(self.inner, "open"):
            self.inner.open()
        return self

    def close(self) -> None:
        if hasattr(self.inner, "close"):
            self.inner.close()

    def __enter__(self) -> "ResilientExecutor":
        return self.open()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # accounting hand-off
    # ------------------------------------------------------------------ #
    def pop_round_stats(self) -> RoundFaultStats | None:
        """The most recent round's fault stats, consumed exactly once.

        :meth:`~repro.mapreduce.cluster.SimulatedCluster.run_round` calls
        this right after :meth:`run` to stamp the retry/speculation
        numbers onto that round's
        :class:`~repro.mapreduce.accounting.RoundStats`.  Thread-local:
        it returns the stats of the last ``run`` made by the *calling*
        thread, so concurrent callers sharing one wrapper each see their
        own round.
        """
        stats = getattr(self._tls, "last_round", None)
        self._tls.last_round = None
        return stats

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(
        self, tasks: Sequence[Callable[[], Any]]
    ) -> tuple[list[Any], list[float]]:
        round_index = next(self._round_counter)
        stats = RoundFaultStats.for_tasks(len(tasks))
        self._tls.last_round = stats
        if not tasks:
            return [], []
        try:
            if hasattr(self.inner, "submit"):
                out = self._run_pooled(list(tasks), round_index, stats)
            else:
                out = self._run_sequential(list(tasks), round_index, stats)
        finally:
            with self._totals_lock:
                self.totals.fold(stats)
            if _metrics.REGISTRY.enabled:
                if stats.retries:
                    _M_RETRIES.inc(stats.retries)
                if stats.speculative_launches:
                    _M_SPEC_LAUNCHES.inc(stats.speculative_launches)
                if stats.speculative_wins:
                    _M_SPEC_WINS.inc(stats.speculative_wins)
                if stats.wasted_task_seconds:
                    _M_WASTED.inc(stats.wasted_task_seconds)
                if stats.faults_injected:
                    _M_FAULTS.inc(stats.faults_injected)
        return out

    def _fault_for(self, round_index: int, task_index: int) -> Fault | None:
        if self.faults is None:
            return None
        return self.faults.fault_for(round_index, task_index)

    def _wrapped(
        self, task: Callable, fault: Fault | None, attempt: int, stats: RoundFaultStats
    ) -> Callable:
        """The callable for one attempt, fault applied if scheduled.

        The wrapper is a plain ``partial`` over a module-level function,
        so it is picklable whenever ``task`` is — injection works
        identically on process pools.  ``duplicate`` faults act at
        dispatch (a clone is launched), never on the callable.
        """
        if fault is None or fault.kind == "duplicate" or not fault.affects(attempt):
            return task
        stats.faults_injected += 1
        return partial(
            apply_fault, task, fault.kind, fault.seconds, self._driver_pid
        )

    def _exhausted(
        self,
        task_index: int,
        attempts: int,
        label_exc: BaseException,
    ) -> TaskFailedError:
        error = TaskFailedError(
            f"task {task_index} failed after {attempts} attempt(s), "
            f"retry budget {self.policy.max_retries} exhausted: "
            f"{type(label_exc).__name__}: {label_exc}",
            task_index=task_index,
            attempts=attempts,
        )
        error.__cause__ = label_exc
        return error

    # ------------------------------------------------------------------ #
    # sequential path (no futures, no concurrency)
    # ------------------------------------------------------------------ #
    def _run_sequential(
        self, tasks: list, round_index: int, stats: RoundFaultStats
    ) -> tuple[list[Any], list[float]]:
        """Inline execution with the same policy semantics, minus races.

        Timeouts cannot preempt an inline attempt; an attempt whose
        wall-clock *exceeded* the budget is discarded after the fact and
        retried, so the timeout contract (an over-budget attempt's result
        never counts) holds on every backend.  ``duplicate`` faults run
        the clone back-to-back and discard its result — the dedup path,
        serialised.
        """
        policy = self.policy
        tracer = _trace.current_tracer()
        results: list[Any] = []
        times: list[float] = []
        for idx, task in enumerate(tasks):
            fault = self._fault_for(round_index, idx)
            failures = 0
            attempt = 0
            while True:
                call = self._wrapped(task, fault, attempt, stats)
                started = time.perf_counter()
                try:
                    value = call()
                    seconds = time.perf_counter() - started
                    error = None
                except Exception as exc:  # noqa: BLE001 - retried or re-raised
                    seconds = time.perf_counter() - started
                    error = exc
                if error is None and (
                    policy.task_timeout is None or seconds <= policy.task_timeout
                ):
                    break  # success
                if error is None:
                    error = TimeoutError(
                        f"attempt took {seconds:.4g}s, over the per-task "
                        f"timeout of {policy.task_timeout:.4g}s"
                    )
                failures += 1
                stats.wasted_task_seconds += seconds
                stats.per_task_wasted_seconds[idx] += seconds
                _abandoned_span(
                    tracer, idx, attempt, started, seconds,
                    type(error).__name__, speculative=False,
                )
                if failures > policy.max_retries:
                    raise self._exhausted(idx, attempt + 1, error) from error
                stats.retries += 1
                stats.per_task_retries[idx] += 1
                delay = policy.retry_delay(failures - 1)
                if delay > 0:
                    time.sleep(delay)
                attempt += 1

            if fault is not None and fault.kind == "duplicate" and attempt == 0:
                # The duplicate's clone, serialised: runs after the
                # primary, loses the dedup race by construction.
                stats.speculative_launches += 1
                clone_start = time.perf_counter()
                try:
                    task()
                except Exception:  # noqa: BLE001 - clone results are discarded
                    pass
                waste = time.perf_counter() - clone_start
                stats.wasted_task_seconds += waste
                stats.per_task_wasted_seconds[idx] += waste
                _abandoned_span(
                    tracer, idx, attempt + 1, clone_start, waste,
                    "duplicate-clone", speculative=True,
                )
            results.append(value)
            times.append(seconds)
        return results, times

    # ------------------------------------------------------------------ #
    # pooled path (futures: real timeouts, real speculation)
    # ------------------------------------------------------------------ #
    def _submit(self, call: Callable):
        """Submit through the inner pool, recovering once from a corpse."""
        try:
            return self.inner.submit(call)
        except BrokenExecutor:
            self.inner.close()
            _M_POOL_RESTARTS.inc()
            return self.inner.submit(call)

    def _run_pooled(
        self, tasks: list, round_index: int, stats: RoundFaultStats
    ) -> tuple[list[Any], list[float]]:
        policy = self.policy
        tracer = _trace.current_tracer()
        n = len(tasks)
        results: list[Any] = [None] * n
        times: list[float] = [0.0] * n
        resolved = [False] * n
        faults = [self._fault_for(round_index, i) for i in range(n)]
        attempts_launched = [0] * n
        failures = [0] * n
        clones = [0] * n
        inflight: dict[Any, _Attempt] = {}
        inflight_count = [0] * n
        unresolved = n

        def launch(idx: int, speculative: bool = False) -> None:
            attempt = attempts_launched[idx]
            attempts_launched[idx] += 1
            call = self._wrapped(tasks[idx], faults[idx], attempt, stats)
            future = self._submit(call)
            inflight[future] = _Attempt(
                idx, attempt, time.perf_counter(), speculative
            )
            inflight_count[idx] += 1

        def abandon_all() -> None:
            for future in inflight:
                future.cancel()
            inflight.clear()

        def waste(idx: int, seconds: float) -> None:
            stats.wasted_task_seconds += seconds
            stats.per_task_wasted_seconds[idx] += seconds

        def attempt_failed(att: _Attempt, seconds: float, exc: BaseException) -> None:
            """One attempt is gone; retry, defer to a live clone, or give up."""
            idx = att.index
            waste(idx, seconds)
            _abandoned_span(
                tracer, idx, att.attempt, att.started, seconds,
                type(exc).__name__, speculative=att.speculative,
            )
            if resolved[idx]:
                return  # a clone already won; this loser just cost time
            failures[idx] += 1
            if inflight_count[idx] > 0:
                return  # another attempt is still running; let it race
            if failures[idx] > policy.max_retries:
                abandon_all()
                raise self._exhausted(idx, attempts_launched[idx], exc) from exc
            stats.retries += 1
            stats.per_task_retries[idx] += 1
            delay = policy.retry_delay(failures[idx] - 1)
            if delay > 0:
                time.sleep(delay)
            launch(idx)

        for idx in range(n):
            launch(idx)
            fault = faults[idx]
            if fault is not None and fault.kind == "duplicate":
                stats.speculative_launches += 1
                clones[idx] += 1
                launch(idx, speculative=True)

        while unresolved:
            done, _ = wait(
                set(inflight),
                timeout=self._next_event_delay(inflight, resolved, clones),
                return_when=FIRST_COMPLETED,
            )
            broken: list[tuple[_Attempt, BaseException]] = []
            for future in done:
                att = inflight.pop(future)
                inflight_count[att.index] -= 1
                now = time.perf_counter()
                try:
                    value, seconds = future.result()
                except BrokenExecutor as exc:
                    broken.append((att, exc))
                    continue
                except Exception as exc:  # noqa: BLE001 - policy decides
                    attempt_failed(att, now - att.started, exc)
                    continue
                idx = att.index
                if resolved[idx]:
                    waste(idx, seconds)  # duplicate result: deduplicated
                    _abandoned_span(
                        tracer, idx, att.attempt, att.started, seconds,
                        "deduplicated", speculative=att.speculative,
                    )
                elif (
                    policy.task_timeout is not None
                    and seconds > policy.task_timeout
                ):
                    # Completed, but over budget — the timeout contract
                    # says its result must not count (matches the
                    # sequential path, where preemption is impossible).
                    attempt_failed(
                        att,
                        seconds,
                        TimeoutError(
                            f"attempt took {seconds:.4g}s, over the per-task "
                            f"timeout of {policy.task_timeout:.4g}s"
                        ),
                    )
                else:
                    resolved[idx] = True
                    unresolved -= 1
                    results[idx] = value
                    times[idx] = seconds
                    if att.speculative:
                        stats.speculative_wins += 1
                        stats.per_task_speculative_wins[idx] = 1

            if broken:
                # The pool is a corpse: every other in-flight future is
                # doomed with it.  Drop the pool (the next submit opens a
                # fresh one) and route every casualty through the normal
                # failure path — retries re-dispatch, exhausted budgets
                # raise.
                if hasattr(self.inner, "close"):
                    self.inner.close()
                    _M_POOL_RESTARTS.inc()
                casualties = list(inflight.items())
                inflight.clear()
                for _, att in casualties:
                    inflight_count[att.index] -= 1
                now = time.perf_counter()
                for att, exc in broken:
                    attempt_failed(att, now - att.started, exc)
                for future, att in casualties:
                    if not resolved[att.index]:
                        attempt_failed(
                            att,
                            now - att.started,
                            BrokenExecutor(
                                "worker pool broke while the attempt was queued"
                            ),
                        )

            now = time.perf_counter()
            # Per-attempt timeouts: abandon over-budget attempts.  The
            # future is cancelled (a no-op if already running — workers
            # are never killed mid-task); a still-running attempt keeps
            # its worker busy until its (finite) work ends, which is why
            # retries dispatch immediately instead of waiting for it.
            if policy.task_timeout is not None:
                for future, att in list(inflight.items()):
                    if now - att.started > policy.task_timeout:
                        future.cancel()
                        del inflight[future]
                        inflight_count[att.index] -= 1
                        if resolved[att.index]:
                            waste(att.index, now - att.started)
                            _abandoned_span(
                                tracer, att.index, att.attempt, att.started,
                                now - att.started, "overtaken",
                                speculative=att.speculative,
                            )
                        else:
                            attempt_failed(
                                att,
                                now - att.started,
                                TimeoutError(
                                    f"attempt exceeded the per-task timeout "
                                    f"of {policy.task_timeout:.4g}s"
                                ),
                            )
            # Speculative re-execution: clone lone stragglers.
            if policy.speculate_after is not None:
                for future, att in list(inflight.items()):
                    idx = att.index
                    if (
                        not resolved[idx]
                        and inflight_count[idx] == 1
                        and clones[idx] < policy.max_clones
                        and now - att.started > policy.speculate_after
                    ):
                        stats.speculative_launches += 1
                        clones[idx] += 1
                        launch(idx, speculative=True)
            # Safety: every unresolved task must have an attempt in
            # flight (covers pool-breakage orderings where the retry
            # could not be dispatched inline).
            for idx in range(n):
                if not resolved[idx] and inflight_count[idx] == 0:
                    launch(idx)

        # All tasks answered: losing attempts still in flight are
        # abandoned, not awaited — a straggler must not delay the round
        # it already lost.
        now = time.perf_counter()
        for future, att in inflight.items():
            future.cancel()
            waste(att.index, now - att.started)
            _abandoned_span(
                tracer, att.index, att.attempt, att.started,
                now - att.started, "outpaced", speculative=att.speculative,
            )
        inflight.clear()
        return results, times

    def _next_event_delay(
        self, inflight: dict, resolved: list[bool], clones: list[int]
    ) -> float | None:
        """Seconds until the earliest timeout/speculation event, or None."""
        policy = self.policy
        horizon: float | None = None
        for att in inflight.values():
            candidates = []
            if policy.task_timeout is not None:
                candidates.append(att.started + policy.task_timeout)
            if (
                policy.speculate_after is not None
                and not resolved[att.index]
                and clones[att.index] < policy.max_clones
            ):
                candidates.append(att.started + policy.speculate_after)
            for when in candidates:
                if horizon is None or when < horizon:
                    horizon = when
        if horizon is None:
            return None
        return max(0.0, horizon - time.perf_counter())
