"""Capacity arithmetic from Section 3 of the paper.

These functions encode, as checkable code, the paper's statements about
when MRG runs in two rounds, how many machines are needed after each
round, and how the approximation factor degrades with extra rounds:

* two-round feasibility: ``n/m <= c`` and ``k*m <= c`` (Lemma 2);
* the machine recurrence, Eq. (1):
  ``m(i) <= m * (k/c)^i + (1 - (k/c)^i) / (1 - k/c)``,
  with the final round runnable once ``m(i) < 2``;
* approximation factor ``2 * (i + 1)`` for an ``i``-round schedule
  (Lemma 3), i.e. 4 for the standard two-round case;
* the hard requirement ``k <= c`` — without it "selecting k centers from
  a single machine seems to require incorporating external memory".
"""

from __future__ import annotations

import math

from repro.errors import CapacityError, InvalidParameterError

__all__ = [
    "validate_cluster",
    "mrg_feasible_two_rounds",
    "machines_after_rounds",
    "mrg_rounds_needed",
    "mrg_approximation_factor",
    "default_capacity",
]


def validate_cluster(n: int, k: int, m: int, c: int) -> None:
    """Raise unless an MRG schedule can exist at all.

    Requirements (Section 3.2–3.3): the cluster must be able to hold the
    input (``m*c >= n``), each machine must be able to hold its shard
    (``n/m <= c`` after the mapper's balanced split), and ``k <= c`` so the
    final Gonzalez round fits on one machine.
    """
    if n < 0 or k < 0:
        raise InvalidParameterError(f"n and k must be >= 0 (n={n}, k={k})")
    if m <= 0 or c <= 0:
        raise InvalidParameterError(f"m and c must be positive (m={m}, c={c})")
    if m * c < n:
        raise CapacityError(
            f"cluster too small: m*c = {m * c} < n = {n}; "
            "there is insufficient space across the machines to store the data set"
        )
    if math.ceil(n / m) > c:
        raise CapacityError(
            f"shard too large: ceil(n/m) = {math.ceil(n / m)} > c = {c}"
        )
    if k > c:
        raise CapacityError(
            f"k = {k} > c = {c}: the final round cannot select k centers on a "
            "single machine without external memory (paper, Section 3.3)"
        )


def mrg_feasible_two_rounds(n: int, k: int, m: int, c: int) -> bool:
    """Lemma 2's condition: two rounds suffice iff n/m <= c and k*m <= c."""
    return math.ceil(n / m) <= c and k * m <= c


def machines_after_rounds(m: int, k: int, c: int, i: int) -> float:
    """Upper bound on machines needed after ``i`` reduction rounds, Eq. (1).

    ``m(i) <= m * (k/c)^i + (1 - (k/c)^i) / (1 - k/c)``.  For ``k == c``
    the geometric sum degenerates to ``m + i`` (the limit of the formula).
    """
    if i < 0:
        raise InvalidParameterError(f"round count must be >= 0, got {i}")
    if c <= 0 or m <= 0:
        raise InvalidParameterError("m and c must be positive")
    rho = k / c
    if rho == 1.0:
        return float(m + i)
    return m * rho**i + (1.0 - rho**i) / (1.0 - rho)


def mrg_rounds_needed(n: int, k: int, m: int, c: int, max_rounds: int = 64) -> int:
    """Total MapReduce rounds an MRG schedule needs (including the final one).

    Returns 2 in the standard regime.  In the multi-round regime (k*m > c)
    it iterates Eq. (1) until ``m(i) < 2`` — i.e. the surviving centers fit
    on one machine — and returns ``i + 1``.  Per the paper's analysis this
    converges only if ``2k < c`` (the geometric tail must dip below 2);
    otherwise a :class:`CapacityError` is raised.
    """
    validate_cluster(n, k, m, c)
    if mrg_feasible_two_rounds(n, k, m, c):
        return 2
    for i in range(1, max_rounds + 1):
        if machines_after_rounds(m, k, c, i) < 2.0:
            return i + 1
    raise CapacityError(
        f"MRG cannot converge: with k={k}, c={c} the per-round center "
        f"reduction never fits one machine (need 2k < c; 2k = {2 * k})"
    )


def mrg_approximation_factor(total_rounds: int) -> int:
    """Approximation factor of an MRG schedule with ``total_rounds`` rounds.

    ``i`` reduction rounds plus the final round give ``2*(i+1)``; in the
    paper's notation a 2-round schedule (i=1) is a 4-approximation and each
    additional round adds 2.
    """
    if total_rounds < 2:
        raise InvalidParameterError(
            f"an MRG schedule has at least 2 rounds, got {total_rounds}"
        )
    return 2 * total_rounds


def default_capacity(n: int, k: int, m: int) -> int:
    """A capacity making the two-round regime just feasible.

    The paper sets capacity implicitly ("Assume that we have m machines
    each with capacity c" with n/m <= c and k*m <= c); experiments fix m=50
    and never hit the capacity wall.  This helper returns
    ``max(ceil(n/m), k*m)`` — the smallest c for which Lemma 2 applies —
    and is the default used by :class:`repro.core.mrg.MRG` when the caller
    does not specify c.
    """
    if m <= 0:
        raise InvalidParameterError(f"m must be positive, got {m}")
    return max(math.ceil(n / m) if n else 1, k * m, 1)
