"""The simulated MapReduce cluster.

A :class:`SimulatedCluster` is ``m`` machines of capacity ``c`` elements.
Algorithms submit *rounds*: a list of reducer tasks — each a
:class:`~repro.mapreduce.tasks.TaskSpec` declaring its input size.  The
cluster

* enforces the capacity constraint per task (a task whose declared input
  exceeds ``c`` raises :class:`~repro.errors.CapacityError` — this is the
  mechanism that forces MRG into its multi-round regime);
* refuses rounds with more tasks than machines;
* wall-clocks every task through its :class:`Executor` and records a
  :class:`~repro.mapreduce.accounting.RoundStats` whose ``parallel_time``
  is the slowest task (paper Section 7.1);
* attributes distance-evaluation deltas to the round when given a
  :class:`~repro.metric.base.DistCounter` to watch — either observed
  directly (tasks sharing the watched counter) or reported explicitly by
  tasks returning :class:`~repro.mapreduce.tasks.TaskOutput`, which is
  how per-shard reducer tasks with private counters stay exactly
  accounted on *every* executor backend, including process pools where
  worker-side counter mutations never reach the driver.

The task contract itself — what a round task may be, how it is traced
and how its accounting commits — lives in
:mod:`repro.mapreduce.tasks`; ``run_round`` is one of its call sites
(the facade's batch and solo dispatches are the others).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import CapacityError, InvalidParameterError, TaskFailedError
from repro.mapreduce.accounting import JobStats, RoundStats
from repro.mapreduce.executor import Executor, SequentialExecutor
from repro.mapreduce.tasks import TaskOutput, TaskSpec, bind_round, commit
from repro.metric.base import DistCounter
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

__all__ = ["SimulatedCluster", "TaskOutput", "TaskSpec"]

_M_ROUNDS = _metrics.counter(
    "repro_rounds_total", "MapReduce rounds executed", ("round",)
)
_M_ROUND_PARALLEL = _metrics.histogram(
    "repro_round_parallel_seconds",
    "Simulated parallel time per round (slowest task)",
    ("round",),
)
_M_ROUND_TASKS = _metrics.histogram(
    "repro_round_tasks",
    "Tasks dispatched per round",
    ("round",),
    buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
)


class SimulatedCluster:
    """``m`` simulated machines of per-machine capacity ``c``.

    Parameters
    ----------
    m:
        Number of machines (the paper fixes m = 50 in its experiments).
    capacity:
        Per-machine capacity in *elements* (points).  ``None`` means
        unbounded — useful for unit tests of the round mechanics.
    executor:
        Task execution backend; defaults to the faithful sequential one.
    dist_counter:
        When provided, the cluster snapshots the counter around each round
        and attributes the delta to that round's stats.
    """

    def __init__(
        self,
        m: int,
        capacity: int | None = None,
        executor: Executor | None = None,
        dist_counter: DistCounter | None = None,
    ):
        if m <= 0:
            raise InvalidParameterError(f"machine count must be positive, got {m}")
        if capacity is not None and capacity <= 0:
            raise InvalidParameterError(f"capacity must be positive, got {capacity}")
        self.m = int(m)
        self.capacity = None if capacity is None else int(capacity)
        self.executor: Executor = executor if executor is not None else SequentialExecutor()
        self.dist_counter = dist_counter
        self.stats = JobStats()

    # ------------------------------------------------------------------ #
    def check_fits(self, size: int, what: str = "input") -> None:
        """Raise :class:`CapacityError` if ``size`` exceeds one machine."""
        if self.capacity is not None and size > self.capacity:
            raise CapacityError(
                f"{what} of {size} elements exceeds machine capacity {self.capacity}"
            )

    def run_round(
        self,
        label: str,
        tasks: Sequence[TaskSpec],
        task_sizes: Sequence[int],
        shuffle_elements: int | None = None,
    ) -> list:
        """Execute one MapReduce round; record stats; return task results.

        Parameters
        ----------
        label:
            Human-readable round name ("mrg.round1", "eim.sample", ...).
        tasks:
            One :class:`~repro.mapreduce.tasks.TaskSpec` per participating
            machine.  Bare callables are rejected — the contract keeps
            every round task picklable on every backend.
        task_sizes:
            Declared input sizes (elements) per task; checked against
            capacity *before* any task runs, so a capacity violation never
            leaves partial work recorded.
        shuffle_elements:
            Elements moved by the mapper into this round; defaults to the
            sum of task sizes.

        Tasks may return a bare value or a
        :class:`~repro.mapreduce.tasks.TaskOutput`; the latter's
        ``dist_evals`` is folded into the watched counter before the
        round's delta is taken, and callers always receive the unwrapped
        values.
        """
        if len(tasks) != len(task_sizes):
            raise InvalidParameterError(
                f"{len(tasks)} tasks but {len(task_sizes)} sizes for round {label!r}"
            )
        if len(tasks) > self.m:
            raise CapacityError(
                f"round {label!r} needs {len(tasks)} machines but the cluster has {self.m}"
            )
        for size in task_sizes:
            self.check_fits(int(size), what=f"round {label!r} task input")

        specs = list(tasks)
        calls, sink = bind_round(label, specs, executor=self.executor)

        tracer = _trace.current_tracer()
        evals_before = self.dist_counter.evals if self.dist_counter else 0
        round_span = (
            tracer.span(label, cat="round", tasks=len(calls))
            if tracer is not None
            else _trace.NULL_SPAN
        )
        try:
            with round_span:
                results, times = self.executor.run(calls)
        except TaskFailedError as exc:
            # A task exhausted its fault-tolerance budget: stamp the round
            # so the error names the unit of work, not just an index.
            if exc.label is None:
                exc.label = label
            raise
        results = commit(results, specs, counter=self.dist_counter, sink=sink)
        evals_after = self.dist_counter.evals if self.dist_counter else 0

        round_stats = RoundStats(
            label=label,
            task_times=list(times),
            task_sizes=[int(s) for s in task_sizes],
            shuffle_elements=(
                int(sum(task_sizes)) if shuffle_elements is None else int(shuffle_elements)
            ),
            dist_evals=evals_after - evals_before,
        )
        # A fault-tolerant executor (ResilientExecutor) reports what it
        # absorbed this round; duck-typed so the cluster needs no import
        # of (or hard dependency on) the resilience layer.
        pop_stats = getattr(self.executor, "pop_round_stats", None)
        if pop_stats is not None:
            fault_stats = pop_stats()
            if fault_stats is not None:
                round_stats.retries = fault_stats.retries
                round_stats.speculative_wins = fault_stats.speculative_wins
                round_stats.wasted_task_seconds = fault_stats.wasted_task_seconds
        self.stats.add(round_stats)
        if _metrics.REGISTRY.enabled:
            # Bracketed suffixes ("mrg.round1[3]") are stripped so the
            # label set stays bounded for scrapers.
            series = label.partition("[")[0]
            _M_ROUNDS.labels(round=series).inc()
            _M_ROUND_PARALLEL.labels(round=series).observe(round_stats.parallel_time)
            _M_ROUND_TASKS.labels(round=series).observe(len(calls))
        return results

    def reset_stats(self) -> None:
        """Discard accumulated job statistics (the machine pool is reusable)."""
        self.stats = JobStats()
