"""Declarative MapReduce jobs.

The algorithm implementations in :mod:`repro.core` drive a
:class:`~repro.mapreduce.cluster.SimulatedCluster` imperatively (the rounds
of MRG and EIM are data-dependent).  For users building *their own*
MapReduce computations on this substrate — and to mirror the map/reduce
structure of Karloff et al.'s model explicitly — this module offers a small
declarative layer: a job is a sequence of rounds, each a ``partition``
function (the mapper) plus a ``reduce`` function, threaded over a state
value.

Example
-------
One round of per-shard Gonzalez (the heart of MRG) is::

    round1 = MapReduceRound(
        label="per-shard-gonzalez",
        partition=lambda idx, m, rng: block_partition(len(idx), m),
        reduce=lambda shard_idx, rng: gonzalez_local(space, shard_idx, k),
    )

Per-shard spaces
----------------
A round's payloads need not be index arrays: a ``partition`` function may
hand each machine a *space* directly — e.g. one
:class:`~repro.store.space.ChunkedMetricSpace` per shard of a
:class:`~repro.store.sharded.ShardedStream` (``repro.store.machine_view``
builds such views).  The default ``size_of`` already accounts them
correctly (`len(space)` is its point count), and a ``reduce`` that
returns :class:`~repro.mapreduce.tasks.TaskOutput` gets its
distance-evaluation count folded into the cluster's watched counter on
any executor backend — ``combine`` always sees the unwrapped values::

    shard_round = MapReduceRound(
        label="per-shard-hs",
        partition=lambda stream, m, rng: [
            ChunkedMetricSpace(stream.shard(j)) for j in range(stream.n_shards)
        ],
        reduce=lambda shard_space, rng: TaskOutput(
            hochbaum_shmoys(shard_space, k).centers, shard_space.counter.evals
        ),
    )
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import InvalidParameterError
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.tasks import TaskSpec
from repro.utils.rng import SeedLike, SeedStream

__all__ = ["MapReduceRound", "MapReduceJob"]


def _apply_reduce(reduce_fn: "ReduceFn", payload: Any, rng: np.random.Generator) -> Any:
    """One reducer call, as a module-level task body.

    The round's ``reduce`` function and its payload cross the
    ``run_round`` boundary as :class:`~repro.mapreduce.tasks.TaskSpec`
    arguments — so a declarative job whose ``reduce``/payloads pickle
    runs on the process backend too, instead of being silently
    thread-bound by a driver-side closure.
    """
    return reduce_fn(payload, rng)

#: partition(state, m, rng) -> list of per-machine payloads
PartitionFn = Callable[[Any, int, np.random.Generator], Sequence[Any]]
#: reduce(payload, rng) -> per-machine result
ReduceFn = Callable[[Any, np.random.Generator], Any]
#: combine(list of per-machine results) -> next state
CombineFn = Callable[[list[Any]], Any]


def _default_combine(results: list[Any]) -> Any:
    return results


@dataclass
class MapReduceRound:
    """One mapper/reducer round.

    ``size_of`` declares a payload's element count for capacity accounting;
    the default uses ``len`` and falls back to 1 for unsized payloads.
    """

    label: str
    partition: PartitionFn
    reduce: ReduceFn
    combine: CombineFn = _default_combine
    size_of: Callable[[Any], int] = lambda payload: (
        len(payload) if hasattr(payload, "__len__") else 1
    )


class MapReduceJob:
    """A sequence of rounds executed on a simulated cluster."""

    def __init__(self, rounds: Sequence[MapReduceRound]):
        if not rounds:
            raise InvalidParameterError("a MapReduce job needs at least one round")
        self.rounds = list(rounds)

    def run(
        self,
        cluster: SimulatedCluster,
        initial_state: Any,
        seed: SeedLike = None,
    ) -> Any:
        """Thread ``initial_state`` through every round; return final state.

        Each round draws *fresh* child RNGs — one per machine plus one for
        the mapper — from a stateful seed stream, so rounds are mutually
        independent yet the whole job is deterministic in the master seed
        regardless of executor backend.
        """
        state = initial_state
        seeds = SeedStream(seed)
        for rnd in self.rounds:
            mapper_rng, *machine_rngs = seeds.generators(cluster.m + 1)
            payloads = list(rnd.partition(state, cluster.m, mapper_rng))
            if len(payloads) > cluster.m:
                raise InvalidParameterError(
                    f"round {rnd.label!r} produced {len(payloads)} payloads "
                    f"for {cluster.m} machines"
                )
            tasks = [
                TaskSpec(_apply_reduce, args=(rnd.reduce, payload, machine_rngs[i]))
                for i, payload in enumerate(payloads)
            ]
            sizes = [rnd.size_of(p) for p in payloads]
            results = cluster.run_round(rnd.label, tasks, sizes)
            state = rnd.combine(results)
        return state
