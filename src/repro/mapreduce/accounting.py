"""Per-round and per-job cost accounting.

Two cost notions coexist, mirroring the paper:

* **simulated parallel time** — per round, the *maximum* wall-clock time of
  any reducer task (Section 7.1's methodology); summed over rounds it is
  the headline "Runtime" of Figures 2–4 and Table 7;
* **total CPU time** — the sum over reducers, i.e. what one sequential
  machine would pay; the MRG-vs-GON speedup in the paper is precisely
  simulated-parallel vs total-sequential.

We additionally track shuffle volume (elements moved between rounds) and
scalar distance evaluations (via :class:`repro.metric.base.DistCounter`),
which the paper's Section 5 analysis counts; neither is charged to time,
matching the paper ("we ... do not record the cost of moving data between
machines").
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from typing import Iterable, Mapping

__all__ = ["RoundStats", "JobStats", "BatchSummary"]


@dataclass
class RoundStats:
    """Costs of one MapReduce round."""

    label: str
    #: Wall-clock seconds per reducer task, in task order.
    task_times: list[float] = field(default_factory=list)
    #: Input elements per reducer task (for capacity audits).
    task_sizes: list[int] = field(default_factory=list)
    #: Elements shuffled into this round by the mapper.
    shuffle_elements: int = 0
    #: Scalar distance evaluations performed during this round.
    dist_evals: int = 0
    #: Task attempts re-dispatched after a failure (crash / timeout /
    #: lost result) by the fault-tolerance layer.  Zero without a
    #: :class:`~repro.mapreduce.resilient.ResilientExecutor`.
    retries: int = 0
    #: Tasks whose *speculative* copy finished first.
    speculative_wins: int = 0
    #: Wall-clock of attempts whose result was discarded (failed
    #: attempts, abandoned stragglers, losing speculative copies).  Kept
    #: out of ``task_times`` so the paper-methodology timing is
    #: winners-only.
    wasted_task_seconds: float = 0.0

    @property
    def n_tasks(self) -> int:
        return len(self.task_times)

    @property
    def parallel_time(self) -> float:
        """Simulated parallel time: the slowest reducer's wall-clock."""
        return max(self.task_times) if self.task_times else 0.0

    @property
    def cpu_time(self) -> float:
        """Total CPU time: the sum over reducers."""
        return float(sum(self.task_times))

    @property
    def max_task_size(self) -> int:
        return max(self.task_sizes) if self.task_sizes else 0

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RoundStats({self.label!r}: {self.n_tasks} tasks, "
            f"parallel {self.parallel_time:.4g}s, cpu {self.cpu_time:.4g}s, "
            f"shuffle {self.shuffle_elements}, dist_evals {self.dist_evals})"
        )

    # ------------------------------------------------------------------ #
    # wire form: benchmark harnesses serialise per-round rows
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Plain-JSON form; :meth:`from_dict` round-trips it exactly."""
        return {
            "label": self.label,
            "task_times": list(self.task_times),
            "task_sizes": list(self.task_sizes),
            "shuffle_elements": self.shuffle_elements,
            "dist_evals": self.dist_evals,
            "retries": self.retries,
            "speculative_wins": self.speculative_wins,
            "wasted_task_seconds": self.wasted_task_seconds,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "RoundStats":
        """Rebuild from a :meth:`to_dict` mapping.

        Unknown keys are ignored and missing keys keep their dataclass
        defaults, so rows written before the fault-tolerance fields
        existed (and rows a newer writer may add fields to) still parse.
        """
        known = {f.name for f in fields(cls)}
        return cls(**{key: data[key] for key in known if key in data})


@dataclass
class JobStats:
    """Accumulated costs of a multi-round MapReduce job."""

    rounds: list[RoundStats] = field(default_factory=list)

    def add(self, round_stats: RoundStats) -> RoundStats:
        self.rounds.append(round_stats)
        return round_stats

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    @property
    def parallel_time(self) -> float:
        """Simulated parallel job time: sum over rounds of the slowest task."""
        return float(sum(r.parallel_time for r in self.rounds))

    @property
    def cpu_time(self) -> float:
        return float(sum(r.cpu_time for r in self.rounds))

    @property
    def shuffle_elements(self) -> int:
        return int(sum(r.shuffle_elements for r in self.rounds))

    @property
    def dist_evals(self) -> int:
        return int(sum(r.dist_evals for r in self.rounds))

    @property
    def max_machine_load(self) -> int:
        """Largest single-reducer input across the whole job."""
        return max((r.max_task_size for r in self.rounds), default=0)

    @property
    def retries(self) -> int:
        return int(sum(r.retries for r in self.rounds))

    @property
    def speculative_wins(self) -> int:
        return int(sum(r.speculative_wins for r in self.rounds))

    @property
    def wasted_task_seconds(self) -> float:
        return float(sum(r.wasted_task_seconds for r in self.rounds))

    def merged(self, other: "JobStats") -> "JobStats":
        """New JobStats with this job's rounds followed by ``other``'s."""
        return JobStats(rounds=[*self.rounds, *other.rounds])

    def summary(self) -> dict:
        """Flat dict of headline numbers (used by the experiment harness)."""
        return {
            "rounds": self.n_rounds,
            "parallel_time": self.parallel_time,
            "cpu_time": self.cpu_time,
            "shuffle_elements": self.shuffle_elements,
            "dist_evals": self.dist_evals,
            "max_machine_load": self.max_machine_load,
        }


@dataclass
class BatchSummary:
    """Merged accounting of one ``solve_many`` batch (the JobStats of the
    batch fan-out, one level above the per-run round stats).

    The two time notions mirror :class:`JobStats`: ``parallel_time`` is
    the slowest *run* in the batch (what a fully parallel fan-out would
    take), ``cpu_time`` the sum over runs (what the sequential backend
    pays).  ``dist_evals`` totals every run's private counter — the
    *logical* evaluation count, cache- and backend-invariant, so a
    cached batch reports the same total as an uncached one while
    ``cache_hits``/``cache_misses`` record the reuse that actually
    happened.  The cache numbers *are* backend-dependent: the
    :class:`~repro.store.cache.DistanceCache` is shared within the
    driver process, so sequential/thread fan-outs report hits where
    process-pool tasks, each unpickling a private snapshot, report
    misses.  ``solver_rounds`` sums the MapReduce rounds of the runs
    that report round stats (sequential solvers contribute zero).
    """

    runs: int = 0
    parallel_time: float = 0.0
    cpu_time: float = 0.0
    dist_evals: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    solver_rounds: int = 0
    #: Fault-tolerance accounting (see :class:`RoundStats`): task
    #: attempts re-dispatched after failures, tasks won by a speculative
    #: copy, and wall-clock spent on attempts whose result was
    #: discarded.  All zero unless the batch ran under a
    #: :class:`~repro.mapreduce.resilient.ResilientExecutor`.  The
    #: defaults keep summaries written before these fields existed
    #: parsing unchanged (``from_dict`` ignores unknown keys in the
    #: other direction).
    retries: int = 0
    speculative_wins: int = 0
    wasted_task_seconds: float = 0.0

    def summary(self) -> dict:
        """Flat dict of headline numbers, shaped like ``JobStats.summary``."""
        return {
            "runs": self.runs,
            "parallel_time": self.parallel_time,
            "cpu_time": self.cpu_time,
            "dist_evals": self.dist_evals,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "solver_rounds": self.solver_rounds,
            "retries": self.retries,
            "speculative_wins": self.speculative_wins,
            "wasted_task_seconds": self.wasted_task_seconds,
        }

    # ------------------------------------------------------------------ #
    # wire form: the summary rides back per response over repro.serve
    # ------------------------------------------------------------------ #
    to_dict = summary

    @classmethod
    def from_dict(cls, data: Mapping) -> "BatchSummary":
        """Rebuild from a :meth:`summary`/:meth:`to_dict` mapping.

        Unknown keys are ignored (a newer server may report fields an
        older client does not know); missing keys keep their defaults.
        """
        known = {f.name for f in fields(cls)}
        return cls(**{key: data[key] for key in known if key in data})

    def to_json(self) -> str:
        """Compact JSON form — ``from_json`` round-trips it exactly."""
        return json.dumps(self.summary(), separators=(",", ":"))

    @classmethod
    def from_json(cls, payload: str) -> "BatchSummary":
        return cls.from_dict(json.loads(payload))

    @classmethod
    def merged(cls, parts: Iterable["BatchSummary"]) -> "BatchSummary":
        """Fold per-run summaries into one batch summary.

        Counts sum; ``parallel_time`` is the slowest part (what a fully
        parallel fan-out pays) while ``cpu_time`` sums, mirroring
        :class:`JobStats`.
        """
        total = cls()
        for part in parts:
            total.runs += part.runs
            total.parallel_time = max(total.parallel_time, part.parallel_time)
            total.cpu_time += part.cpu_time
            total.dist_evals += part.dist_evals
            total.cache_hits += part.cache_hits
            total.cache_misses += part.cache_misses
            total.solver_rounds += part.solver_rounds
            total.retries += part.retries
            total.speculative_wins += part.speculative_wins
            total.wasted_task_seconds += part.wasted_task_seconds
        return total
