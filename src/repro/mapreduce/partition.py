"""Mapper-side partitioners.

MRG's first round "arbitrarily partitions V into sets V_1..V_m such that
the union covers V and |V_i| <= ceil(n/m)" (Algorithm 1, line 3).  All
partitioners here guarantee that invariant: the returned index arrays are
disjoint, cover ``range(n)``, and each has at most ``ceil(n/m)`` elements.

Three strategies are provided because the *choice* is adversarially
relevant (the paper's future-work section notes the factor-4 bound is tight
under adversarial assignment): ``block`` is the arbitrary/deterministic
choice, ``random`` destroys adversarial structure, ``hash`` is the
stateless-mapper choice a real MapReduce deployment would use.
``bench_ablation_partition.py`` measures the quality impact.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import InvalidParameterError
from repro.utils.rng import SeedLike, as_generator

__all__ = [
    "block_partition",
    "random_partition",
    "hash_partition",
    "shard_aligned_partitioner",
    "PARTITIONERS",
]


def _check(n: int, m: int) -> None:
    if n < 0:
        raise InvalidParameterError(f"n must be >= 0, got {n}")
    if m <= 0:
        raise InvalidParameterError(f"m must be positive, got {m}")


def block_partition(
    n: int,
    m: int,
    align: int | None = None,
    boundaries=None,
) -> list[np.ndarray]:
    """Contiguous blocks; block sizes differ by at most one.

    Deterministic and order-preserving — the "arbitrary" partition of
    Algorithm 1 as a real system would implement it for pre-sharded input.

    With ``align`` set, every machine boundary is snapped to a multiple of
    ``align`` (except the final one at ``n``).  This is the out-of-core
    mode: partitioning a :class:`~repro.store.space.ChunkedMetricSpace`
    with ``align=stream.chunk_size`` makes every machine's ``local`` view
    load whole chunks, so no chunk is read by two machines.  Balance is
    then in *chunks*: sizes differ by at most one chunk (the strict
    ``ceil(n/m)`` cap of the unaligned mode relaxes to
    ``align * ceil(n / (m * align))``), and when there are fewer chunks
    than machines the trailing machines receive empty shards.

    With ``boundaries`` set — a sorted array of permitted cut offsets,
    e.g. :attr:`repro.store.sharded.ShardedStream.shard_bounds` — every
    machine boundary snaps to the *nearest permitted offset* instead.
    This is the shard-aware mode: machine cuts land on shard-file edges,
    so every reducer's input is a union of whole shard files (at the
    price of balance now being bounded by the shard granularity).
    ``align`` and ``boundaries`` are mutually exclusive.
    """
    _check(n, m)
    if align is not None and boundaries is not None:
        raise InvalidParameterError("pass either align or boundaries, not both")
    if align is not None:
        if align <= 0:
            raise InvalidParameterError(f"align must be positive, got {align}")
        n_chunks = -(-n // align)
        chunk_bounds = np.linspace(0, n_chunks, m + 1).astype(np.intp)
        bounds = np.minimum(chunk_bounds * align, n)
    elif boundaries is not None:
        allowed = np.unique(np.asarray(boundaries, dtype=np.intp))
        if allowed.size == 0 or allowed[0] < 0 or allowed[-1] > n:
            raise InvalidParameterError(
                f"boundaries must be offsets within [0, {n}], got {boundaries!r}"
            )
        # Cuts must be able to cover the whole range.
        allowed = np.unique(np.concatenate([allowed, [0, n]]))
        ideal = np.linspace(0, n, m + 1)
        # Snap each ideal cut to the nearest permitted offset; cumulative
        # maximum keeps the bounds monotone when machines outnumber
        # boundary intervals (trailing machines then come out empty).
        nearest = np.searchsorted(allowed, ideal, side="left")
        nearest = np.clip(nearest, 1, allowed.size - 1)
        pick_lower = (ideal - allowed[nearest - 1]) <= (allowed[nearest] - ideal)
        bounds = np.where(pick_lower, allowed[nearest - 1], allowed[nearest])
        bounds[0], bounds[-1] = 0, n
        bounds = np.maximum.accumulate(bounds).astype(np.intp)
    else:
        bounds = np.linspace(0, n, m + 1).astype(np.intp)
    return [np.arange(bounds[i], bounds[i + 1], dtype=np.intp) for i in range(m)]


def shard_aligned_partitioner(boundaries) -> Callable[[int, int], list[np.ndarray]]:
    """A ``PARTITIONERS``-style callable cutting only at ``boundaries``.

    Binds the shard table of a sharded dataset (e.g.
    ``ShardedStream.shard_bounds``) into a ``(n, m) -> shards`` callable
    accepted by the MapReduce solvers' ``partitioner`` option, so reducer
    inputs are unions of whole shard files::

        stream = ShardedStream("shards/")
        solve(stream, k, algorithm="mrg",
              partitioner=shard_aligned_partitioner(stream.shard_bounds))

    Shard alignment only describes the original dataset's rows; when the
    solver partitions something smaller — MRG's later reduction rounds
    cut a shrunken center subset — the callable falls back to the plain
    balanced block partition instead of misapplying dataset offsets.
    """
    bounds = np.asarray(boundaries, dtype=np.intp)

    def partition(n: int, m: int) -> list[np.ndarray]:
        if n != int(bounds[-1]):
            return block_partition(n, m)
        return block_partition(n, m, boundaries=bounds)

    return partition


def random_partition(n: int, m: int, seed: SeedLike = None) -> list[np.ndarray]:
    """Uniformly random balanced partition (shuffle, then block-split)."""
    _check(n, m)
    rng = as_generator(seed)
    perm = rng.permutation(n).astype(np.intp, copy=False)
    bounds = np.linspace(0, n, m + 1).astype(np.intp)
    return [np.sort(perm[bounds[i] : bounds[i + 1]]) for i in range(m)]


def hash_partition(n: int, m: int, salt: int = 0) -> list[np.ndarray]:
    """Stateless hash partition: point ``i`` goes to machine ``h(i) mod m``.

    Uses a splitmix64-style integer mix so machine loads are balanced in
    expectation; loads may exceed ``ceil(n/m)`` slightly, so the strict
    size invariant is enforced by spilling round-robin — matching how a
    real mapper with a combiner cap would behave.
    """
    _check(n, m)
    idx = np.arange(n, dtype=np.uint64) + np.uint64(salt)
    # splitmix64 finaliser
    z = idx + np.uint64(0x9E3779B97F4A7C15)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    z = z ^ (z >> np.uint64(31))
    assign = (z % np.uint64(m)).astype(np.intp)

    cap = -(-n // m) if n else 0
    parts: list[list[int]] = [[] for _ in range(m)]
    spill: list[int] = []
    for i, a in enumerate(assign):
        if len(parts[a]) < cap:
            parts[a].append(i)
        else:
            spill.append(i)
    j = 0
    for i in spill:
        while len(parts[j]) >= cap:
            j += 1
        parts[j].append(i)
    return [np.asarray(p, dtype=np.intp) for p in parts]


PARTITIONERS = {
    "block": block_partition,
    "random": random_partition,
    "hash": hash_partition,
}
