"""Task executors: how a round's reducer tasks actually run.

:class:`SequentialExecutor` (default) reproduces the paper's methodology —
tasks run one after another on the driver, each individually wall-clocked;
the round's *simulated parallel* time is the max.  This is also the honest
choice under CPython's GIL (repro note: "GIL hampers true multicore
speedup measurement"): simulated timing measures algorithmic work, not
interpreter contention.

:class:`ProcessPoolExecutorBackend` runs tasks in worker processes for real
multicore execution.  Tasks must then be picklable top-level callables —
which the MapReduce solvers' reducer tasks now are: each is a ``partial``
over a module-level function whose space argument re-opens its backing
(memmap, shard directory, generator) in the worker, and whose evaluation
counts return to the driver in a
:class:`~repro.mapreduce.cluster.TaskOutput`.  The per-task times it
reports include IPC overhead, so it is *not* used for the
paper-reproduction benches — it exists for downstream users with many cores
and large shards, where the BLAS-bound kernels dominate pickling costs.

:class:`ThreadPoolExecutorBackend` runs tasks in a thread pool: shared
memory, no pickling, no process spawn.  CPython's GIL serialises the pure
Python parts, but the distance kernels spend their time inside NumPy/BLAS
calls that release the GIL, so BLAS-heavy shards overlap for real — the
sweet spot between the honest sequential methodology and full process
isolation.  Results are bit-identical to the other backends (seeds are
bound before scheduling); only the reported per-task times differ, as they
include whatever GIL contention the pure-Python sections see.  Tasks
sharing one space share its :class:`~repro.metric.base.DistCounter`;
its tally is lock-guarded, so hand-rolled task lists hammering one
counter stay exact (``solve_many`` additionally gives each run a private
counter so per-run records are scheduling-independent, not merely
race-free).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Protocol, Sequence

__all__ = [
    "Executor",
    "SequentialExecutor",
    "ThreadPoolExecutorBackend",
    "ProcessPoolExecutorBackend",
    "run_task",
]


class Executor(Protocol):
    """Runs a batch of zero-argument tasks; returns (results, seconds) lists."""

    def run(
        self, tasks: Sequence[Callable[[], Any]]
    ) -> tuple[list[Any], list[float]]: ...


def run_task(task: Callable[[], Any]) -> tuple[Any, float]:
    """Execute one task, returning ``(result, wall_seconds)``."""
    t0 = time.perf_counter()
    result = task()
    return result, time.perf_counter() - t0


class SequentialExecutor:
    """Run tasks one by one on the calling thread (paper methodology)."""

    def run(
        self, tasks: Sequence[Callable[[], Any]]
    ) -> tuple[list[Any], list[float]]:
        results: list[Any] = []
        times: list[float] = []
        for task in tasks:
            result, seconds = run_task(task)
            results.append(result)
            times.append(seconds)
        return results, times


class ThreadPoolExecutorBackend:
    """Run tasks in a thread pool (shared memory; BLAS kernels overlap).

    Tasks need not be picklable, and the input space is shared rather
    than copied into workers, so this backend has near-zero dispatch
    overhead.  Real speedup is bounded by how much time the tasks spend
    in GIL-releasing kernels (vector distance computations); pure-Python
    control flow serialises.

    Parameters
    ----------
    max_workers:
        Worker thread count; ``None`` lets the pool pick its default.
    """

    def __init__(self, max_workers: int | None = None):
        self.max_workers = max_workers

    def run(
        self, tasks: Sequence[Callable[[], Any]]
    ) -> tuple[list[Any], list[float]]:
        if not tasks:
            return [], []
        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            out = list(pool.map(run_task, tasks))
        results = [r for r, _ in out]
        times = [t for _, t in out]
        return results, times


class ProcessPoolExecutorBackend:
    """Run tasks in a process pool (real parallelism; tasks must pickle).

    Parameters
    ----------
    max_workers:
        Worker process count; ``None`` lets the pool pick (CPU count).
    """

    def __init__(self, max_workers: int | None = None):
        self.max_workers = max_workers

    def run(
        self, tasks: Sequence[Callable[[], Any]]
    ) -> tuple[list[Any], list[float]]:
        if not tasks:
            return [], []
        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            out = list(pool.map(run_task, tasks))
        results = [r for r, _ in out]
        times = [t for _, t in out]
        return results, times
