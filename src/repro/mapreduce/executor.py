"""Task executors: how a round's reducer tasks actually run.

:class:`SequentialExecutor` (default) reproduces the paper's methodology —
tasks run one after another on the driver, each individually wall-clocked;
the round's *simulated parallel* time is the max.  This is also the honest
choice under CPython's GIL (repro note: "GIL hampers true multicore
speedup measurement"): simulated timing measures algorithmic work, not
interpreter contention.

:class:`ProcessPoolExecutorBackend` runs tasks in worker processes for real
multicore execution.  Tasks must then be picklable top-level callables —
which every solver's round tasks are by construction: each is a
:class:`~repro.mapreduce.tasks.TaskSpec` over a module-level function
whose space argument re-opens its backing (memmap, shard directory,
generator) or re-attaches its published shared-memory block (see
:mod:`repro.store.shm`) in the worker, and whose evaluation counts
return to the driver in a :class:`~repro.mapreduce.tasks.TaskOutput`.
The per-task times it reports include IPC overhead, so the
paper-reproduction *figures* stay on the sequential methodology, while
``benchmarks/bench_perf.py`` carries explicit process-backend cells so
that overhead is measured — the backend wins for downstream users with
many cores and large shards, where the BLAS-bound kernels dominate
pickling costs.

:class:`ThreadPoolExecutorBackend` runs tasks in a thread pool: shared
memory, no pickling, no process spawn.  CPython's GIL serialises the pure
Python parts, but the distance kernels spend their time inside NumPy/BLAS
calls that release the GIL, so BLAS-heavy shards overlap for real — the
sweet spot between the honest sequential methodology and full process
isolation.  Results are bit-identical to the other backends (seeds are
bound before scheduling); only the reported per-task times differ, as they
include whatever GIL contention the pure-Python sections see.  Tasks
sharing one space share its :class:`~repro.metric.base.DistCounter`;
its tally is lock-guarded, so hand-rolled task lists hammering one
counter stay exact (``solve_many`` additionally gives each run a private
counter so per-run records are scheduling-independent, not merely
race-free).

Lifecycle.  Both pool backends are **persistent** by default: the
underlying ``concurrent.futures`` pool is created lazily on the first
:meth:`run` (or eagerly via :meth:`open`) and *reused* by every
subsequent ``run`` until :meth:`close` — so a multi-round MapReduce job
(:class:`~repro.mapreduce.cluster.SimulatedCluster` calls ``run`` once
per round) and repeated ``solve_many`` batches pay the worker spawn cost
once, not once per round.  The backends are context managers
(``with ProcessPoolExecutorBackend(4) as ex: ...`` closes the pool on
exit, error paths included), ``close`` is idempotent and a closed
backend transparently re-opens on its next ``run``.  Pass
``persistent=False`` to restore the old spawn-per-``run`` behaviour —
the baseline the perf harness (``benchmarks/bench_perf.py``) measures
the persistent engine against.
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Any, Callable, Protocol, Sequence

__all__ = [
    "Executor",
    "SequentialExecutor",
    "ThreadPoolExecutorBackend",
    "ProcessPoolExecutorBackend",
    "run_task",
]


class Executor(Protocol):
    """Runs a batch of zero-argument tasks; returns (results, seconds) lists.

    ``run`` is the whole required surface.  Backends that hold resources
    (worker pools, connections) additionally expose the optional
    lifecycle — ``open()``, ``close()``, context-manager enter/exit — and
    backends whose tasks execute in another process advertise it with a
    truthy ``crosses_process_boundary`` class attribute, which the
    solvers use to decide when publishing a space to shared memory is
    worth it (:mod:`repro.store.shm`).
    """

    def run(
        self, tasks: Sequence[Callable[[], Any]]
    ) -> tuple[list[Any], list[float]]: ...


def run_task(task: Callable[[], Any]) -> tuple[Any, float]:
    """Execute one task, returning ``(result, wall_seconds)``."""
    t0 = time.perf_counter()
    result = task()
    return result, time.perf_counter() - t0


class SequentialExecutor:
    """Run tasks one by one on the calling thread (paper methodology).

    Holds no resources; ``open``/``close``/context-manager are provided
    as no-ops so callers can drive any backend through one lifecycle.
    """

    crosses_process_boundary = False

    def run(
        self, tasks: Sequence[Callable[[], Any]]
    ) -> tuple[list[Any], list[float]]:
        results: list[Any] = []
        times: list[float] = []
        for task in tasks:
            result, seconds = run_task(task)
            results.append(result)
            times.append(seconds)
        return results, times

    def open(self) -> "SequentialExecutor":
        return self

    def close(self) -> None:
        pass

    def __enter__(self) -> "SequentialExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


class _PoolBackend:
    """Shared lifecycle of the thread- and process-pool backends.

    Subclasses set :attr:`_pool_factory` (a ``concurrent.futures``
    executor class) and may override :meth:`_map` (the process backend
    adds chunked submission).
    """

    _pool_factory: type  # ThreadPoolExecutor | ProcessPoolExecutor
    crosses_process_boundary = False

    def __init__(self, max_workers: int | None = None, persistent: bool = True):
        self.max_workers = max_workers
        self.persistent = bool(persistent)
        self._pool = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def open(self):
        """Spawn the worker pool now (idempotent).  Returns ``self``."""
        if self._pool is None:
            self._pool = self._make_pool()
        return self

    def close(self) -> None:
        """Shut the pool down and join its workers (idempotent).

        The backend remains usable: the next :meth:`run` re-opens a
        fresh pool.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    @property
    def is_open(self) -> bool:
        """Whether a live worker pool is currently attached."""
        return self._pool is not None

    def __enter__(self):
        return self.open()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        pool = getattr(self, "_pool", None)
        if pool is not None:
            pool.shutdown(wait=False)

    def __getstate__(self):
        # Live pools cannot cross a pickle boundary (nested fan-out, e.g.
        # a per-entry executor knob inside a process-pool batch); the
        # copy arrives closed and re-opens lazily on its side.
        state = self.__dict__.copy()
        state["_pool"] = None
        return state

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def _make_pool(self):
        return self._pool_factory(max_workers=self.max_workers)

    def _map(self, pool, tasks: Sequence[Callable[[], Any]]) -> list:
        return list(pool.map(run_task, tasks))

    def submit(self, task: Callable[[], Any]):
        """Submit one task to the persistent pool, without waiting.

        Returns a ``concurrent.futures.Future`` resolving to
        ``(result, wall_seconds)`` — the same pair :func:`run_task`
        produces under :meth:`run`.  This is the hook
        :class:`~repro.mapreduce.resilient.ResilientExecutor` drives
        per-task retries, timeouts and speculative copies through;
        ``run`` remains the batch path.  Always uses the persistent pool
        (opening it if needed) even for ``persistent=False`` backends:
        individual futures have no natural point to tear a throwaway
        pool down.
        """
        self.open()
        return self._pool.submit(run_task, task)

    def run(
        self, tasks: Sequence[Callable[[], Any]]
    ) -> tuple[list[Any], list[float]]:
        if not tasks:
            return [], []
        if not self.persistent:
            with self._make_pool() as pool:
                out = self._map(pool, tasks)
        else:
            self.open()
            try:
                out = self._map(self._pool, tasks)
            except BrokenExecutor:
                # A broken pool (killed worker, failed spawn) poisons
                # every later submission; drop it so the next run gets a
                # fresh pool instead of inheriting the corpse.
                self.close()
                raise
        results = [r for r, _ in out]
        times = [t for _, t in out]
        return results, times


class ThreadPoolExecutorBackend(_PoolBackend):
    """Run tasks in a thread pool (shared memory; BLAS kernels overlap).

    Tasks need not be picklable, and the input space is shared rather
    than copied into workers, so this backend has near-zero dispatch
    overhead.  Real speedup is bounded by how much time the tasks spend
    in GIL-releasing kernels (vector distance computations); pure-Python
    control flow serialises.

    Parameters
    ----------
    max_workers:
        Worker thread count; ``None`` lets the pool pick its default.
    persistent:
        Keep the pool alive across :meth:`run` calls (default).  See the
        module lifecycle notes.
    """

    _pool_factory = ThreadPoolExecutor


class ProcessPoolExecutorBackend(_PoolBackend):
    """Run tasks in a process pool (real parallelism; tasks must pickle).

    Task batches are submitted in *chunks* (``Executor.map(chunksize=)``),
    so a round of many small reducer tasks costs a handful of IPC
    round-trips instead of one per task; results still come back in task
    order, one wall-clock per task, measured inside the worker.

    Parameters
    ----------
    max_workers:
        Worker process count; ``None`` lets the pool pick (CPU count).
    persistent:
        Keep the pool alive across :meth:`run` calls (default).  See the
        module lifecycle notes.
    chunksize:
        Tasks per IPC submission.  ``None`` (default) picks
        ``ceil(n_tasks / (4 * workers))`` — at most four waves per
        worker, small enough to keep the pool load-balanced, large
        enough to amortise the round-trip when hundreds of sub-second
        tasks are queued.
    """

    _pool_factory = ProcessPoolExecutor
    crosses_process_boundary = True

    def __init__(
        self,
        max_workers: int | None = None,
        persistent: bool = True,
        chunksize: int | None = None,
    ):
        super().__init__(max_workers, persistent=persistent)
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self.chunksize = chunksize

    def _resolve_chunksize(self, n_tasks: int) -> int:
        if self.chunksize is not None:
            return self.chunksize
        workers = self.max_workers or os.cpu_count() or 1
        return max(1, math.ceil(n_tasks / (4 * workers)))

    def _map(self, pool, tasks: Sequence[Callable[[], Any]]) -> list:
        return list(
            pool.map(run_task, tasks, chunksize=self._resolve_chunksize(len(tasks)))
        )
