"""Admission control and batch coalescing over one warm executor.

The scheduler is the serving layer's core loop, and it is deliberately a
thin consumer of machinery that already exists:

* **one persistent executor** (:mod:`repro.mapreduce.executor`) is opened
  at startup and reused by every batch — the PR-5 engine contract (pool
  spawned once, shared-memory space transport for process workers);
* queued requests are **coalesced** into heterogeneous
  :func:`repro.solve_many` batches: requests sharing a ``space_key``
  (content fingerprint for inline points, resolved path for on-disk
  data) become entries of one fan-out, each with its own ``k`` / seed /
  options and its own exact accounting (``BatchResults.run_summaries``);
* repeated small spaces are deduped through a long-lived
  :class:`~repro.store.cache.DistanceCache` (opt-in, byte-bounded), so a
  burst of requests over one hot dataset pays its O(n^2) matrix once;
* **admission control** caps outstanding requests (``max_queue``),
  concurrent batch dispatches (``max_inflight``) and request size
  (``max_points``) — over-limit submissions raise a structured
  :class:`~repro.serve.protocol.ServeError` instead of queueing unbounded
  work or crashing the loop.

Cancellation is cooperative and cheap: a request whose asyncio future is
cancelled (client gone, deadline passed) is dropped at dispatch time if
it is still queued; if its batch is already running, the batch completes
on the pool — workers are never killed mid-task, so the shared pool
cannot be poisoned — and the orphaned result is discarded.

Fault tolerance rides on :mod:`repro.mapreduce.resilient`: the warm
executor is wrapped in a
:class:`~repro.mapreduce.resilient.ResilientExecutor`, so a batch task
that crashes (a dying worker, a poisoned process pool) is retried
transparently under the config's
:class:`~repro.mapreduce.resilient.FaultPolicy` and the re-run answers
bit-identically (seeds bind per entry before dispatch).  A batch the
policy cannot absorb is **isolation-split**: every coalesced request is
re-dispatched alone, so one genuinely poisoned request fails with a
structured error while its batch-mates still succeed — and the pool
stays warm for the next batch either way.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Sequence

from repro.errors import InvalidParameterError
from repro.mapreduce.executor import (
    ProcessPoolExecutorBackend,
    SequentialExecutor,
    ThreadPoolExecutorBackend,
)
from repro.mapreduce.faults import FaultInjector
from repro.mapreduce.resilient import FaultPolicy, ResilientExecutor
from repro.obs import logs as _logs
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.serve.protocol import (
    E_INTERNAL,
    E_OVERLOADED,
    E_SHUTTING_DOWN,
    E_TOO_LARGE,
    ServeError,
    SolveRequest,
)
from repro.solvers.facade import BatchKey, solve_many
from repro.store.cache import DistanceCache

__all__ = ["ServeConfig", "BatchScheduler", "BACKENDS"]

#: Executor backends the server can host, by CLI/config name.
BACKENDS = ("sequential", "thread", "process")

_LOG = _logs.get_logger("repro.serve")

_M_REQUESTS = _metrics.counter(
    "repro_serve_requests_total",
    "Requests by final disposition",
    ("outcome",),  # received / answered / rejected / failed / abandoned
)
_M_BATCHES = _metrics.counter(
    "repro_serve_batches_total", "Coalesced batches dispatched to the pool"
)
_M_QUEUE_WAIT = _metrics.histogram(
    "repro_serve_queue_wait_seconds",
    "Admission-to-dispatch wait per answered request",
)
_M_BATCH_SIZE = _metrics.histogram(
    "repro_serve_batch_size",
    "Requests coalesced per dispatched batch",
    buckets=(1, 2, 4, 8, 16, 32, 64),
)
_M_BATCH_SECONDS = _metrics.histogram(
    "repro_serve_batch_seconds", "Wall time of one dispatched batch"
)
_M_ISOLATION = _metrics.counter(
    "repro_serve_isolation_splits_total",
    "Failed coalesced batches re-dispatched one request at a time",
)
# Scrape-time snapshot gauges, set by BatchScheduler.observe_scrape just
# before every render so a Prometheus scrape agrees with the stats op.
_M_G_UPTIME = _metrics.gauge(
    "repro_serve_uptime_seconds", "Seconds since the scheduler started"
)
_M_G_PENDING = _metrics.gauge(
    "repro_serve_pending", "Requests admitted and not yet answered"
)
_M_G_RETRIES = _metrics.gauge(
    "repro_serve_retries", "Task retries absorbed by the warm executor"
)
_M_G_SPEC_WINS = _metrics.gauge(
    "repro_serve_speculative_wins",
    "Tasks won by a speculative copy on the warm executor",
)
_M_G_WASTED = _metrics.gauge(
    "repro_serve_wasted_task_seconds",
    "Wall-clock seconds of discarded attempts on the warm executor",
)


@dataclass
class ServeConfig:
    """Everything a server/scheduler pair needs, in one picklable bag.

    Parameters
    ----------
    host, port:
        Bind address; port ``0`` asks the OS for an ephemeral port (the
        bound address is reported by :meth:`KCenterServer.start`).
    metrics_port:
        When set, the server additionally binds a plain-HTTP listener on
        this port (same host) answering ``GET /metrics`` with the
        Prometheus text exposition of :data:`repro.obs.metrics.REGISTRY`
        — ``0`` again means ephemeral.  ``None`` (default) disables the
        scrape listener; the NDJSON ``metrics`` op is always available.
    backend, pool_size:
        The one warm executor every batch runs on: ``"thread"``
        (default; BLAS kernels overlap, zero pickling), ``"process"``
        (true multicore; spaces cross via shared memory) or
        ``"sequential"``.
    max_queue:
        Admission cap on *outstanding* requests (queued + inflight).
    max_inflight:
        Concurrent coalesced batches in flight on the executor.
    max_points:
        Largest admissible request (points per space).
    max_batch, batch_window:
        Coalescing shape: after the first pending request, wait up to
        ``batch_window`` seconds for company, then dispatch at most
        ``max_batch`` requests grouped by space.
    cache_points, cache_entries, cache_bytes:
        The shared :class:`DistanceCache`.  ``cache_points=0`` (default)
        disables it — the cache serves matrix-backed views whose
        distances can differ from on-demand kernels in the last float
        bit, so the default server config keeps strict bit-parity with
        direct ``solve()`` calls; enable it for throughput on repeated
        small spaces.
    default_timeout:
        Per-request deadline (seconds) when the request carries none.
    max_line_bytes:
        Wire-framing cap: one request line may be this long at most.
    fault_retries, fault_timeout, speculate_after:
        The :class:`~repro.mapreduce.resilient.FaultPolicy` the warm
        executor enforces on every batch task: a run that crashes (or
        exceeds ``fault_timeout`` seconds) is re-dispatched up to
        ``fault_retries`` times, and a lone straggler running past
        ``speculate_after`` seconds gets a speculative copy.  Runs bind
        their seeds up-front, so a re-run answers bit-identically.  The
        default (one retry, no timeouts) means a transiently dying
        worker costs latency, not a failed response.
    fault_injector:
        Deterministic chaos hook
        (:class:`~repro.mapreduce.faults.FaultSchedule` /
        :class:`~repro.mapreduce.faults.RandomFaults`) consulted per
        batch task — test/staging only; leave ``None`` in production.
    """

    host: str = "127.0.0.1"
    port: int = 0
    metrics_port: int | None = None
    backend: str = "thread"
    pool_size: int | None = None
    max_queue: int = 256
    max_inflight: int = 4
    max_points: int = 200_000
    max_batch: int = 64
    batch_window: float = 0.002
    cache_points: int = 0
    cache_entries: int = 8
    cache_bytes: int | None = 512 * 1024 * 1024
    default_timeout: float | None = None
    max_line_bytes: int = 64 * 1024 * 1024
    fault_retries: int = 1
    fault_timeout: float | None = None
    speculate_after: float | None = None
    fault_injector: FaultInjector | None = None

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise InvalidParameterError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        for name in ("max_queue", "max_inflight", "max_points", "max_batch"):
            if int(getattr(self, name)) < 1:
                raise InvalidParameterError(
                    f"{name} must be >= 1, got {getattr(self, name)!r}"
                )
        if int(self.fault_retries) < 0:
            raise InvalidParameterError(
                f"fault_retries must be >= 0, got {self.fault_retries!r}"
            )

    def make_fault_policy(self) -> FaultPolicy:
        return FaultPolicy(
            max_retries=int(self.fault_retries),
            task_timeout=self.fault_timeout,
            speculate_after=self.speculate_after,
        )

    def make_executor(self):
        if self.backend == "sequential":
            inner = SequentialExecutor()
        elif self.backend == "thread":
            inner = ThreadPoolExecutorBackend(max_workers=self.pool_size)
        else:
            inner = ProcessPoolExecutorBackend(max_workers=self.pool_size)
        return ResilientExecutor(
            inner, self.make_fault_policy(), self.fault_injector
        )

    def make_cache(self) -> DistanceCache | None:
        if not self.cache_points:
            return None
        return DistanceCache(
            max_points=self.cache_points,
            max_entries=self.cache_entries,
            max_bytes=self.cache_bytes,
        )


class _Pending:
    """One admitted request waiting for (or riding in) a batch."""

    __slots__ = ("request", "future", "enqueued", "tracer")

    def __init__(
        self,
        request: SolveRequest,
        future: asyncio.Future,
        tracer: "_trace.Tracer | None" = None,
    ):
        self.request = request
        self.future = future
        self.enqueued = time.perf_counter()
        self.tracer = tracer


class BatchScheduler:
    """Coalesce admitted requests into ``solve_many`` batches on one pool.

    Owns the warm executor, the (optional) distance cache, the pending
    queue and the dispatch thread pool.  Must be created and driven from
    inside a running asyncio event loop (:meth:`start`); submissions and
    result delivery all happen on that loop, while the batches themselves
    run on dispatch threads so the loop never blocks on a solve.
    """

    def __init__(self, config: ServeConfig):
        self.config = config
        self._loop = asyncio.get_running_loop()
        self._executor = config.make_executor()
        self.cache = config.make_cache()
        self._queue: list[_Pending] = []
        self._wakeup = asyncio.Event()
        self._inflight = asyncio.Semaphore(config.max_inflight)
        self._dispatch_pool = ThreadPoolExecutor(
            max_workers=config.max_inflight,
            thread_name_prefix="repro-serve-batch",
        )
        self._pending = 0  # admitted and not yet answered/abandoned
        self._idle = asyncio.Event()
        self._idle.set()
        self._closed = False
        self._batcher: asyncio.Task | None = None
        self._group_tasks: set[asyncio.Task] = set()
        self._ids = itertools.count(1)
        # counters for the stats op / bench
        self.received = 0
        self.answered = 0
        self.rejected = 0
        self.failed = 0
        self.abandoned = 0
        self.batches = 0
        self.coalesced_requests = 0
        self.isolation_splits = 0
        self._started = time.monotonic()

    def _count(self, outcome: str, amount: int = 1) -> None:
        """Bump one disposition counter and its metric series together."""
        setattr(self, outcome, getattr(self, outcome) + amount)
        _M_REQUESTS.labels(outcome=outcome).inc(amount)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Open the warm pool eagerly and start the batcher task."""
        # A serving process is the canonical long-lived scrape target:
        # turn the process-wide registry on for its lifetime.
        _metrics.REGISTRY.enable()
        self._started = time.monotonic()
        if hasattr(self._executor, "open"):
            self._executor.open()
        self._batcher = self._loop.create_task(
            self._run(), name="repro-serve-batcher"
        )

    async def drain(self) -> None:
        """Stop admitting, finish every admitted request, release pools.

        The clean-shutdown contract: everything already admitted gets a
        real answer (result or structured error) before the executor and
        dispatch pool close.  Idempotent.
        """
        self._closed = True
        self._wakeup.set()  # let the batcher observe the flag even if idle
        await self._idle.wait()
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            self._batcher = None
        for task in list(self._group_tasks):
            await task
        self._dispatch_pool.shutdown(wait=True)
        if hasattr(self._executor, "close"):
            self._executor.close()

    def next_id(self) -> str:
        """A server-assigned request id (used when the client sent none)."""
        return f"r{next(self._ids)}"

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        request: SolveRequest,
        tracer: "_trace.Tracer | None" = None,
    ) -> asyncio.Future:
        """Admit one request; returns the future its response resolves.

        Raises :class:`ServeError` (``shutting-down`` / ``overloaded`` /
        ``too-large``) instead of queueing inadmissible work.  A request
        carrying a ``tracer`` (the ``progress`` op) is dispatched as its
        own batch — per-request span attribution cannot survive
        coalescing — with the tracer active for the whole solve.
        """
        self._count("received")
        if self._closed:
            self._count("rejected")
            raise ServeError(E_SHUTTING_DOWN, "server is draining; resubmit later")
        if self._pending >= self.config.max_queue:
            self._count("rejected")
            raise ServeError(
                E_OVERLOADED,
                f"{self._pending} requests outstanding, at the max_queue "
                f"cap of {self.config.max_queue}; retry later",
            )
        if request.space.n > self.config.max_points:
            self._count("rejected")
            raise ServeError(
                E_TOO_LARGE,
                f"request has {request.space.n} points, over the admission "
                f"cap of {self.config.max_points}",
            )
        future = self._loop.create_future()
        self._queue.append(_Pending(request, future, tracer))
        self._pending += 1
        self._idle.clear()
        self._wakeup.set()
        return future

    def _settle(self, count: int) -> None:
        self._pending -= count
        if self._pending <= 0:
            self._pending = 0
            self._idle.set()

    # ------------------------------------------------------------------ #
    # the batcher loop
    # ------------------------------------------------------------------ #
    async def _run(self) -> None:
        while True:
            await self._wakeup.wait()
            self._wakeup.clear()
            if not self._queue:
                continue
            # Give a burst a moment to pile up, then cut one batch.
            if self.config.batch_window > 0 and not self._closed:
                await asyncio.sleep(self.config.batch_window)
            batch = self._queue[: self.config.max_batch]
            del self._queue[: len(batch)]
            if self._queue:
                self._wakeup.set()  # more work already waiting

            live: list[_Pending] = []
            dropped = 0
            for pending in batch:
                if pending.future.cancelled():
                    dropped += 1
                else:
                    live.append(pending)
            if dropped:
                self._count("abandoned", dropped)
                self._settle(dropped)
            for group in self._group_by_space(live):
                # Backpressure: at most max_inflight batches on the pool.
                await self._inflight.acquire()
                task = self._loop.create_task(self._dispatch(group))
                self._group_tasks.add(task)
                task.add_done_callback(self._group_tasks.discard)

    @staticmethod
    def _group_by_space(batch: Sequence[_Pending]) -> list[list[_Pending]]:
        """Split one cut of the queue into per-space coalesced groups.

        Traced requests get a fresh unique key each: their spans must be
        attributable to exactly one request, so they never coalesce.
        """
        groups: dict[object, list[_Pending]] = {}
        for pending in batch:
            key = (
                object()
                if pending.tracer is not None
                else pending.request.space_key
            )
            groups.setdefault(key, []).append(pending)
        return list(groups.values())

    async def _dispatch(self, group: list[_Pending]) -> None:
        try:
            # A client may have vanished between grouping and dispatch.
            live = [p for p in group if not p.future.cancelled()]
            skipped = len(group) - len(live)
            if skipped:
                self._count("abandoned", skipped)
                self._settle(skipped)
            if not live:
                return
            self.batches += 1
            _M_BATCHES.inc()
            _M_BATCH_SIZE.observe(len(live))
            if len(live) > 1:
                self.coalesced_requests += len(live)
            started = time.perf_counter()
            try:
                batch = await self._loop.run_in_executor(
                    self._dispatch_pool, self._solve_group, live
                )
            except Exception as exc:  # noqa: BLE001 - answered, not crashed
                if len(live) == 1:
                    self._fail(live[0], exc)
                    self._settle(1)
                    return
                # Isolation split: one poisoned request must not take its
                # whole coalesced batch down.  Each request re-runs alone
                # (fresh exact summaries per run), so only the request
                # that genuinely cannot complete gets the error.
                self.isolation_splits += 1
                _M_ISOLATION.inc()
                await self._isolate(live)
                return
            batch_seconds = time.perf_counter() - started
            _M_BATCH_SECONDS.observe(batch_seconds)
            for pending in live:
                if pending.future.cancelled():
                    self._count("abandoned")
                    continue
                self._answer(pending, batch, started, batch_seconds, len(live))
            self._settle(len(live))
        finally:
            self._inflight.release()

    def _answer(
        self,
        pending: _Pending,
        batch,
        started: float,
        batch_seconds: float,
        batch_runs: int,
    ) -> None:
        key = BatchKey(pending.request.id, pending.request.seed)
        queue_s = started - pending.enqueued
        pending.future.set_result(
            {
                "result": batch[key],
                "summary": batch.run_summaries[key],
                "queue_s": queue_s,
                "batch_s": batch_seconds,
                "batch_runs": batch_runs,
            }
        )
        self._count("answered")
        _M_QUEUE_WAIT.observe(queue_s)
        _LOG.info(
            "request answered",
            extra={
                "fields": {
                    "request_id": pending.request.id,
                    "queue_ms": round(queue_s * 1e3, 3),
                    "batch_ms": round(batch_seconds * 1e3, 3),
                    "batch_runs": batch_runs,
                }
            },
        )

    def _fail(self, pending: _Pending, exc: Exception) -> None:
        error = ServeError(
            E_INTERNAL, f"batch failed: {type(exc).__name__}: {exc}"
        )
        if not pending.future.cancelled():
            pending.future.set_exception(error)
        else:
            self._count("abandoned")
        self._count("failed")
        _LOG.warning(
            "request failed",
            extra={
                "fields": {
                    "request_id": pending.request.id,
                    "error": f"{type(exc).__name__}: {exc}",
                }
            },
        )

    async def _isolate(self, live: list[_Pending]) -> None:
        """Re-dispatch a failed coalesced batch one request at a time.

        The warm pool survives a poisoned task (the resilient executor
        drops a broken pool and reopens; thread/sequential pools are
        never poisoned), so sibling requests complete normally on their
        solo re-runs — only a request that fails *alone* is answered
        with the error.
        """
        for pending in live:
            if pending.future.cancelled():
                self._count("abandoned")
                self._settle(1)
                continue
            solo_start = time.perf_counter()
            try:
                batch = await self._loop.run_in_executor(
                    self._dispatch_pool, self._solve_group, [pending]
                )
            except Exception as exc:  # noqa: BLE001 - answered, not crashed
                self._fail(pending, exc)
                self._settle(1)
                continue
            if pending.future.cancelled():
                self._count("abandoned")
            else:
                self._answer(
                    pending, batch, solo_start,
                    time.perf_counter() - solo_start, 1,
                )
            self._settle(1)

    def _solve_group(self, group: list[_Pending]):
        """One coalesced group as a heterogeneous ``solve_many`` batch.

        Runs on a dispatch thread.  Every request becomes one entry with
        its own ``k``/seed/options, labelled by request id (ids are
        unique, so keys cannot collide); ``seeds=None`` selects the
        facade's entry-owned seeding mode.  The shared warm executor
        fans the runs out; the shared cache dedupes repeated spaces.

        Contextvars do not follow work onto pool threads, so a traced
        request's tracer (and log correlation) is re-activated here,
        where the solve actually runs.
        """
        space = group[0].request.space
        entries = [pending.request.entry() for pending in group]
        tracer = group[0].tracer if len(group) == 1 else None

        def run():
            return solve_many(
                space,
                group[0].request.k,
                entries,
                seeds=None,
                executor=self._executor,
                cache=self.cache,
            )

        if tracer is None:
            return run()
        with _trace.activate(tracer), _logs.bind(
            request_id=group[0].request.id, run_id=tracer.run_id
        ):
            return run()

    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Counters for the ``stats`` op and the load bench.

        The schema is **stable for scrapers**: every key below is present
        in every response — ``cache`` is ``{}`` when no cache is
        configured, and the fault-tolerance counters are ``0`` even if
        the executor were ever not resilient — so monitoring needs no
        existence checks.
        """
        from repro import __version__

        out = {
            "server_version": __version__,
            "uptime_seconds": time.monotonic() - self._started,
            "backend": self.config.backend,
            "pool_size": self.config.pool_size,
            "received": self.received,
            "answered": self.answered,
            "rejected": self.rejected,
            "failed": self.failed,
            "abandoned": self.abandoned,
            "batches": self.batches,
            "coalesced_requests": self.coalesced_requests,
            "isolation_splits": self.isolation_splits,
            "pending": self._pending,
            "draining": self._closed,
            "retries": 0,
            "speculative_wins": 0,
            "wasted_task_seconds": 0.0,
            "cache": self.cache.stats() if self.cache is not None else {},
        }
        if isinstance(self._executor, ResilientExecutor):
            totals = self._executor.totals
            out["retries"] = totals.retries
            out["speculative_wins"] = totals.speculative_wins
            out["wasted_task_seconds"] = totals.wasted_task_seconds
        return out

    def observe_scrape(self) -> None:
        """Refresh the snapshot gauges from :meth:`stats`.

        Called by the server immediately before every metrics render
        (NDJSON op and HTTP scrape alike), so the gauges a scraper sees
        are exactly the stats-op numbers of the same instant.
        """
        snapshot = self.stats()
        _M_G_UPTIME.set(snapshot["uptime_seconds"])
        _M_G_PENDING.set(snapshot["pending"])
        _M_G_RETRIES.set(snapshot["retries"])
        _M_G_SPEC_WINS.set(snapshot["speculative_wins"])
        _M_G_WASTED.set(snapshot["wasted_task_seconds"])
