"""The asyncio front-end of the ``repro.serve`` job server.

:class:`KCenterServer` owns one TCP listener and one
:class:`~repro.serve.scheduler.BatchScheduler`.  Connections are cheap:
each is a single reader loop that parses newline-delimited JSON and
spawns one asyncio task per ``solve`` request, so clients can pipeline —
many requests in flight on one socket — and slow solves never block the
socket for ``ping``/``stats`` or each other.  Responses are written under
a per-connection lock and matched to requests by the echoed ``id``.

Failure containment is the design rule: every per-request problem — bad
JSON, unknown algorithm, admission rejection, timeout, even an internal
batch failure — becomes a structured error *response* on the wire.  Only
a poisoned stream framing (an over-long line) closes the connection, and
a client disconnect simply cancels that connection's outstanding request
tasks: the scheduler drops still-queued requests and lets dispatched
batches finish on the pool, so one vanished client cannot poison the
shared executor for everyone else.

:class:`ServerHandle` runs the whole server on a private event-loop
thread, giving synchronous code (tests, the CLI, benchmarks) a real
served endpoint with ``with ServerHandle() as handle: ...`` ergonomics —
the handle's ``close`` performs the full drain (stop accepting, answer
everything admitted, release the pools).
"""

from __future__ import annotations

import asyncio
import threading

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.serve.protocol import (
    E_BAD_REQUEST,
    E_INTERNAL,
    E_LINE_TOO_LONG,
    E_TIMEOUT,
    PROTOCOL_VERSION,
    ServeError,
    decode_line,
    encode,
    error_response,
    ok_response,
    parse_solve_request,
)
from repro.serve.scheduler import BatchScheduler, ServeConfig
from repro.solvers.registry import solver_names

__all__ = ["KCenterServer", "ServerHandle"]


class KCenterServer:
    """One listener + one scheduler; drive with :meth:`start`/:meth:`stop`.

    Must be started from inside a running event loop (use
    :class:`ServerHandle` from synchronous code).  ``start`` opens the
    warm executor pool and binds the socket; ``stop`` closes the listener,
    drains every admitted request to a real response, then releases the
    pools.
    """

    def __init__(self, config: ServeConfig | None = None):
        self.config = config or ServeConfig()
        self.scheduler: BatchScheduler | None = None
        self.address: tuple[str, int] | None = None
        self.metrics_address: tuple[str, int] | None = None
        self._server: asyncio.AbstractServer | None = None
        self._metrics_server: asyncio.AbstractServer | None = None
        self._request_tasks: set[asyncio.Task] = set()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> tuple[str, int]:
        """Bind and begin accepting; returns the bound ``(host, port)``."""
        self.scheduler = BatchScheduler(self.config)
        self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=self.config.max_line_bytes,
        )
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        if self.config.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._handle_metrics_conn,
                self.config.host,
                self.config.metrics_port,
            )
            scrape = self._metrics_server.sockets[0].getsockname()
            self.metrics_address = (scrape[0], scrape[1])
        return self.address

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain, release the pools."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
            self._metrics_server = None
        if self.scheduler is not None:
            # Everything admitted resolves (result or error) in here ...
            await self.scheduler.drain()
        # ... and the tasks holding those resolved futures flush their
        # response lines before the loop is allowed to die.
        if self._request_tasks:
            await asyncio.gather(*self._request_tasks, return_exceptions=True)

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        lock = asyncio.Lock()  # response lines must not interleave
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Over-long line: the framing is poisoned, so this is
                    # the one failure that closes the connection.
                    await self._send(
                        writer,
                        lock,
                        error_response(
                            None,
                            ServeError(
                                E_LINE_TOO_LONG,
                                f"request line exceeds the "
                                f"{self.config.max_line_bytes}-byte frame "
                                f"cap; closing connection",
                            ),
                        ),
                    )
                    break
                if not line:
                    break  # client closed its end
                if not line.strip():
                    continue
                await self._handle_line(line, writer, lock, tasks)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-line; cleanup below
        finally:
            # Disconnect cancels this connection's outstanding requests:
            # queued ones are dropped at dispatch, running batches finish
            # on the pool and their orphaned results are discarded.
            for task in tasks:
                task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        tasks: set[asyncio.Task],
    ) -> None:
        try:
            payload = decode_line(line)
        except ServeError as exc:
            await self._send(writer, lock, error_response(None, exc))
            return
        wire_id = payload.get("id")
        wire_id = str(wire_id) if wire_id is not None else None
        op = payload.get("op", "solve")
        if op == "ping":
            await self._send(
                writer,
                lock,
                {
                    "id": wire_id,
                    "ok": True,
                    "op": "ping",
                    "version": PROTOCOL_VERSION,
                    "algorithms": solver_names(),
                },
            )
        elif op == "stats":
            await self._send(
                writer,
                lock,
                {"id": wire_id, "ok": True, "stats": self.scheduler.stats()},
            )
        elif op == "metrics":
            # Refresh the snapshot gauges first, so the exposition agrees
            # with a stats op issued at the same moment.
            self.scheduler.observe_scrape()
            await self._send(
                writer,
                lock,
                {
                    "id": wire_id,
                    "ok": True,
                    "metrics": _metrics.render(),
                    "content_type": _metrics.CONTENT_TYPE,
                },
            )
        elif op in ("solve", "progress"):
            runner = (
                self._process_solve if op == "solve" else self._process_progress
            )
            task = asyncio.get_running_loop().create_task(
                runner(payload, wire_id, writer, lock)
            )
            for registry in (tasks, self._request_tasks):
                registry.add(task)
                task.add_done_callback(registry.discard)
        else:
            await self._send(
                writer,
                lock,
                error_response(
                    wire_id,
                    ServeError(
                        E_BAD_REQUEST,
                        f"unknown op {op!r}; expected solve, progress, "
                        f"ping, stats or metrics",
                    ),
                ),
            )

    async def _process_solve(
        self,
        payload: dict,
        wire_id: str | None,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
    ) -> None:
        """One solve request, cradle to response line."""
        try:
            # Batch labels must be unique within a coalesced group, so
            # the scheduler assigns every request a private internal id;
            # the client's id is only echoed on the wire.
            request = parse_solve_request(
                payload,
                self.scheduler.next_id(),
                max_points=self.config.max_points,
            )
            future = self.scheduler.submit(request)
            timeout = (
                request.timeout
                if request.timeout is not None
                else self.config.default_timeout
            )
            try:
                delivered = await asyncio.wait_for(future, timeout)
            except asyncio.TimeoutError:
                # wait_for already cancelled the future; the scheduler
                # skips it at dispatch (or discards the orphaned result).
                raise ServeError(
                    E_TIMEOUT,
                    f"request did not finish within {timeout}s",
                ) from None
            response = ok_response(
                wire_id if wire_id is not None else request.id,
                delivered["result"],
                delivered["summary"],
                queue_ms=round(delivered["queue_s"] * 1e3, 3),
                solve_ms=round(delivered["batch_s"] * 1e3, 3),
                batch_runs=delivered["batch_runs"],
            )
        except ServeError as exc:
            response = error_response(wire_id, exc)
        except asyncio.CancelledError:
            return  # disconnect; nobody left to answer
        except Exception as exc:  # noqa: BLE001 - answered, never crashed
            response = error_response(
                wire_id,
                ServeError(E_INTERNAL, f"{type(exc).__name__}: {exc}"),
            )
        try:
            await self._send(writer, lock, response)
        except (ConnectionError, OSError):
            pass  # client vanished between solve and send

    #: Span categories streamed by the ``progress`` op.  Task and block
    #: spans are deliberately excluded from the live feed (volume); the
    #: ``solve --trace`` export is the full-detail surface.
    PROGRESS_CATS = ("solve", "round", "attempt")

    async def _process_progress(
        self,
        payload: dict,
        wire_id: str | None,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
    ) -> None:
        """One traced solve streaming span events ahead of its response.

        The wire contract: zero or more ``{"ok": true, "final": false,
        "event": {...}}`` lines (same ``id``), then exactly one normal
        final line — an ``ok`` response carrying the result, or a
        structured error.  Events are emitted as spans close on
        in-process backends and at result-commit time on process
        backends (workers' spans travel back with their results), so the
        final line always postdates every event of its request.
        """
        loop = asyncio.get_running_loop()
        events: asyncio.Queue = asyncio.Queue()

        def sink(span: "_trace.SpanRecord") -> None:
            # Called from dispatch/worker threads: hop onto the loop.
            # Sinks may observe losing attempts live; the committed trace
            # (tracer.spans) is the ground truth, and abandoned attempts
            # are explicitly flagged in their args.
            if span.cat in self.PROGRESS_CATS:
                loop.call_soon_threadsafe(events.put_nowait, span)

        tracer = _trace.Tracer(on_span=sink)

        async def pump() -> None:
            while True:
                span = await events.get()
                if span is None:  # sentinel: everything before it is sent
                    return
                try:
                    await self._send(
                        writer,
                        lock,
                        {
                            "id": wire_id,
                            "ok": True,
                            "final": False,
                            "event": {
                                "name": span.name,
                                "cat": span.cat,
                                "start": round(span.start - tracer.origin, 6),
                                "duration": round(span.duration, 6),
                                "args": dict(span.args),
                            },
                        },
                    )
                except (ConnectionError, OSError):
                    return  # client vanished; drain silently

        pump_task = loop.create_task(pump())
        try:
            request = parse_solve_request(
                payload,
                self.scheduler.next_id(),
                max_points=self.config.max_points,
            )
            future = self.scheduler.submit(request, tracer=tracer)
            timeout = (
                request.timeout
                if request.timeout is not None
                else self.config.default_timeout
            )
            try:
                delivered = await asyncio.wait_for(future, timeout)
            except asyncio.TimeoutError:
                raise ServeError(
                    E_TIMEOUT,
                    f"request did not finish within {timeout}s",
                ) from None
            response = ok_response(
                wire_id if wire_id is not None else request.id,
                delivered["result"],
                delivered["summary"],
                queue_ms=round(delivered["queue_s"] * 1e3, 3),
                solve_ms=round(delivered["batch_s"] * 1e3, 3),
                batch_runs=delivered["batch_runs"],
                run_id=tracer.run_id,
                spans=len(tracer.spans),
            )
            response["final"] = True
        except ServeError as exc:
            response = error_response(wire_id, exc)
            response["final"] = True
        except asyncio.CancelledError:
            pump_task.cancel()
            return  # disconnect; nobody left to answer
        except Exception as exc:  # noqa: BLE001 - answered, never crashed
            response = error_response(
                wire_id,
                ServeError(E_INTERNAL, f"{type(exc).__name__}: {exc}"),
            )
            response["final"] = True
        # Every event scheduled before the result landed is already in
        # the queue (call_soon_threadsafe is FIFO); the sentinel makes the
        # pump flush them all before the final line goes out.
        events.put_nowait(None)
        await pump_task
        try:
            await self._send(writer, lock, response)
        except (ConnectionError, OSError):
            pass

    async def _handle_metrics_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """A minimal one-shot HTTP/1.1 responder for ``GET /metrics``.

        Deliberately not a web server: it answers exactly one request per
        connection with the Prometheus text exposition and closes — all a
        scrape loop needs, with no new dependencies.
        """
        try:
            request_line = await reader.readline()
            while True:  # drain headers up to the blank line
                line = await reader.readline()
                if not line or line in (b"\r\n", b"\n"):
                    break
            parts = request_line.decode("latin-1", "replace").split()
            path = parts[1].partition("?")[0] if len(parts) > 1 else ""
            if len(parts) > 1 and parts[0] == "GET" and path in ("/metrics", "/"):
                if self.scheduler is not None:
                    self.scheduler.observe_scrape()
                body = _metrics.render().encode("utf-8")
                status = "200 OK"
                ctype = _metrics.CONTENT_TYPE
            else:
                body = b"only GET /metrics is served here\n"
                status = "404 Not Found"
                ctype = "text/plain; charset=utf-8"
            writer.write(
                (
                    f"HTTP/1.1 {status}\r\n"
                    f"Content-Type: {ctype}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n"
                    "\r\n"
                ).encode("latin-1")
                + body
            )
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    async def _send(
        writer: asyncio.StreamWriter, lock: asyncio.Lock, obj: dict
    ) -> None:
        async with lock:
            writer.write(encode(obj))
            await writer.drain()


class ServerHandle:
    """A :class:`KCenterServer` on a private event-loop thread.

    The synchronous face of the serving layer: tests, the CLI client and
    the bench all talk to a real TCP endpoint without owning an event
    loop themselves.

    >>> with ServerHandle(ServeConfig(backend="thread")) as handle:
    ...     with handle.client() as client:
    ...         client.solve("gon", 3, points=rows)["result"]["radius"]

    ``close`` (or leaving the ``with`` block) performs the full graceful
    drain and joins the thread; it is idempotent.
    """

    def __init__(self, config: ServeConfig | None = None):
        self.server = KCenterServer(config)
        self.address: tuple[str, int] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._closed = False

    @property
    def config(self) -> ServeConfig:
        return self.server.config

    def start(self) -> "ServerHandle":
        ready = threading.Event()
        failure: list[BaseException] = []

        def run() -> None:
            async def main() -> None:
                self._stop = asyncio.Event()
                try:
                    self.address = await self.server.start()
                except BaseException as exc:  # surface bind errors
                    failure.append(exc)
                    ready.set()
                    return
                self._loop = asyncio.get_running_loop()
                ready.set()
                await self._stop.wait()
                await self.server.stop()

            asyncio.run(main())

        self._thread = threading.Thread(
            target=run, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        ready.wait()
        if failure:
            self._thread.join()
            raise failure[0]
        return self

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._loop is not None and self._thread is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
            self._thread.join()

    def client(self, **kwargs):
        """A connected :class:`~repro.serve.client.ServeClient`."""
        from repro.serve.client import ServeClient

        assert self.address is not None, "start() first"
        return ServeClient(self.address[0], self.address[1], **kwargs)

    def __enter__(self) -> "ServerHandle":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
