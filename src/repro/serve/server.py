"""The asyncio front-end of the ``repro.serve`` job server.

:class:`KCenterServer` owns one TCP listener and one
:class:`~repro.serve.scheduler.BatchScheduler`.  Connections are cheap:
each is a single reader loop that parses newline-delimited JSON and
spawns one asyncio task per ``solve`` request, so clients can pipeline —
many requests in flight on one socket — and slow solves never block the
socket for ``ping``/``stats`` or each other.  Responses are written under
a per-connection lock and matched to requests by the echoed ``id``.

Failure containment is the design rule: every per-request problem — bad
JSON, unknown algorithm, admission rejection, timeout, even an internal
batch failure — becomes a structured error *response* on the wire.  Only
a poisoned stream framing (an over-long line) closes the connection, and
a client disconnect simply cancels that connection's outstanding request
tasks: the scheduler drops still-queued requests and lets dispatched
batches finish on the pool, so one vanished client cannot poison the
shared executor for everyone else.

:class:`ServerHandle` runs the whole server on a private event-loop
thread, giving synchronous code (tests, the CLI, benchmarks) a real
served endpoint with ``with ServerHandle() as handle: ...`` ergonomics —
the handle's ``close`` performs the full drain (stop accepting, answer
everything admitted, release the pools).
"""

from __future__ import annotations

import asyncio
import threading

from repro.serve.protocol import (
    E_BAD_REQUEST,
    E_INTERNAL,
    E_LINE_TOO_LONG,
    E_TIMEOUT,
    PROTOCOL_VERSION,
    ServeError,
    decode_line,
    encode,
    error_response,
    ok_response,
    parse_solve_request,
)
from repro.serve.scheduler import BatchScheduler, ServeConfig
from repro.solvers.registry import solver_names

__all__ = ["KCenterServer", "ServerHandle"]


class KCenterServer:
    """One listener + one scheduler; drive with :meth:`start`/:meth:`stop`.

    Must be started from inside a running event loop (use
    :class:`ServerHandle` from synchronous code).  ``start`` opens the
    warm executor pool and binds the socket; ``stop`` closes the listener,
    drains every admitted request to a real response, then releases the
    pools.
    """

    def __init__(self, config: ServeConfig | None = None):
        self.config = config or ServeConfig()
        self.scheduler: BatchScheduler | None = None
        self.address: tuple[str, int] | None = None
        self._server: asyncio.AbstractServer | None = None
        self._request_tasks: set[asyncio.Task] = set()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> tuple[str, int]:
        """Bind and begin accepting; returns the bound ``(host, port)``."""
        self.scheduler = BatchScheduler(self.config)
        self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=self.config.max_line_bytes,
        )
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self.address

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drain, release the pools."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.scheduler is not None:
            # Everything admitted resolves (result or error) in here ...
            await self.scheduler.drain()
        # ... and the tasks holding those resolved futures flush their
        # response lines before the loop is allowed to die.
        if self._request_tasks:
            await asyncio.gather(*self._request_tasks, return_exceptions=True)

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        lock = asyncio.Lock()  # response lines must not interleave
        tasks: set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # Over-long line: the framing is poisoned, so this is
                    # the one failure that closes the connection.
                    await self._send(
                        writer,
                        lock,
                        error_response(
                            None,
                            ServeError(
                                E_LINE_TOO_LONG,
                                f"request line exceeds the "
                                f"{self.config.max_line_bytes}-byte frame "
                                f"cap; closing connection",
                            ),
                        ),
                    )
                    break
                if not line:
                    break  # client closed its end
                if not line.strip():
                    continue
                await self._handle_line(line, writer, lock, tasks)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-line; cleanup below
        finally:
            # Disconnect cancels this connection's outstanding requests:
            # queued ones are dropped at dispatch, running batches finish
            # on the pool and their orphaned results are discarded.
            for task in tasks:
                task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        tasks: set[asyncio.Task],
    ) -> None:
        try:
            payload = decode_line(line)
        except ServeError as exc:
            await self._send(writer, lock, error_response(None, exc))
            return
        wire_id = payload.get("id")
        wire_id = str(wire_id) if wire_id is not None else None
        op = payload.get("op", "solve")
        if op == "ping":
            await self._send(
                writer,
                lock,
                {
                    "id": wire_id,
                    "ok": True,
                    "op": "ping",
                    "version": PROTOCOL_VERSION,
                    "algorithms": solver_names(),
                },
            )
        elif op == "stats":
            await self._send(
                writer,
                lock,
                {"id": wire_id, "ok": True, "stats": self.scheduler.stats()},
            )
        elif op == "solve":
            task = asyncio.get_running_loop().create_task(
                self._process_solve(payload, wire_id, writer, lock)
            )
            for registry in (tasks, self._request_tasks):
                registry.add(task)
                task.add_done_callback(registry.discard)
        else:
            await self._send(
                writer,
                lock,
                error_response(
                    wire_id,
                    ServeError(
                        E_BAD_REQUEST,
                        f"unknown op {op!r}; expected solve, ping or stats",
                    ),
                ),
            )

    async def _process_solve(
        self,
        payload: dict,
        wire_id: str | None,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
    ) -> None:
        """One solve request, cradle to response line."""
        try:
            # Batch labels must be unique within a coalesced group, so
            # the scheduler assigns every request a private internal id;
            # the client's id is only echoed on the wire.
            request = parse_solve_request(
                payload,
                self.scheduler.next_id(),
                max_points=self.config.max_points,
            )
            future = self.scheduler.submit(request)
            timeout = (
                request.timeout
                if request.timeout is not None
                else self.config.default_timeout
            )
            try:
                delivered = await asyncio.wait_for(future, timeout)
            except asyncio.TimeoutError:
                # wait_for already cancelled the future; the scheduler
                # skips it at dispatch (or discards the orphaned result).
                raise ServeError(
                    E_TIMEOUT,
                    f"request did not finish within {timeout}s",
                ) from None
            response = ok_response(
                wire_id if wire_id is not None else request.id,
                delivered["result"],
                delivered["summary"],
                queue_ms=round(delivered["queue_s"] * 1e3, 3),
                solve_ms=round(delivered["batch_s"] * 1e3, 3),
                batch_runs=delivered["batch_runs"],
            )
        except ServeError as exc:
            response = error_response(wire_id, exc)
        except asyncio.CancelledError:
            return  # disconnect; nobody left to answer
        except Exception as exc:  # noqa: BLE001 - answered, never crashed
            response = error_response(
                wire_id,
                ServeError(E_INTERNAL, f"{type(exc).__name__}: {exc}"),
            )
        try:
            await self._send(writer, lock, response)
        except (ConnectionError, OSError):
            pass  # client vanished between solve and send

    @staticmethod
    async def _send(
        writer: asyncio.StreamWriter, lock: asyncio.Lock, obj: dict
    ) -> None:
        async with lock:
            writer.write(encode(obj))
            await writer.drain()


class ServerHandle:
    """A :class:`KCenterServer` on a private event-loop thread.

    The synchronous face of the serving layer: tests, the CLI client and
    the bench all talk to a real TCP endpoint without owning an event
    loop themselves.

    >>> with ServerHandle(ServeConfig(backend="thread")) as handle:
    ...     with handle.client() as client:
    ...         client.solve("gon", 3, points=rows)["result"]["radius"]

    ``close`` (or leaving the ``with`` block) performs the full graceful
    drain and joins the thread; it is idempotent.
    """

    def __init__(self, config: ServeConfig | None = None):
        self.server = KCenterServer(config)
        self.address: tuple[str, int] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._closed = False

    @property
    def config(self) -> ServeConfig:
        return self.server.config

    def start(self) -> "ServerHandle":
        ready = threading.Event()
        failure: list[BaseException] = []

        def run() -> None:
            async def main() -> None:
                self._stop = asyncio.Event()
                try:
                    self.address = await self.server.start()
                except BaseException as exc:  # surface bind errors
                    failure.append(exc)
                    ready.set()
                    return
                self._loop = asyncio.get_running_loop()
                ready.set()
                await self._stop.wait()
                await self.server.stop()

            asyncio.run(main())

        self._thread = threading.Thread(
            target=run, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        ready.wait()
        if failure:
            self._thread.join()
            raise failure[0]
        return self

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._loop is not None and self._thread is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
            self._thread.join()

    def client(self, **kwargs):
        """A connected :class:`~repro.serve.client.ServeClient`."""
        from repro.serve.client import ServeClient

        assert self.address is not None, "start() first"
        return ServeClient(self.address[0], self.address[1], **kwargs)

    def __enter__(self) -> "ServerHandle":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
