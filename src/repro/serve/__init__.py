"""``repro.serve`` — clustering-as-a-service on the persistent engine.

The serving layer turns the in-process solver stack into a long-lived
job server: an asyncio TCP front-end speaking newline-delimited JSON
(:mod:`~repro.serve.protocol`), a batch scheduler that coalesces
compatible requests into heterogeneous :func:`repro.solve_many` fan-outs
over one warm executor pool (:mod:`~repro.serve.scheduler`), and a small
synchronous client (:mod:`~repro.serve.client`).

Entry points:

* ``repro serve --backend thread --pool-size 4`` — the CLI daemon;
* ``repro solve ... --connect HOST:PORT`` — the CLI as a remote client;
* :class:`ServerHandle` — an in-process server on a background event
  loop, for tests and benches;
* :class:`ServeClient` — a plain blocking socket client.

The contract that makes the layer trustworthy: with the distance cache
off (the default config), every served result is **bit-identical** to
the same ``repro.solve()`` call made directly in-process — same centers,
same radius, same ``dist_evals`` — on every backend, under concurrency.
"""

from repro.serve.client import ServeClient, parse_hostport
from repro.serve.protocol import (
    E_BAD_JSON,
    E_BAD_REQUEST,
    E_INTERNAL,
    E_INVALID_PARAMETER,
    E_LINE_TOO_LONG,
    E_OVERLOADED,
    E_SHUTTING_DOWN,
    E_TIMEOUT,
    E_TOO_LARGE,
    E_UNKNOWN_ALGORITHM,
    PROTOCOL_VERSION,
    ServeError,
)
from repro.serve.scheduler import BACKENDS, BatchScheduler, ServeConfig
from repro.serve.server import KCenterServer, ServerHandle

__all__ = [
    "ServeConfig",
    "BatchScheduler",
    "KCenterServer",
    "ServerHandle",
    "ServeClient",
    "ServeError",
    "parse_hostport",
    "PROTOCOL_VERSION",
    "BACKENDS",
    "E_BAD_JSON",
    "E_BAD_REQUEST",
    "E_UNKNOWN_ALGORITHM",
    "E_INVALID_PARAMETER",
    "E_TOO_LARGE",
    "E_OVERLOADED",
    "E_TIMEOUT",
    "E_SHUTTING_DOWN",
    "E_LINE_TOO_LONG",
    "E_INTERNAL",
]
