"""Synchronous client for the ``repro.serve`` wire protocol.

A deliberately small wrapper over one TCP socket: requests go out as JSON
lines, responses come back as JSON lines, and :meth:`ServeClient.request`
pairs them up.  Thread-safe for the simple blocking pattern (one
request/response at a time per client); concurrent load generators open
one client per worker thread — sockets are cheap, and that is exactly
what the bench (``benchmarks/bench_serve.py``) and the CI smoke burst do.

The lower-level :meth:`send`/:meth:`recv` pair exists for protocol tests
that need the pathological shapes: pipelining several requests before
reading any response, or disconnecting with a solve still in flight.
"""

from __future__ import annotations

import itertools
import socket
import threading
from typing import Any, Mapping

import numpy as np

from repro.errors import InvalidParameterError
from repro.serve.protocol import E_INTERNAL, ServeError, decode_line, encode

__all__ = ["ServeClient", "parse_hostport"]


def parse_hostport(address: str, default_port: int = 7227) -> tuple[str, int]:
    """``"host:port"`` / ``"host"`` / ``":port"`` -> ``(host, port)``."""
    address = address.strip()
    if not address:
        raise InvalidParameterError("empty server address")
    host, sep, port = address.rpartition(":")
    if not sep:
        return address, default_port
    if not host:
        host = "127.0.0.1"
    try:
        return host, int(port)
    except ValueError:
        raise InvalidParameterError(
            f"invalid port in server address {address!r}"
        ) from None


class ServeClient:
    """One connection to a running k-center server.

    Parameters
    ----------
    host, port:
        The server's bound address (``ServerHandle.address``, or the
        ``repro serve`` startup line).
    timeout:
        Socket timeout in seconds for connect and reads; ``None`` blocks
        indefinitely (a served solve can legitimately take a while).
    """

    def __init__(self, host: str, port: int, timeout: float | None = None):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._closed = False

    # ------------------------------------------------------------------ #
    # raw line I/O
    # ------------------------------------------------------------------ #
    def send(self, payload: Mapping) -> None:
        """Write one request line (no response read — see :meth:`recv`)."""
        with self._lock:
            self._file.write(encode(payload))
            self._file.flush()

    def recv(self) -> dict:
        """Read one response line; raises ``ConnectionError`` on EOF."""
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return decode_line(line)

    def request(self, payload: Mapping) -> dict:
        """One blocking round-trip: send ``payload``, return its response."""
        self.send(payload)
        return self.recv()

    # ------------------------------------------------------------------ #
    # typed operations
    # ------------------------------------------------------------------ #
    def solve(
        self,
        algo: str,
        k: int,
        *,
        points: Any = None,
        data: str | None = None,
        seed: Any = None,
        options: Mapping | None = None,
        timeout: float | None = None,
        raise_on_error: bool = True,
    ) -> dict:
        """Submit one solve and block for its response.

        ``points`` is any array-like of coordinate rows (sent inline);
        ``data`` is a *server-visible* ``.npy`` file or shard directory.
        Returns the full response object; with ``raise_on_error`` (the
        default) a structured failure raises :class:`ServeError` carrying
        the server's error code instead.
        """
        payload: dict[str, Any] = {
            "op": "solve",
            "id": str(next(self._ids)),
            "algo": algo,
            "k": k,
        }
        if points is not None:
            payload["points"] = np.asarray(points, dtype=np.float64).tolist()
        if data is not None:
            payload["data"] = data
        if seed is not None:
            payload["seed"] = seed
        if options:
            payload["options"] = dict(options)
        if timeout is not None:
            payload["timeout"] = timeout
        response = self.request(payload)
        if raise_on_error and not response.get("ok"):
            error = response.get("error") or {}
            raise ServeError(
                error.get("code", E_INTERNAL),
                error.get("message", "unknown server error"),
            )
        return response

    def solve_progress(
        self,
        algo: str,
        k: int,
        *,
        points: Any = None,
        data: str | None = None,
        seed: Any = None,
        options: Mapping | None = None,
        timeout: float | None = None,
        raise_on_error: bool = True,
    ) -> tuple[list[dict], dict]:
        """One streamed solve: returns ``(events, final_response)``.

        Same arguments as :meth:`solve`; the server pushes span events
        (round boundaries, abandoned attempts) while the solve runs, then
        the normal final response.  Blocking and simple by design — a
        live consumer wanting events as they arrive uses :meth:`send` /
        :meth:`recv` directly.
        """
        payload: dict[str, Any] = {
            "op": "progress",
            "id": str(next(self._ids)),
            "algo": algo,
            "k": k,
        }
        if points is not None:
            payload["points"] = np.asarray(points, dtype=np.float64).tolist()
        if data is not None:
            payload["data"] = data
        if seed is not None:
            payload["seed"] = seed
        if options:
            payload["options"] = dict(options)
        if timeout is not None:
            payload["timeout"] = timeout
        self.send(payload)
        events: list[dict] = []
        while True:
            response = self.recv()
            if response.get("ok") and response.get("final") is False:
                events.append(response["event"])
                continue
            break
        if raise_on_error and not response.get("ok"):
            error = response.get("error") or {}
            raise ServeError(
                error.get("code", E_INTERNAL),
                error.get("message", "unknown server error"),
            )
        return events, response

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def stats(self) -> dict:
        """The server's scheduler counters (admissions, batches, cache)."""
        return self.request({"op": "stats"})["stats"]

    def metrics(self) -> str:
        """The server's metrics registry as Prometheus exposition text."""
        return self.request({"op": "metrics"})["metrics"]

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
