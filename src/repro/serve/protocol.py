"""Wire protocol of the ``repro.serve`` job server.

One protocol, deliberately boring: **newline-delimited JSON** over a TCP
socket.  Every request is one JSON object on one line; every request gets
exactly one JSON response line.  Lines are independent, so clients may
pipeline — send several requests before reading any response — and match
replies to requests by the echoed ``id``.

Request shape (``op`` defaults to ``"solve"``)::

    {"op": "solve", "id": "7", "algo": "mrg", "k": 10,
     "points": [[0.0, 1.0], ...],          # inline rows, XOR
     "data": "shards/",                    # a server-visible .npy / shard dir
     "seed": 0,                            # optional
     "options": {"m": 8, "partitioner": "hash"},   # shared knobs + solver opts
     "timeout": 5.0}                       # optional, seconds

    {"op": "ping"}          -> {"ok": true, "op": "ping", ...}
    {"op": "stats"}         -> {"ok": true, "stats": {...}}
    {"op": "metrics"}       -> {"ok": true, "metrics": "<prometheus text>",
                                "content_type": "text/plain; version=0.0.4..."}
    {"op": "progress", ...same fields as solve...}
        -> zero or more {"id": ..., "ok": true, "final": false,
                         "event": {"name": ..., "cat": "round"|"solve"|"attempt",
                                   "start": ..., "duration": ..., "args": {...}}}
           then one normal final response line (``"final": true``)

Response shape::

    {"id": "7", "ok": true,
     "result": {"algorithm": "MRG", "k": 10, "centers": [...],
                "radius": 0.031, ...},
     "accounting": {"queue_ms": ..., "solve_ms": ..., "batch_runs": ...,
                    "summary": {...BatchSummary...}}}

    {"id": "7", "ok": false, "error": {"code": "too-large", "message": ...}}

Failures are **structured error responses**, never dropped connections
(the one exception: an over-long line, which poisons the stream framing
and closes the connection after a final error line).  Error codes are the
module's ``E_*`` constants; :class:`ServeError` carries one through the
server internals and over the wire.

Numbers cross the wire bit-exactly: Python's JSON encoder emits the
shortest round-tripping ``repr`` for floats, so served ``centers`` /
``radius`` compare ``==`` against a direct in-process :func:`repro.solve`
— the serving layer's parity contract (``tests/test_serve.py``).
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from repro.core.result import KCenterResult
from repro.errors import ReproError
from repro.mapreduce.accounting import BatchSummary
from repro.metric.base import MetricSpace
from repro.solvers.config import SolveConfig, UNSET
from repro.solvers.registry import SolverSpec, get_solver
from repro.store.space import as_space

__all__ = [
    "PROTOCOL_VERSION",
    "ServeError",
    "SolveRequest",
    "parse_solve_request",
    "encode",
    "decode_line",
    "ok_response",
    "error_response",
    "result_payload",
]

PROTOCOL_VERSION = 1

# Error codes -------------------------------------------------------------- #
E_BAD_JSON = "bad-json"  # the line is not a JSON object
E_BAD_REQUEST = "bad-request"  # structurally invalid request fields
E_UNKNOWN_ALGORITHM = "unknown-algorithm"  # algo not in the solver registry
E_INVALID_PARAMETER = "invalid-parameter"  # knob/option rejected by the spec
E_TOO_LARGE = "too-large"  # request exceeds max_points admission cap
E_OVERLOADED = "overloaded"  # queue depth cap hit; retry later
E_TIMEOUT = "timeout"  # per-request deadline expired
E_SHUTTING_DOWN = "shutting-down"  # server draining; no new admissions
E_LINE_TOO_LONG = "line-too-long"  # framing poisoned; connection closes
E_INTERNAL = "internal"  # unexpected failure inside a batch


class ServeError(ReproError):
    """A structured serving-layer failure: an error ``code`` plus message.

    Everything the server deliberately refuses — bad JSON, unknown
    algorithm, admission rejection, timeout — travels as one of these and
    becomes an ``{"ok": false, "error": {...}}`` response, so clients
    can dispatch on ``code`` without parsing prose.
    """

    def __init__(self, code: str, message: str):
        super().__init__(message)
        self.code = code
        self.message = message

    def payload(self) -> dict:
        return {"code": self.code, "message": self.message}


# -------------------------------------------------------------------------- #
# framing
# -------------------------------------------------------------------------- #
def encode(obj: Mapping) -> bytes:
    """One response/request as a compact JSON line (trailing newline)."""
    return json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> dict:
    """Parse one wire line into a JSON object, or raise :class:`ServeError`."""
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServeError(E_BAD_JSON, f"request is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ServeError(
            E_BAD_JSON,
            f"request must be a JSON object, got {type(payload).__name__}",
        )
    return payload


# -------------------------------------------------------------------------- #
# solve requests
# -------------------------------------------------------------------------- #
@dataclass
class SolveRequest:
    """One admitted-or-rejected unit of work, parsed and validated.

    ``space_key`` is the coalescing key: requests sharing it run in one
    ``solve_many`` batch over one space object.  Inline point sets key on
    the space's content fingerprint (so two clients sending the same
    rows coalesce — and, through the scheduler's
    :class:`~repro.store.cache.DistanceCache`, share one distance
    matrix); path inputs key on the resolved path.
    """

    id: str
    spec: SolverSpec
    k: int
    space: MetricSpace
    space_key: object
    seed: Any = None
    knobs: dict[str, Any] = field(default_factory=dict)  # m/capacity/evaluate
    options: dict[str, Any] = field(default_factory=dict)  # solver-specific
    timeout: float | None = None

    def entry(self) -> tuple[SolverSpec, dict[str, Any]]:
        """This request as one heterogeneous ``solve_many`` entry."""
        return (
            self.spec,
            {
                "label": self.id,
                "k": self.k,
                "seed": self.seed,
                **self.knobs,
                **self.options,
            },
        )


def _require_int(payload: Mapping, key: str) -> int:
    value = payload.get(key)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ServeError(
            E_BAD_REQUEST, f"{key!r} must be an integer, got {value!r}"
        )
    return value


def _resolve_space(payload: Mapping) -> tuple[MetricSpace, object]:
    """The request's input as a (space, coalescing key) pair."""
    points = payload.get("points")
    data = payload.get("data")
    if (points is None) == (data is None):
        raise ServeError(
            E_BAD_REQUEST,
            "a solve request needs exactly one of 'points' (inline rows) "
            "or 'data' (a server-visible .npy file or shard directory)",
        )
    if points is not None:
        try:
            rows = np.asarray(points, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise ServeError(
                E_BAD_REQUEST, f"'points' is not a numeric matrix: {exc}"
            ) from None
        if rows.ndim != 2 or rows.size == 0:
            raise ServeError(
                E_BAD_REQUEST,
                f"'points' must be a non-empty 2-D matrix, got shape "
                f"{rows.shape}",
            )
        try:
            space = as_space(rows)
        except ReproError as exc:  # non-finite values etc.
            raise ServeError(E_BAD_REQUEST, str(exc)) from None
        # Content key: identical inline rows coalesce across clients.
        return space, space.fingerprint() or ("id", id(space))
    if not isinstance(data, str):
        raise ServeError(
            E_BAD_REQUEST, f"'data' must be a path string, got {data!r}"
        )
    try:
        space = as_space(data)
    except (ReproError, OSError) as exc:
        raise ServeError(E_BAD_REQUEST, f"cannot open data {data!r}: {exc}") from None
    return space, ("path", os.path.realpath(data))


#: Shared knobs a request may set through its options dict.  ``executor``
#: is deliberately absent: the server owns the one warm pool.
_REQUEST_KNOBS = ("m", "capacity", "evaluate")


def parse_solve_request(
    payload: Mapping, req_id: str, *, max_points: int | None = None
) -> SolveRequest:
    """Validate one solve request against the registry; raise :class:`ServeError`.

    Validation is *eager* — unknown algorithm, rejected knobs/options and
    oversized inputs all fail here, before anything is queued, so a bad
    request can never occupy batch capacity or crash a worker later.
    """
    algo = payload.get("algo")
    if not isinstance(algo, str):
        raise ServeError(
            E_BAD_REQUEST, f"'algo' must be a solver name, got {algo!r}"
        )
    try:
        spec = get_solver(algo)
    except ReproError as exc:
        raise ServeError(E_UNKNOWN_ALGORITHM, str(exc)) from None

    k = _require_int(payload, "k")
    options = payload.get("options") or {}
    if not isinstance(options, Mapping):
        raise ServeError(
            E_BAD_REQUEST, f"'options' must be an object, got {options!r}"
        )
    options = dict(options)
    for reserved in ("executor", "label", "seed", "k"):
        if reserved in options:
            hint = (
                "the server owns the executor pool"
                if reserved == "executor"
                else "pass it as a top-level request field"
            )
            raise ServeError(
                E_BAD_REQUEST, f"option {reserved!r} is not settable; {hint}"
            )
    knobs = {key: options.pop(key) for key in _REQUEST_KNOBS if key in options}
    seed = payload.get("seed")

    timeout = payload.get("timeout")
    if timeout is not None:
        if isinstance(timeout, bool) or not isinstance(timeout, (int, float)):
            raise ServeError(
                E_BAD_REQUEST, f"'timeout' must be a number, got {timeout!r}"
            )
        timeout = float(timeout)
        if not math.isfinite(timeout) or timeout <= 0:
            raise ServeError(
                E_BAD_REQUEST, f"'timeout' must be positive, got {timeout}"
            )

    # Validate knobs/options against the spec *now* (fail-fast admission);
    # the scheduler later re-derives the same kwargs through solve_many.
    try:
        config = SolveConfig(
            k=k,
            seed=seed,
            m=knobs.get("m", UNSET),
            capacity=knobs.get("capacity", UNSET),
            evaluate=knobs.get("evaluate", UNSET),
            options=options,
        )
        config.kwargs_for(spec)
    except ReproError as exc:
        raise ServeError(E_INVALID_PARAMETER, str(exc)) from None

    space, space_key = _resolve_space(payload)
    if max_points is not None and space.n > max_points:
        raise ServeError(
            E_TOO_LARGE,
            f"request has {space.n} points, over the admission cap of "
            f"{max_points}; split the workload or raise --max-points",
        )
    return SolveRequest(
        id=req_id,
        spec=spec,
        k=config.k,
        space=space,
        space_key=space_key,
        seed=seed,
        knobs=knobs,
        options=options,
        timeout=timeout,
    )


# -------------------------------------------------------------------------- #
# responses
# -------------------------------------------------------------------------- #
def result_payload(result: KCenterResult) -> dict:
    """A :class:`KCenterResult` as plain JSON data (bit-exact numbers)."""
    out = {
        "algorithm": result.algorithm,
        "k": result.k,
        "n_centers": result.n_centers,
        "centers": [int(c) for c in result.centers],
        "radius": float(result.radius),
        "wall_time": result.wall_time,
        "eval_time": result.eval_time,
        "approx_factor": result.approx_factor,
        "rounds": result.n_rounds,
    }
    if result.stats is not None:
        out["dist_evals"] = result.stats.dist_evals
        out["shuffle_elements"] = result.stats.shuffle_elements
    return out


def ok_response(
    req_id: str, result: KCenterResult, summary: BatchSummary, **accounting: Any
) -> dict:
    """A success line: the result plus per-request accounting.

    ``summary`` is this run's private :class:`BatchSummary` (one run, its
    exact dist_evals / cache hits / task seconds) — the wire is where its
    JSON form earns its keep.
    """
    return {
        "id": req_id,
        "ok": True,
        "result": result_payload(result),
        "accounting": {**accounting, "summary": summary.to_dict()},
    }


def error_response(req_id: str | None, error: ServeError) -> dict:
    return {"id": req_id, "ok": False, "error": error.payload()}
