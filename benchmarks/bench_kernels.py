"""Ablation A5 — distance-kernel micro-benchmarks (the HPC guide's
"measure, don't guess").

Times the three hot kernels at experiment-realistic shapes and sweeps the
chunk-size budget to document why DEFAULT_BLOCK_BYTES is a sane default
(cache effects: too-small blocks pay call overhead, too-large blocks
spill cache — the middle is flat, which is what makes the default safe).
"""

import numpy as np
import pytest

from benchmarks.conftest import write_artifact
from repro.metric import kernels
from repro.utils.timing import timed
from repro.utils.tables import format_table

RNG = np.random.default_rng(0)
X = RNG.normal(size=(100_000, 3))
Y = RNG.normal(size=(2_000, 3))
CURRENT = np.full(len(X), np.inf)


def test_dists_to_point(benchmark):
    """GON's inner loop: one fused pass over all points."""
    benchmark(kernels.dists_to_point, X, Y[0])


def test_update_min_dists_default_blocks(benchmark):
    """EIM Round 3's inner loop at a realistic (100k x 2k) shape."""
    benchmark(lambda: kernels.update_min_dists(CURRENT.copy(), X, Y))


def test_pairwise_small_block(benchmark):
    """EIM Select's H-by-S distances (small dense block)."""
    benchmark(kernels.pairwise_dists, Y[:200], Y)


def test_chunk_size_sweep(artifact_dir):
    rows = []
    times = {}
    for block_bytes in (2**16, 2**20, 2**23, 2**25, 2**27):
        current = np.full(len(X), np.inf)
        _, seconds = timed(
            kernels.update_min_dists, current, X, Y, block_bytes=block_bytes
        )
        times[block_bytes] = seconds
        rows.append([f"{block_bytes // 1024} KiB", f"{seconds * 1e3:.1f} ms"])
    text = format_table(
        ["block budget", "update_min_dists(100k x 2k)"],
        rows,
        title="A5: chunk-size sweep for the running-min kernel",
    )
    write_artifact(artifact_dir, "kernels_chunk_sweep", text)

    # The default budget (32 MiB = 2^25) must not be badly off the best.
    best = min(times.values())
    assert times[2**25] <= 5.0 * best
