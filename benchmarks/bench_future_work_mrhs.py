"""Future-work bench — MRG vs MRHS (the comparison the paper proposed).

Section 9: "Currently all such approaches rely on the sequential
algorithm of Gonzalez.  It would be interesting to compare with similar
adaptations of alternative sequential algorithms, such as that of
Hochbaum & Shmoys."  We run both two-round schemes on the synthetic
families and report quality (vs the certified OPT bound) and runtime.
"""

from benchmarks.conftest import write_artifact
from repro.core.bounds import greedy_lower_bound
from repro.core.mr_hochbaum_shmoys import mr_hochbaum_shmoys
from repro.core.mrg import mrg
from repro.data.registry import make_dataset
from repro.utils.tables import format_table

N, M, K = 40_000, 20, 10


def test_mrg_vs_mrhs(artifact_dir):
    rows = []
    for dataset, params in (("gau", {"k_prime": 10}), ("unif", {}), ("unb", {"k_prime": 10})):
        space = make_dataset(dataset, N, seed=2, **params).space()
        lb = greedy_lower_bound(space, K)
        g = mrg(space, K, m=M, seed=0)
        h = mr_hochbaum_shmoys(space, K, m=M, seed=0)
        rows.append(
            [dataset, "MRG (guarantee 4)", g.radius, g.radius / lb,
             g.stats.parallel_time]
        )
        rows.append(
            [dataset, "MRHS (guarantee 8)", h.radius, h.radius / lb,
             h.stats.parallel_time]
        )
        # Both two-round guarantees, certified (OPT >= lb so the direct
        # certificate is radius <= guarantee * 2 * lb).
        assert g.radius <= 4.0 * 2.0 * lb + 1e-9
        assert h.radius <= 8.0 * 2.0 * lb + 1e-9
        # The empirical answer: HS's looser parallel bound does not show
        # up as a big quality loss in practice.
        assert h.radius <= 2.0 * g.radius

    text = format_table(
        ["dataset", "algorithm", "radius", "radius / OPT-lb", "runtime (s)"],
        rows,
        title=f"future work: MRG vs MRHS (n={N}, k={K}, m={M})",
    )
    write_artifact(artifact_dir, "future_work_mrhs", text)


def test_mrhs_representative(benchmark):
    space = make_dataset("gau", N, seed=2, k_prime=10).space()
    benchmark.pedantic(
        lambda: mr_hochbaum_shmoys(space, K, m=M, seed=0, evaluate=False),
        rounds=1,
        iterations=1,
    )
