"""Ablation A2 — EIM termination fixes on/off (paper Section 4.1).

The original removal rule (strict <, sampled points kept in R) can loop
forever on inputs with repeated distances.  This bench demonstrates the
stall on a pathological input (bounded by the iteration cap, so it
terminates with an error instead of hanging) and shows the fixed rule
converging on the same input.
"""

import numpy as np
import pytest

from benchmarks.conftest import write_artifact
from repro.core.eim import EIMParams, eim
from repro.errors import ConvergenceError
from repro.metric.euclidean import EuclideanSpace
from repro.utils.tables import format_table


def _pathological_space(n=20_000):
    """Many coincident points: distances to the sample are frequently
    exactly equal, the regime where the strict-< rule removes nothing."""
    rng = np.random.default_rng(0)
    # 32 distinct locations, heavily repeated.
    locations = rng.uniform(0, 100, size=(32, 2))
    return EuclideanSpace(locations[rng.integers(0, 32, size=n)])


def test_legacy_rule_stalls_fixed_rule_converges(artifact_dir):
    space = _pathological_space()
    k = 4

    fixed = eim(space, k, m=10, seed=0)
    assert fixed.extra["iterations"] >= 1

    legacy_params = EIMParams(legacy_removal=True, max_iterations=12)
    stalled = False
    legacy_iters = None
    try:
        res = eim(space, k, m=10, params=legacy_params, seed=0)
        legacy_iters = res.extra["iterations"]
    except ConvergenceError:
        stalled = True

    rows = [
        ["fixed (<=, drop sampled)", fixed.extra["iterations"], "converged",
         fixed.radius],
        ["legacy (<, keep sampled)",
         legacy_iters if legacy_iters is not None else ">= cap",
         "stalled" if stalled else "converged", "-" if stalled else "ok"],
    ]
    text = format_table(
        ["removal rule", "iterations", "outcome", "radius"],
        rows,
        title="A2: EIM termination fix on a duplicate-heavy input "
              f"(n={space.n}, 32 distinct locations, k={k})",
    )
    write_artifact(artifact_dir, "ablation_termination", text)

    assert stalled, (
        "the legacy rule should stall on coincident points "
        "(this is exactly the pathology Section 4.1 describes)"
    )


def test_fixed_rule_representative(benchmark):
    space = _pathological_space()
    benchmark.pedantic(
        lambda: eim(space, 4, m=10, seed=0, evaluate=False), rounds=1, iterations=1
    )
