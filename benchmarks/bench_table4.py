"""Table 4 — solution value over k, UNB (paper: n = 2*10^5, k' = 25).

Workload: half the points in one cluster.  The paper highlights that EIM
is notably better exactly at k = k' (its sampling under-represents the
perimeter of the giant cluster); the winner-agreement check covers this.
"""

from benchmarks._solution_table import representative_run, solution_table_bench


def test_table4_regeneration(experiment_cache, scale, artifact_dir):
    solution_table_bench("table4", experiment_cache, scale, artifact_dir)


def test_table4_mrg_representative(benchmark, scale):
    benchmark.pedantic(representative_run("table4", scale), rounds=2, iterations=1)
