"""Perf harness — the machine-readable trajectory of the execution engine.

Times the canonical figure-style workloads on every executor backend and
writes ``BENCH_9.json`` at the repo root: wall-clock, distance
evaluations, peak RSS and per-round parallel/cpu time for each
(workload, executor) cell.  Future PRs append ``BENCH_<n>.json`` files
and get a trajectory to beat; ``benchmarks/baseline/BENCH_ref.json``
holds the committed PR-over-PR reference that CI diffs against.

The ``mrg-obs`` cells run the same MRG workload with full observability
on — an activated tracer plus the enabled metrics registry — and must
stay bit-identical to the plain cells; ``test_obs_overhead_gate``
bounds the instrumentation overhead through the ``bench_diff`` wall
gate.

Workloads (sizes capped by ``REPRO_BENCH_MAX_N`` for the CI smoke):

* ``gon`` — a 3-seed Gonzalez batch at n=2·10^5 fanned out through
  ``solve_many`` (the executor parallelises across *runs*);
* ``mrg`` / ``mrhs`` — the MapReduce solvers, where the executor runs
  the *reducer tasks* of every round, each over an in-memory space
  (process backends attach its published shared-memory block) and over
  the sharded on-disk layout (workers re-open their shard files);
* ``eim`` — the iterative-sampling solver over the in-memory space,
  with options that keep its loop threshold below the smoke sizes so
  the sampling rounds (not the GON fallback) are what gets timed.
  Since the TaskSpec refactor its rounds are module-level tasks, so the
  process cells exercise the same shared-memory transport as ``mrg``.

Shape claims asserted (the engine contract, CI-enforced):

* every cell — persistent pools, shared-memory transport, workspace
  kernels, batched counters — reproduces **bit-identical** centers,
  radius and dist_evals against the sequential in-memory reference;
* persistent-pool MRG is not slower than the old spawn-a-pool-per-round
  baseline (``persistent=False``), on the smoke sizes and up.
"""

from __future__ import annotations

import json
import os
import platform
import resource
import time
from pathlib import Path

import numpy as np

import repro
from repro.mapreduce.executor import (
    ProcessPoolExecutorBackend,
    SequentialExecutor,
    ThreadPoolExecutorBackend,
)
from repro.metric.euclidean import EuclideanSpace
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.store import ChunkedMetricSpace, GeneratorStream, write_shards

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_9.json"

K = 10
DIM = 3
N_GON = 200_000
N_MR = 120_000
N_MRHS = 30_000  # HS materialises O((n/m)^2) per shard; keep shards modest
M_MR = 16
SHARDS = 4

#: EIM options for the bench cells: pull the iterative loop's threshold
#: below the (capped) instance so the sampling rounds run instead of the
#: small-input GON fallback.
EIM_OPTS = {"eps": 0.3, "threshold_coeff": 0.05}

_cap = int(os.environ.get("REPRO_BENCH_MAX_N", "0"))
if _cap:
    N_GON = min(N_GON, _cap)
    N_MR = min(N_MR, _cap)
    N_MRHS = min(N_MRHS, _cap)

#: Generation/chunk granularity scales with the instance so the capped
#: smoke still crosses chunk boundaries.
CHUNK = max(256, min(8_192, N_MR // 8))

EXECUTORS = {
    "sequential": lambda: SequentialExecutor(),
    "thread": lambda: ThreadPoolExecutorBackend(max_workers=4),
    "process": lambda: ProcessPoolExecutorBackend(max_workers=2),
}


def _peak_rss_kb() -> int:
    """Peak RSS of driver + reaped children so far, in KiB (monotone)."""
    self_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    child_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return int(max(self_kb, child_kb))


def _round_rows(stats) -> list[dict]:
    if stats is None:
        return []
    return [
        {
            "label": r.label,
            "tasks": r.n_tasks,
            "parallel_s": r.parallel_time,
            "cpu_s": r.cpu_time,
            "dist_evals": r.dist_evals,
        }
        for r in stats.rounds
    ]


def _fingerprint(result) -> tuple:
    """What bit-parity means for one run: centers, radius, op count."""
    evals = result.stats.dist_evals if result.stats is not None else None
    return (result.centers.tolist(), result.radius, evals)


def _run_gon(space, executor):
    """A 3-seed GON batch through solve_many; returns (record, parity key)."""
    t0 = time.perf_counter()
    batch = repro.solve_many(space, K, "gon", seeds=(0, 1, 2), executor=executor)
    wall = time.perf_counter() - t0
    record = {
        "wall_s": wall,
        "dist_evals": batch.summary.dist_evals,
        "radius": max(r.radius for r in batch.values()),
        "batch": batch.summary.summary(),
        "rounds": [],
    }
    per_run = tuple(
        (key.seed, *_fingerprint(result)) for key, result in sorted(batch.items())
    )
    # GON runs carry no round stats; the batch-total evaluation count is
    # the operation-count side of the parity claim for this workload.
    return record, (batch.summary.dist_evals, per_run)


def _run_mr(algorithm, **opts):
    def run(space, executor):
        t0 = time.perf_counter()
        result = repro.solve(
            space, K, algorithm, m=M_MR, seed=0, executor=executor, **opts
        )
        wall = time.perf_counter() - t0
        record = {
            "wall_s": wall,
            "dist_evals": result.stats.dist_evals,
            "radius": result.radius,
            "rounds": _round_rows(result.stats),
        }
        return record, _fingerprint(result)

    return run


def _run_mr_obs(algorithm):
    """The same MR workload with the full observability stack enabled."""
    inner = _run_mr(algorithm)

    def run(space, executor):
        tracer = obs_trace.Tracer()
        with obs_metrics.capture(), obs_trace.activate(tracer):
            record, parity = inner(space, executor)
        record["spans"] = len(tracer.spans)
        return record, parity

    return run


def test_perf_trajectory(artifact_dir, tmp_path_factory):
    """Time every (workload, executor) cell; enforce bit-parity; write
    ``BENCH_9.json``."""
    tmp = tmp_path_factory.mktemp("perf")
    rng = np.random.default_rng(2016)
    gon_points = rng.normal(size=(N_GON, DIM))

    mr_gen = GeneratorStream(
        "gau", N_MR, seed=5, chunk_size=CHUNK, gen_block=CHUNK, k_prime=10
    )
    mr_path = mr_gen.to_npy(tmp / "mr.npy")
    mr_points = np.load(mr_path)
    mr_shards = write_shards(mr_gen, tmp / "mr-shards", shards=SHARDS)

    mrhs_gen = GeneratorStream(
        "gau",
        N_MRHS,
        seed=7,
        chunk_size=max(256, min(CHUNK, N_MRHS // 4)),
        gen_block=max(256, min(CHUNK, N_MRHS // 4)),
        k_prime=10,
    )
    mrhs_path = mrhs_gen.to_npy(tmp / "mrhs.npy")
    mrhs_points = np.load(mrhs_path)
    mrhs_shards = write_shards(mrhs_gen, tmp / "mrhs-shards", shards=SHARDS)

    workloads = [
        # (name, backing, n, make_space, runner)
        ("gon", "in-memory", N_GON, lambda: EuclideanSpace(gon_points), _run_gon),
        ("mrg", "in-memory", N_MR, lambda: EuclideanSpace(mr_points), _run_mr("mrg")),
        (
            "mrg-obs",
            "in-memory",
            N_MR,
            lambda: EuclideanSpace(mr_points),
            _run_mr_obs("mrg"),
        ),
        ("mrg", "sharded", N_MR, lambda: ChunkedMetricSpace(mr_shards), _run_mr("mrg")),
        (
            "eim",
            "in-memory",
            N_MR,
            lambda: EuclideanSpace(mr_points),
            _run_mr("eim", **EIM_OPTS),
        ),
        (
            "mrhs",
            "in-memory",
            N_MRHS,
            lambda: EuclideanSpace(mrhs_points),
            _run_mr("mrhs"),
        ),
        (
            "mrhs",
            "sharded",
            N_MRHS,
            lambda: ChunkedMetricSpace(mrhs_shards),
            _run_mr("mrhs"),
        ),
    ]

    records: list[dict] = []
    references: dict[str, tuple] = {}
    for name, backing, n, make_space, runner in workloads:
        for exec_name, make_executor in EXECUTORS.items():
            executor = make_executor()
            try:
                record, parity = runner(make_space(), executor)
            finally:
                if hasattr(executor, "close"):
                    executor.close()
            record.update(
                workload=name,
                backing=backing,
                executor=exec_name,
                n=n,
                d=DIM,
                k=K,
                m=M_MR if name != "gon" else None,
                peak_rss_kb=_peak_rss_kb(),
            )
            records.append(record)
            # The engine contract: the sequential in-memory cell is the
            # reference; every other (executor, backing) combination of
            # the same workload must reproduce its exact bits — the
            # obs-on cells included (tracing must be result-neutral).
            base = name.removesuffix("-obs")
            if name == base and backing == "in-memory" and exec_name == "sequential":
                references[name] = parity
            else:
                assert parity == references[base], (
                    f"{name}[{backing}/{exec_name}] diverged from the "
                    "sequential in-memory reference"
                )

    payload = {
        "bench": 9,
        "schema": "repro-perf-v1",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpus": os.cpu_count(),
        "cap": _cap or None,
        "executors": sorted(EXECUTORS),
        "records": records,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n[perf trajectory: {BENCH_PATH} — {len(records)} cells]")

    from benchmarks.conftest import write_artifact
    from repro.utils.tables import format_table

    rows = [
        [
            f"{r['workload']}[{r['backing']}]",
            r["executor"],
            r["n"],
            r["wall_s"],
            r["dist_evals"],
            r["peak_rss_kb"] / 1024,
        ]
        for r in records
    ]
    write_artifact(
        artifact_dir,
        "perf",
        format_table(
            ["workload", "executor", "n", "wall (s)", "dist evals", "peak RSS (MiB)"],
            rows,
            title="execution-engine perf trajectory (BENCH_9)",
        ),
    )


def test_persistent_pool_not_slower_than_respawn(tmp_path_factory):
    """Pool reuse must beat (or at worst match) spawning per round.

    MRG schedules one executor batch per round, so ``persistent=False``
    pays a process-pool spawn for every round where the persistent
    engine pays one per job.  Min-of-3 keeps the comparison robust to
    scheduler noise, and the wide margin (1.5x + 100ms) means "not
    slower", not "faster": on the smoke sizes compute is tiny and both
    timings are spawn/IPC-dominated, so the envelope must absorb a
    descheduled spawn on a loaded CI runner without going vacuous — the
    respawn baseline still pays at least one extra pool spawn.
    """
    n = min(20_000, N_MR)
    points = np.random.default_rng(11).normal(size=(n, DIM))

    def timed_mrg(**executor_kwargs) -> float:
        best = float("inf")
        for _ in range(3):
            executor = ProcessPoolExecutorBackend(max_workers=2, **executor_kwargs)
            try:
                t0 = time.perf_counter()
                repro.solve(
                    EuclideanSpace(points), K, "mrg", m=8, seed=0, executor=executor
                )
                best = min(best, time.perf_counter() - t0)
            finally:
                executor.close()
        return best

    respawn = timed_mrg(persistent=False)
    persistent = timed_mrg(persistent=True)
    assert persistent <= respawn * 1.5 + 0.1, (
        f"persistent pool {persistent:.3f}s vs per-round spawn {respawn:.3f}s"
    )


def test_obs_overhead_gate():
    """Full observability must cost <3% wall on the MRG workload.

    Runs the same in-memory MRG solve with observability off and on
    (activated tracer + enabled metrics registry), min-of-5 each, and
    pushes the pair through the ``bench_diff`` wall gate at 1.03x —
    the exact comparison CI applies across trajectory files.  Timings
    are floored at 250ms before the ratio: below that, smoke-size runs
    are scheduler noise and a 3% relative gate would be vacuous flake
    (the uncapped bench run is where the floor never engages).
    """
    from benchmarks.bench_diff import diff_cells

    n = min(20_000, N_MR)
    points = np.random.default_rng(13).normal(size=(n, DIM))
    floor = 0.25

    def timed(obs: bool) -> tuple[float, tuple]:
        best, parity = float("inf"), None
        runner = (_run_mr_obs if obs else _run_mr)("mrg")
        for _ in range(5):
            record, parity = runner(EuclideanSpace(points), SequentialExecutor())
            best = min(best, record["wall_s"])
        return best, parity

    wall_off, parity_off = timed(obs=False)
    wall_on, parity_on = timed(obs=True)
    assert parity_on == parity_off, "observability perturbed the result"

    cell_key = ("mrg", "in-memory", "sequential", n, K, M_MR)
    cell = dict(zip(("workload", "backing", "executor", "n", "k", "m"), cell_key))
    off = {cell_key: {**cell, "wall_s": max(wall_off, floor)}}
    on = {cell_key: {**cell, "wall_s": max(wall_on, floor)}}
    lines, failures = diff_cells(off, on, wall_tol=1.03)
    assert not failures, (
        f"obs overhead above 3%: off={wall_off:.4f}s on={wall_on:.4f}s "
        f"({failures})"
    )
    print(f"\n[obs overhead: off={wall_off:.4f}s on={wall_on:.4f}s "
          f"({wall_on / wall_off - 1:+.2%})]")
