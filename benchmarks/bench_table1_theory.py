"""Table 1 — theoretical comparison, validated against measured counts.

The paper's Table 1 lists approximation factors, round counts and
asymptotic runtimes.  This bench (a) regenerates the table verbatim from
:mod:`repro.core.theory`, and (b) *validates* the asymptotics empirically:
the distance-evaluation counters of real runs are fitted against the
formulas — GON's k*n, MRG's k*n/m + k^2*m, and EIM's superlinear
n^(1+eps) growth.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import write_artifact
from repro.core.eim import eim
from repro.core.gonzalez import gonzalez
from repro.core.mrg import mrg
from repro.core.theory import (
    eim_expected_slowdown,
    gon_cost,
    mrg_cost,
    table1_rows,
)
from repro.data.registry import make_dataset
from repro.utils.tables import format_table


def test_table1_regeneration(artifact_dir):
    rows = [[r.algorithm, r.approx_factor, r.rounds, r.runtime] for r in table1_rows()]
    text = format_table(
        ["Algorithm", "alpha", "Rounds", "Runtime O(...)"],
        rows,
        title="Table 1: theoretical comparison of algorithms",
    )
    write_artifact(artifact_dir, "table1", text)
    assert len(rows) == 3


def test_gon_count_matches_formula(benchmark):
    space = make_dataset("gau", 20_000, seed=0, k_prime=10).space()

    def run():
        space.counter.reset()
        gonzalez(space, 20, seed=0)
        return space.counter.evals

    evals = benchmark.pedantic(run, rounds=3, iterations=1)
    # GON is exactly k passes over n points (duplicates aside).
    assert evals == pytest.approx(gon_cost(20_000, 20), rel=0.01)


def test_mrg_count_matches_formula(benchmark):
    n, k, m = 20_000, 10, 20
    space = make_dataset("gau", n, seed=0, k_prime=10).space()

    def run():
        res = mrg(space, k, m=m, seed=0, evaluate=False)
        return res.stats.dist_evals

    evals = benchmark.pedantic(run, rounds=3, iterations=1)
    # Round 1: m GONs on n/m points = k*n total; round 2: GON on k*m
    # points = k^2*m.  (Table 1 divides round 1 by m because machines run
    # concurrently; the counter sees total work.)
    expected_total = gon_cost(n, k) + k * k * m
    assert evals == pytest.approx(expected_total, rel=0.05)


def test_mrg_parallel_cost_model(artifact_dir):
    """Per-machine (parallel) cost follows k*n/m + k^2*m including the
    k^2*m-dominated regime the paper highlights in Section 8.2."""
    n, k = 20_000, 10
    space = make_dataset("gau", n, seed=0, k_prime=10).space()
    rows = []
    for m in (5, 20, 80):
        res = mrg(space, k, m=m, seed=0, evaluate=False)
        max_load = res.stats.max_machine_load
        rows.append([m, mrg_cost(n, k, m), res.stats.dist_evals, max_load])
    text = format_table(
        ["m", "model kn/m+k^2m", "measured evals", "max machine load"],
        rows,
        title="MRG cost model vs measured distance evaluations",
    )
    write_artifact(artifact_dir, "table1_mrg_model", text)
    # The parallel cost model is non-monotone in m; the measured max
    # machine load must follow the n/m shard shrinkage.
    assert rows[0][3] > rows[1][3] > 0


def test_eim_superlinear_growth(artifact_dir):
    """EIM's dominant round grows like n^(1+eps) log n: the measured
    eval-count ratio between two sizes must exceed the linear ratio."""
    k, m = 3, 20
    counts = {}
    for n in (20_000, 80_000):
        space = make_dataset("gau", n, seed=1, k_prime=10).space()
        res = eim(space, k, m=m, seed=0, evaluate=False)
        assert not res.extra["fallback_to_gon"]
        counts[n] = res.stats.dist_evals
    ratio = counts[80_000] / counts[20_000]
    write_artifact(
        artifact_dir,
        "table1_eim_growth",
        f"EIM dist-eval growth 20k->80k: {ratio:.2f}x (linear would be 4.00x)\n"
        f"predicted EIM/MRG slowdown at n=80k: "
        f"{eim_expected_slowdown(80_000):.1f}x",
    )
    assert ratio > 4.0, "EIM must grow superlinearly in n"
