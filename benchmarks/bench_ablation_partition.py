"""Ablation A3 — mapper partitioning strategy and MRG quality.

Algorithm 1 partitions "arbitrarily"; the tightness example in the
paper's future work relies on adversarial assignment.  This bench
compares block / random / hash partitions on a workload where block
partitioning is *correlated with the cluster structure* (points sorted by
cluster) — the realistic worst-ish case for an arbitrary partition.
"""

import numpy as np

from benchmarks.conftest import write_artifact
from repro.core.bounds import greedy_lower_bound
from repro.core.mrg import mrg
from repro.data.synthetic import gau
from repro.metric.euclidean import EuclideanSpace
from repro.utils.tables import format_table


def _sorted_by_cluster_space(n=30_000, k_prime=10):
    pts, labels = gau(n, k_prime=k_prime, seed=3, return_labels=True)
    order = np.argsort(labels, kind="stable")
    return EuclideanSpace(pts[order])


def test_partitioner_quality(artifact_dir):
    space = _sorted_by_cluster_space()
    k = 10
    lb = greedy_lower_bound(space, k)

    rows = []
    radii = {}
    for strategy in ("block", "random", "hash"):
        res = mrg(space, k, m=20, partitioner=strategy, seed=0)
        radii[strategy] = res.radius
        rows.append([strategy, res.radius, res.radius / lb,
                     res.stats.parallel_time])
    text = format_table(
        ["partitioner", "radius", "radius / OPT-lb", "runtime (s)"],
        rows,
        title="A3: MRG quality by partitioning strategy "
              "(GAU sorted by cluster: block partitions align with clusters)",
    )
    write_artifact(artifact_dir, "ablation_partition", text)

    # The 4-approximation holds regardless of strategy.
    for radius in radii.values():
        assert radius <= 4.0 * 2.0 * lb + 1e-9

    # All strategies must stay within the guarantee of each other — the
    # paper's claim is robustness of MRG to the arbitrary partition.
    lo, hi = min(radii.values()), max(radii.values())
    assert hi <= 4.0 * lo + 1e-9


def test_random_partition_representative(benchmark):
    space = _sorted_by_cluster_space()
    benchmark.pedantic(
        lambda: mrg(space, 10, m=20, partitioner="random", seed=0, evaluate=False),
        rounds=2,
        iterations=1,
    )
