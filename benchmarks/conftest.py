"""Shared helpers for the benchmark suite.

Every bench regenerates one paper table or figure.  Conventions:

* experiments run at the **default (scaled-down) size** unless
  ``REPRO_SCALE=paper`` is set (see EXPERIMENTS.md for the mapping);
* each bench times one *representative* algorithm execution through
  pytest-benchmark (``rounds=1`` — these are experiments, not
  micro-kernels) and regenerates the full table/figure once;
* the regenerated artifact is printed and written to
  ``benchmarks/output/<experiment>.txt`` so EXPERIMENTS.md numbers can be
  traced to a file;
* each bench asserts the paper's qualitative *shape* claims (winners,
  runtime orderings, fallback regimes) — never absolute numbers.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def scale() -> str:
    from repro.analysis.configs import resolve_scale

    return resolve_scale(os.environ.get("REPRO_SCALE"))


def write_artifact(artifact_dir: Path, name: str, text: str) -> None:
    """Persist a regenerated table/figure and echo it to the console."""
    path = artifact_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[artifact: {path}]")


@pytest.fixture(scope="session")
def experiment_cache():
    """Session-wide cache so multiple benches can share one experiment run
    (e.g. table6 and table7 are the same grid, measured differently)."""
    cache: dict = {}
    return cache


def run_cached(cache: dict, exp: str, scale: str, seed: int = 2016):
    """Run (or fetch) the record set for an experiment id."""
    from repro.analysis.configs import experiment_config
    from repro.analysis.experiments import run_experiment

    key = (exp, scale, seed)
    if key not in cache:
        spec = experiment_config(exp, scale=scale)
        spec = type(spec)(**{**spec.__dict__, "master_seed": seed})
        cache[key] = (spec, run_experiment(spec))
    return cache[key]
