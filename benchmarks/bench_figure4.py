"""Figure 4 — runtime over n at fixed k: (a) k=10, (b) k=100.

Two claims: runtimes grow roughly linearly in n for fixed k (with MRG's
k^2 m term flattening its small-n end when k=100), and for sufficiently
small n relative to k, EIM behaves identically to GON.
"""

import pytest

from benchmarks.conftest import write_artifact
from repro.analysis.configs import experiment_config, figure4_n_grid
from repro.analysis.experiments import aggregate
from repro.analysis.figures import ascii_chart, series_over_n
from repro.analysis.report import fallback_ks


@pytest.fixture(scope="module")
def figure4_runs(scale):
    out = {}
    for exp in ("figure4a", "figure4b"):
        spec = experiment_config(exp, scale=scale)
        out[exp] = (spec, *series_over_n(spec, figure4_n_grid(scale)))
    return out


def _write(exp, figure4_runs, scale, artifact_dir):
    spec, series, records = figure4_runs[exp]
    chart = ascii_chart(
        series,
        title=f"{exp}: runtime (s) over n at k={spec.ks[0]} (scale={scale}), log y",
        xlabel="n",
    )
    fell_back = fallback_ks(records)
    note = (
        f"EIM fell back to GON at k={spec.ks[0]} for some n"
        if fell_back
        else "EIM sampled at every n"
    )
    write_artifact(artifact_dir, exp, chart + "\n\n" + note)
    return spec, series, records


def test_figure4a_linear_growth(figure4_runs, scale, artifact_dir):
    spec, series, records = _write("figure4a", figure4_runs, scale, artifact_dir)
    # f4.linear_n: every algorithm gets slower as n grows 10x (end to end).
    for s in series:
        assert s.y[-1] > s.y[0], f"{s.label} did not grow with n"


def test_figure4b_small_n_regime(figure4_runs, scale, artifact_dir):
    spec, series, records = _write("figure4b", figure4_runs, scale, artifact_dir)
    # f4.eim_gon_small_n: at the smallest n with k=100, EIM == GON.
    n_min = min(r.n for r in records)
    small = [r for r in records if r.n == n_min]
    eim_fallbacks = [
        r.extra.get("fallback_to_gon") for r in small if r.algorithm == "EIM"
    ]
    assert all(eim_fallbacks), "EIM must fall back to GON at the smallest n, k=100"

    times = aggregate(small, value="parallel_time", by=("algorithm",))
    ratio = times[("EIM",)] / times[("GON",)]
    assert 1 / 3 < ratio < 3, "fallback EIM runtime should track GON"
