"""Figure 2 — runtime over k: (a) GAU n=10^6 k'=25; (b) UNIF n=10^5.

The paper's headline plot: MRG fastest at every k, EIM slower than even
sequential GON wherever its sampling loop runs.  We regenerate both
panels, assert the ordering, and record the MRG speedup factors (the
paper quotes ~100x at full scale; the factor shrinks with n, so the
default-scale assertion is only on the ordering).
"""

from benchmarks.conftest import run_cached, write_artifact
from repro.analysis.figures import ascii_chart, series_over_k
from repro.analysis.paper import PAPER_K_GRID
from repro.analysis.report import (
    check_runtime_ordering,
    render_checks,
    speedup_summary,
)


def _panel(exp, experiment_cache, scale, artifact_dir):
    spec, records = run_cached(experiment_cache, exp, scale)
    series = series_over_k(
        records, "parallel_time", ("MRG", "EIM", "GON"), PAPER_K_GRID
    )
    # Default scale runs the grid once; tolerate one noisy k out of six.
    ordering = check_runtime_ordering(records, min_fast_fraction=5 / 6)
    ratios = speedup_summary(records)
    ratio_lines = [
        f"{algo} / MRG: "
        + ", ".join(f"k={k}: {v:.1f}x" for k, v in sorted(by_k.items()))
        for algo, by_k in sorted(ratios.items())
    ]
    chart = ascii_chart(
        series,
        title=f"{exp}: runtime (s) over k — {spec.dataset} "
              f"(n={spec.n}, scale={scale}), log y",
        xlabel="k",
    )
    write_artifact(
        artifact_dir, exp,
        chart + "\n\n" + "\n".join(ratio_lines) + "\n" + render_checks([ordering]),
    )
    return ordering, ratios


def test_figure2a_regeneration(experiment_cache, scale, artifact_dir):
    ordering, ratios = _panel("figure2a", experiment_cache, scale, artifact_dir)
    assert ordering.passed, ordering.detail
    # f2.mrg_100x (directional at reduced scale): MRG is at least 5x
    # faster than GON on average over the k grid.
    gon_ratios = list(ratios["GON"].values())
    assert sum(gon_ratios) / len(gon_ratios) > 5.0


def test_figure2b_regeneration(experiment_cache, scale, artifact_dir):
    ordering, _ = _panel("figure2b", experiment_cache, scale, artifact_dir)
    assert ordering.passed, ordering.detail


def test_figure2_mrg_representative(benchmark, scale):
    from repro.analysis.configs import experiment_config
    from repro.core.mrg import mrg
    from repro.data.registry import make_dataset

    spec = experiment_config("figure2a", scale=scale)
    space = make_dataset(spec.dataset, spec.n, seed=0, **spec.dataset_params).space()
    benchmark.pedantic(
        lambda: mrg(space, 50, m=50, seed=0, evaluate=False), rounds=2, iterations=1
    )
