"""Table 6 — EIM solution value over phi, GAU (paper: n = 2*10^5, k' = 25).

The phi trade-off (Section 8.3): lowering phi below the theoretical
threshold keeps solutions acceptable and sometimes improves them (fewer
perimeter points sampled).  We regenerate the 6x4 grid and compare with
the published values; the hard assertion is only that every phi produces
a valid clustering within a sane factor of phi=8's quality.
"""

from benchmarks.conftest import run_cached, write_artifact
from repro.analysis.paper import TABLE6
from repro.analysis.tables import phi_table, side_by_side
from repro.utils.tables import format_table


def test_table6_regeneration(experiment_cache, scale, artifact_dir):
    spec, records = run_cached(experiment_cache, "table6", scale)
    headers, rows = phi_table(records, "radius")
    cmp_headers, cmp_rows = side_by_side(rows, TABLE6, label_measured="meas")
    text = "\n\n".join(
        [
            format_table(headers, rows,
                         title=f"table6: EIM solution value over phi — GAU "
                               f"(measured at n={spec.n}, scale={scale})"),
            format_table(cmp_headers, cmp_rows,
                         title="table6: measured vs paper (phi = 1, 4, 6, 8)"),
        ]
    )
    write_artifact(artifact_dir, "table6", text)

    # Shape: at every k, no phi's quality is catastrophically worse than
    # phi=8's (the paper's point is that low phi remains acceptable).
    for row in rows:
        base = row[4]  # phi = 8 column
        for value in row[1:4]:
            assert value <= 3.0 * base, f"phi grid blew up at k={row[0]}"


def test_table6_eim_phi1_representative(benchmark, scale):
    from repro.analysis.configs import experiment_config
    from repro.core.eim import eim
    from repro.data.registry import make_dataset

    spec = experiment_config("table6", scale=scale)
    space = make_dataset(spec.dataset, spec.n, seed=0, **spec.dataset_params).space()
    benchmark.pedantic(
        lambda: eim(space, 25, m=50, seed=0, phi=1.0, evaluate=False),
        rounds=1,
        iterations=1,
    )
