"""Figure 3 — runtime over k for GAU with k'=50: (a) large n; (b) n=50,000.

Panel (b) is the fallback exhibit: "When k becomes too large, relative to
n, EIM no longer performs sampling and defaults to the sequential
algorithm."  We assert that the fallback actually happens at the large-k
end of panel (b) and that wherever EIM falls back its runtime tracks
GON's.
"""

from benchmarks.conftest import run_cached, write_artifact
from repro.analysis.experiments import aggregate
from repro.analysis.figures import ascii_chart, series_over_k
from repro.analysis.paper import PAPER_K_GRID
from repro.analysis.report import fallback_ks


def _panel(exp, experiment_cache, scale, artifact_dir):
    spec, records = run_cached(experiment_cache, exp, scale)
    series = series_over_k(
        records, "parallel_time", ("MRG", "EIM", "GON"), PAPER_K_GRID
    )
    fell_back = fallback_ks(records)
    chart = ascii_chart(
        series,
        title=f"{exp}: runtime (s) over k — GAU k'={spec.dataset_params['k_prime']} "
              f"(n={spec.n}, scale={scale}), log y",
        xlabel="k",
    )
    note = f"EIM fell back to sequential GON at k in {fell_back}" if fell_back else \
        "EIM sampled at every k"
    write_artifact(artifact_dir, exp, chart + "\n\n" + note)
    return records, fell_back


def test_figure3a_regeneration(experiment_cache, scale, artifact_dir):
    _panel("figure3a", experiment_cache, scale, artifact_dir)


def test_figure3b_fallback_regime(experiment_cache, scale, artifact_dir):
    records, fell_back = _panel("figure3b", experiment_cache, scale, artifact_dir)
    # f3.fallback: at n = 50,000 the largest k values must trip the
    # while-condition (threshold > n) and degenerate to GON.
    assert 100 in fell_back, f"expected fallback at k=100, got {fell_back}"

    # Where EIM == GON (fallback), runtimes are within a small factor.
    times = aggregate(records, value="parallel_time", by=("algorithm", "k"))
    for k in fell_back:
        ratio = times[("EIM", k)] / times[("GON", k)]
        assert 1 / 3 < ratio < 3, f"fallback EIM should track GON at k={k}"
