"""Table 2 — solution value over k, GAU (paper: n = 10^6, k' = 25).

Workload: balanced Gaussian clusters; EIM is expected to edge out MRG/GON
around k = k' (sampling avoids perimeter points), and MRG to be fastest.
"""

from benchmarks._solution_table import representative_run, solution_table_bench


def test_table2_regeneration(experiment_cache, scale, artifact_dir):
    solution_table_bench("table2", experiment_cache, scale, artifact_dir)


def test_table2_mrg_representative(benchmark, scale):
    benchmark.pedantic(representative_run("table2", scale), rounds=2, iterations=1)
