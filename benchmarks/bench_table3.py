"""Table 3 — solution value over k, UNIF (paper: n = 10^5).

Workload: no inherent cluster structure (uniform square); all three
algorithms should land within a few percent of each other at every k.
"""

from benchmarks._solution_table import representative_run, solution_table_bench


def test_table3_regeneration(experiment_cache, scale, artifact_dir):
    solution_table_bench("table3", experiment_cache, scale, artifact_dir)


def test_table3_mrg_representative(benchmark, scale):
    benchmark.pedantic(representative_run("table3", scale), rounds=2, iterations=1)
