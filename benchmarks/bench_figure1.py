"""Figure 1 — solution value over k on KDD CUP 1999 (log-scale y).

The one real data set where EIM performs poorly (Section 8.1): heavy-
tailed byte counts mean the objective is driven by a handful of extreme
rows, and a uniform sample is likely to miss them.  We regenerate the
three curves, render the log-scale ASCII chart, and assert the two shape
claims: values span decades and decrease in k.
"""

from benchmarks.conftest import run_cached, write_artifact
from repro.analysis.figures import ascii_chart, series_over_k
from repro.analysis.paper import PAPER_K_GRID


def test_figure1_regeneration(experiment_cache, scale, artifact_dir):
    spec, records = run_cached(experiment_cache, "figure1", scale)
    series = series_over_k(records, "radius", ("MRG", "EIM", "GON"), PAPER_K_GRID)
    chart = ascii_chart(
        series,
        title=f"figure1: solution value over k — KDD-CUP-like "
              f"(n={spec.n}, scale={scale}), log y",
        xlabel="k",
    )
    write_artifact(artifact_dir, "figure1", chart)

    for s in series:
        # f1.decreasing: values fall by orders of magnitude across the grid.
        assert s.y[0] > 10 * s.y[-1], f"{s.label} curve too flat"
        # log-scale claim: the y range spans several decades overall.
    values = [y for s in series for y in s.y]
    assert max(values) / min(values) > 1e2


def test_figure1_gon_representative(benchmark, scale):
    from repro.analysis.configs import experiment_config
    from repro.core.gonzalez import gonzalez
    from repro.data.registry import make_dataset

    spec = experiment_config("figure1", scale=scale)
    space = make_dataset(spec.dataset, spec.n, seed=0).space()
    benchmark.pedantic(lambda: gonzalez(space, 25, seed=0), rounds=2, iterations=1)
