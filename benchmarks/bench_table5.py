"""Table 5 — solution value over k, POKER HAND (n = 25,010, 10-D integers).

The one experiment we run at the paper's exact size at every scale (the
UCI training set is small).  Integer card encodings make ties common, so
per-k winners are noisier than on the synthetic families — the shape check
allows near-ties, as the paper's own margins here are ~2%.
"""

from benchmarks._solution_table import representative_run, solution_table_bench


def test_table5_regeneration(experiment_cache, scale, artifact_dir):
    solution_table_bench("table5", experiment_cache, scale, artifact_dir)


def test_table5_mrg_representative(benchmark, scale):
    benchmark.pedantic(representative_run("table5", scale), rounds=2, iterations=1)
