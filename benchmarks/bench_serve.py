"""Serving-layer load bench — latency/throughput trajectory of repro.serve.

Boots a real :class:`~repro.serve.server.ServerHandle` (TCP, thread-pool
backend, distance cache on) and drives it the way the ISSUE frames the
workload: **thousands of small concurrent solve requests plus a few large
ones**, from concurrent client threads.  Writes ``BENCH_6.json`` at the
repo root: request counts, wall time, throughput, p50/p99 latency per
phase, plus the server's own accounting counters.

Contracts asserted (CI-enforced):

* **zero dropped-but-unreported requests** — every request the clients
  sent got exactly one response, and the server's counters balance:
  ``received == answered + rejected + failed + abandoned`` with nothing
  failed or silently lost;
* **coalescing works** — the small-burst phase coalesces requests into
  multi-run batches and the repeated space scores
  :class:`~repro.store.cache.DistanceCache` hits;
* **large solves stay bit-exact** — the big requests exceed the cache's
  ``max_points``, so their served results must equal the direct
  in-process ``repro.solve()`` bits.

Sizes are capped by ``REPRO_BENCH_MAX_N`` for the CI smoke.
"""

from __future__ import annotations

import json
import os
import platform
import threading
import time
from pathlib import Path

import numpy as np

import repro
from repro.serve import ServeConfig, ServerHandle

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_6.json"

N_SMALL = 256  # points per small request's space (cacheable)
N_LARGE = 20_000  # points per large request (beyond the cache cap)
K_SMALL = 8
K_LARGE = 25
N_REQUESTS = 2_000  # small solves in the burst
N_LARGE_REQUESTS = 3
WORKERS = 8  # concurrent client threads

_cap = int(os.environ.get("REPRO_BENCH_MAX_N", "0"))
if _cap:
    N_SMALL = min(N_SMALL, max(64, _cap))
    N_LARGE = min(N_LARGE, _cap)
    N_REQUESTS = min(N_REQUESTS, max(64, _cap // 10))


def _percentiles(latencies_ms: list[float]) -> dict:
    arr = np.asarray(latencies_ms)
    return {
        "p50_ms": float(np.percentile(arr, 50)),
        "p99_ms": float(np.percentile(arr, 99)),
        "max_ms": float(arr.max()),
        "mean_ms": float(arr.mean()),
    }


def test_serve_load(artifact_dir):
    rng = np.random.default_rng(2016)
    small_rows = rng.normal(size=(N_SMALL, 3))
    large_rows = rng.normal(size=(N_LARGE, 3))

    config = ServeConfig(
        backend="thread",
        pool_size=4,
        max_queue=4 * N_REQUESTS,  # the burst must never be load-shed here
        max_inflight=4,
        max_points=max(N_LARGE, N_SMALL),
        batch_window=0.002,
        cache_points=N_SMALL,  # small spaces cached, large ones bit-exact
    )

    records: list[dict] = []
    with ServerHandle(config) as handle:
        # ------------------------------------------------------------ #
        # phase 1: the small burst — N_REQUESTS solves over one hot
        # space from WORKERS concurrent clients, coalescing on.
        # ------------------------------------------------------------ #
        latencies_ms: list[float] = []
        responses: list[dict] = []
        failures: list[BaseException] = []
        lock = threading.Lock()
        counter = iter(range(N_REQUESTS))

        def small_worker() -> None:
            try:
                with handle.client() as client:
                    while True:
                        with lock:
                            i = next(counter, None)
                        if i is None:
                            return
                        t0 = time.perf_counter()
                        resp = client.solve(
                            "gon",
                            K_SMALL,
                            points=small_rows,
                            seed=i % 17,
                            raise_on_error=False,
                        )
                        ms = (time.perf_counter() - t0) * 1e3
                        with lock:
                            latencies_ms.append(ms)
                            responses.append(resp)
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                with lock:
                    failures.append(exc)

        t0 = time.perf_counter()
        threads = [threading.Thread(target=small_worker) for _ in range(WORKERS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        small_wall = time.perf_counter() - t0

        assert not failures, failures[:1]
        # Zero dropped-but-unreported: every request has a response.
        assert len(responses) == N_REQUESTS
        assert all(r.get("ok") for r in responses), next(
            r for r in responses if not r.get("ok")
        )
        records.append(
            {
                "phase": "small-burst",
                "algo": "gon",
                "n": N_SMALL,
                "k": K_SMALL,
                "requests": N_REQUESTS,
                "workers": WORKERS,
                "wall_s": small_wall,
                "throughput_rps": N_REQUESTS / small_wall,
                **_percentiles(latencies_ms),
            }
        )

        # ------------------------------------------------------------ #
        # phase 2: a few large solves — above the cache cap, so the
        # parity contract applies bit-for-bit.
        # ------------------------------------------------------------ #
        large_latencies: list[float] = []
        with handle.client() as client:
            for i in range(N_LARGE_REQUESTS):
                t0 = time.perf_counter()
                resp = client.solve(
                    "mrg",
                    K_LARGE,
                    points=large_rows,
                    seed=i,
                    options={"m": 8},
                )
                large_latencies.append((time.perf_counter() - t0) * 1e3)
                direct = repro.solve(large_rows, K_LARGE, "mrg", seed=i, m=8)
                assert resp["result"]["centers"] == [
                    int(c) for c in direct.centers
                ], f"large solve {i} diverged from the direct bits"
                assert resp["result"]["radius"] == direct.radius
                assert resp["result"]["dist_evals"] == direct.stats.dist_evals
            stats = client.stats()
        records.append(
            {
                "phase": "large-solves",
                "algo": "mrg",
                "n": N_LARGE,
                "k": K_LARGE,
                "requests": N_LARGE_REQUESTS,
                "workers": 1,
                "wall_s": sum(large_latencies) / 1e3,
                "throughput_rps": N_LARGE_REQUESTS
                / (sum(large_latencies) / 1e3),
                **_percentiles(large_latencies),
            }
        )

    # ---------------------------------------------------------------- #
    # the server's books must balance: nothing dropped unreported
    # ---------------------------------------------------------------- #
    total = N_REQUESTS + N_LARGE_REQUESTS
    assert stats["received"] == total
    assert stats["answered"] == total
    assert stats["failed"] == 0
    assert stats["rejected"] == 0
    assert stats["abandoned"] == 0
    assert (
        stats["received"]
        == stats["answered"]
        + stats["rejected"]
        + stats["failed"]
        + stats["abandoned"]
    )
    # Coalescing + cache: the burst shares batches and the hot space's
    # distance matrix (one miss, hits ever after).
    assert stats["batches"] < total, "no coalescing happened at all"
    assert stats["coalesced_requests"] > 0
    assert stats["cache"]["hits"] > 0
    assert stats["cache"]["misses"] >= 1

    payload = {
        "bench": 6,
        "schema": "repro-serve-v1",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpus": os.cpu_count(),
        "cap": _cap or None,
        "config": {
            "backend": config.backend,
            "pool_size": config.pool_size,
            "max_inflight": config.max_inflight,
            "batch_window": config.batch_window,
            "cache_points": config.cache_points,
        },
        "records": records,
        "server_stats": stats,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n[serve trajectory: {BENCH_PATH} — {len(records)} phases]")

    from benchmarks.conftest import write_artifact
    from repro.utils.tables import format_table

    rows = [
        [
            r["phase"],
            r["requests"],
            r["workers"],
            r["wall_s"],
            r["throughput_rps"],
            r["p50_ms"],
            r["p99_ms"],
        ]
        for r in records
    ]
    write_artifact(
        artifact_dir,
        "serve",
        format_table(
            ["phase", "requests", "workers", "wall (s)", "req/s", "p50 (ms)",
             "p99 (ms)"],
            rows,
            title="serving-layer load bench (BENCH_6)",
        ),
    )
