"""Streaming bench — one-pass doubling (STREAM) vs the GON baseline.

The paper scales k-center by *sharding* (MRG, EIM); the classic
alternative is a bounded-memory *sequential pass*.  This bench puts the
two sequential contenders side by side across instance sizes: solution
quality relative to GON and to the certified OPT lower bound, wall time
of the pass, and the doubling count (how many times the threshold had to
grow).  Shape claims asserted:

* STREAM's certified guarantee holds: ``radius <= 8 * 2 * lb`` where
  ``lb`` is the greedy lower bound (``OPT >= lb``);
* the internal certificate brackets the truth:
  ``threshold < radius <= radius_bound``;
* quality stays within a small constant of GON (both are
  constant-factor schemes; empirically the gap is far below the 8/2
  ratio of the a-priori bounds).
"""

import os

from benchmarks.conftest import write_artifact
from repro.core.bounds import greedy_lower_bound
from repro.core.gonzalez import gonzalez
from repro.core.streaming import stream_kcenter
from repro.data.registry import make_dataset
from repro.utils.tables import format_table

K = 10
SIZES = (5_000, 20_000, 50_000)

# REPRO_BENCH_MAX_N caps instance sizes so the CI bench-smoke job can run
# the full bench logic (table, shape assertions) in seconds.
_cap = int(os.environ.get("REPRO_BENCH_MAX_N", "0"))
if _cap:
    SIZES = tuple(n for n in SIZES if n <= _cap) or (_cap,)


def test_stream_vs_gon(artifact_dir):
    rows = []
    for n in SIZES:
        space = make_dataset("gau", n, seed=3, k_prime=10).space()
        lb = greedy_lower_bound(space, K)
        g = gonzalez(space, K, seed=0)
        s = stream_kcenter(space, K, seed=0)
        rows.append(
            [
                n,
                g.radius,
                s.radius,
                s.radius / g.radius,
                g.wall_time,
                s.wall_time,
                s.extra["doublings"],
            ]
        )
        # Certified 8-approximation: OPT >= lb, so radius <= 8 * OPT is
        # witnessed by radius <= 8 * 2 * lb (GON's bound certifies
        # OPT >= lb via r_k / 2).
        assert s.radius <= 8.0 * 2.0 * lb + 1e-9
        # The one-pass certificate brackets the measured radius.
        assert s.extra["threshold"] <= s.radius + 1e-9
        assert s.radius <= s.extra["radius_bound"] + 1e-9
        assert s.n_centers <= K
        # Empirical quality: nowhere near the worst-case factor gap.
        assert s.radius <= 4.0 * g.radius

    text = format_table(
        ["n", "GON radius", "STREAM radius", "STREAM/GON", "GON (s)",
         "STREAM (s)", "doublings"],
        rows,
        title=f"streaming doubling vs GON over n (k={K}, GAU)",
    )
    write_artifact(artifact_dir, "streaming", text)


def test_stream_representative(benchmark):
    space = make_dataset("gau", SIZES[-1], seed=3, k_prime=10).space()
    benchmark.pedantic(
        lambda: stream_kcenter(space, K, seed=0, evaluate=False),
        rounds=1,
        iterations=1,
    )
