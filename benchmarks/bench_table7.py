"""Table 7 — EIM runtime over phi, GAU (paper: n = 2*10^5, k' = 25).

The runtime side of the phi trade-off: phi below the threshold removes
more of R per iteration, so runs finish in fewer iterations.  The paper's
rows show phi=1 up to ~5x faster than phi=8; we assert the *direction*
(phi=1 at most as slow as phi=8 for most k).
"""

from benchmarks.conftest import run_cached, write_artifact
from repro.analysis.paper import TABLE7
from repro.analysis.report import check_phi_runtime_direction, render_checks
from repro.analysis.tables import phi_table, side_by_side
from repro.utils.tables import format_table


def test_table7_regeneration(experiment_cache, scale, artifact_dir):
    spec, records = run_cached(experiment_cache, "table6", scale)  # same grid
    headers, rows = phi_table(records, "parallel_time")
    cmp_headers, cmp_rows = side_by_side(rows, TABLE7, label_measured="meas")
    check = check_phi_runtime_direction(records)
    text = "\n\n".join(
        [
            format_table(headers, rows,
                         title=f"table7: EIM runtime (s) over phi — GAU "
                               f"(measured at n={spec.n}, scale={scale})"),
            format_table(cmp_headers, cmp_rows,
                         title="table7: measured vs paper "
                               "(paper numbers are the authors' C code)"),
            render_checks([check]),
        ]
    )
    write_artifact(artifact_dir, "table7", text)
    assert check.passed, check.detail


def test_table7_eim_phi8_representative(benchmark, scale):
    from repro.analysis.configs import experiment_config
    from repro.core.eim import eim
    from repro.data.registry import make_dataset

    spec = experiment_config("table7", scale=scale)
    space = make_dataset(spec.dataset, spec.n, seed=0, **spec.dataset_params).space()
    benchmark.pedantic(
        lambda: eim(space, 25, m=50, seed=0, phi=8.0, evaluate=False),
        rounds=1,
        iterations=1,
    )
