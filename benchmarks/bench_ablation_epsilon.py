"""Ablation A4 — EIM's epsilon (paper: "Ene et al.'s choice of eps = 0.1
was good").

epsilon controls the loop threshold (4/eps) k n^eps log n and the
per-iteration shrink factor: larger eps means bigger samples and fewer
iterations but a larger final candidate set.  We sweep eps and record
iterations, candidate size, runtime and quality.
"""

from benchmarks.conftest import write_artifact
from repro.core.eim import eim
from repro.data.registry import make_dataset
from repro.utils.tables import format_table


def test_epsilon_sweep(artifact_dir):
    n, k = 60_000, 5
    space = make_dataset("gau", n, seed=0, k_prime=10).space()

    rows = []
    results = {}
    for eps in (0.05, 0.1, 0.2, 0.3):
        res = eim(space, k, m=20, seed=0, eps=eps)
        results[eps] = res
        rows.append(
            [
                eps,
                res.extra["iterations"],
                res.extra["candidate_size"],
                res.stats.parallel_time,
                res.radius,
            ]
        )
    text = format_table(
        ["eps", "iterations", "|C|", "runtime (s)", "radius"],
        rows,
        title=f"A4: EIM epsilon sweep (GAU n={n}, k={k}, phi=8)",
    )
    write_artifact(artifact_dir, "ablation_epsilon", text)

    # Larger eps -> weakly fewer iterations (bigger per-iteration removal).
    iters = [row[1] for row in rows]
    assert iters[-1] <= iters[0]

    # Quality stays comparable across the sweep (all are 10-approx w.s.p.).
    radii = [row[4] for row in rows]
    assert max(radii) <= 3.0 * min(radii)


def test_eps_point1_representative(benchmark):
    space = make_dataset("gau", 60_000, seed=0, k_prime=10).space()
    benchmark.pedantic(
        lambda: eim(space, 5, m=20, seed=0, eps=0.1, evaluate=False),
        rounds=1,
        iterations=1,
    )
