"""Out-of-core bench — memmap-chunked STREAM vs the in-memory path.

The store layer's pitch is "same bits, bounded memory": a solve over a
memory-mapped ``.npy`` must reproduce the in-memory run exactly while
holding only O(chunk + k) state.  This bench measures what that costs and
saves at a fixed ``n``: wall time of the full solve (pass + evaluation)
and the peak *traced* allocation (``tracemalloc``, which tracks NumPy
buffers — the within-process stand-in for peak RSS, unpolluted by
interpreter baseline) for three backings of the same dataset:

* ``in-memory`` — ``EuclideanSpace`` over the loaded array (baseline);
* ``memmap`` — ``ChunkedMetricSpace`` over ``MemmapStream``;
* ``generator`` — ``ChunkedMetricSpace`` over the ``GeneratorStream``
  that defined the dataset (no file at all, chunks regenerated on read);
* ``sharded`` — ``ChunkedMetricSpace`` over a ``ShardedStream``
  (directory-of-``.npy`` chunk groups, the MapReduce input layout;
  sharding is layout, not identity, so the bits must not move).

Shape claims asserted:

* all three backings return **bit-identical** centers, radius and
  distance-eval counts;
* both chunked backings peak far below the in-memory path's full
  ``(n, d)`` footprint.

``REPRO_BENCH_MAX_N`` caps the instance size (CI smoke).
"""

import os
import tracemalloc

import numpy as np

from benchmarks.conftest import write_artifact
from repro.core.streaming import stream_kcenter
from repro.metric.euclidean import EuclideanSpace
from repro.store import ChunkedMetricSpace, GeneratorStream, MemmapStream, write_shards

K = 10
N = 200_000
DIM = 3

_cap = int(os.environ.get("REPRO_BENCH_MAX_N", "0"))
if _cap:
    N = min(N, _cap)

#: Chunk (and generation-block) rows scale with the instance so the
#: capped CI smoke still exercises multi-chunk streaming.
CHUNK = max(256, min(8_192, N // 8))


def _measure(make_space):
    """(result, dist_evals, seconds, peak_traced_bytes) of one solve."""
    tracemalloc.start()
    space = make_space()
    result = stream_kcenter(space, K, seed=0)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, space.counter.evals, result.wall_time + result.eval_time, peak


def test_outofcore_vs_inmemory(artifact_dir, tmp_path_factory):
    tmp = tmp_path_factory.mktemp("outofcore")
    gen = GeneratorStream(
        "gau", N, seed=3, chunk_size=CHUNK, gen_block=CHUNK, k_prime=10
    )
    path = gen.to_npy(tmp / "gau.npy")
    sharded = write_shards(gen, tmp / "shards", shards=4)
    full_bytes = N * DIM * 8

    runs = {
        "in-memory": lambda: EuclideanSpace(np.load(path)),
        "memmap": lambda: ChunkedMetricSpace(MemmapStream(path, chunk_size=CHUNK)),
        "generator": lambda: ChunkedMetricSpace(gen),
        "sharded": lambda: ChunkedMetricSpace(sharded),
    }
    rows, results, peaks = [], {}, {}
    for name, make_space in runs.items():
        result, evals, seconds, peak = _measure(make_space)
        results[name] = (result, evals)
        peaks[name] = peak
        rows.append([name, result.radius, evals, seconds, peak / 2**20])

    base_result, base_evals = results["in-memory"]
    assert peaks["in-memory"] > full_bytes  # baseline really held the array
    for name in ("memmap", "generator", "sharded"):
        result, evals = results[name]
        # Same bits as in-memory: centers, radius, operation counts.
        assert np.array_equal(result.centers, base_result.centers), name
        assert result.radius == base_result.radius, name
        assert evals == base_evals, name
        # Bounded memory: the chunked backing drops the (n, d) resident
        # array; what remains are chunks and the 1-D per-point arrays.
        # Only meaningful once the array dwarfs constant overheads, so
        # the capped CI smoke skips this one claim (it still checks
        # bit-parity above).
        if full_bytes >= 2**22:
            assert peaks[name] < 0.8 * peaks["in-memory"], name

    text = format_rows(rows)
    write_artifact(artifact_dir, "outofcore", text)


def format_rows(rows):
    from repro.utils.tables import format_table

    return format_table(
        ["backing", "radius", "dist evals", "solve (s)", "peak alloc (MiB)"],
        rows,
        title=f"out-of-core STREAM vs in-memory (n={N}, d={DIM}, k={K}, "
              f"chunk={CHUNK}, GAU)",
    )


def test_memmap_representative(benchmark, tmp_path_factory):
    tmp = tmp_path_factory.mktemp("outofcore-rep")
    path = GeneratorStream(
        "gau", N, seed=3, chunk_size=CHUNK, gen_block=CHUNK, k_prime=10
    ).to_npy(tmp / "gau.npy")
    benchmark.pedantic(
        lambda: stream_kcenter(
            ChunkedMetricSpace(MemmapStream(path, chunk_size=CHUNK)),
            K,
            seed=0,
            evaluate=False,
        ),
        rounds=1,
        iterations=1,
    )
