"""Shared driver for the solution-value table benches (Tables 2-5).

Each bench module calls :func:`solution_table_bench` with its experiment
id; the driver regenerates the table, writes the artifact with the
side-by-side paper comparison, and asserts the shape checks.
"""

from __future__ import annotations

from pathlib import Path

from benchmarks.conftest import run_cached, write_artifact
from repro.analysis.paper import SOLUTION_TABLES
from repro.analysis.report import (
    check_runtime_ordering,
    check_winner_agreement,
    render_checks,
    speedup_summary,
)
from repro.analysis.tables import runtime_table, side_by_side, solution_value_table
from repro.utils.tables import format_table

__all__ = ["solution_table_bench", "representative_run"]


def solution_table_bench(
    exp: str,
    cache: dict,
    scale: str,
    artifact_dir: Path,
    require_ordering: bool = True,
) -> None:
    """Regenerate one of Tables 2-5 and check it against the paper."""
    spec, records = run_cached(cache, exp, scale)
    desc, paper = SOLUTION_TABLES[exp]

    headers, rows = solution_value_table(records)
    t_headers, t_rows = runtime_table(records)
    cmp_headers, cmp_rows = side_by_side(rows, paper)

    checks = [check_winner_agreement(rows, paper)]
    # Default scale runs the grid once; tolerate one noisy k out of six.
    ordering = check_runtime_ordering(records, min_fast_fraction=5 / 6)
    checks.append(ordering)

    ratios = speedup_summary(records)
    ratio_lines = [
        f"{algo} / MRG runtime: "
        + ", ".join(f"k={k}: {v:.1f}x" for k, v in sorted(by_k.items()))
        for algo, by_k in sorted(ratios.items())
    ]

    text = "\n\n".join(
        [
            format_table(headers, rows,
                         title=f"{exp}: solution value over k — {desc} "
                               f"(measured at n={spec.n}, scale={scale})"),
            format_table(cmp_headers, cmp_rows,
                         title=f"{exp}: measured vs paper (MRG, EIM, GON)"),
            format_table(t_headers, t_rows,
                         title=f"{exp}: simulated parallel runtime (s)"),
            "\n".join(ratio_lines),
            render_checks(checks),
        ]
    )
    write_artifact(artifact_dir, exp, text)

    assert checks[0].passed, checks[0].detail
    if require_ordering:
        assert ordering.passed, ordering.detail


def representative_run(exp: str, scale: str, k: int = 25):
    """A single MRG execution on the experiment's workload — the quantity
    pytest-benchmark times (the full grid is run once via run_cached)."""
    from repro.analysis.configs import experiment_config
    from repro.core.mrg import mrg
    from repro.data.registry import make_dataset

    spec = experiment_config(exp, scale=scale)
    dataset = make_dataset(spec.dataset, spec.n, seed=0, **spec.dataset_params)
    space = dataset.space()

    def run():
        return mrg(space, k, m=50, seed=0, evaluate=False).stats.parallel_time

    return run
