"""Ablation A1 — MRG beyond two rounds (the paper's open question).

"And what is the effectiveness when MRG needs more than two rounds?"
(future work, Section 9).  The multi-round regime requires
``k*m > c >= n/m`` — i.e. many machines relative to the data
(``n < k*m^2``).  We pin n = 20,000 on m = 100 machines and shrink
capacity / grow k to force 2-, 3- and 4-round schedules, measuring how
quality degrades relative to the 2(i+1) guarantee and the certified
lower bound.
"""

from benchmarks.conftest import write_artifact
from repro.core.bounds import greedy_lower_bound
from repro.core.mrg import mrg
from repro.data.registry import make_dataset
from repro.utils.tables import format_table

N, M = 20_000, 100


def _space():
    return make_dataset("gau", N, seed=0, k_prime=10).space()


def test_quality_across_round_counts(artifact_dir):
    space = _space()
    # (k, capacity) pairs stepping through deeper schedules:
    #   k=10, auto   -> c = k*m = 1000, two rounds
    #   k=10, c=200  -> k*m = 1000 > 200: one extra reduction round
    #   k=24, c=200  -> k*m = 2400; 2400 -> 288 -> 48: four rounds
    #   k=40, c=200  -> k*m = 4000; 4000 -> 800 -> 160: four rounds
    cases = [(10, None), (10, 200), (24, 200), (40, 200)]

    rows = []
    for k, capacity in cases:
        lb = greedy_lower_bound(space, k)
        res = mrg(space, k, m=M, capacity=capacity, seed=0)
        rows.append(
            [
                k,
                "auto" if capacity is None else capacity,
                res.extra["total_rounds"],
                res.approx_factor,
                res.radius,
                res.radius / lb if lb > 0 else float("nan"),
            ]
        )
        # The 2(i+1) guarantee, certified: radius <= factor * 2 * lb.
        assert res.radius <= res.approx_factor * 2.0 * lb + 1e-9

    text = format_table(
        ["k", "capacity", "rounds", "guarantee 2(i+1)", "radius", "radius / OPT-lb"],
        rows,
        title=f"A1: MRG quality vs forced round count (GAU n={N}, m={M})",
    )
    write_artifact(artifact_dir, "ablation_rounds", text)

    # The regime actually deepened.
    assert rows[0][2] == 2
    assert rows[1][2] == 3
    assert max(row[2] for row in rows) >= 4

    # Empirical answer to the open question: at k=10, the 3-round schedule
    # costs far less quality than its loosened guarantee suggests.
    two_round, three_round = rows[0][4], rows[1][4]
    assert three_round <= 4.0 * two_round


def test_multi_round_representative(benchmark):
    space = _space()
    benchmark.pedantic(
        lambda: mrg(space, 24, m=M, capacity=200, seed=0, evaluate=False),
        rounds=2,
        iterations=1,
    )
