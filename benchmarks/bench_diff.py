"""Diff two ``BENCH_*.json`` perf trajectories, cell by cell.

The perf harness (:mod:`benchmarks.bench_perf`) writes one record per
(workload, backing, executor, n, k, m) cell.  This tool compares the
cells two trajectory files share and enforces the repo's regression
gates:

* ``dist_evals`` and ``radius`` are **identity** gates — the execution
  engine's bit-parity contract says the same workload does exactly the
  same distance work and returns exactly the same answer, faults or no
  faults, whatever the backend.
* ``peak_rss_kb`` is a **ratio** gate (default tolerance 2.0x): memory
  may wobble with allocator luck, but a doubling is a leak.
* ``wall_s`` is **report-only** by default — CI machines are too noisy
  to gate on wall-clock; pass ``--wall-tol`` to opt into a ratio gate
  on a quiet box.

Records without the cell-key fields (e.g. the serve trajectory's phase
records, ``repro-serve-v1``) are not comparable; if the two files share
no cells the diff passes vacuously with a note, so trajectories with
different schemas can sit in one artifact store without tripping CI.

Usage::

    python benchmarks/bench_diff.py OLD.json NEW.json [--rss-tol 2.0]
                                                      [--wall-tol 1.5]
                                                      [--skip FIELD ...]

``--skip FIELD`` (repeatable) drops one gate entirely — the PR-over-PR
CI diff against ``benchmarks/baseline/BENCH_ref.json`` skips ``radius``
(float bits legitimately differ across BLAS builds) while keeping the
portable ``dist_evals`` identity gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Fields identifying a comparable cell, in display order.
KEY_FIELDS = ("workload", "backing", "executor", "n", "k", "m")

#: Exit codes: 0 pass (or vacuous), 1 gate failure, 2 usage error.
PASS, FAIL, USAGE = 0, 1, 2


def load_records(path: Path) -> dict[tuple, dict]:
    """Map cell key -> record for every comparable record in ``path``."""
    payload = json.loads(path.read_text())
    cells: dict[tuple, dict] = {}
    for record in payload.get("records", []):
        if not all(field in record for field in KEY_FIELDS):
            continue  # different schema (serve phases, future benches)
        key = tuple(record[field] for field in KEY_FIELDS)
        if key in cells:
            raise ValueError(f"{path}: duplicate cell {key}")
        cells[key] = record
    return cells


def fmt_key(key: tuple) -> str:
    return "/".join(str(part) for part in key)


def diff_cells(
    old: dict[tuple, dict],
    new: dict[tuple, dict],
    rss_tol: float = 2.0,
    wall_tol: float | None = None,
    skip: tuple[str, ...] = (),
) -> tuple[list[str], list[str]]:
    """Compare shared cells; return (report lines, gate failures).

    ``skip`` names gate fields to ignore entirely — e.g. ``("radius",)``
    when diffing trajectories produced on different BLAS builds, where
    float reductions legitimately differ in the last bits.
    """
    lines: list[str] = []
    failures: list[str] = []
    shared = sorted(set(old) & set(new))
    for key in shared:
        a, b = old[key], new[key]
        cell = fmt_key(key)
        if "dist_evals" not in skip and a.get("dist_evals") != b.get("dist_evals"):
            failures.append(
                f"{cell}: dist_evals {a.get('dist_evals')} -> "
                f"{b.get('dist_evals')} (identity gate)"
            )
        if "radius" not in skip and a.get("radius") != b.get("radius"):
            failures.append(
                f"{cell}: radius {a.get('radius')!r} -> "
                f"{b.get('radius')!r} (identity gate)"
            )
        rss_a, rss_b = a.get("peak_rss_kb"), b.get("peak_rss_kb")
        if "peak_rss_kb" in skip:
            rss_a = rss_b = None
        if rss_a and rss_b:
            ratio = rss_b / rss_a
            if ratio > rss_tol:
                failures.append(
                    f"{cell}: peak_rss_kb {rss_a} -> {rss_b} "
                    f"({ratio:.2f}x > tolerance {rss_tol}x)"
                )
        wall_a, wall_b = a.get("wall_s"), b.get("wall_s")
        if "wall_s" in skip:
            wall_a = wall_b = None
        if wall_a and wall_b:
            speed = wall_b / wall_a
            note = f"{cell}: wall {wall_a:.3f}s -> {wall_b:.3f}s ({speed:.2f}x)"
            if wall_tol is not None and speed > wall_tol:
                failures.append(note + f" > tolerance {wall_tol}x")
            else:
                lines.append(note)
    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))
    for key in only_old:
        lines.append(f"{fmt_key(key)}: only in old trajectory")
    for key in only_new:
        lines.append(f"{fmt_key(key)}: only in new trajectory")
    if not shared:
        lines.append(
            "no comparable cells (different schemas?) — vacuous pass"
        )
    return lines, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_diff", description=__doc__.splitlines()[0]
    )
    parser.add_argument("old", type=Path, help="baseline BENCH_*.json")
    parser.add_argument("new", type=Path, help="candidate BENCH_*.json")
    parser.add_argument(
        "--rss-tol",
        type=float,
        default=2.0,
        help="max allowed new/old peak-RSS ratio (default 2.0)",
    )
    parser.add_argument(
        "--wall-tol",
        type=float,
        default=None,
        help="gate on new/old wall-clock ratio (default: report only)",
    )
    parser.add_argument(
        "--skip",
        action="append",
        default=[],
        choices=["dist_evals", "radius", "peak_rss_kb", "wall_s"],
        metavar="FIELD",
        help="ignore one gate field entirely, repeatable (e.g. --skip "
             "radius when the trajectories come from different BLAS "
             "builds)",
    )
    args = parser.parse_args(argv)
    for path in (args.old, args.new):
        if not path.is_file():
            print(f"bench_diff: no such file: {path}", file=sys.stderr)
            return USAGE
    try:
        old = load_records(args.old)
        new = load_records(args.new)
    except (ValueError, json.JSONDecodeError) as exc:
        print(f"bench_diff: {exc}", file=sys.stderr)
        return USAGE
    lines, failures = diff_cells(
        old, new, rss_tol=args.rss_tol, wall_tol=args.wall_tol,
        skip=tuple(args.skip),
    )
    for line in lines:
        print(line)
    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    verdict = "FAIL" if failures else "PASS"
    print(f"bench_diff: {verdict} ({len(set(old) & set(new))} shared cells, "
          f"{len(failures)} gate failure(s))")
    return FAIL if failures else PASS


if __name__ == "__main__":
    sys.exit(main())
