"""DistanceCache: shared matrices for repeated-space batches.

The contract under test (ISSUE acceptance): a repeated-space
``solve_many`` batch with a cache shows hits while producing **unchanged
records** — identical centers and distance-evaluation counts, radii equal
to kernel round-off (bit-equal for the block-kernel solvers).
"""

import numpy as np
import pytest

import repro
from repro.errors import InvalidParameterError
from repro.mapreduce.executor import ThreadPoolExecutorBackend
from repro.metric import EuclideanSpace, PrecomputedSpace
from repro.metric.base import DistCounter
from repro.store import DistanceCache


@pytest.fixture
def space():
    pts = np.random.default_rng(8).uniform(0.0, 100.0, size=(350, 3))
    return EuclideanSpace(pts)


class TestCacheMechanics:
    def test_hit_miss_accounting(self, space):
        cache = DistanceCache(max_points=512)
        m1 = cache.matrix_for(space)
        m2 = cache.matrix_for(space)
        assert m1 is m2
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.stats()["entries"] == 1

    def test_matrix_matches_space_distances(self, space):
        cache = DistanceCache(max_points=512)
        matrix = cache.matrix_for(space)
        idx = np.arange(25, dtype=np.intp)
        want = space.cross(idx, idx)
        got = matrix[np.ix_(idx, idx)]
        # atol covers the self-distance dust of the on-demand GEMM
        # expansion (the cache zeroes the diagonal exactly instead)
        np.testing.assert_allclose(want, got, atol=1e-5)
        assert np.all(np.diag(matrix) == 0.0)

    def test_space_for_wraps_and_counts(self, space):
        cache = DistanceCache(max_points=512)
        c1, c2 = DistCounter(), DistCounter()
        v1 = cache.space_for(space, c1)
        v2 = cache.space_for(space, c2)
        assert isinstance(v1, PrecomputedSpace) and isinstance(v2, PrecomputedSpace)
        assert (c1.cache_misses, c1.cache_hits) == (1, 0)
        assert (c2.cache_misses, c2.cache_hits) == (0, 1)

    def test_large_space_passes_through(self, space):
        cache = DistanceCache(max_points=100)
        assert not cache.cacheable(space)
        assert cache.space_for(space, DistCounter()) is space
        with pytest.raises(InvalidParameterError):
            cache.matrix_for(space)

    def test_eviction_cap(self):
        cache = DistanceCache(max_points=64, max_entries=2)
        spaces = [
            EuclideanSpace(np.random.default_rng(i).normal(size=(20, 2)))
            for i in range(3)
        ]
        for s in spaces:
            cache.matrix_for(s)
        assert cache.stats()["entries"] == 2
        cache.matrix_for(spaces[0])  # evicted -> rebuilt
        assert cache.misses == 4

    def test_construction_does_not_pollute_accounting(self, space):
        cache = DistanceCache(max_points=512)
        cache.matrix_for(space)
        assert space.counter.evals == 0

    def test_counter_reset_clears_cache_fields(self):
        c = DistCounter(evals=5, cache_hits=2, cache_misses=1)
        c.reset()
        assert (c.evals, c.cache_hits, c.cache_misses) == (0, 0, 0)

    def test_invalid_params(self):
        with pytest.raises(InvalidParameterError):
            DistanceCache(max_points=0)
        with pytest.raises(InvalidParameterError):
            DistanceCache(max_entries=0)


class TestSolveManyWithCache:
    ALGOS = ("stream", "gon", "hs")

    def test_repeated_space_batch_hits_with_unchanged_records(self, space):
        """ISSUE acceptance: >0 hits, records unchanged."""
        cache = DistanceCache(max_points=512)
        plain = repro.solve_many(space, 7, algorithms=self.ALGOS, seeds=(0, 1))
        cached = repro.solve_many(
            space, 7, algorithms=self.ALGOS, seeds=(0, 1), cache=cache
        )
        assert cache.hits > 0
        assert plain.keys() == cached.keys()
        for key in plain:
            assert np.array_equal(plain[key].centers, cached[key].centers), key
            # block-kernel distances are reused bit-for-bit; the fused
            # point kernel (gon's traversal) agrees to kernel round-off
            assert plain[key].radius == pytest.approx(
                cached[key].radius, rel=1e-9, abs=1e-9
            ), key
        # six runs, one matrix build
        assert (cache.hits, cache.misses) == (5, 1)

    def test_block_solver_records_bit_identical(self, space):
        cache = DistanceCache(max_points=512)
        plain = repro.solve_many(space, 7, algorithms=("stream",), seeds=(0, 1, 2))
        cached = repro.solve_many(
            space, 7, algorithms=("stream",), seeds=(0, 1, 2), cache=cache
        )
        for key in plain:
            assert np.array_equal(plain[key].centers, cached[key].centers)
            assert plain[key].radius == cached[key].radius
            assert plain[key].extra["threshold"] == cached[key].extra["threshold"]

    def test_cache_shared_across_batches(self, space):
        cache = DistanceCache(max_points=512)
        repro.solve_many(space, 5, algorithms=("stream",), seeds=(0,), cache=cache)
        repro.solve_many(space, 9, algorithms=("gon",), seeds=(1,), cache=cache)
        assert cache.misses == 1 and cache.hits == 1

    def test_thread_backend_counts_consistent(self, space):
        cache = DistanceCache(max_points=512)
        results = repro.solve_many(
            space,
            6,
            algorithms=("stream", "gon"),
            seeds=range(3),
            cache=cache,
            executor=ThreadPoolExecutorBackend(max_workers=4),
        )
        assert len(results) == 6
        assert cache.hits + cache.misses == 6
        assert cache.misses == 1

    def test_mapreduce_solver_unaffected_by_uncacheable_space(self, space):
        # mrg on a space above the cap: cache must be a transparent no-op
        cache = DistanceCache(max_points=10)
        plain = repro.solve_many(space, 5, algorithms=("mrg",), seeds=(0,), m=4)
        cached = repro.solve_many(
            space, 5, algorithms=("mrg",), seeds=(0,), m=4, cache=cache
        )
        key = next(iter(plain))
        assert np.array_equal(plain[key].centers, cached[key].centers)
        assert plain[key].radius == cached[key].radius
        assert plain[key].stats.dist_evals == cached[key].stats.dist_evals
        assert cache.hits == 0 and cache.misses == 0

    def test_pickles_for_process_pools(self, space):
        import pickle

        cache = DistanceCache(max_points=512)
        cache.matrix_for(space)
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.stats()["entries"] == 1
        assert clone.misses == 1


class TestContentKeys:
    def test_equal_spaces_share_one_matrix(self):
        """ISSUE regression: two separately-constructed equal spaces must
        hit the same entry (id-keying never hit across rebuilds)."""
        pts = np.random.default_rng(4).normal(size=(40, 3))
        cache = DistanceCache(max_points=128)
        m1 = cache.matrix_for(EuclideanSpace(pts))
        m2 = cache.matrix_for(EuclideanSpace(pts.copy()))
        assert m1 is m2
        assert (cache.hits, cache.misses) == (1, 1)

    def test_chunked_twin_shares_the_in_memory_entry(self):
        # Same bits, different residency: the out-of-core adapter must
        # reuse the matrix built for the in-memory space (its distances
        # are bit-identical by the store layer's parity contract).
        from repro.store import ArrayStream, ChunkedMetricSpace

        pts = np.random.default_rng(5).normal(size=(50, 2))
        cache = DistanceCache(max_points=128)
        cache.matrix_for(EuclideanSpace(pts))
        cache.matrix_for(ChunkedMetricSpace(ArrayStream(pts, chunk_size=7)))
        assert (cache.hits, cache.misses) == (1, 1)

    def test_different_content_never_collides(self):
        pts = np.random.default_rng(6).normal(size=(60, 2))
        cache = DistanceCache(max_points=128)
        cache.matrix_for(EuclideanSpace(pts[:30]))
        matrix = cache.matrix_for(EuclideanSpace(pts[30:]))
        assert cache.misses == 2 and cache.hits == 0
        assert matrix[0, 1] == pytest.approx(
            EuclideanSpace(pts[30:]).dist(0, 1), abs=1e-8
        )

    def test_metric_parameters_are_part_of_the_key(self):
        # Same coordinates, different metric (or p): distinct entries.
        from repro.metric.minkowski import MinkowskiSpace

        pts = np.random.default_rng(7).normal(size=(25, 3))
        cache = DistanceCache(max_points=128)
        cache.matrix_for(MinkowskiSpace(pts, p=1.0))
        cache.matrix_for(MinkowskiSpace(pts, p=np.inf))
        cache.matrix_for(EuclideanSpace(pts))
        assert (cache.hits, cache.misses) == (0, 3)

    def test_fingerprintless_space_falls_back_to_pinned_identity(self):
        """A space that cannot fingerprint itself still caches, keyed on
        identity with the object pinned (a recycled id must rebuild)."""

        class OpaqueSpace(EuclideanSpace):
            def fingerprint(self):
                return None

        pts = np.random.default_rng(1).normal(size=(60, 2))
        cache = DistanceCache(max_points=128)
        s1 = OpaqueSpace(pts[:30])
        m1 = cache.matrix_for(s1)
        assert cache.matrix_for(s1) is m1
        s2 = OpaqueSpace(pts[30:])
        # simulate CPython recycling s1's address for s2
        cache._entries[("id", id(s2))] = cache._entries.pop(("id", id(s1)))
        matrix = cache.matrix_for(s2)
        assert cache.misses == 2
        assert matrix.shape == (30, 30)
        assert matrix[0, 1] == pytest.approx(s2.dist(0, 1), abs=1e-8)


class TestByteBound:
    """max_bytes: the long-lived server cache holds bounded memory."""

    def _space(self, n, seed):
        pts = np.random.default_rng(seed).normal(size=(n, 2))
        return EuclideanSpace(pts)

    def test_total_bytes_evicts_lru(self):
        # Each 40-point matrix is 40*40*8 = 12800 bytes; cap at two.
        cache = DistanceCache(max_points=128, max_entries=8, max_bytes=26_000)
        for seed in range(3):
            cache.matrix_for(self._space(40, seed))
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["bytes"] <= 26_000
        # The oldest entry was the one evicted: re-requesting it misses.
        cache.matrix_for(self._space(40, 0))
        assert cache.misses == 4

    def test_space_over_byte_cap_is_not_cacheable(self):
        cache = DistanceCache(max_points=4096, max_bytes=1000)
        big = self._space(40, 0)  # matrix alone is 12.8 kB
        assert not cache.cacheable(big)
        # space_for passes it through untouched instead of raising
        assert cache.space_for(big) is big
        small = self._space(10, 1)  # 800 bytes fits
        assert cache.cacheable(small)
        cache.matrix_for(small)
        assert cache.stats()["entries"] == 1

    def test_validation(self):
        with pytest.raises(InvalidParameterError):
            DistanceCache(max_bytes=0)
        with pytest.raises(InvalidParameterError):
            DistanceCache(max_bytes=-5)
