"""Unit tests for MRHS (the future-work MapReduce Hochbaum-Shmoys)."""

import numpy as np
import pytest

from repro.core.exact import exact_kcenter
from repro.core.mr_hochbaum_shmoys import mr_hochbaum_shmoys
from repro.core.mrg import mrg
from repro.errors import CapacityError, InvalidParameterError
from repro.metric.euclidean import EuclideanSpace


class TestMRHS:
    def test_two_rounds_always(self, small_space):
        res = mr_hochbaum_shmoys(small_space, k=3, m=4, seed=0)
        assert res.algorithm == "MRHS"
        assert res.n_rounds == 2
        assert [r.label for r in res.stats.rounds] == ["mrhs.reduce", "mrhs.final"]

    def test_eight_approximation_vs_exact(self, tiny_space):
        for k in (2, 3):
            opt = exact_kcenter(tiny_space, k).radius
            res = mr_hochbaum_shmoys(tiny_space, k, m=3, seed=0)
            assert res.radius <= 8.0 * opt + 1e-7
            assert res.approx_factor == 8.0

    def test_radius_matches_objective(self, small_space):
        res = mr_hochbaum_shmoys(small_space, 3, m=4, seed=0)
        assert res.radius == pytest.approx(
            small_space.covering_radius(res.centers), abs=1e-7
        )

    def test_comparable_to_mrg_in_practice(self, rng):
        """The comparison the paper asked for: despite the looser bound,
        MRHS should land near MRG on clustered data."""
        centers = rng.uniform(0, 50, size=(5, 2))
        pts = centers[rng.integers(0, 5, size=4000)] + rng.normal(0, 0.5, (4000, 2))
        space = EuclideanSpace(pts)
        r_hs = mr_hochbaum_shmoys(space, 5, m=8, seed=0).radius
        r_gon = mrg(space, 5, m=8, seed=0).radius
        assert r_hs <= 3.0 * r_gon
        assert r_gon <= 3.0 * r_hs

    def test_finds_cluster_structure(self, small_space):
        res = mr_hochbaum_shmoys(small_space, 3, m=4, seed=0)
        assert res.radius < 3.0

    def test_shard_cap_enforced(self, rng):
        space = EuclideanSpace(rng.normal(size=(50_000, 2)))
        with pytest.raises(CapacityError, match="cap"):
            mr_hochbaum_shmoys(space, 3, m=2, seed=0)

    def test_no_multi_round_fallback(self, rng):
        space = EuclideanSpace(rng.normal(size=(600, 2)))
        with pytest.raises(CapacityError, match="multi-round"):
            mr_hochbaum_shmoys(space, 10, m=10, capacity=60, seed=0)

    def test_empty_space(self):
        res = mr_hochbaum_shmoys(EuclideanSpace(np.empty((0, 2))), 2, m=2)
        assert res.n_centers == 0

    def test_invalid_k(self, small_space):
        with pytest.raises(InvalidParameterError):
            mr_hochbaum_shmoys(small_space, 0, m=2)

    def test_unknown_partitioner(self, small_space):
        with pytest.raises(InvalidParameterError, match="partitioner"):
            mr_hochbaum_shmoys(small_space, 2, m=2, partitioner="bogus")

    @pytest.mark.parametrize("strategy", ["block", "random", "hash"])
    def test_all_partitioners(self, small_space, strategy):
        res = mr_hochbaum_shmoys(small_space, 3, m=4, partitioner=strategy, seed=0)
        assert res.n_centers <= 3

    def test_union_size_recorded(self, small_space):
        res = mr_hochbaum_shmoys(small_space, 3, m=4, seed=0)
        assert 3 <= res.extra["union_size"] <= 3 * 4
