"""Unit tests for EIM (Algorithms 2-3 with the paper's fixes and phi)."""

import math

import numpy as np
import pytest

from repro.core.eim import EIMParams, eim
from repro.core.exact import exact_kcenter
from repro.core.gonzalez import gonzalez
from repro.errors import CapacityError, ConvergenceError, InvalidParameterError
from repro.metric.euclidean import EuclideanSpace


@pytest.fixture
def medium_space(rng):
    """Large enough that the sampling loop actually runs for small k."""
    centers = rng.uniform(0, 100, size=(8, 2))
    pts = centers[rng.integers(0, 8, size=6000)] + rng.normal(0, 0.5, size=(6000, 2))
    return EuclideanSpace(pts)


class TestParams:
    def test_defaults_match_paper(self):
        p = EIMParams()
        assert p.eps == 0.1 and p.phi == 8.0
        assert p.sample_coeff == 9.0 and p.pivot_coeff == 4.0
        assert p.threshold_coeff == 4.0

    def test_loop_threshold_formula(self):
        p = EIMParams(eps=0.1)
        n, k = 100_000, 10
        expect = (4 / 0.1) * k * n**0.1 * math.log(n)
        assert p.loop_threshold(n, k) == pytest.approx(expect)

    def test_probabilities_clamped(self):
        p = EIMParams()
        assert p.sample_probability(10_000, 100, r_size=5) == 1.0
        assert 0.0 < p.sample_probability(10_000, 2, r_size=10_000) < 1.0
        assert p.pivot_probability(10_000, r_size=0) == 0.0

    def test_pivot_rank_scales_with_phi(self):
        n = 100_000
        assert EIMParams(phi=8.0).pivot_rank(n) > EIMParams(phi=1.0).pivot_rank(n)

    def test_invalid_params(self):
        with pytest.raises(InvalidParameterError):
            EIMParams(eps=0.0)
        with pytest.raises(InvalidParameterError):
            EIMParams(eps=1.0)
        with pytest.raises(InvalidParameterError):
            EIMParams(phi=0.0)
        with pytest.raises(InvalidParameterError):
            EIMParams(sample_coeff=-1.0)

    def test_iteration_cap_default(self):
        assert EIMParams(eps=0.1).iteration_cap == 110
        assert EIMParams(eps=0.1, max_iterations=3).iteration_cap == 3


class TestSamplingRegime:
    def test_loop_runs_and_rounds_counted(self, medium_space):
        res = eim(medium_space, k=3, m=10, seed=0)
        iters = res.extra["iterations"]
        assert iters >= 1
        assert not res.extra["fallback_to_gon"]
        # 3 recorded rounds per iteration plus the final clean-up round.
        assert res.n_rounds == 3 * iters + 1
        assert res.stats.rounds[-1].label == "eim.final"

    def test_sample_sizes_shrink(self, medium_space):
        res = eim(medium_space, k=3, m=10, seed=0)
        r_sizes = [it["R"] for it in res.extra["iteration_sizes"]]
        assert all(a > b for a, b in zip(r_sizes, r_sizes[1:]))

    def test_candidates_cover_sample_and_remainder(self, medium_space):
        res = eim(medium_space, k=3, m=10, seed=0)
        assert res.extra["candidate_size"] <= medium_space.n
        assert res.extra["candidate_size"] >= res.k

    def test_radius_matches_objective(self, medium_space):
        res = eim(medium_space, k=3, m=10, seed=0)
        assert res.radius == pytest.approx(
            medium_space.covering_radius(res.centers), abs=1e-7
        )

    def test_deterministic_in_seed(self, medium_space):
        a = eim(medium_space, k=3, m=10, seed=5)
        b = eim(medium_space, k=3, m=10, seed=5)
        np.testing.assert_array_equal(a.centers, b.centers)
        assert a.extra["iterations"] == b.extra["iterations"]

    def test_seeds_vary_outcome(self, medium_space):
        a = eim(medium_space, k=3, m=10, seed=1)
        b = eim(medium_space, k=3, m=10, seed=2)
        assert not np.array_equal(a.centers, b.centers)

    def test_finds_cluster_structure(self, medium_space):
        res = eim(medium_space, k=8, m=10, seed=0)
        # 8 well-separated clusters of sigma 0.5: radius must be small.
        assert res.radius < 6.0

    def test_approx_factor_depends_on_phi(self, medium_space):
        assert eim(medium_space, k=2, m=5, seed=0).approx_factor == 10.0
        low = eim(medium_space, k=2, m=5, seed=0, phi=4.0)
        assert low.approx_factor is None


class TestFallbackRegime:
    def test_large_k_falls_back_to_gon(self, rng):
        """Figure 4b: for small n relative to k, no sampling occurs."""
        space = EuclideanSpace(rng.normal(size=(500, 2)))
        res = eim(space, k=100, m=10, seed=0)
        assert res.extra["fallback_to_gon"]
        assert res.extra["iterations"] == 0
        assert res.n_rounds == 1  # just the clean-up GON
        assert res.extra["candidate_size"] == 500

    def test_fallback_equals_gon_quality(self, rng):
        pts = rng.normal(size=(300, 2))
        space = EuclideanSpace(pts)
        res = eim(space, k=50, m=10, seed=0)
        assert res.extra["fallback_to_gon"]
        # Clean-up GON on all of V is exactly sequential GON.
        gon = gonzalez(space, 50, seed=0)
        assert res.radius <= 2 * gon.radius + 1e-9 and gon.radius <= 2 * res.radius + 1e-9


class TestQuality:
    def test_ten_approximation_with_slack_vs_exact(self, tiny_space):
        # Tiny instances always fall back to GON (threshold > n), giving a
        # 2-approximation — the 10x bound holds with room to spare.
        for k in (2, 3):
            opt = exact_kcenter(tiny_space, k).radius
            for seed in range(3):
                res = eim(tiny_space, k, m=2, seed=seed)
                assert res.radius <= 10.0 * opt + 1e-7

    def test_sampling_regime_quality_vs_gonzalez(self, medium_space):
        """Paper Section 8: EIM comparable to GON, sometimes better."""
        r_eim = eim(medium_space, k=8, m=10, seed=0).radius
        r_gon = gonzalez(medium_space, k=8, seed=0).radius
        assert r_eim <= 3.0 * r_gon


class TestPhiParameter:
    @pytest.mark.parametrize("phi", [1.0, 4.0, 6.0, 8.0])
    def test_all_paper_phis_run(self, medium_space, phi):
        res = eim(medium_space, k=3, m=10, seed=0, phi=phi)
        assert res.n_centers == 3

    def test_lower_phi_fewer_or_equal_candidates(self, medium_space):
        """Lower phi keeps the pivot farther out, removing more of R per
        iteration, so the final candidate set is typically smaller."""
        hi = eim(medium_space, k=3, m=10, seed=0, phi=8.0)
        lo = eim(medium_space, k=3, m=10, seed=0, phi=1.0)
        assert lo.extra["iterations"] <= hi.extra["iterations"]


class TestTerminationFixes:
    def test_legacy_removal_may_stall_and_is_detected(self, rng):
        """With strict-< removal and duplicated points, iterations can
        remove nothing; the implementation must detect the stall instead
        of looping forever."""
        # All points identical: d(x, S) = 0 = pivot distance always, so the
        # legacy rule (remove strictly closer) removes nothing.
        pts = np.zeros((4000, 2))
        space = EuclideanSpace(pts)
        params = EIMParams(legacy_removal=True, max_iterations=5)
        with pytest.raises(ConvergenceError):
            eim(space, k=2, m=5, params=params, seed=0)

    def test_fixed_rule_handles_duplicates(self):
        pts = np.zeros((4000, 2))
        space = EuclideanSpace(pts)
        res = eim(space, k=2, m=5, seed=0)
        assert res.radius == 0.0

    def test_params_and_overrides_mutually_exclusive(self, tiny_space):
        with pytest.raises(InvalidParameterError, match="not both"):
            eim(tiny_space, 2, params=EIMParams(), phi=4.0)


class TestCapacity:
    def test_tiny_capacity_rejected_at_first_round(self, medium_space):
        # Per-machine shards of ~n/m points cannot fit on 50-point machines;
        # the violation surfaces before any work runs.
        with pytest.raises(CapacityError, match="exceeds machine capacity"):
            eim(medium_space, k=3, m=10, seed=0, capacity=50)

    def test_candidate_set_capacity_enforced(self, rng):
        # Unbounded rounds but a final machine too small for C = S u R:
        # run the fallback regime, where C = V exceeds any capacity < n.
        pts = rng.normal(size=(400, 2))
        space = EuclideanSpace(pts)
        with pytest.raises(CapacityError, match="candidate set"):
            eim(space, k=50, m=1, seed=0, capacity=399)

    def test_generous_capacity_ok(self, medium_space):
        res = eim(medium_space, k=3, m=10, seed=0, capacity=medium_space.n)
        assert res.n_centers == 3


class TestEdges:
    def test_invalid_k(self, tiny_space):
        with pytest.raises(InvalidParameterError):
            eim(tiny_space, 0)

    def test_empty_space(self):
        res = eim(EuclideanSpace(np.empty((0, 2))), 2)
        assert res.n_centers == 0

    def test_single_point(self):
        res = eim(EuclideanSpace(np.zeros((1, 3))), 2, seed=0)
        assert res.n_centers == 1
        assert res.radius == 0.0

    def test_evaluate_false(self, medium_space):
        res = eim(medium_space, k=3, m=10, seed=0, evaluate=False)
        assert res.eval_time == 0.0
