"""Serving-layer tests: protocol, scheduler, server lifecycle, parity.

The load-bearing contract is *bit-parity*: with the distance cache off
(the default config), every served result must equal the same
``repro.solve()`` call made directly — centers, radius, ``dist_evals`` —
for every registered algorithm, under concurrent clients, on thread and
process backends.  Around it, the failure-path contracts: malformed input
becomes structured error responses, admission control rejects instead of
queueing unbounded, timeouts and disconnects cancel cleanly without
poisoning the shared pool, and shutdown drains every admitted request.
"""

import threading
import time

import numpy as np
import pytest

import repro
from repro.errors import InvalidParameterError
from repro.mapreduce.faults import ALWAYS, Fault, FaultSchedule
from repro.serve import (
    E_BAD_JSON,
    E_BAD_REQUEST,
    E_INVALID_PARAMETER,
    E_OVERLOADED,
    E_TIMEOUT,
    E_TOO_LARGE,
    E_UNKNOWN_ALGORITHM,
    PROTOCOL_VERSION,
    ServeClient,
    ServeConfig,
    ServeError,
    ServerHandle,
    parse_hostport,
)
from repro.serve.protocol import decode_line, encode, parse_solve_request
from repro.solvers.registry import solver_names


@pytest.fixture(scope="module")
def rows():
    return np.random.default_rng(11).normal(size=(80, 3))


@pytest.fixture(scope="module")
def tiny_rows():
    # Small enough for the exact solver in the all-algorithms sweep.
    return np.random.default_rng(5).normal(size=(26, 2))


@pytest.fixture(scope="module")
def handle():
    """One shared thread-backend server for the fast request tests."""
    with ServerHandle(ServeConfig(backend="thread", pool_size=2)) as h:
        yield h


def _assert_result_matches(payload: dict, direct) -> None:
    """Wire result vs in-process KCenterResult: the bit-parity check."""
    assert payload["centers"] == [int(c) for c in direct.centers]
    assert payload["radius"] == direct.radius
    assert payload["k"] == direct.k
    assert payload["algorithm"] == direct.algorithm
    if direct.stats is not None:
        assert payload["dist_evals"] == direct.stats.dist_evals


# ---------------------------------------------------------------------- #
# protocol units (no server needed)
# ---------------------------------------------------------------------- #
class TestProtocol:
    def test_encode_decode_round_trip(self):
        obj = {"op": "solve", "k": 3, "radius": 0.1 + 0.2}
        assert decode_line(encode(obj).strip()) == obj

    def test_decode_rejects_non_object(self):
        with pytest.raises(ServeError) as err:
            decode_line(b"[1, 2, 3]")
        assert err.value.code == E_BAD_JSON

    def test_decode_rejects_garbage(self):
        with pytest.raises(ServeError) as err:
            decode_line(b"{not json")
        assert err.value.code == E_BAD_JSON

    @pytest.mark.parametrize(
        "payload,code",
        [
            ({"k": 3, "points": [[0.0]]}, E_BAD_REQUEST),  # no algo
            ({"algo": "kmeans", "k": 3, "points": [[0.0]]}, E_UNKNOWN_ALGORITHM),
            ({"algo": "gon", "k": "three", "points": [[0.0]]}, E_BAD_REQUEST),
            ({"algo": "gon", "k": 3}, E_BAD_REQUEST),  # neither points nor data
            (
                {"algo": "gon", "k": 3, "points": [[0.0]], "data": "x.npy"},
                E_BAD_REQUEST,
            ),  # both
            ({"algo": "gon", "k": 3, "points": [["a"]]}, E_BAD_REQUEST),
            ({"algo": "gon", "k": 3, "points": [1.0, 2.0]}, E_BAD_REQUEST),
            (
                {"algo": "gon", "k": 3, "points": [[0.0]], "timeout": -1},
                E_BAD_REQUEST,
            ),
            (
                {
                    "algo": "gon",
                    "k": 3,
                    "points": [[0.0]],
                    "options": {"executor": "process"},
                },
                E_BAD_REQUEST,
            ),  # server owns the pool
            (
                {
                    "algo": "gon",
                    "k": 3,
                    "points": [[0.0]],
                    "options": {"seed": 4},
                },
                E_BAD_REQUEST,
            ),  # seed is a top-level field
            (
                {"algo": "gon", "k": 3, "points": [[0.0]], "options": {"m": 4}},
                E_INVALID_PARAMETER,
            ),  # gon takes no m
            (
                {
                    "algo": "gon",
                    "k": 3,
                    "points": [[0.0], [1.0]],
                    "options": {"phi": 2.0},
                },
                E_INVALID_PARAMETER,
            ),
        ],
    )
    def test_parse_rejections(self, payload, code):
        with pytest.raises(ServeError) as err:
            parse_solve_request(payload, "r1")
        assert err.value.code == code

    def test_parse_enforces_max_points(self):
        payload = {"algo": "gon", "k": 2, "points": [[float(i)] for i in range(9)]}
        with pytest.raises(ServeError) as err:
            parse_solve_request(payload, "r1", max_points=8)
        assert err.value.code == E_TOO_LARGE

    def test_identical_inline_points_share_a_space_key(self):
        payload = {"algo": "gon", "k": 2, "points": [[0.0, 1.0], [2.0, 3.0]]}
        a = parse_solve_request(dict(payload), "r1")
        b = parse_solve_request(dict(payload), "r2")
        assert a.space_key == b.space_key

    def test_parse_hostport_forms(self):
        assert parse_hostport("example.org:1234") == ("example.org", 1234)
        assert parse_hostport(":1234") == ("127.0.0.1", 1234)
        assert parse_hostport("example.org", 7227) == ("example.org", 7227)
        with pytest.raises(InvalidParameterError):
            parse_hostport("host:notaport")
        with pytest.raises(InvalidParameterError):
            parse_hostport("")

    def test_serve_config_validation(self):
        with pytest.raises(InvalidParameterError):
            ServeConfig(backend="fpga")
        with pytest.raises(InvalidParameterError):
            ServeConfig(max_queue=0)


# ---------------------------------------------------------------------- #
# the happy path and the parity contract
# ---------------------------------------------------------------------- #
class TestServedParity:
    def test_ping_reports_registry(self, handle):
        with handle.client() as client:
            pong = client.ping()
        assert pong["ok"] and pong["version"] == PROTOCOL_VERSION
        assert set(solver_names()) <= set(pong["algorithms"])

    def test_every_algorithm_bit_identical_to_direct(self, handle, tiny_rows):
        with handle.client() as client:
            for algo in solver_names():
                served = client.solve(algo, 3, points=tiny_rows, seed=7)
                direct = repro.solve(tiny_rows, 3, algo, seed=7)
                _assert_result_matches(served["result"], direct)
                accounting = served["accounting"]
                assert accounting["summary"]["runs"] == 1
                assert accounting["queue_ms"] >= 0

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_concurrent_clients_stay_bit_identical(self, rows, backend):
        jobs = [
            ("gon", 4, 0, {}),
            ("gon", 6, 1, {}),
            ("mrg", 4, 0, {"m": 4}),
            ("mrg", 5, 2, {"m": 4}),
            ("eim", 4, 1, {"m": 4}),
            ("hs", 4, 0, {}),
        ]
        expected = {
            (algo, k, seed): repro.solve(rows, k, algo, seed=seed, **opts)
            for algo, k, seed, opts in jobs
        }
        config = ServeConfig(
            backend=backend, pool_size=2, max_inflight=2, batch_window=0.01
        )
        responses: dict = {}
        with ServerHandle(config) as h:

            def run(job):
                algo, k, seed, opts = job
                with h.client() as client:
                    responses[(algo, k, seed)] = client.solve(
                        algo, k, points=rows, seed=seed, options=opts
                    )

            threads = [threading.Thread(target=run, args=(job,)) for job in jobs]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert len(responses) == len(jobs)
        for key, direct in expected.items():
            _assert_result_matches(responses[key]["result"], direct)

    def test_mixed_k_requests_coalesce_into_one_batch(self, rows):
        # Same space + batch window -> one heterogeneous solve_many batch.
        config = ServeConfig(backend="sequential", batch_window=0.25)
        with ServerHandle(config) as h:
            clients = [h.client() for _ in range(3)]
            try:
                for i, client in enumerate(clients):
                    client.send(
                        {
                            "op": "solve",
                            "id": f"c{i}",
                            "algo": "gon",
                            "k": 3 + i,
                            "seed": i,
                            "points": rows.tolist(),
                        }
                    )
                answers = {c.recv()["id"]: None for c in clients}
                stats = clients[0].stats()
            finally:
                for client in clients:
                    client.close()
        assert answers.keys() == {"c0", "c1", "c2"}
        assert stats["batches"] == 1
        assert stats["coalesced_requests"] == 3

    def test_distance_cache_hits_on_repeated_space(self, rows):
        config = ServeConfig(
            backend="sequential", batch_window=0.25, cache_points=512
        )
        with ServerHandle(config) as h:
            with h.client() as client:
                for seed in range(3):
                    resp = client.solve("gon", 4, points=rows, seed=seed)
                    assert resp["ok"]
                stats = client.stats()
        assert stats["cache"]["hits"] >= 2
        assert stats["cache"]["misses"] >= 1


# ---------------------------------------------------------------------- #
# failure paths
# ---------------------------------------------------------------------- #
class TestFailurePaths:
    def test_malformed_json_is_a_structured_error(self, handle):
        with handle.client() as client:
            client._file.write(b"this is not json\n")
            client._file.flush()
            resp = client.recv()
            assert resp["ok"] is False
            assert resp["error"]["code"] == E_BAD_JSON
            # The connection survives and keeps working.
            assert client.ping()["ok"]

    def test_unknown_op_is_rejected(self, handle):
        with handle.client() as client:
            resp = client.request({"op": "dance", "id": "x"})
        assert resp["id"] == "x"
        assert resp["error"]["code"] == E_BAD_REQUEST

    def test_unknown_algorithm_raises_with_code(self, handle, tiny_rows):
        with handle.client() as client:
            with pytest.raises(ServeError) as err:
                client.solve("kmeans", 3, points=tiny_rows)
        assert err.value.code == E_UNKNOWN_ALGORITHM

    def test_oversized_request_hits_admission_control(self, tiny_rows):
        config = ServeConfig(backend="sequential", max_points=10)
        with ServerHandle(config) as h, h.client() as client:
            resp = client.solve(
                "gon", 3, points=tiny_rows, raise_on_error=False
            )
            assert resp["error"]["code"] == E_TOO_LARGE
            # Admissible work still flows afterwards.
            ok = client.solve("gon", 2, points=tiny_rows[:8])
            assert ok["ok"]

    def test_queue_depth_cap_rejects_with_overloaded(self, rows):
        config = ServeConfig(
            backend="sequential", max_queue=1, batch_window=0.5
        )
        with ServerHandle(config) as h, h.client() as client:
            for i in range(2):
                client.send(
                    {
                        "op": "solve",
                        "id": f"q{i}",
                        "algo": "gon",
                        "k": 3,
                        "seed": i,
                        "points": rows.tolist(),
                    }
                )
            responses = {resp["id"]: resp for resp in (client.recv(), client.recv())}
        assert responses["q0"]["ok"] is True
        assert responses["q1"]["ok"] is False
        assert responses["q1"]["error"]["code"] == E_OVERLOADED

    def test_timeout_while_queued_returns_structured_error(self, rows):
        config = ServeConfig(backend="sequential", batch_window=0.3)
        with ServerHandle(config) as h, h.client() as client:
            resp = client.solve(
                "gon", 3, points=rows, timeout=0.01, raise_on_error=False
            )
            assert resp["error"]["code"] == E_TIMEOUT
            # The cancelled request did not wedge the scheduler.
            ok = client.solve("gon", 3, points=rows, seed=0)
            assert ok["ok"]

    def test_disconnect_mid_solve_does_not_poison_the_pool(self, rows):
        config = ServeConfig(backend="thread", pool_size=2, batch_window=0.2)
        with ServerHandle(config) as h:
            doomed = h.client()
            doomed.send(
                {
                    "op": "solve",
                    "id": "gone",
                    "algo": "mrg",
                    "k": 4,
                    "seed": 0,
                    "points": rows.tolist(),
                    "options": {"m": 4},
                }
            )
            time.sleep(0.05)  # admitted, still inside the batch window
            doomed.close()  # vanish with the solve in flight
            with h.client() as client:
                served = client.solve("gon", 4, points=rows, seed=1)
                direct = repro.solve(rows, 4, "gon", seed=1)
                _assert_result_matches(served["result"], direct)
                stats = client.stats()
        assert stats["failed"] == 0


# ---------------------------------------------------------------------- #
# fault tolerance: crashes inside coalesced batches
# ---------------------------------------------------------------------- #
class TestFaultTolerance:
    """The serving side of the resilience contract: a worker crash inside
    a coalesced batch costs latency — never a sibling request's answer,
    never the warm pool, and never bit-parity with the direct solve."""

    def _pipelined(self, h, rows, jobs):
        """Send ``jobs`` down one connection inside one batch window;
        return responses by id (submission order = batch task order)."""
        with h.client() as client:
            for req_id, algo, k, seed, opts in jobs:
                client.send(
                    {
                        "op": "solve",
                        "id": req_id,
                        "algo": algo,
                        "k": k,
                        "seed": seed,
                        "points": rows.tolist(),
                        "options": opts,
                    }
                )
            responses = {}
            for _ in jobs:
                resp = client.recv()
                responses[resp["id"]] = resp
            stats = client.stats()
        return responses, stats

    def test_transient_crash_inside_batch_is_absorbed(self, rows):
        # Task 1 of the coalesced batch crashes once; the default policy
        # (one retry) absorbs it and every answer stays bit-identical.
        config = ServeConfig(
            backend="thread",
            pool_size=2,
            batch_window=0.25,
            fault_injector=FaultSchedule({(None, 1): Fault("crash")}),
        )
        jobs = [(f"c{i}", "gon", 3 + i, i, {}) for i in range(3)]
        with ServerHandle(config) as h:
            responses, stats = self._pipelined(h, rows, jobs)
        assert stats["batches"] == 1 and stats["coalesced_requests"] == 3
        assert stats["failed"] == 0
        assert stats["retries"] >= 1
        for req_id, algo, k, seed, opts in jobs:
            assert responses[req_id]["ok"], responses[req_id]
            direct = repro.solve(rows, k, algo, seed=seed, **opts)
            _assert_result_matches(responses[req_id]["result"], direct)
        # The victim's own summary carries its retry accounting.
        summaries = {
            rid: resp["accounting"]["summary"] for rid, resp in responses.items()
        }
        assert summaries["c1"]["retries"] == 1
        assert summaries["c0"]["retries"] == 0

    def test_exhausted_batch_is_isolation_split(self, rows):
        # Task 1 crashes on *every* attempt: the batch itself cannot
        # complete, so the scheduler re-dispatches each request alone.
        # Solo, the victim is task 0 — the injected fault (an infra
        # failure pinned to slot 1) no longer hits it, so everyone
        # still gets a bit-identical answer and the pool stays warm.
        config = ServeConfig(
            backend="thread",
            pool_size=2,
            batch_window=0.25,
            fault_injector=FaultSchedule(
                {(None, 1): Fault("crash", times=ALWAYS)}
            ),
        )
        jobs = [(f"s{i}", "gon", 3 + i, i, {}) for i in range(3)]
        with ServerHandle(config) as h:
            responses, stats = self._pipelined(h, rows, jobs)
            # Pool stays warm: a follow-up request succeeds normally.
            with h.client() as client:
                again = client.solve("gon", 4, points=rows, seed=9)
                assert again["ok"]
        assert stats["isolation_splits"] == 1
        assert stats["failed"] == 0
        for req_id, algo, k, seed, opts in jobs:
            assert responses[req_id]["ok"], responses[req_id]
            direct = repro.solve(rows, k, algo, seed=seed, **opts)
            _assert_result_matches(responses[req_id]["result"], direct)

    def test_poisoned_request_fails_alone_siblings_succeed(self, rows):
        # A request that *deterministically* cannot complete (capacity
        # too small for its mrg round) poisons its coalesced batch; the
        # isolation split answers its siblings bit-identically and only
        # the doomed request gets the structured error.
        config = ServeConfig(backend="thread", pool_size=2, batch_window=0.25)
        jobs = [
            ("ok0", "gon", 4, 0, {}),
            ("bad", "mrg", 4, 1, {"m": 4, "capacity": 5}),
            ("ok1", "gon", 5, 2, {}),
        ]
        with ServerHandle(config) as h:
            responses, stats = self._pipelined(h, rows, jobs)
            with h.client() as client:
                assert client.solve("gon", 3, points=rows, seed=5)["ok"]
        assert stats["isolation_splits"] == 1
        assert stats["failed"] == 1
        assert stats["answered"] >= 2
        assert responses["bad"]["ok"] is False
        assert "CapacityError" in responses["bad"]["error"]["message"]
        for req_id, algo, k, seed, opts in jobs:
            if req_id == "bad":
                continue
            direct = repro.solve(rows, k, algo, seed=seed, **opts)
            _assert_result_matches(responses[req_id]["result"], direct)

    def test_worker_death_in_process_batch_recovers(self, rows):
        # The real thing: a process-pool worker dies mid-batch
        # (os._exit), breaking the shared pool.  The resilient executor
        # drops the corpse, reopens, re-dispatches — every request in
        # the batch still answers bit-identically, and the next batch
        # runs on the re-warmed pool.
        config = ServeConfig(
            backend="process",
            pool_size=2,
            batch_window=0.3,
            fault_retries=2,
            fault_injector=FaultSchedule({(None, 1): Fault("die")}),
        )
        jobs = [(f"w{i}", "gon", 3 + i, i, {}) for i in range(3)]
        with ServerHandle(config) as h:
            responses, stats = self._pipelined(h, rows, jobs)
            with h.client() as client:
                again = client.solve("gon", 4, points=rows, seed=9)
                assert again["ok"]
        assert stats["failed"] == 0
        assert stats["retries"] >= 1
        for req_id, algo, k, seed, opts in jobs:
            assert responses[req_id]["ok"], responses[req_id]
            direct = repro.solve(rows, k, algo, seed=seed, **opts)
            _assert_result_matches(responses[req_id]["result"], direct)


# ---------------------------------------------------------------------- #
# lifecycle
# ---------------------------------------------------------------------- #
class TestLifecycle:
    def test_shutdown_drains_inflight_requests(self, rows):
        config = ServeConfig(backend="thread", pool_size=2, batch_window=0.3)
        handle = ServerHandle(config).start()
        client = handle.client()
        try:
            n_requests = 4
            for i in range(n_requests):
                client.send(
                    {
                        "op": "solve",
                        "id": f"d{i}",
                        "algo": "gon",
                        "k": 4,
                        "seed": i,
                        "points": rows.tolist(),
                    }
                )
            time.sleep(0.1)  # all admitted, none dispatched yet
            handle.close()  # graceful drain: every admitted request answered
            responses = [client.recv() for _ in range(n_requests)]
        finally:
            client.close()
            handle.close()
        assert sorted(r["id"] for r in responses) == [
            f"d{i}" for i in range(n_requests)
        ]
        for resp in responses:
            assert resp["ok"], resp
            direct = repro.solve(rows, 4, "gon", seed=int(resp["id"][1:]))
            _assert_result_matches(resp["result"], direct)

    def test_server_rejects_after_drain_starts(self, rows):
        # A request arriving into a draining scheduler gets shutting-down,
        # not a hang: exercised via the scheduler directly in-process.
        import asyncio

        from repro.serve import E_SHUTTING_DOWN
        from repro.serve.scheduler import BatchScheduler

        async def scenario():
            scheduler = BatchScheduler(ServeConfig(backend="sequential"))
            scheduler.start()
            await scheduler.drain()
            request = parse_solve_request(
                {"algo": "gon", "k": 2, "points": rows.tolist()}, "r1"
            )
            with pytest.raises(ServeError) as err:
                scheduler.submit(request)
            assert err.value.code == E_SHUTTING_DOWN

        asyncio.run(scenario())

    def test_handle_close_is_idempotent(self, tiny_rows):
        handle = ServerHandle(ServeConfig(backend="sequential")).start()
        with handle.client() as client:
            assert client.solve("gon", 2, points=tiny_rows)["ok"]
        handle.close()
        handle.close()  # second close is a no-op

    def test_client_pipelining_matches_by_id(self, handle, tiny_rows):
        with handle.client() as client:
            for i in range(3):
                client.send(
                    {
                        "op": "solve",
                        "id": f"p{i}",
                        "algo": "gon",
                        "k": 2 + i,
                        "seed": i,
                        "points": tiny_rows.tolist(),
                    }
                )
            got = {client.recv()["id"] for _ in range(3)}
        assert got == {"p0", "p1", "p2"}
