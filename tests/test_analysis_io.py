"""Unit tests for record persistence."""

import pytest

from repro.analysis.experiments import (
    ExperimentSpec,
    aggregate,
    gon_spec,
    run_experiment,
)
from repro.analysis.io import load_records, save_records
from repro.errors import ExperimentError


@pytest.fixture
def records():
    spec = ExperimentSpec(
        name="io-test",
        dataset="unif",
        n=200,
        ks=[2, 3],
        algorithms=[gon_spec()],
        n_instances=1,
        n_runs=2,
        master_seed=1,
    )
    return run_experiment(spec)


class TestRoundTrip:
    def test_save_and_load(self, records, tmp_path):
        path = save_records(records, tmp_path / "records.csv")
        loaded = load_records(path)
        assert len(loaded) == len(records)
        for a, b in zip(records, loaded):
            assert a.algorithm == b.algorithm
            assert a.k == b.k
            assert a.radius == pytest.approx(b.radius)
            assert a.parallel_time == pytest.approx(b.parallel_time)
            assert a.extra == b.extra

    def test_aggregation_identical_after_round_trip(self, records, tmp_path):
        path = save_records(records, tmp_path / "r.csv")
        loaded = load_records(path)
        assert aggregate(records) == pytest.approx(aggregate(loaded))

    def test_missing_file(self, tmp_path):
        with pytest.raises(ExperimentError, match="no record file"):
            load_records(tmp_path / "nothing.csv")

    def test_wrong_header_rejected(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ExperimentError, match="not a records file"):
            load_records(bad)

    def test_corrupt_row_reported_with_line(self, records, tmp_path):
        path = save_records(records, tmp_path / "r.csv")
        lines = path.read_text().splitlines()
        lines[1] = lines[1].replace(str(records[0].k), "not-an-int", 1)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ExperimentError, match=":2:"):
            load_records(path)

    def test_empty_record_list(self, tmp_path):
        path = save_records([], tmp_path / "empty.csv")
        assert load_records(path) == []
