"""Unit and property tests for repro.utils.chunking."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.chunking import chunk_slices, resolve_chunk_size


class TestChunkSlices:
    def test_exact_division(self):
        slices = list(chunk_slices(10, 5))
        assert slices == [slice(0, 5), slice(5, 10)]

    def test_remainder(self):
        slices = list(chunk_slices(7, 3))
        assert slices == [slice(0, 3), slice(3, 6), slice(6, 7)]

    def test_zero_total(self):
        assert list(chunk_slices(0, 4)) == []

    def test_chunk_larger_than_total(self):
        assert list(chunk_slices(3, 100)) == [slice(0, 3)]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            list(chunk_slices(-1, 2))
        with pytest.raises(ValueError):
            list(chunk_slices(5, 0))

    @given(total=st.integers(0, 5000), chunk=st.integers(1, 700))
    def test_property_cover_disjoint_ordered(self, total, chunk):
        slices = list(chunk_slices(total, chunk))
        covered = 0
        for sl in slices:
            assert sl.start == covered, "slices must be contiguous"
            assert 0 < sl.stop - sl.start <= chunk
            covered = sl.stop
        assert covered == total


class TestResolveChunkSize:
    def test_respects_budget(self):
        rows = resolve_chunk_size(other_rows=1000, itemsize=8, block_bytes=800_000)
        assert 16 <= rows * 1000 * 8 <= 800_000

    def test_minimum_floor(self):
        assert resolve_chunk_size(10**9, block_bytes=1024, minimum=16) == 16

    def test_zero_reference_set(self):
        assert resolve_chunk_size(0, itemsize=8, block_bytes=800) == 100

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            resolve_chunk_size(-1)
        with pytest.raises(ValueError):
            resolve_chunk_size(10, itemsize=0)
        with pytest.raises(ValueError):
            resolve_chunk_size(10, block_bytes=0)

    @given(
        other=st.integers(1, 10**6),
        budget=st.integers(1024, 2**26),
    )
    def test_property_budget_or_minimum(self, other, budget):
        rows = resolve_chunk_size(other, block_bytes=budget)
        assert rows >= 16
        # Either within budget, or pinned at the minimum.
        assert rows * other * 8 <= budget or rows == 16


class TestChunkBounds:
    def test_matches_chunk_slices(self):
        from repro.utils.chunking import chunk_bounds

        for total, chunk in ((10, 3), (0, 4), (7, 7), (5, 100)):
            bounds = list(chunk_bounds(total, chunk))
            slices = list(chunk_slices(total, chunk))
            assert bounds == [(sl.start, sl.stop) for sl in slices]

    def test_plain_ints(self):
        from repro.utils.chunking import chunk_bounds

        bounds = list(chunk_bounds(7, 3))
        assert bounds == [(0, 3), (3, 6), (6, 7)]
        assert all(isinstance(b, int) for pair in bounds for b in pair)

    def test_invalid_args(self):
        from repro.utils.chunking import chunk_bounds

        with pytest.raises(ValueError):
            list(chunk_bounds(-1, 2))
        with pytest.raises(ValueError):
            list(chunk_bounds(5, 0))

    @given(total=st.integers(0, 5000), chunk=st.integers(1, 700))
    def test_property_cover_contiguous(self, total, chunk):
        from repro.utils.chunking import chunk_bounds

        covered = 0
        for start, stop in chunk_bounds(total, chunk):
            assert start == covered
            assert 0 < stop - start <= chunk
            covered = stop
        assert covered == total
