"""Unit tests for the command-line interface.

Full experiment runs live in the benchmarks; here we exercise the CLI
wiring on the cheapest real experiment (table5 at a tiny monkeypatched
size) plus the argument handling.
"""

import pytest

import repro.analysis.configs as configs
from repro.cli import main


class TestListCommand:
    def test_lists_all_ids(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp in ("table2", "table7", "figure1", "figure4b"):
            assert exp in out


class TestArgumentHandling:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "table99"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


@pytest.fixture
def tiny_sizes(monkeypatch):
    """Shrink every default size so CLI runs finish in seconds."""
    tiny = {key: 2000 for key in configs._DEFAULT_SIZES}
    tiny["table5"] = 2000
    monkeypatch.setattr(configs, "_DEFAULT_SIZES", tiny)
    # figure-4 sweeps its own grid.
    monkeypatch.setattr(
        configs, "figure4_n_grid",
        lambda scale=None: [500, 1000],
    )
    # cli imported the function by name; patch there too.
    import repro.cli as cli

    monkeypatch.setattr(cli, "figure4_n_grid", lambda scale=None: [500, 1000])
    return tiny


class TestRunCommand:
    def test_solution_table_output(self, capsys, tiny_sizes):
        assert main(["run", "table5", "--quiet", "--m", "5"]) == 0
        out = capsys.readouterr().out
        assert "solution value over k" in out
        assert "measured vs paper" in out
        assert "winner-agreement" in out
        assert "runtime" in out

    def test_phi_table_output(self, capsys, tiny_sizes):
        assert main(["run", "table7", "--quiet", "--m", "5"]) == 0
        out = capsys.readouterr().out
        assert "phi=1" in out and "phi=8" in out
        assert "phi-runtime-direction" in out

    def test_figure_output(self, capsys, tiny_sizes):
        assert main(["run", "figure2b", "--quiet", "--m", "5"]) == 0
        out = capsys.readouterr().out
        assert "runtime" in out
        assert "MRG" in out and "EIM" in out and "GON" in out

    def test_figure4_output(self, capsys, tiny_sizes):
        assert main(["run", "figure4a", "--quiet", "--m", "5"]) == 0
        out = capsys.readouterr().out
        assert "over n" in out


class TestSolveCommand:
    def test_solve_list_shows_registry(self, capsys):
        assert main(["solve", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("gon", "mrg", "eim", "hs", "mrhs", "stream", "exact"):
            assert name in out
        assert "registered k-center solvers" in out

    def test_solve_stream_runs_end_to_end(self, capsys):
        assert main(
            ["solve", "stream", "--k", "5", "--n", "2000", "--quiet",
             "--opt", "shuffle=True"]
        ) == 0
        out = capsys.readouterr().out
        assert "STREAM" in out
        assert "radius <= 8 x OPT" in out

    def test_solve_runs_end_to_end(self, capsys):
        assert main(["solve", "eim", "--k", "10", "--n", "3000", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "EIM" in out
        assert "radius" in out
        assert "a-priori guarantee" in out

    def test_solve_with_options(self, capsys):
        assert main(
            ["solve", "gon", "--k", "4", "--n", "1000", "--quiet",
             "--opt", "first_center=0"]
        ) == 0
        assert "GON" in capsys.readouterr().out

    def test_solve_alias_and_dataset(self, capsys):
        assert main(
            ["solve", "gonzalez", "--k", "3", "--n", "1000",
             "--dataset", "unif", "--quiet"]
        ) == 0
        assert "unif" in capsys.readouterr().out

    def test_solve_unknown_algorithm_fails_cleanly(self, capsys):
        assert main(["solve", "kmeans", "--k", "3"]) == 2
        err = capsys.readouterr().err
        assert "unknown algorithm" in err

    def test_solve_unknown_option_fails_cleanly(self, capsys):
        assert main(
            ["solve", "gon", "--k", "3", "--n", "500", "--quiet",
             "--opt", "phi=4"]
        ) == 2
        assert "unknown option" in capsys.readouterr().err

    def test_solve_shared_knob_mismatch_fails_cleanly(self, capsys):
        assert main(
            ["solve", "gon", "--k", "3", "--n", "500", "--quiet", "--m", "10"]
        ) == 2
        assert "does not accept" in capsys.readouterr().err

    def test_solve_shared_knob_via_opt_points_at_flag(self, capsys):
        assert main(
            ["solve", "mrg", "--k", "3", "--n", "500", "--quiet",
             "--opt", "m=10"]
        ) == 2
        assert "use --m" in capsys.readouterr().err

    def test_solve_bad_option_value_fails_cleanly(self, capsys):
        assert main(
            ["solve", "eim", "--k", "3", "--n", "500", "--quiet",
             "--opt", "phi=abc"]
        ) == 2
        assert "bad option value" in capsys.readouterr().err


class TestSolveTrace:
    def test_trace_writes_chrome_json(self, capsys, tmp_path):
        import json

        path = tmp_path / "trace.json"
        assert main([
            "solve", "mrg", "--k", "4", "--n", "1000", "--m", "4",
            "--trace", str(path),
        ]) == 0
        captured = capsys.readouterr()
        assert "trace:" in captured.err and str(path) in captured.err
        events = json.loads(path.read_text())["traceEvents"]
        cats = {event["cat"] for event in events}
        assert {"solve", "round", "task"} <= cats
        assert "block" not in cats  # default detail stops at tasks
        assert all(event["ph"] == "X" for event in events)

    def test_trace_detail_block_adds_kernel_spans(self, tmp_path):
        import json

        path = tmp_path / "trace.json"
        assert main([
            "solve", "mrg", "--k", "4", "--n", "1000", "--m", "4",
            "--trace", str(path), "--trace-detail", "block", "--quiet",
        ]) == 0
        events = json.loads(path.read_text())["traceEvents"]
        assert any(event["cat"] == "block" for event in events)

    def test_trace_rejected_with_connect(self, capsys, tmp_path):
        assert main([
            "solve", "mrg", "--k", "4", "--connect", "127.0.0.1:1",
            "--trace", str(tmp_path / "t.json"), "--quiet",
        ]) == 2
        assert "--trace" in capsys.readouterr().err

    def test_traced_solve_matches_untraced(self, capsys, tmp_path):
        argv = ["solve", "mrg", "--k", "4", "--n", "1000", "--m", "4",
                "--quiet"]
        assert main(argv) == 0
        plain = capsys.readouterr().out
        assert main(argv + ["--trace", str(tmp_path / "t.json")]) == 0
        traced = capsys.readouterr().out

        def row(out, field):
            return next(
                line for line in out.splitlines() if field in line
            )

        for field in ("radius", "dist_evals"):
            assert row(traced, field) == row(plain, field)


class TestSolveDataFile:
    def test_solve_from_npy_file(self, capsys, tmp_path):
        import numpy as np

        path = tmp_path / "pts.npy"
        np.save(path, np.random.default_rng(0).uniform(0, 100, size=(3000, 3)))
        assert main([
            "solve", "stream", "--k", "5",
            "--data", str(path), "--chunk-size", "256", "--quiet",
        ]) == 0
        out = capsys.readouterr().out
        assert "STREAM" in out and "pts.npy" in out and "n=3000" in out

    def test_missing_data_file_is_reported(self, capsys, tmp_path):
        assert main([
            "solve", "stream", "--k", "5", "--data",
            str(tmp_path / "nope.npy"), "--quiet",
        ]) == 2
        err = capsys.readouterr().err
        assert "no such dataset file" in err


class TestSolveSharded:
    def test_solve_from_shard_directory(self, capsys, tmp_path):
        from repro.data.registry import make_sharded

        make_sharded("gau", 2000, tmp_path / "sh", 3, seed=1, chunk_size=400)
        assert main([
            "solve", "mr_hs", "--k", "4", "--m", "5",
            "--data", str(tmp_path / "sh"), "--quiet",
        ]) == 0
        out = capsys.readouterr().out
        assert "MRHS" in out and "n=2000" in out

    def test_shards_flag_shards_a_generated_dataset(self, capsys):
        assert main([
            "solve", "mrg", "--k", "4", "--n", "2000", "--m", "5",
            "--shards", "3", "--chunk-size", "400",
        ]) == 0
        captured = capsys.readouterr()
        assert "sharded out-of-core, 3 shards" in captured.err
        assert "MRG" in captured.out and "[3 shards]" in captured.out

    def test_shards_flag_shards_a_npy_file(self, capsys, tmp_path):
        import numpy as np

        path = tmp_path / "pts.npy"
        np.save(path, np.random.default_rng(0).uniform(0, 100, size=(1500, 2)))
        assert main([
            "solve", "mrg", "--k", "3", "--m", "4", "--data", str(path),
            "--shards", "2", "--chunk-size", "300", "--quiet",
        ]) == 0
        assert "[2 shards]" in capsys.readouterr().out

    def test_shards_flag_rejected_for_an_already_sharded_dir(self, capsys, tmp_path):
        from repro.data.registry import make_sharded

        make_sharded("gau", 1000, tmp_path / "sh", 2, seed=1, chunk_size=250)
        assert main([
            "solve", "mrg", "--k", "3", "--data", str(tmp_path / "sh"),
            "--shards", "4", "--quiet",
        ]) == 2
        assert "already a sharded directory" in capsys.readouterr().err
        # The manifest-file spelling of the same input must not bypass
        # the guard (it opens the same ShardedStream).
        assert main([
            "solve", "mrg", "--k", "3",
            "--data", str(tmp_path / "sh" / "manifest.json"),
            "--shards", "4", "--quiet",
        ]) == 2
        assert "already a sharded directory" in capsys.readouterr().err
