"""Unit and property tests for the mapper-side partitioners.

All partitioners must uphold Algorithm 1's invariant: the shards are
disjoint, cover range(n), and each has at most ceil(n/m) elements.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidParameterError
from repro.mapreduce.partition import (
    PARTITIONERS,
    block_partition,
    hash_partition,
    random_partition,
)


def _check_invariants(parts, n, m):
    assert len(parts) == m
    cap = -(-n // m) if n else 0
    all_idx = np.concatenate(parts) if parts else np.empty(0, dtype=np.intp)
    assert len(all_idx) == n
    assert len(np.unique(all_idx)) == n, "shards must be disjoint and cover"
    if n:
        assert all_idx.min() == 0 and all_idx.max() == n - 1
    for p in parts:
        assert len(p) <= cap, f"shard of {len(p)} exceeds ceil(n/m)={cap}"


@pytest.mark.parametrize("name", sorted(PARTITIONERS))
class TestInvariantsAllPartitioners:
    @pytest.mark.parametrize("n,m", [(0, 3), (1, 1), (10, 3), (100, 7), (5, 10)])
    def test_invariants(self, name, n, m):
        fn = PARTITIONERS[name]
        parts = fn(n, m, 0) if name == "random" else fn(n, m)
        _check_invariants(parts, n, m)

    def test_invalid_args(self, name):
        fn = PARTITIONERS[name]
        with pytest.raises(InvalidParameterError):
            fn(-1, 2)
        with pytest.raises(InvalidParameterError):
            fn(10, 0)


class TestBlockPartition:
    def test_contiguous_and_ordered(self):
        parts = block_partition(10, 3)
        np.testing.assert_array_equal(parts[0], [0, 1, 2])
        np.testing.assert_array_equal(np.concatenate(parts), np.arange(10))

    @given(n=st.integers(0, 2000), m=st.integers(1, 60))
    @settings(max_examples=80, deadline=None)
    def test_property_invariants(self, n, m):
        _check_invariants(block_partition(n, m), n, m)

    @given(n=st.integers(1, 2000), m=st.integers(1, 60))
    @settings(max_examples=50, deadline=None)
    def test_property_balanced(self, n, m):
        sizes = [len(p) for p in block_partition(n, m)]
        assert max(sizes) - min(sizes) <= 1


class TestRandomPartition:
    def test_deterministic_in_seed(self):
        a = random_partition(50, 4, seed=3)
        b = random_partition(50, 4, seed=3)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_seeds_differ(self):
        a = random_partition(200, 4, seed=1)
        b = random_partition(200, 4, seed=2)
        assert any(not np.array_equal(x, y) for x, y in zip(a, b))

    @given(n=st.integers(0, 1000), m=st.integers(1, 40), seed=st.integers(0, 100))
    @settings(max_examples=60, deadline=None)
    def test_property_invariants(self, n, m, seed):
        _check_invariants(random_partition(n, m, seed=seed), n, m)


class TestHashPartition:
    def test_deterministic(self):
        a = hash_partition(123, 7)
        b = hash_partition(123, 7)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_salt_changes_assignment(self):
        a = hash_partition(500, 7, salt=0)
        b = hash_partition(500, 7, salt=1)
        assert any(not np.array_equal(x, y) for x, y in zip(a, b))

    @given(n=st.integers(0, 1000), m=st.integers(1, 40), salt=st.integers(0, 20))
    @settings(max_examples=60, deadline=None)
    def test_property_invariants(self, n, m, salt):
        _check_invariants(hash_partition(n, m, salt=salt), n, m)

    def test_roughly_balanced_before_spill(self):
        parts = hash_partition(10_000, 10)
        sizes = np.array([len(p) for p in parts])
        assert sizes.max() <= 1000  # the strict cap
        assert sizes.min() >= 800  # hash balance keeps loads near n/m


class TestAlignedBlockPartition:
    """block_partition(align=...): chunk-aligned shards for the store layer."""

    @pytest.mark.parametrize("n,m,align", [(300, 4, 50), (257, 3, 64), (100, 5, 7)])
    def test_cover_disjoint_aligned(self, n, m, align):
        parts = block_partition(n, m, align=align)
        assert len(parts) == m
        joined = np.concatenate(parts)
        assert np.array_equal(joined, np.arange(n))
        for p in parts:
            if p.size:
                assert p[0] % align == 0, "machine boundary not chunk-aligned"
                assert p[-1] == n - 1 or (p[-1] + 1) % align == 0

    def test_chunk_granular_balance(self):
        parts = block_partition(600, 4, align=50)
        sizes = [p.size for p in parts]
        # 12 chunks over 4 machines: exactly 3 chunks each
        assert sizes == [150, 150, 150, 150]

    def test_relaxed_cap_never_exceeds_one_extra_chunk(self):
        for n, m, align in ((1000, 7, 64), (999, 3, 100), (64, 9, 16)):
            parts = block_partition(n, m, align=align)
            n_chunks = -(-n // align)
            cap = align * -(-n_chunks // m)
            assert all(p.size <= cap for p in parts)

    def test_fewer_chunks_than_machines_leaves_empty_shards(self):
        parts = block_partition(10, 4, align=8)
        sizes = [p.size for p in parts]
        assert sum(sizes) == 10
        assert 0 in sizes

    def test_align_none_unchanged(self):
        assert all(
            np.array_equal(a, b)
            for a, b in zip(block_partition(100, 3), block_partition(100, 3, align=None))
        )

    def test_invalid_align(self):
        with pytest.raises(InvalidParameterError):
            block_partition(10, 2, align=0)
