"""Statistical sanity checks on EIM's sampling behaviour.

Lemma 5 bounds the per-iteration shrinkage of R; the Section-5 analysis
gives expected sample sizes.  These tests check the *measured* iteration
traces against loose versions of those predictions on a fixed seed grid
(deterministic, so they never flake) — catching regressions where the
sampling probabilities or the removal rule drift from the paper's
constants.
"""

import math

import numpy as np
import pytest

from repro.core.eim import EIMParams, eim
from repro.data.registry import make_dataset


@pytest.fixture(scope="module")
def trace():
    """Iteration traces across several seeds on one workload."""
    space = make_dataset("gau", 30_000, seed=0, k_prime=10).space()
    runs = [eim(space, 3, m=20, seed=s, evaluate=False) for s in range(5)]
    return space.n, runs


class TestSampleSizes:
    def test_expected_new_sample_size(self, trace):
        """First-iteration |new S| concentrates near 9 k n^eps ln n."""
        n, runs = trace
        expect = 9 * 3 * n**0.1 * math.log(n)
        observed = [r.extra["iteration_sizes"][0]["new_S"] for r in runs]
        mean = np.mean(observed)
        assert 0.7 * expect < mean < 1.3 * expect

    def test_expected_pivot_pool_size(self, trace):
        """First-iteration |H| concentrates near 4 n^eps ln n."""
        n, runs = trace
        expect = 4 * n**0.1 * math.log(n)
        mean = np.mean([r.extra["iteration_sizes"][0]["H"] for r in runs])
        assert 0.6 * expect < mean < 1.5 * expect

    def test_shrinkage_within_loose_lemma5_band(self, trace):
        """Per-iteration |R_{l+1}| / |R_l| near (phi/4)/n^eps in expectation;
        Lemma 5's band is [1, 5]/n^eps — we assert a loosened version."""
        n, runs = trace
        n_eps = n**0.1
        ratios = []
        for r in runs:
            sizes = r.extra["iteration_sizes"]
            for it in sizes:
                if it["R"] - it["removed"] > 0:
                    ratios.append((it["R"] - it["removed"]) / it["R"])
        mean_ratio = np.mean(ratios)
        predicted = (8.0 / 4.0) / n_eps  # phi=8
        assert 0.5 * predicted < mean_ratio < 2.0 * predicted

    def test_loop_terminates_at_threshold(self, trace):
        n, runs = trace
        params = EIMParams()
        threshold = params.loop_threshold(n, 3)
        for r in runs:
            sizes = r.extra["iteration_sizes"]
            # Every executed iteration started above the threshold...
            for it in sizes:
                assert it["R"] > threshold
            # ...and the loop exited below it.
            last = sizes[-1]
            assert last["R"] - last["removed"] <= threshold


class TestPhiEffectOnShrinkage:
    def test_low_phi_removes_more_per_iteration(self):
        """The pivot-rank mechanism itself: phi=1's first-iteration removal
        fraction exceeds phi=8's (farther pivot -> more points inside)."""
        space = make_dataset("gau", 30_000, seed=1, k_prime=10).space()
        fracs = {}
        for phi in (1.0, 8.0):
            removed = []
            for s in range(3):
                r = eim(space, 3, m=20, seed=s, phi=phi, evaluate=False)
                it = r.extra["iteration_sizes"][0]
                removed.append(it["removed"] / it["R"])
            fracs[phi] = np.mean(removed)
        assert fracs[1.0] > fracs[8.0]
