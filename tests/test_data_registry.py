"""Unit tests for the dataset registry."""

import numpy as np
import pytest

from repro.data.registry import DATASETS, Dataset, make_dataset
from repro.errors import DatasetError
from repro.metric.euclidean import EuclideanSpace


class TestMakeDataset:
    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_all_registered_names_build(self, name):
        ds = make_dataset(name, 200, seed=0)
        assert isinstance(ds, Dataset)
        assert ds.n == 200
        assert ds.params["n"] == 200

    def test_unknown_name(self):
        with pytest.raises(DatasetError, match="unknown dataset"):
            make_dataset("nope", 10)

    def test_params_forwarded(self):
        ds = make_dataset("gau", 300, seed=0, k_prime=7)
        assert ds.params["k_prime"] == 7

    def test_space_builds_euclidean(self):
        ds = make_dataset("unif", 50, seed=0)
        space = ds.space()
        assert isinstance(space, EuclideanSpace)
        assert space.n == 50
        assert space.dim == ds.dim


    def test_deterministic_per_seed(self):
        a = make_dataset("unb", 100, seed=11)
        b = make_dataset("unb", 100, seed=11)
        np.testing.assert_array_equal(a.points, b.points)

    def test_different_seeds_differ(self):
        a = make_dataset("poker", 100, seed=1)
        b = make_dataset("poker", 100, seed=2)
        assert not np.array_equal(a.points, b.points)


class TestMakeSharded:
    def test_sharding_is_layout_not_identity(self, tmp_path):
        """make_sharded's bits must equal make_stream's at any shard count."""
        from repro.data.registry import make_sharded, make_stream
        from repro.store import ShardedStream

        stream = make_stream("gau", 600, seed=4, chunk_size=100, k_prime=3)
        ref = np.concatenate([block for block, _ in stream])
        sh = make_sharded(
            "gau", 600, tmp_path / "sh", 4, seed=4, chunk_size=100, k_prime=3
        )
        assert isinstance(sh, ShardedStream)
        assert sh.n_shards == 4
        np.testing.assert_array_equal(
            np.concatenate([block for block, _ in sh]), ref
        )

    def test_non_streamable_family_rejected(self, tmp_path):
        from repro.data.registry import make_sharded

        with pytest.raises(DatasetError, match="no chunked generator"):
            make_sharded("poker", 100, tmp_path / "sh", 2)
