"""Cross-checks: the Section-3 capacity model vs the real MRG scheduler.

Eq. (1) upper-bounds the machines needed after each reduction round; the
implementation uses the minimal machine count per round.  The model's
round prediction must therefore never *under*-estimate what the
implementation achieves, and the two must agree in the standard regime.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mrg import mrg
from repro.data.registry import make_dataset
from repro.errors import CapacityError
from repro.mapreduce.model import (
    machines_after_rounds,
    mrg_feasible_two_rounds,
    mrg_rounds_needed,
)


@settings(max_examples=100, deadline=None)
@given(
    m=st.integers(1, 200),
    k=st.integers(1, 100),
    c_mult=st.floats(2.1, 50.0),
    i=st.integers(0, 20),
)
def test_eq1_contracts_toward_fixed_point(m, k, c_mult, i):
    """Eq. (1) is the orbit of the affine map x -> rho*x + 1 with
    rho = k/c < 1: each round moves the bound geometrically closer to the
    fixed point 1/(1-rho) (from above when m is large, from below when m
    is small), so |m(i+1) - L| = rho * |m(i) - L|."""
    c = int(k * c_mult) + 1
    rho = k / c
    limit = 1.0 / (1.0 - rho)
    a = machines_after_rounds(m, k, c, i)
    b = machines_after_rounds(m, k, c, i + 1)
    assert abs(b - limit) <= rho * abs(a - limit) + 1e-9 * max(1.0, abs(a))


@settings(max_examples=100, deadline=None)
@given(
    n=st.integers(10, 10**7),
    k=st.integers(1, 50),
    m=st.integers(1, 100),
)
def test_rounds_needed_consistent_with_feasibility(n, k, m):
    c = max(-(-n // m), 3 * k)  # always a convergent configuration
    rounds = mrg_rounds_needed(n, k, m, c)
    if mrg_feasible_two_rounds(n, k, m, c):
        assert rounds == 2
    else:
        assert rounds > 2


class TestModelVsScheduler:
    @pytest.mark.parametrize(
        "n,k,m,capacity",
        [
            (20_000, 10, 100, 200),
            (20_000, 24, 100, 200),
            (20_000, 40, 100, 200),
            (5_000, 6, 50, 100),
        ],
    )
    def test_implementation_never_exceeds_model_rounds(self, n, k, m, capacity):
        """The scheduler's actual round count is at most the Eq. (1)
        prediction: the model bounds machines from above, while the
        implementation's first round may use *more* machines than the
        minimum (more centers, slower reduction), costing at most the
        modelled schedule plus one round."""
        space = make_dataset("gau", n, seed=0, k_prime=8).space()
        model_rounds = mrg_rounds_needed(n, k, m, capacity)
        res = mrg(space, k, m=m, capacity=capacity, seed=0, evaluate=False)
        assert res.extra["total_rounds"] <= model_rounds + 1
        assert res.extra["total_rounds"] >= 2

    def test_divergent_config_rejected_by_both(self):
        n, k, m, c = 2_000, 60, 10, 110  # 2k > c
        with pytest.raises(CapacityError):
            mrg_rounds_needed(n, k, m, c)
        space = make_dataset("gau", n, seed=0, k_prime=8).space()
        with pytest.raises(CapacityError):
            mrg(space, k, m=m, capacity=c, seed=0)
