"""Unit tests for MRG (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.exact import exact_kcenter
from repro.core.gonzalez import gonzalez
from repro.core.mrg import mrg
from repro.errors import CapacityError, InvalidParameterError
from repro.metric.euclidean import EuclideanSpace


class TestTwoRoundRegime:
    def test_two_rounds_and_factor_four(self, small_space):
        res = mrg(small_space, k=3, m=4, seed=0)
        assert res.algorithm == "MRG"
        assert res.extra["total_rounds"] == 2
        assert res.n_rounds == 2
        assert res.approx_factor == 4.0
        assert [r.label for r in res.stats.rounds] == ["mrg.reduce[1]", "mrg.final"]

    def test_four_approximation_vs_exact(self, tiny_space):
        for k in (2, 3):
            opt = exact_kcenter(tiny_space, k).radius
            for seed in range(5):
                res = mrg(tiny_space, k, m=3, seed=seed)
                assert res.radius <= 4.0 * opt + 1e-7

    def test_round1_uses_m_machines(self, small_space):
        res = mrg(small_space, k=2, m=5, seed=0)
        assert res.stats.rounds[0].n_tasks == 5

    def test_final_round_single_machine(self, small_space):
        res = mrg(small_space, k=2, m=5, seed=0)
        assert res.stats.rounds[-1].n_tasks == 1

    def test_centers_are_valid_indices(self, small_space):
        res = mrg(small_space, k=3, m=4, seed=0)
        assert res.n_centers == 3
        assert (res.centers >= 0).all() and (res.centers < small_space.n).all()

    def test_radius_matches_objective(self, small_space):
        res = mrg(small_space, k=3, m=4, seed=0)
        assert res.radius == pytest.approx(
            small_space.covering_radius(res.centers), abs=1e-7
        )

    def test_deterministic_in_seed(self, small_space):
        a = mrg(small_space, k=3, m=4, seed=9)
        b = mrg(small_space, k=3, m=4, seed=9)
        np.testing.assert_array_equal(a.centers, b.centers)

    def test_comparable_to_sequential(self, rng):
        """Paper Section 8: MRG solutions comparable to GON's."""
        pts = np.concatenate(
            [c + rng.normal(0, 0.5, size=(300, 2)) for c in
             [[0, 0], [20, 0], [0, 20], [20, 20], [10, 10]]]
        )
        space = EuclideanSpace(pts)
        r_mrg = mrg(space, 5, m=10, seed=0).radius
        r_gon = gonzalez(space, 5, seed=0).radius
        assert r_mrg <= 2.5 * r_gon  # far inside the worst-case 4x vs 2x


class TestMultiRoundRegime:
    def test_forced_extra_rounds(self, rng):
        # n=400, k=6, m=10: k*m = 60 > c = 45 forces the while loop to
        # iterate (2k = 12 < c so it converges).
        space = EuclideanSpace(rng.normal(size=(400, 2)))
        res = mrg(space, k=6, m=10, capacity=45, seed=0)
        assert res.extra["total_rounds"] > 2
        assert res.approx_factor == 2.0 * res.extra["total_rounds"]
        assert res.n_centers == 6

    def test_later_rounds_use_fewer_machines(self, rng):
        space = EuclideanSpace(rng.normal(size=(400, 2)))
        res = mrg(space, k=6, m=10, capacity=45, seed=0)
        tasks_per_round = [r.n_tasks for r in res.stats.rounds]
        assert tasks_per_round[-1] == 1  # final GON
        assert tasks_per_round[1] < tasks_per_round[0]

    def test_divergent_capacity_raises(self, rng):
        # 2k >= c: the reduction can never fit on one machine.
        space = EuclideanSpace(rng.normal(size=(300, 2)))
        with pytest.raises(CapacityError):
            mrg(space, k=20, m=10, capacity=30, seed=0)

    def test_multi_round_quality_bound_vs_exact(self, rng):
        pts = rng.normal(size=(60, 2))
        space = EuclideanSpace(pts)
        opt = exact_kcenter(space, 2).radius
        res = mrg(space, k=2, m=6, capacity=14, seed=0)
        assert res.radius <= res.approx_factor * opt + 1e-7


class TestValidationAndEdges:
    def test_invalid_k(self, small_space):
        with pytest.raises(InvalidParameterError):
            mrg(small_space, k=0, m=2)

    def test_unknown_partitioner(self, small_space):
        with pytest.raises(InvalidParameterError, match="partitioner"):
            mrg(small_space, k=2, m=2, partitioner="bogus")

    def test_callable_partitioner(self, small_space):
        from repro.mapreduce.partition import block_partition

        res = mrg(small_space, k=2, m=3, partitioner=block_partition, seed=0)
        assert res.n_centers == 2

    @pytest.mark.parametrize("strategy", ["block", "random", "hash"])
    def test_all_partitioners_work(self, small_space, strategy):
        res = mrg(small_space, k=3, m=4, partitioner=strategy, seed=0)
        assert res.n_centers == 3
        assert res.radius < 3.0  # still finds the three clusters

    def test_k_exceeding_capacity_rejected(self, small_space):
        with pytest.raises(CapacityError, match="external memory"):
            mrg(small_space, k=25, m=3, capacity=20)

    def test_empty_space(self):
        res = mrg(EuclideanSpace(np.empty((0, 2))), k=2, m=2)
        assert res.n_centers == 0 and res.radius == 0.0

    def test_k_geq_n(self, tiny_space):
        res = mrg(tiny_space, k=tiny_space.n, m=2, seed=0)
        assert res.radius == pytest.approx(0.0, abs=1e-7)

    def test_evaluate_false_skips_objective(self, small_space):
        res = mrg(small_space, k=3, m=4, seed=0, evaluate=False)
        assert res.eval_time == 0.0

    def test_eval_time_not_in_round_stats(self, small_space):
        res = mrg(small_space, k=3, m=4, seed=0)
        assert res.eval_time > 0.0
        # The objective evaluation is not charged to any MapReduce round.
        assert res.stats.parallel_time <= res.wall_time + 1e-9

    def test_more_machines_than_points(self, tiny_space):
        res = mrg(tiny_space, k=2, m=50, seed=0)
        assert res.n_centers == 2
