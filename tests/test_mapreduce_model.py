"""Unit tests for the Section-3 capacity arithmetic."""

import pytest

from repro.errors import CapacityError, InvalidParameterError
from repro.mapreduce.model import (
    default_capacity,
    machines_after_rounds,
    mrg_approximation_factor,
    mrg_feasible_two_rounds,
    mrg_rounds_needed,
    validate_cluster,
)


class TestValidateCluster:
    def test_paper_setting_valid(self):
        validate_cluster(n=1_000_000, k=100, m=50, c=default_capacity(1_000_000, 100, 50))

    def test_cluster_too_small(self):
        with pytest.raises(CapacityError, match="insufficient space"):
            validate_cluster(n=100, k=2, m=3, c=10)

    def test_k_exceeds_capacity(self):
        # Section 3.3: k <= c is required or external memory is needed.
        with pytest.raises(CapacityError, match="external memory"):
            validate_cluster(n=100, k=60, m=10, c=50)

    def test_shard_constraint_subsumed_by_total_capacity(self):
        # When m*c >= n, a balanced split always has ceil(n/m) <= c, so any
        # configuration passing the total-capacity check also passes the
        # shard check (the shard branch is defensive only).
        for n, m in [(7, 3), (10, 3), (1001, 10), (999, 1)]:
            c = -(-n // m)
            validate_cluster(n=n, k=1, m=m, c=c)

    def test_bad_params(self):
        with pytest.raises(InvalidParameterError):
            validate_cluster(n=-1, k=2, m=2, c=10)
        with pytest.raises(InvalidParameterError):
            validate_cluster(n=10, k=2, m=0, c=10)


class TestTwoRoundFeasibility:
    def test_lemma2_conditions(self):
        # n/m <= c and k*m <= c.
        assert mrg_feasible_two_rounds(n=1000, k=4, m=10, c=100)
        assert not mrg_feasible_two_rounds(n=1000, k=20, m=10, c=100)  # k*m=200>c
        assert not mrg_feasible_two_rounds(n=10_000, k=4, m=10, c=100)  # n/m>c


class TestMachinesAfterRounds:
    def test_eq1_monotone_decreasing_when_k_lt_c(self):
        vals = [machines_after_rounds(m=50, k=10, c=1000, i=i) for i in range(5)]
        assert vals[0] == 50.0
        assert all(a >= b for a, b in zip(vals, vals[1:]))

    def test_limit_value(self):
        # As i -> inf the bound approaches 1 / (1 - k/c).
        limit = 1.0 / (1.0 - 10 / 1000)
        assert machines_after_rounds(m=50, k=10, c=1000, i=60) == pytest.approx(
            limit, rel=1e-6
        )

    def test_k_equals_c_degenerate(self):
        assert machines_after_rounds(m=5, k=100, c=100, i=3) == 8.0

    def test_invalid(self):
        with pytest.raises(InvalidParameterError):
            machines_after_rounds(m=5, k=1, c=10, i=-1)


class TestRoundsNeeded:
    def test_standard_regime_two_rounds(self):
        assert mrg_rounds_needed(n=10_000, k=5, m=10, c=default_capacity(10_000, 5, 10)) == 2

    def test_multi_round_regime(self):
        # k*m = 200 > c = 120 forces extra rounds; 2k=40 < c so it converges.
        rounds = mrg_rounds_needed(n=1200, k=20, m=10, c=120)
        assert rounds > 2

    def test_divergent_regime_raises(self):
        # 2k >= c: per-round reduction never fits one machine.
        with pytest.raises(CapacityError, match="converge"):
            mrg_rounds_needed(n=1000, k=50, m=10, c=100)


class TestApproximationFactor:
    @pytest.mark.parametrize("rounds,factor", [(2, 4), (3, 6), (4, 8)])
    def test_two_i_plus_one(self, rounds, factor):
        assert mrg_approximation_factor(rounds) == factor

    def test_invalid(self):
        with pytest.raises(InvalidParameterError):
            mrg_approximation_factor(1)


class TestDefaultCapacity:
    def test_covers_both_constraints(self):
        c = default_capacity(n=1000, k=7, m=10)
        assert mrg_feasible_two_rounds(1000, 7, 10, c)

    def test_k_m_dominates_for_large_k(self):
        assert default_capacity(n=100, k=50, m=10) == 500

    def test_n_over_m_dominates_for_large_n(self):
        assert default_capacity(n=10_000, k=2, m=10) == 1000

    def test_invalid_m(self):
        with pytest.raises(InvalidParameterError):
            default_capacity(10, 2, 0)
