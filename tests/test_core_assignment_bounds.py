"""Unit tests for assignment/objective evaluation and the OPT lower bounds."""

import numpy as np
import pytest

from repro.core.assignment import assign, cluster_sizes, covering_radius
from repro.core.bounds import greedy_lower_bound, packing_lower_bound
from repro.core.exact import exact_kcenter
from repro.core.gonzalez import gonzalez
from repro.errors import InvalidParameterError
from repro.metric.euclidean import EuclideanSpace


class TestAssign:
    def test_labels_point_to_nearest(self, small_space):
        centers = np.array([0, 25, 45], dtype=np.intp)
        labels, dists = assign(small_space, centers)
        # Verify a few rows against brute force.
        for i in (0, 10, 30, 55):
            expect = min(range(3), key=lambda j: small_space.dist(i, centers[j]))
            assert labels[i] == expect
            assert dists[i] == pytest.approx(
                small_space.dist(i, centers[expect]), abs=1e-7
            )

    def test_centers_assigned_to_themselves(self, small_space):
        centers = np.array([3, 33], dtype=np.intp)
        labels, dists = assign(small_space, centers)
        assert labels[3] == 0 and labels[33] == 1
        assert dists[3] == pytest.approx(0.0, abs=1e-7)

    def test_subset_assignment(self, small_space):
        centers = np.array([0, 30], dtype=np.intp)
        subset = np.array([5, 6, 7], dtype=np.intp)
        labels, dists = assign(small_space, centers, i_idx=subset)
        assert len(labels) == 3

    def test_empty_centers_rejected(self, small_space):
        with pytest.raises(InvalidParameterError):
            assign(small_space, np.empty(0, dtype=np.intp))

    def test_cluster_sizes(self):
        sizes = cluster_sizes(np.array([0, 0, 1, 2, 2, 2]), 4)
        np.testing.assert_array_equal(sizes, [2, 1, 3, 0])

    def test_cluster_sizes_invalid(self):
        with pytest.raises(InvalidParameterError):
            cluster_sizes(np.array([0]), 0)


class TestCoveringRadius:
    def test_matches_assignment_max(self, small_space):
        centers = np.array([0, 25], dtype=np.intp)
        _, dists = assign(small_space, centers)
        assert covering_radius(small_space, centers) == pytest.approx(
            dists.max(), abs=1e-7
        )

    def test_monotone_in_centers(self, small_space):
        """Adding a center can only shrink the objective."""
        c2 = np.array([0, 25], dtype=np.intp)
        c3 = np.array([0, 25, 45], dtype=np.intp)
        assert covering_radius(small_space, c3) <= covering_radius(small_space, c2) + 1e-9

    def test_all_points_centers_gives_zero(self, tiny_space):
        all_idx = np.arange(tiny_space.n, dtype=np.intp)
        assert covering_radius(tiny_space, all_idx) == pytest.approx(0.0, abs=1e-7)


class TestGreedyLowerBound:
    def test_is_a_true_lower_bound(self, tiny_space):
        for k in (1, 2, 3):
            opt = exact_kcenter(tiny_space, k).radius
            lb = greedy_lower_bound(tiny_space, k)
            assert lb <= opt + 1e-9

    def test_certifies_gonzalez_within_factor_two(self, small_space):
        for k in (2, 3, 5):
            lb = greedy_lower_bound(small_space, k)
            got = gonzalez(small_space, k, first_center=0).radius
            # By construction r_k = 2 * lb and GON(first=0) = r_k.
            assert got <= 2.0 * lb + 1e-9

    def test_zero_when_k_geq_n(self, tiny_space):
        assert greedy_lower_bound(tiny_space, tiny_space.n) == 0.0
        assert greedy_lower_bound(tiny_space, tiny_space.n + 5) == 0.0

    def test_deterministic(self, small_space):
        assert greedy_lower_bound(small_space, 4) == greedy_lower_bound(small_space, 4)

    def test_invalid_k(self, tiny_space):
        with pytest.raises(InvalidParameterError):
            greedy_lower_bound(tiny_space, 0)


class TestPackingLowerBound:
    def test_known_configuration(self):
        # 3 points pairwise >= 2 apart: any 2-center solution has OPT >= 1.
        pts = np.array([[0.0, 0.0], [2.0, 0.0], [1.0, 2.0]])
        space = EuclideanSpace(pts)
        lb = packing_lower_bound(space, np.array([0, 1, 2]))
        assert lb == pytest.approx(1.0)
        opt = exact_kcenter(space, 2).radius
        assert lb <= opt + 1e-9

    def test_is_true_lower_bound_for_random_witnesses(self, tiny_space, rng):
        k = 3
        opt = exact_kcenter(tiny_space, k).radius
        for _ in range(10):
            witness = rng.choice(tiny_space.n, size=k + 1, replace=False)
            assert packing_lower_bound(tiny_space, witness) <= opt + 1e-9

    def test_needs_two_points(self, tiny_space):
        with pytest.raises(InvalidParameterError):
            packing_lower_bound(tiny_space, np.array([0]))

    def test_rejects_duplicates(self, tiny_space):
        with pytest.raises(InvalidParameterError, match="duplicate"):
            packing_lower_bound(tiny_space, np.array([0, 0, 1]))
