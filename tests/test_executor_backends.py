"""Executor-backend parity: same tasks, same results, any backend.

The contract (docs/architecture.md): an executor may reorder or
parallelise execution, but because every task's randomness is bound
before scheduling, results must be bit-identical across backends —
Sequential, ThreadPool and ProcessPool.
"""

from functools import partial

import numpy as np
import pytest

from repro.mapreduce.executor import (
    ProcessPoolExecutorBackend,
    SequentialExecutor,
    ThreadPoolExecutorBackend,
)
from repro.metric.euclidean import EuclideanSpace
from repro.solvers import solve_many

BACKENDS = [
    ("sequential", SequentialExecutor),
    ("thread", lambda: ThreadPoolExecutorBackend(max_workers=4)),
    ("process", lambda: ProcessPoolExecutorBackend(max_workers=2)),
]


@pytest.fixture(scope="module")
def space():
    points = np.random.default_rng(23).normal(size=(400, 3))
    return EuclideanSpace(points)


def _double(x):
    return 2 * x


class TestProtocolContract:
    @pytest.mark.parametrize("name,factory", BACKENDS)
    def test_results_preserve_task_order(self, name, factory):
        # partial over a module-level function: picklable, so the same
        # task list drives all three backends.
        tasks = [partial(_double, i) for i in range(20)]
        results, times = factory().run(tasks)
        assert results == [2 * i for i in range(20)]
        assert len(times) == 20
        assert all(t >= 0 for t in times)

    @pytest.mark.parametrize("name,factory", BACKENDS)
    def test_empty_batch(self, name, factory):
        assert factory().run([]) == ([], [])

    def test_thread_backend_runs_unpicklable_tasks(self):
        # Closures over local state cannot cross a process boundary but
        # must be fine on the shared-memory thread backend.
        acc = []
        tasks = [lambda i=i: acc.append(i) or i for i in range(8)]
        results, _ = ThreadPoolExecutorBackend(max_workers=4).run(tasks)
        assert results == list(range(8))
        assert sorted(acc) == list(range(8))


class TestSolveManyParity:
    #: One batch mixing every solver kind: sequential (gon, stream),
    #: mapreduce (mrg, eim) and deterministic (hs).
    GRID = dict(
        algorithms=("gon", "mrg", "eim", "stream", "hs"),
        seeds=(0, 1, 2),
        m=5,
    )

    @pytest.fixture(scope="class")
    def reference(self, space):
        return solve_many(space, 4, executor=SequentialExecutor(), **self.GRID)

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: ThreadPoolExecutorBackend(max_workers=4),
            lambda: ProcessPoolExecutorBackend(max_workers=2),
        ],
        ids=["thread", "process"],
    )
    def test_bit_identical_to_sequential(self, space, reference, factory):
        batch = solve_many(space, 4, executor=factory(), **self.GRID)
        assert batch.keys() == reference.keys()
        for key in reference:
            assert (batch[key].centers == reference[key].centers).all(), key
            assert batch[key].radius == reference[key].radius, key
            assert batch[key].algorithm == reference[key].algorithm
            # Accounting parity too: each run owns a private DistCounter,
            # so operation counts must not depend on the backend.
            ref_stats, got_stats = reference[key].stats, batch[key].stats
            if ref_stats is not None:
                assert got_stats.dist_evals == ref_stats.dist_evals, key
                assert got_stats.n_rounds == ref_stats.n_rounds, key

    def test_thread_backend_repeatable(self, space):
        runs = [
            solve_many(
                space, 4, executor=ThreadPoolExecutorBackend(max_workers=3),
                **self.GRID,
            )
            for _ in range(2)
        ]
        for key in runs[0]:
            assert (runs[0][key].centers == runs[1][key].centers).all()
            assert runs[0][key].radius == runs[1][key].radius


class TestSharedCounterUnderThreads:
    def test_hammered_counter_total_is_exact(self):
        """ISSUE regression: a DistCounter shared by hand-rolled thread
        tasks must tally exactly — the old plain ``+=`` lost increments
        when threads interleaved between the read and the write."""
        from repro.metric.base import DistCounter

        counter = DistCounter()
        adds_per_task, tasks = 2_000, 16

        def hammer():
            for _ in range(adds_per_task):
                counter.add(1)
            return True

        results, _ = ThreadPoolExecutorBackend(max_workers=8).run(
            [hammer for _ in range(tasks)]
        )
        assert all(results)
        assert counter.evals == adds_per_task * tasks

    def test_shared_space_counter_total_is_exact(self, space):
        # The realistic shape of the race: many tasks evaluating
        # distances against one shared space.
        space.counter.reset()
        idx = np.arange(space.n, dtype=np.intp)

        def task():
            space.dists_to(idx, 0)
            return True

        tasks = [task for _ in range(64)]
        ThreadPoolExecutorBackend(max_workers=8).run(tasks)
        assert space.counter.evals == 64 * space.n
        space.counter.reset()

    def test_counter_pickles_without_its_lock(self):
        import pickle

        from repro.metric.base import DistCounter

        counter = DistCounter()
        counter.add(7)
        clone = pickle.loads(pickle.dumps(counter))
        assert clone.evals == 7
        clone.add(3)  # the restored counter has a working lock
        assert clone.evals == 10


class TestExports:
    def test_thread_backend_exported(self):
        from repro.mapreduce import ThreadPoolExecutorBackend as exported

        assert exported is ThreadPoolExecutorBackend
