"""Unit tests for the exact oracle and Hochbaum-Shmoys baseline."""

import numpy as np
import pytest

from repro.core.exact import MAX_COMBINATIONS, exact_kcenter
from repro.core.gonzalez import gonzalez
from repro.core.hochbaum_shmoys import hochbaum_shmoys
from repro.errors import InvalidParameterError
from repro.metric.euclidean import EuclideanSpace
from repro.metric.precomputed import PrecomputedSpace


class TestExact:
    def test_line_space_k2(self, line_space):
        # Positions 0,1,2,4,8 (indices 0..4).  The optimum places centers
        # at positions 2 and 8: every point is then within 2 (see
        # TestLineDetail for the enumeration).
        res = exact_kcenter(line_space, 2)
        assert res.radius == pytest.approx(2.0)

    def test_invalid_k(self, tiny_space):
        with pytest.raises(InvalidParameterError):
            exact_kcenter(tiny_space, 0)

    def test_combination_guard(self, rng):
        space = EuclideanSpace(rng.normal(size=(60, 2)))
        with pytest.raises(InvalidParameterError, match="refuses"):
            exact_kcenter(space, 10)

    def test_k_geq_n(self, tiny_space):
        res = exact_kcenter(tiny_space, tiny_space.n + 3)
        assert res.radius == pytest.approx(0.0, abs=1e-7)

    def test_empty_space(self):
        res = exact_kcenter(EuclideanSpace(np.empty((0, 2))), 2)
        assert res.radius == 0.0

    def test_never_worse_than_gonzalez(self, tiny_space):
        for k in (1, 2, 3):
            opt = exact_kcenter(tiny_space, k).radius
            for seed in range(3):
                assert opt <= gonzalez(tiny_space, k, seed=seed).radius + 1e-9

    def test_optimal_on_obvious_clusters(self, small_space):
        # Not brute-forceable at n=60/k=3? C(60,3)=34k < cap: fine.
        res = exact_kcenter(small_space, 3)
        gon = gonzalez(small_space, 3, seed=0)
        assert res.radius <= gon.radius + 1e-9
        assert gon.radius <= 2 * res.radius + 1e-7


class TestLineDetail:
    def test_exact_value_on_line(self, line_space):
        # Enumerate by hand: positions 0,1,2,4,8.
        # {1,4}: max(d(0,1), d(2,1), d(8,4)) = max(1,1,4) = 4
        # {1,8}: max(1, 1, 3, 0) -> d(4,{1,8}) = 3 -> radius 3
        # {2,8}: d(0)=2, d(1)=1, d(4)=2... wait d(4,2)=2, d(4,8)=4 -> 2. radius 2.
        # {2,8} gives max(2,1,0,2,0) = 2.  Can we do better? radius 1 needs
        # every point within 1 of a center: 8 needs a center in {8} (7..9),
        # 4 needs one in {4}; then 0,1,2 need cover by remaining 0 centers. No.
        res = exact_kcenter(line_space, 2)
        assert res.radius == pytest.approx(2.0)
        assert set(res.centers.tolist()) == {2, 4}


class TestHochbaumShmoys:
    def test_two_approximation_vs_exact(self, tiny_space):
        for k in (1, 2, 3):
            opt = exact_kcenter(tiny_space, k).radius
            got = hochbaum_shmoys(tiny_space, k).radius
            assert got <= 2.0 * opt + 1e-7

    def test_result_fields(self, small_space):
        res = hochbaum_shmoys(small_space, 3)
        assert res.algorithm == "HS"
        assert res.n_centers <= 3
        assert res.approx_factor == 2.0
        assert res.radius == pytest.approx(
            small_space.covering_radius(res.centers), abs=1e-7
        )

    def test_size_guard(self, rng):
        space = EuclideanSpace(rng.normal(size=(5000, 2)))
        with pytest.raises(InvalidParameterError, match="cap"):
            hochbaum_shmoys(space, 3)

    def test_k_geq_n(self, tiny_space):
        res = hochbaum_shmoys(tiny_space, tiny_space.n)
        assert res.radius == pytest.approx(0.0, abs=1e-7)

    def test_empty_space(self):
        assert hochbaum_shmoys(EuclideanSpace(np.empty((0, 2))), 2).radius == 0.0

    def test_line_space(self, line_space):
        res = hochbaum_shmoys(line_space, 2)
        assert res.radius <= 2 * 2.0 + 1e-9  # 2 * OPT

    def test_comparable_to_gonzalez(self, small_space):
        """The future-work comparison: both 2-approximations, same data."""
        hs = hochbaum_shmoys(small_space, 3).radius
        gon = gonzalez(small_space, 3, seed=0).radius
        lb = max(hs, gon) / 2.0
        assert hs <= 2 * 2 * lb and gon <= 2 * 2 * lb  # both within 2x of any OPT
