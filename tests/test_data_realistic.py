"""Unit tests for the simulated POKER HAND and KDD CUP 1999 stand-ins."""

import numpy as np
import pytest

from repro.data.realistic import KDD_N, POKER_N, kddcup99, poker_hand
from repro.errors import DatasetError


class TestPokerHand:
    def test_default_size_matches_uci(self):
        assert POKER_N == 25_010

    def test_schema(self):
        pts = poker_hand(500, seed=0)
        assert pts.shape == (500, 10)
        suits = pts[:, 0::2]
        ranks = pts[:, 1::2]
        assert suits.min() >= 1 and suits.max() <= 4
        assert ranks.min() >= 1 and ranks.max() <= 13
        assert np.array_equal(pts, np.rint(pts)), "all-integer attributes"

    def test_no_duplicate_cards_within_hand(self):
        pts = poker_hand(2000, seed=1)
        cards = (pts[:, 0::2] - 1) * 13 + (pts[:, 1::2] - 1)
        for row in cards:
            assert len(set(row.tolist())) == 5

    def test_distance_scale_matches_paper(self):
        """Paper Table 5 values are 8.4-19.4; the max possible Euclidean
        distance on this encoding is sqrt(5*(3^2+12^2)) ~ 27.7."""
        pts = poker_hand(3000, seed=0)
        sample = pts[np.random.default_rng(0).choice(3000, 300, replace=False)]
        from scipy.spatial.distance import pdist

        d = pdist(sample)
        assert d.max() < 27.8
        assert d.max() > 15.0

    def test_deterministic(self):
        np.testing.assert_array_equal(poker_hand(100, seed=9), poker_hand(100, seed=9))

    def test_invalid(self):
        with pytest.raises(DatasetError):
            poker_hand(0)


class TestKddCup:
    def test_default_size_matches_sample(self):
        assert KDD_N == 494_021

    def test_schema(self):
        pts = kddcup99(2000, seed=0)
        assert pts.shape == (2000, 38)
        assert (pts >= 0).all()
        # count columns bounded like the real features
        assert pts[:, 3:6].max() <= 511
        # rate columns in [0, 1]
        assert pts[:, 6:].max() <= 1.0

    def test_heavy_tails_span_decades(self):
        pts = kddcup99(50_000, seed=0)
        byte_cols = pts[:, :3]
        assert byte_cols.max() > 1e7, "outlier transfers reach >= 10^7"
        assert np.median(byte_cols) < 1e6
        # Dynamic range of several decades drives Figure 1's log axis.
        assert byte_cols.max() / max(byte_cols.min(), 1.0) > 1e5

    def test_dominated_cluster_structure(self):
        _, labels = kddcup99(50_000, seed=0, return_labels=True)
        counts = np.sort(np.bincount(labels))[::-1]
        top2 = counts[:2].sum() / counts.sum()
        assert top2 > 0.5, "two dominant traffic types (smurf/neptune-like)"

    def test_outlier_fraction_zero(self):
        pts = kddcup99(10_000, outlier_fraction=0.0, seed=0)
        assert pts[:, :3].max() < 1e7

    def test_deterministic(self):
        np.testing.assert_array_equal(
            kddcup99(500, seed=4), kddcup99(500, seed=4)
        )

    def test_invalid(self):
        with pytest.raises(DatasetError):
            kddcup99(0)
        with pytest.raises(DatasetError):
            kddcup99(10, n_clusters=1)
        with pytest.raises(DatasetError):
            kddcup99(10, n_features=2)
        with pytest.raises(DatasetError):
            kddcup99(10, outlier_fraction=1.0)
