"""Documentation consistency checks.

Two guarantees, enforced so the docs cannot silently rot:

* ``docs/algorithms.md``'s registry table matches the *live* registry —
  the same data ``repro-kcenter solve list`` prints (solver set, kinds,
  approximation factors, option and shared-knob surfaces);
* every intra-repo markdown link in ``docs/*.md`` and ``README.md``
  resolves to an existing file.

The CI docs job runs this module alongside the module doctests.
"""

import re
from pathlib import Path

import pytest

from repro.solvers import get_solver, solver_names

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS = sorted((REPO_ROOT / "docs").glob("*.md"))

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_CODE = re.compile(r"`([^`]+)`")


def _registry_table_rows() -> dict[str, list[str]]:
    """Parse docs/algorithms.md's registry table into {solver: cells}."""
    text = (REPO_ROOT / "docs" / "algorithms.md").read_text()
    assert "registry-table" in text, "marker comment missing"
    rows: dict[str, list[str]] = {}
    for line in text.splitlines():
        if not line.startswith("| `"):
            continue
        cells = [cell.strip() for cell in line.strip().strip("|").split("|")]
        name = cells[0].strip("`")
        rows[name] = cells
    return rows


class TestAlgorithmsTable:
    def test_every_registered_solver_documented(self):
        assert sorted(_registry_table_rows()) == solver_names()

    @pytest.mark.parametrize("name", solver_names())
    def test_row_matches_registry(self, name):
        cells = _registry_table_rows()[name]
        spec = get_solver(name)
        kind = cells[1].strip("`")
        assert kind == spec.kind, f"{name}: kind {kind!r} != {spec.kind!r}"
        assert cells[2] == f"{spec.approx_factor:g}", (
            f"{name}: documented factor {cells[2]!r} != {spec.approx_factor:g}"
        )
        documented_options = set(_CODE.findall(cells[5]))
        assert documented_options == set(spec.options), (
            f"{name}: options column {documented_options} != {set(spec.options)}"
        )
        documented_shared = set(_CODE.findall(cells[6]))
        assert documented_shared == set(spec.shared), (
            f"{name}: shared-knob column {documented_shared} != {set(spec.shared)}"
        )
        documented_backends = set(_CODE.findall(cells[7]))
        assert documented_backends == set(spec.backends), (
            f"{name}: backends column {documented_backends} != {set(spec.backends)}"
        )

    def test_table_is_generated_from_the_same_source_as_the_cli(self, capsys):
        # The CLI's `solve list` and the doc table both derive from the
        # registry; spot-check the CLI really shows the documented names.
        from repro.cli import main

        assert main(["solve", "list"]) == 0
        out = capsys.readouterr().out
        for name in _registry_table_rows():
            assert name in out


class TestIntraRepoLinks:
    @pytest.mark.parametrize(
        "md_file",
        [REPO_ROOT / "README.md", *DOCS],
        ids=lambda p: str(p.relative_to(REPO_ROOT)),
    )
    def test_relative_links_resolve(self, md_file):
        assert md_file.exists(), f"{md_file} missing"
        broken = []
        for target in _LINK.findall(md_file.read_text()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = (md_file.parent / target.split("#", 1)[0]).resolve()
            if not path.exists():
                broken.append(target)
        assert not broken, f"broken intra-repo links in {md_file.name}: {broken}"

    def test_docs_directory_is_populated(self):
        names = [p.name for p in DOCS]
        assert "architecture.md" in names
        assert "algorithms.md" in names
