"""Smoke tests: every shipped example must run cleanly end to end.

Examples run in-process (runpy) with their module-level sizes patched
down via monkeypatched generators where needed; they are written to
finish in seconds at their shipped sizes, so we run them as-is and
assert on their printed output.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_at_least_three_examples_shipped():
    assert len(ALL_EXAMPLES) >= 3


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_runs(name, capsys):
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100, f"{name} produced almost no output"


def test_quickstart_reports_all_algorithms(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    for algo in ("GON", "MRG", "EIM"):
        assert algo in out
    assert "speedup" in out


def test_phi_tradeoff_reports_thresholds(capsys):
    runpy.run_path(str(EXAMPLES_DIR / "phi_tradeoff.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "5.15" in out
    assert "no guarantee" in out and "guaranteed" in out
