"""Unit tests for structured JSON logging and correlation binding."""

import io
import json
import logging

from repro.obs import logs


def configured(stream):
    return logs.configure(stream=stream, logger="repro.testobs")


class TestBind:
    def test_context_empty_by_default(self):
        assert logs.context() == {}

    def test_bind_nests_and_restores(self):
        with logs.bind(run_id="r1"):
            assert logs.context() == {"run_id": "r1"}
            with logs.bind(request_id="q7"):
                assert logs.context() == {"run_id": "r1", "request_id": "q7"}
            assert logs.context() == {"run_id": "r1"}
        assert logs.context() == {}

    def test_inner_bind_shadows_outer(self):
        with logs.bind(run_id="outer"):
            with logs.bind(run_id="inner"):
                assert logs.context()["run_id"] == "inner"
            assert logs.context()["run_id"] == "outer"


class TestJsonLines:
    def emit(self, fn):
        stream = io.StringIO()
        handler = configured(stream)
        logger = logs.get_logger("testobs.unit")
        try:
            fn(logger)
        finally:
            logging.getLogger("repro.testobs").removeHandler(handler)
        lines = [json.loads(line) for line in stream.getvalue().splitlines()]
        assert lines, "expected at least one emitted record"
        return lines

    def test_record_is_one_json_object_per_line(self):
        (rec,) = self.emit(lambda log: log.info("hello"))
        assert rec["msg"] == "hello"
        assert rec["level"] == "info"
        assert rec["logger"] == "repro.testobs.unit"
        assert isinstance(rec["ts"], float)

    def test_bound_context_rides_every_record(self):
        def fn(log):
            with logs.bind(request_id="r42", run_id="abc"):
                log.info("answered")

        (rec,) = self.emit(fn)
        assert rec["request_id"] == "r42"
        assert rec["run_id"] == "abc"

    def test_extra_fields_merge(self):
        (rec,) = self.emit(
            lambda log: log.info("done", extra={"fields": {"queue_ms": 1.5}})
        )
        assert rec["queue_ms"] == 1.5

    def test_exceptions_land_under_exc(self):
        def fn(log):
            try:
                raise ValueError("boom")
            except ValueError:
                log.warning("failed", exc_info=True)

        (rec,) = self.emit(fn)
        assert rec["level"] == "warning"
        assert "ValueError: boom" in rec["exc"]

    def test_unserializable_fields_degrade_to_str(self):
        (rec,) = self.emit(
            lambda log: log.info("x", extra={"fields": {"obj": object()}})
        )
        assert "object object" in rec["obj"]


class TestLoggerTree:
    def test_get_logger_prefixes_into_repro_tree(self):
        assert logs.get_logger("serve").name == "repro.serve"
        assert logs.get_logger("repro.serve").name == "repro.serve"
        assert logs.get_logger().name == "repro"

    def test_import_is_silent(self):
        # The repro root carries a NullHandler, so emitting without
        # configure() must not warn or print anywhere.
        assert any(
            isinstance(h, logging.NullHandler)
            for h in logging.getLogger("repro").handlers
        )
