"""Integration tests: whole-pipeline behaviour on realistic (small) workloads.

These exercise the exact code paths the paper's experiments use — registry
dataset -> Euclidean space -> algorithm -> accounting -> tables/figures —
and assert the paper's qualitative claims at reduced sizes.
"""

import numpy as np
import pytest

from repro.analysis.experiments import (
    ExperimentSpec,
    aggregate,
    eim_spec,
    gon_spec,
    mrg_spec,
    run_experiment,
)
from repro.analysis.figures import series_over_k, series_over_n
from repro.analysis.report import check_runtime_ordering, fallback_ks
from repro.analysis.tables import solution_value_table
from repro.core.bounds import greedy_lower_bound
from repro.core.eim import eim
from repro.core.gonzalez import gonzalez
from repro.core.mrg import mrg
from repro.data.registry import make_dataset


@pytest.fixture(scope="module")
def gau_space():
    return make_dataset("gau", 12_000, seed=7, k_prime=8).space()


class TestAlgorithmAgreementOnRealWorkloads:
    def test_all_three_find_the_clusters(self, gau_space):
        """At k = k' on a well-separated GAU instance every algorithm must
        resolve the generating clusters (radius ~ in-cluster scale, not
        inter-cluster scale)."""
        for result in (
            gonzalez(gau_space, 8, seed=0),
            mrg(gau_space, 8, m=10, seed=0),
            eim(gau_space, 8, m=10, seed=0),
        ):
            assert result.radius < 2.0, result.algorithm

    def test_guarantees_hold_against_certified_bound(self, gau_space):
        lb = greedy_lower_bound(gau_space, 5)
        assert gonzalez(gau_space, 5, seed=1).radius <= 2 * 2 * lb + 1e-9
        r = mrg(gau_space, 5, m=10, seed=1)
        assert r.radius <= r.approx_factor * 2 * lb + 1e-9

    def test_mrg_parallel_time_beats_gon(self, gau_space):
        """The headline speedup: simulated parallel time of MRG is far
        below sequential GON's wall time on the same input.  Per-reducer
        tasks are sub-millisecond here, so we take the best of three
        repetitions to shed scheduler noise."""
        t_gon = min(gonzalez(gau_space, 10, seed=0).wall_time for _ in range(3))
        t_mrg = min(
            mrg(gau_space, 10, m=50, seed=0).stats.parallel_time for _ in range(3)
        )
        assert t_mrg < t_gon

    def test_eim_slower_than_gon_in_sampling_regime(self, gau_space):
        res = eim(gau_space, 3, m=50, seed=0)
        assert not res.extra["fallback_to_gon"]
        t_gon = gonzalez(gau_space, 3, seed=0).wall_time
        assert res.stats.parallel_time > t_gon


class TestRoundAccountingClaims:
    def test_mrg_two_rounds_standard_regime(self, gau_space):
        res = mrg(gau_space, 10, m=10, seed=0)
        assert res.n_rounds == 2

    def test_eim_round_count_formula(self, gau_space):
        """Section 8.2: iterations -> 3i+1 MapReduce rounds (4 or 7 for the
        1-2 iterations the paper observed)."""
        res = eim(gau_space, 3, m=10, seed=0)
        assert res.n_rounds == 3 * res.extra["iterations"] + 1

    def test_shuffle_accounting_nonzero(self, gau_space):
        res = mrg(gau_space, 5, m=10, seed=0)
        assert res.stats.shuffle_elements >= gau_space.n

    def test_dist_evals_attributed(self, gau_space):
        res = mrg(gau_space, 5, m=10, seed=0)
        # Round 1 is m GONs on n/m points: ~ k * n total evaluations.
        assert res.stats.dist_evals >= 5 * gau_space.n * 0.9


class TestHarnessEndToEnd:
    def test_small_experiment_table_and_checks(self):
        spec = ExperimentSpec(
            name="mini",
            dataset="gau",
            n=8000,
            ks=[2, 4],
            algorithms=[mrg_spec(m=8), eim_spec(m=8), gon_spec()],
            dataset_params={"k_prime": 4},
            n_instances=1,
            n_runs=1,
            master_seed=3,
        )
        # Timing comparisons on sub-millisecond reducer tasks are noisy
        # under load: keep the best-behaved of three grid repetitions.
        for _ in range(3):
            records = run_experiment(spec)
            ordering = check_runtime_ordering(records, min_ks_ordered=0.0)
            if ordering.passed:
                break
        headers, rows = solution_value_table(records, ks=[2, 4])
        assert headers == ["k", "MRG", "EIM", "GON"]
        assert all(len(r) == 4 for r in rows)
        assert ordering.passed  # MRG fastest at every k

    def test_series_over_n_shapes(self):
        spec = ExperimentSpec(
            name="mini4",
            dataset="gau",
            n=4000,
            ks=[5],
            algorithms=[mrg_spec(m=8), gon_spec()],
            dataset_params={"k_prime": 4},
            n_instances=1,
            n_runs=1,
        )
        series, records = series_over_n(spec, [2000, 4000], value="parallel_time")
        assert [s.label for s in series] == ["MRG", "GON"]
        assert all(len(s.y) == 2 for s in series)
        assert len(records) == 2 * 2  # 2 n values x 2 algorithms

    def test_fallback_detection_on_small_n_large_k(self):
        spec = ExperimentSpec(
            name="fb",
            dataset="unif",
            n=1500,
            ks=[2, 100],
            algorithms=[eim_spec(m=4)],
            n_instances=1,
            n_runs=1,
        )
        records = run_experiment(spec)
        assert 100 in fallback_ks(records)


class TestCrossAlgorithmConsistency:
    def test_all_centers_valid_on_poker(self):
        space = make_dataset("poker", 4000, seed=0).space()
        for res in (
            gonzalez(space, 10, seed=0),
            mrg(space, 10, m=8, seed=0),
            eim(space, 10, m=8, seed=0),
        ):
            assert res.n_centers == 10
            assert len(np.unique(res.centers)) == 10
            assert res.radius == pytest.approx(
                space.covering_radius(res.centers), abs=1e-7
            )

    def test_kdd_scale_objective(self):
        """Figure 1's log-scale claim: solution values on KDD-like data
        span decades and shrink by orders of magnitude as k grows."""
        space = make_dataset("kddcup", 8000, seed=0).space()
        r2 = gonzalez(space, 2, seed=0).radius
        r100 = gonzalez(space, 100, seed=0).radius
        assert r2 > 1e6
        assert r100 < r2 / 10
