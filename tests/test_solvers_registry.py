"""Unit tests for the solver registry and the SolveConfig validation."""

import pytest

from repro.errors import InvalidParameterError
from repro.solvers import (
    REGISTRY,
    SolveConfig,
    SolverRegistry,
    SolverSpec,
    get_solver,
    list_solvers,
    register_solver,
    solver_names,
)
from repro.solvers.config import UNSET
from repro.solvers.registry import canonical_key


class TestCanonicalKey:
    def test_folds_case_dashes_spaces(self):
        assert canonical_key("MR-Hochbaum Shmoys") == "mr_hochbaum_shmoys"
        assert canonical_key("  GON ") == "gon"


class TestBuiltinCatalog:
    def test_all_seven_registered(self):
        assert solver_names() == [
            "eim", "exact", "gon", "hs", "mrg", "mrhs", "stream",
        ]

    def test_kinds_and_factors(self):
        expected = {
            "gon": ("sequential", 2.0),
            "mrg": ("mapreduce", 4.0),
            "eim": ("mapreduce", 10.0),
            "hs": ("sequential", 2.0),
            "mrhs": ("mapreduce", 8.0),
            "stream": ("sequential", 8.0),
            "exact": ("exact", 1.0),
        }
        for name, (kind, factor) in expected.items():
            spec = get_solver(name)
            assert spec.kind == kind
            assert spec.approx_factor == factor

    def test_lookup_by_alias_and_case(self):
        assert get_solver("gonzalez") is get_solver("gon")
        assert get_solver("GON") is get_solver("gon")
        assert get_solver("mr-hochbaum-shmoys") is get_solver("mrhs")
        assert get_solver("Ene_Im_Moseley") is get_solver("eim")
        assert get_solver("doubling") is get_solver("stream")
        assert get_solver("Streaming") is get_solver("stream")

    def test_labels_match_result_tags(self):
        for spec in list_solvers():
            assert spec.label == spec.name.upper()

    def test_mapreduce_solvers_share_cluster_knobs(self):
        for name in ("mrg", "eim", "mrhs"):
            assert get_solver(name).shared == {
                "m", "capacity", "seed", "executor", "evaluate"
            }

    def test_unknown_name_suggests_close_matches(self):
        with pytest.raises(InvalidParameterError, match="gon"):
            get_solver("gonz")
        with pytest.raises(InvalidParameterError, match="unknown algorithm"):
            get_solver("definitely-not-a-solver")

    def test_membership_and_iteration(self):
        assert "eim" in REGISTRY
        assert "EIM" in REGISTRY
        assert "nope" not in REGISTRY
        assert len(REGISTRY) == 7
        assert [spec.name for spec in REGISTRY] == solver_names()


class TestRegistration:
    def test_decorator_returns_function_unchanged(self):
        registry = SolverRegistry()

        @register_solver("toy", kind="sequential", registry=registry)
        def toy(space, k):
            return "ran"

        assert toy(None, 1) == "ran"
        assert registry.get("toy").fn is toy

    def test_duplicate_name_rejected(self):
        registry = SolverRegistry()
        register_solver("toy", kind="sequential", registry=registry)(lambda s, k: None)
        with pytest.raises(InvalidParameterError, match="already registered"):
            register_solver("TOY", kind="exact", registry=registry)(lambda s, k: None)

    def test_alias_colliding_with_name_rejected(self):
        registry = SolverRegistry()
        register_solver("toy", kind="sequential", registry=registry)(lambda s, k: None)
        with pytest.raises(InvalidParameterError, match="already registered"):
            register_solver(
                "other", aliases=("toy",), kind="sequential", registry=registry
            )(lambda s, k: None)

    def test_invalid_kind_rejected(self):
        with pytest.raises(InvalidParameterError, match="kind"):
            SolverSpec(name="x", fn=lambda s, k: None, kind="quantum")


class TestSolveConfig:
    def test_k_validation(self):
        with pytest.raises(InvalidParameterError, match="positive"):
            SolveConfig(k=0)
        with pytest.raises(InvalidParameterError, match="integer"):
            SolveConfig(k="ten")
        assert SolveConfig(k=3.0).k == 3  # integral floats are accepted

    def test_unset_knobs_are_omitted(self):
        spec = get_solver("mrg")
        assert SolveConfig(k=2).kwargs_for(spec) == {}

    def test_explicit_knobs_forwarded(self):
        spec = get_solver("eim")
        config = SolveConfig(k=2, m=8, seed=3, evaluate=False)
        assert config.kwargs_for(spec) == {"m": 8, "seed": 3, "evaluate": False}

    def test_unknown_option_rejected(self):
        spec = get_solver("gon")
        with pytest.raises(InvalidParameterError, match="unknown option"):
            SolveConfig(k=2, options={"phi": 4.0}).kwargs_for(spec)

    def test_unsupported_shared_knob_rejected(self):
        spec = get_solver("gon")
        with pytest.raises(InvalidParameterError, match="does not accept 'm'"):
            SolveConfig(k=2, m=10).kwargs_for(spec)

    def test_seed_dropped_for_deterministic_solvers(self):
        for name in ("hs", "exact"):
            assert SolveConfig(k=2, seed=7).kwargs_for(get_solver(name)) == {}

    def test_shared_knob_inside_options_rejected(self):
        with pytest.raises(InvalidParameterError, match="shared knob"):
            SolveConfig(k=2, options={"seed": 1})

    def test_replace_copies_options(self):
        config = SolveConfig(k=2, options={"phi": 4.0})
        clone = config.replace(k=5)
        clone.options["phi"] = 1.0
        assert config.options["phi"] == 4.0
        assert clone.k == 5
        assert config.k == 2

    def test_unset_is_falsy_singleton(self):
        assert not UNSET
        assert repr(UNSET) == "UNSET"
