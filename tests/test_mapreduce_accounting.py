"""Unit tests for round/job cost accounting."""

import pytest

from repro.mapreduce.accounting import JobStats, RoundStats


class TestRoundStats:
    def test_parallel_time_is_max(self):
        r = RoundStats("r", task_times=[0.1, 0.5, 0.2], task_sizes=[10, 10, 10])
        assert r.parallel_time == 0.5

    def test_cpu_time_is_sum(self):
        r = RoundStats("r", task_times=[0.1, 0.5, 0.2], task_sizes=[1, 2, 3])
        assert r.cpu_time == pytest.approx(0.8)

    def test_empty_round(self):
        r = RoundStats("empty")
        assert r.parallel_time == 0.0
        assert r.cpu_time == 0.0
        assert r.max_task_size == 0
        assert r.n_tasks == 0

    def test_max_task_size(self):
        r = RoundStats("r", task_times=[0.0, 0.0], task_sizes=[7, 100])
        assert r.max_task_size == 100


class TestJobStats:
    def _job(self) -> JobStats:
        job = JobStats()
        job.add(RoundStats("a", task_times=[0.2, 0.4], task_sizes=[5, 5],
                           shuffle_elements=10, dist_evals=100))
        job.add(RoundStats("b", task_times=[0.3], task_sizes=[8],
                           shuffle_elements=8, dist_evals=50))
        return job

    def test_parallel_time_sums_round_maxima(self):
        assert self._job().parallel_time == pytest.approx(0.4 + 0.3)

    def test_cpu_time_sums_everything(self):
        assert self._job().cpu_time == pytest.approx(0.2 + 0.4 + 0.3)

    def test_counters(self):
        job = self._job()
        assert job.n_rounds == 2
        assert job.shuffle_elements == 18
        assert job.dist_evals == 150
        assert job.max_machine_load == 8

    def test_parallel_never_exceeds_cpu(self):
        job = self._job()
        assert job.parallel_time <= job.cpu_time

    def test_merged_preserves_order(self):
        a, b = self._job(), self._job()
        merged = a.merged(b)
        assert merged.n_rounds == 4
        assert [r.label for r in merged.rounds] == ["a", "b", "a", "b"]
        # Originals untouched.
        assert a.n_rounds == 2 and b.n_rounds == 2

    def test_summary_keys(self):
        s = self._job().summary()
        assert set(s) == {
            "rounds", "parallel_time", "cpu_time", "shuffle_elements",
            "dist_evals", "max_machine_load",
        }

    def test_empty_job(self):
        job = JobStats()
        assert job.parallel_time == 0.0
        assert job.max_machine_load == 0
        assert job.n_rounds == 0
