"""Unit tests for round/job cost accounting."""

import pytest

from repro.mapreduce.accounting import JobStats, RoundStats


class TestRoundStats:
    def test_parallel_time_is_max(self):
        r = RoundStats("r", task_times=[0.1, 0.5, 0.2], task_sizes=[10, 10, 10])
        assert r.parallel_time == 0.5

    def test_cpu_time_is_sum(self):
        r = RoundStats("r", task_times=[0.1, 0.5, 0.2], task_sizes=[1, 2, 3])
        assert r.cpu_time == pytest.approx(0.8)

    def test_empty_round(self):
        r = RoundStats("empty")
        assert r.parallel_time == 0.0
        assert r.cpu_time == 0.0
        assert r.max_task_size == 0
        assert r.n_tasks == 0

    def test_max_task_size(self):
        r = RoundStats("r", task_times=[0.0, 0.0], task_sizes=[7, 100])
        assert r.max_task_size == 100


class TestJobStats:
    def _job(self) -> JobStats:
        job = JobStats()
        job.add(RoundStats("a", task_times=[0.2, 0.4], task_sizes=[5, 5],
                           shuffle_elements=10, dist_evals=100))
        job.add(RoundStats("b", task_times=[0.3], task_sizes=[8],
                           shuffle_elements=8, dist_evals=50))
        return job

    def test_parallel_time_sums_round_maxima(self):
        assert self._job().parallel_time == pytest.approx(0.4 + 0.3)

    def test_cpu_time_sums_everything(self):
        assert self._job().cpu_time == pytest.approx(0.2 + 0.4 + 0.3)

    def test_counters(self):
        job = self._job()
        assert job.n_rounds == 2
        assert job.shuffle_elements == 18
        assert job.dist_evals == 150
        assert job.max_machine_load == 8

    def test_parallel_never_exceeds_cpu(self):
        job = self._job()
        assert job.parallel_time <= job.cpu_time

    def test_merged_preserves_order(self):
        a, b = self._job(), self._job()
        merged = a.merged(b)
        assert merged.n_rounds == 4
        assert [r.label for r in merged.rounds] == ["a", "b", "a", "b"]
        # Originals untouched.
        assert a.n_rounds == 2 and b.n_rounds == 2

    def test_summary_keys(self):
        s = self._job().summary()
        assert set(s) == {
            "rounds", "parallel_time", "cpu_time", "shuffle_elements",
            "dist_evals", "max_machine_load",
        }

    def test_empty_job(self):
        job = JobStats()
        assert job.parallel_time == 0.0
        assert job.max_machine_load == 0
        assert job.n_rounds == 0


class TestBatchSummary:
    """The wire form: BatchSummary must survive a JSON round-trip exactly
    (it rides back per response over repro.serve)."""

    def _sample(self):
        from repro.mapreduce.accounting import BatchSummary

        return BatchSummary(
            runs=3, parallel_time=0.25, cpu_time=0.6, dist_evals=1234,
            cache_hits=2, cache_misses=1, solver_rounds=4,
        )

    def test_json_round_trip_is_exact(self):
        from repro.mapreduce.accounting import BatchSummary

        summary = self._sample()
        assert BatchSummary.from_json(summary.to_json()) == summary

    def test_to_dict_matches_summary(self):
        summary = self._sample()
        assert summary.to_dict() == summary.summary()

    def test_from_dict_ignores_unknown_and_defaults_missing(self):
        from repro.mapreduce.accounting import BatchSummary

        rebuilt = BatchSummary.from_dict(
            {"runs": 2, "dist_evals": 9, "a_future_field": 1}
        )
        assert rebuilt.runs == 2
        assert rebuilt.dist_evals == 9
        assert rebuilt.cache_hits == 0

    def test_merged_sums_counts_and_maxes_parallel_time(self):
        from repro.mapreduce.accounting import BatchSummary

        a = BatchSummary(runs=1, parallel_time=0.5, cpu_time=0.5,
                         dist_evals=10, cache_hits=1, solver_rounds=2)
        b = BatchSummary(runs=1, parallel_time=0.2, cpu_time=0.2,
                         dist_evals=5, cache_misses=1)
        merged = BatchSummary.merged([a, b])
        assert merged.runs == 2
        assert merged.parallel_time == 0.5  # slowest run, not the sum
        assert merged.cpu_time == pytest.approx(0.7)
        assert merged.dist_evals == 15
        assert (merged.cache_hits, merged.cache_misses) == (1, 1)
        assert merged.solver_rounds == 2

    def test_merged_of_nothing_is_the_zero_summary(self):
        from repro.mapreduce.accounting import BatchSummary

        assert BatchSummary.merged([]) == BatchSummary()


class TestSchemaStability:
    """The fault-tolerance fields are additive: new records round-trip
    exactly, and records written *before* the fields existed (old
    ``BENCH_*.json`` files, archived serve responses) still parse with
    zero-valued fault accounting."""

    def _round(self) -> RoundStats:
        return RoundStats(
            "mrg.reduce[1]",
            task_times=[0.1, 0.2],
            task_sizes=[5, 5],
            shuffle_elements=10,
            dist_evals=100,
            retries=2,
            speculative_wins=1,
            wasted_task_seconds=0.05,
        )

    def test_round_stats_round_trip_is_exact(self):
        stats = self._round()
        assert RoundStats.from_dict(stats.to_dict()) == stats

    def test_round_stats_old_schema_parses_with_zero_fault_fields(self):
        old = self._round().to_dict()
        for field in ("retries", "speculative_wins", "wasted_task_seconds"):
            del old[field]
        stats = RoundStats.from_dict(old)
        assert stats.dist_evals == 100
        assert stats.retries == 0
        assert stats.speculative_wins == 0
        assert stats.wasted_task_seconds == 0.0

    def test_round_stats_from_dict_ignores_future_fields(self):
        data = self._round().to_dict()
        data["a_future_field"] = "whatever"
        assert RoundStats.from_dict(data) == self._round()

    def test_job_stats_sum_fault_fields_across_rounds(self):
        job = JobStats()
        job.add(self._round())
        job.add(self._round())
        assert job.retries == 4
        assert job.speculative_wins == 2
        assert job.wasted_task_seconds == pytest.approx(0.1)
        # The experiment-record schema is frozen: fault accounting rides
        # on properties, not new summary() keys.
        assert "retries" not in job.summary()

    def test_batch_summary_old_json_parses(self):
        from repro.mapreduce.accounting import BatchSummary

        new = BatchSummary(
            runs=1, dist_evals=9, retries=3, speculative_wins=1,
            wasted_task_seconds=0.2,
        )
        wire = new.to_dict()
        assert wire["retries"] == 3
        for field in ("retries", "speculative_wins", "wasted_task_seconds"):
            del wire[field]
        old = BatchSummary.from_dict(wire)
        assert old.dist_evals == 9
        assert old.retries == 0 and old.wasted_task_seconds == 0.0

    def test_batch_summary_merged_accumulates_fault_fields(self):
        from repro.mapreduce.accounting import BatchSummary

        a = BatchSummary(runs=1, retries=1, wasted_task_seconds=0.1)
        b = BatchSummary(runs=1, retries=2, speculative_wins=1,
                         wasted_task_seconds=0.3)
        merged = BatchSummary.merged([a, b])
        assert merged.retries == 3
        assert merged.speculative_wins == 1
        assert merged.wasted_task_seconds == pytest.approx(0.4)
