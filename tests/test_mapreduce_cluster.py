"""Unit tests for the simulated cluster and the task executors.

Round tasks are built as :class:`~repro.mapreduce.tasks.TaskSpec`s over
the module-level helpers at the bottom — the task contract rejects
lambdas and closures at the ``run_round`` boundary (covered in
``tests/test_mapreduce_tasks.py``).
"""

import time

import pytest

from repro.errors import CapacityError, InvalidParameterError
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.executor import (
    ProcessPoolExecutorBackend,
    SequentialExecutor,
    run_task,
)
from repro.mapreduce.tasks import TaskSpec
from repro.metric.base import DistCounter


def _const(value):
    return value


def _noop():
    return None


def _append(sink, value):
    sink.append(value)


def _count(counter, n):
    counter.add(n)


def _sleep(seconds):
    time.sleep(seconds)


def _spec(fn=_noop, *args):
    return TaskSpec(fn, args=args)


class TestSimulatedCluster:
    def test_round_results_in_task_order(self):
        cluster = SimulatedCluster(m=4)
        results = cluster.run_round(
            "r", [_spec(_const, i * 10) for i in range(3)], task_sizes=[1, 1, 1]
        )
        assert results == [0, 10, 20]

    def test_round_stats_recorded(self):
        cluster = SimulatedCluster(m=2)
        cluster.run_round("first", [_spec()], task_sizes=[5])
        cluster.run_round("second", [_spec(), _spec()], task_sizes=[3, 4])
        assert cluster.stats.n_rounds == 2
        assert [r.label for r in cluster.stats.rounds] == ["first", "second"]
        assert cluster.stats.rounds[1].task_sizes == [3, 4]
        assert cluster.stats.rounds[1].shuffle_elements == 7

    def test_explicit_shuffle_elements(self):
        cluster = SimulatedCluster(m=1)
        cluster.run_round("r", [_spec()], task_sizes=[5], shuffle_elements=2)
        assert cluster.stats.rounds[0].shuffle_elements == 2

    def test_capacity_enforced_before_any_task_runs(self):
        cluster = SimulatedCluster(m=2, capacity=10)
        ran = []
        with pytest.raises(CapacityError, match="exceeds machine capacity"):
            cluster.run_round(
                "r",
                [_spec(_append, ran, 1), _spec(_append, ran, 2)],
                task_sizes=[5, 11],
            )
        assert ran == [], "no partial work on capacity violation"
        assert cluster.stats.n_rounds == 0

    def test_more_tasks_than_machines(self):
        cluster = SimulatedCluster(m=2)
        with pytest.raises(CapacityError, match="machines"):
            cluster.run_round("r", [_spec()] * 3, task_sizes=[1, 1, 1])

    def test_mismatched_sizes(self):
        cluster = SimulatedCluster(m=2)
        with pytest.raises(InvalidParameterError, match="sizes"):
            cluster.run_round("r", [_spec()], task_sizes=[1, 2])

    def test_dist_counter_attribution(self):
        counter = DistCounter()
        cluster = SimulatedCluster(m=2, dist_counter=counter)
        cluster.run_round("r", [_spec(_count, counter, 7)], task_sizes=[1])
        cluster.run_round("r2", [_spec(_count, counter, 5)], task_sizes=[1])
        assert cluster.stats.rounds[0].dist_evals == 7
        assert cluster.stats.rounds[1].dist_evals == 5

    def test_parallel_time_is_slowest_task(self):
        cluster = SimulatedCluster(m=2)
        cluster.run_round(
            "r",
            [_spec(_sleep, 0.02), _spec()],
            task_sizes=[1, 1],
        )
        stats = cluster.stats.rounds[0]
        assert stats.parallel_time >= 0.02
        assert stats.parallel_time == max(stats.task_times)

    def test_reset_stats(self):
        cluster = SimulatedCluster(m=1)
        cluster.run_round("r", [_spec()], task_sizes=[1])
        cluster.reset_stats()
        assert cluster.stats.n_rounds == 0

    def test_invalid_construction(self):
        with pytest.raises(InvalidParameterError):
            SimulatedCluster(m=0)
        with pytest.raises(InvalidParameterError):
            SimulatedCluster(m=2, capacity=0)

    def test_unbounded_capacity(self):
        cluster = SimulatedCluster(m=1, capacity=None)
        cluster.run_round("r", [_spec()], task_sizes=[10**12])
        assert cluster.stats.rounds[0].max_task_size == 10**12


class TestExecutors:
    def test_run_task_times(self):
        result, seconds = run_task(lambda: 42)
        assert result == 42 and seconds >= 0.0

    def test_sequential_order_and_times(self):
        results, times = SequentialExecutor().run([lambda: "a", lambda: "b"])
        assert results == ["a", "b"]
        assert len(times) == 2 and all(t >= 0 for t in times)

    def test_sequential_empty(self):
        assert SequentialExecutor().run([]) == ([], [])

    def test_process_pool_empty(self):
        assert ProcessPoolExecutorBackend().run([]) == ([], [])

    def test_process_pool_runs_picklable_tasks(self):
        backend = ProcessPoolExecutorBackend(max_workers=2)
        results, times = backend.run([_picklable_task_3, _picklable_task_4])
        assert results == [9, 16]
        assert len(times) == 2


def _picklable_task_3():
    return 3 * 3


def _picklable_task_4():
    return 4 * 4
