"""Unit tests for the chunked point streams in repro.store."""

import numpy as np
import pytest

from repro.data import make_stream
from repro.errors import DatasetError, InvalidParameterError
from repro.store import (
    ArrayStream,
    GeneratorStream,
    MemmapStream,
    as_stream,
    default_chunk_rows,
    write_npy,
)


def materialise(stream):
    """Reference materialisation: concatenate every yielded chunk."""
    blocks = [block for block, _ in stream]
    return np.concatenate(blocks, axis=0) if blocks else np.empty((0, stream.dim))


@pytest.fixture
def points():
    return np.random.default_rng(0).normal(size=(157, 3)) * 10


class TestArrayStream:
    def test_grid_geometry(self, points):
        s = ArrayStream(points, chunk_size=50)
        assert (s.n, s.dim, s.n_chunks) == (157, 3, 4)
        assert s.chunk_span(0) == (0, 50)
        assert s.chunk_span(3) == (150, 157)
        with pytest.raises(InvalidParameterError):
            s.chunk_span(4)

    def test_iteration_covers_with_offsets(self, points):
        s = ArrayStream(points, chunk_size=50)
        offsets = []
        for block, offset in s:
            offsets.append(offset)
            assert np.array_equal(block, points[offset : offset + block.shape[0]])
        assert offsets == [0, 50, 100, 150]
        assert np.array_equal(materialise(s), points)

    @pytest.mark.parametrize("chunk_size", [1, 7, 157, 1000])
    def test_edge_chunk_sizes(self, points, chunk_size):
        s = ArrayStream(points, chunk_size=chunk_size)
        assert np.array_equal(materialise(s), points)

    def test_default_chunk_size_from_budget(self, points):
        s = ArrayStream(points)
        assert s.chunk_size == default_chunk_rows(3)

    def test_invalid_chunk_size(self, points):
        with pytest.raises(InvalidParameterError):
            ArrayStream(points, chunk_size=0)

    def test_chunks_are_views(self, points):
        s = ArrayStream(points, chunk_size=64)
        assert s.read_chunk(0).base is s.points


class TestMemmapStream:
    def test_round_trip(self, points, tmp_path):
        path = tmp_path / "pts.npy"
        np.save(path, points)
        s = MemmapStream(path, chunk_size=40)
        assert (s.n, s.dim) == points.shape
        assert s.file_dtype == np.float64
        assert np.array_equal(materialise(s), points)

    def test_write_npy_export(self, points, tmp_path):
        path = write_npy(ArrayStream(points, chunk_size=13), tmp_path / "out.npy")
        assert np.array_equal(np.load(path), points)

    def test_non_float_dtypes_served_as_float64(self, tmp_path):
        ints = np.arange(12, dtype=np.int32).reshape(6, 2)
        path = tmp_path / "ints.npy"
        np.save(path, ints)
        s = MemmapStream(path, chunk_size=4)
        block = s.read_chunk(0)
        assert block.dtype == np.float64
        assert np.array_equal(materialise(s), ints.astype(np.float64))

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            MemmapStream(tmp_path / "nope.npy")

    def test_wrong_ndim_rejected(self, tmp_path):
        path = tmp_path / "flat.npy"
        np.save(path, np.arange(10.0))
        with pytest.raises(DatasetError):
            MemmapStream(path)

    def test_pickles_by_path(self, points, tmp_path):
        import pickle

        path = tmp_path / "pts.npy"
        np.save(path, points)
        s = MemmapStream(path, chunk_size=40)
        clone = pickle.loads(pickle.dumps(s))
        assert np.array_equal(materialise(clone), points)


class TestGeneratorStream:
    @pytest.mark.parametrize("kind", ["unif", "gau", "unb"])
    def test_chunk_size_invariance(self, kind):
        """The generated dataset is bit-identical for every chunk size.

        gen_block=50 makes chunks straddle generation blocks, so the
        assembly path (not just a single block slice) is what's invariant.
        """
        ref = materialise(
            GeneratorStream(kind, 257, seed=11, chunk_size=1, gen_block=50)
        )
        for chunk_size in (3, 64, 257, 400):
            got = materialise(
                GeneratorStream(kind, 257, seed=11, chunk_size=chunk_size, gen_block=50)
            )
            assert np.array_equal(ref, got), chunk_size

    def test_random_access_matches_sequential(self):
        s = GeneratorStream("gau", 500, seed=3, chunk_size=37, gen_block=64)
        want = materialise(s)
        for i in reversed(range(s.n_chunks)):  # access out of order
            start, stop = s.chunk_span(i)
            assert np.array_equal(s.read_chunk(i), want[start:stop])

    def test_seed_changes_data(self):
        a = materialise(GeneratorStream("unif", 100, seed=1, chunk_size=32))
        b = materialise(GeneratorStream("unif", 100, seed=2, chunk_size=32))
        assert not np.array_equal(a, b)

    def test_gen_block_is_dataset_identity(self):
        a = materialise(GeneratorStream("unif", 100, seed=1, chunk_size=32))
        b = materialise(
            GeneratorStream("unif", 100, seed=1, chunk_size=32, gen_block=16)
        )
        assert not np.array_equal(a, b)

    def test_to_npy_streams_identically(self, tmp_path):
        s = GeneratorStream("unb", 300, seed=9, chunk_size=77, k_prime=4)
        path = s.to_npy(tmp_path / "unb.npy")
        assert np.array_equal(np.load(path), materialise(s))

    def test_clustered_family_explicit_centers(self):
        centers = np.array([[0.0, 0.0], [100.0, 100.0]])
        s = GeneratorStream(
            "clustered", 400, seed=5, chunk_size=100,
            centers=centers, weights=[1.0, 1.0], sigma=0.5,
        )
        pts = materialise(s)
        # every point hugs one of the two centers
        d = np.minimum(
            np.linalg.norm(pts - centers[0], axis=1),
            np.linalg.norm(pts - centers[1], axis=1),
        )
        assert d.max() < 10.0

    def test_unif_stays_in_cube(self):
        pts = materialise(GeneratorStream("unif", 1000, seed=0, side=50.0, dim=4))
        assert pts.shape == (1000, 4)
        assert pts.min() >= 0.0 and pts.max() <= 50.0

    def test_unb_is_unbalanced(self):
        s = GeneratorStream("unb", 4000, seed=0, k_prime=10, heavy_fraction=0.5)
        assert s.params["heavy_fraction"] == 0.5

    def test_invalid_family_and_params(self):
        with pytest.raises(DatasetError):
            GeneratorStream("mystery", 100)
        with pytest.raises(DatasetError):
            GeneratorStream("unif", 0)
        with pytest.raises(DatasetError):
            GeneratorStream("unb", 100, k_prime=1)
        with pytest.raises(DatasetError):
            GeneratorStream("unif", 100, side=-1.0)


class TestAsStream:
    def test_passthrough_and_coercion(self, points, tmp_path):
        s = ArrayStream(points, chunk_size=10)
        assert as_stream(s) is s
        assert isinstance(as_stream(points), ArrayStream)
        path = tmp_path / "pts.npy"
        np.save(path, points)
        assert isinstance(as_stream(str(path)), MemmapStream)
        assert isinstance(as_stream(path), MemmapStream)

    def test_no_implicit_rechunk(self, points):
        s = ArrayStream(points, chunk_size=10)
        assert as_stream(s, chunk_size=10) is s
        with pytest.raises(InvalidParameterError):
            as_stream(s, chunk_size=20)


class TestMakeStream:
    def test_registry_families(self):
        s = make_stream("gau", 200, seed=1, chunk_size=64, k_prime=3)
        assert isinstance(s, GeneratorStream)
        assert (s.n, s.dim) == (200, 3)

    def test_non_streamable_rejected(self):
        with pytest.raises(DatasetError):
            make_stream("poker", 100)

    def test_npz_archive_rejected(self, tmp_path):
        path = tmp_path / "arc.npz"
        np.savez(path, a=np.zeros((4, 2)))
        with pytest.raises(DatasetError, match="archive"):
            MemmapStream(path)
