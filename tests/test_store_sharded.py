"""Sharded directory store: manifest round-trips, per-shard streams.

The layout contract: ``write_shards`` splits a stream into chunk-aligned
``.npy`` groups + a JSON manifest; ``ShardedStream`` re-serves the exact
chunk grid of the source stream (sharding is layout, not identity), each
shard opens and pickles independently, and coercion from a directory
path flows through ``as_stream``/``as_space`` into the solvers.
"""

import json
import pickle

import numpy as np
import pytest

from repro.errors import DatasetError, InvalidParameterError
from repro.store import (
    ArrayStream,
    ChunkedMetricSpace,
    GeneratorStream,
    MemmapStream,
    ShardedStream,
    SliceStream,
    as_space,
    as_stream,
    write_shards,
)
from repro.store.sharded import MANIFEST_NAME


@pytest.fixture
def gen():
    return GeneratorStream("gau", 3000, seed=11, chunk_size=500, k_prime=6)


@pytest.fixture
def materialised(gen):
    return np.concatenate([block for block, _ in gen])


class TestWriteShards:
    def test_round_trips_every_chunk_bitwise(self, gen, materialised, tmp_path):
        sh = write_shards(gen, tmp_path / "s", 4)
        assert (sh.n, sh.dim, sh.chunk_size) == (gen.n, gen.dim, gen.chunk_size)
        assert sh.n_chunks == gen.n_chunks
        for i in range(gen.n_chunks):
            np.testing.assert_array_equal(sh.read_chunk(i), gen.read_chunk(i))
        np.testing.assert_array_equal(
            np.concatenate([b for b, _ in sh]), materialised
        )

    @pytest.mark.parametrize("shards", [1, 4, 6, 7, 11])
    def test_shard_table_is_a_chunk_aligned_cover(self, gen, tmp_path, shards):
        sh = write_shards(gen, tmp_path / "s", shards)
        bounds = sh.shard_bounds
        assert bounds[0] == 0 and bounds[-1] == gen.n
        assert (np.diff(bounds) >= 0).all()
        # Non-final cuts land on the chunk grid; balance is in chunks.
        sizes = np.diff(bounds)
        assert all(b % gen.chunk_size == 0 for b in bounds[:-1])
        full = -(-gen.n // gen.chunk_size)
        per = [-(-s // gen.chunk_size) for s in sizes]
        assert sum(per) >= full and max(per) - min(p for p in per) <= full

    def test_more_shards_than_chunks_leaves_trailing_empties(self, gen, tmp_path):
        # 6 chunks, 11 shards: some entries must be empty but the cover
        # and the bits are unchanged.
        sh = write_shards(gen, tmp_path / "s", 11)
        sizes = [sh.shard_span(j)[1] - sh.shard_span(j)[0] for j in range(11)]
        assert sizes.count(0) == 11 - gen.n_chunks
        np.testing.assert_array_equal(
            np.concatenate([b for b, _ in sh]),
            np.concatenate([b for b, _ in gen]),
        )

    def test_refuses_overwrite_without_flag(self, gen, tmp_path):
        write_shards(gen, tmp_path / "s", 2)
        with pytest.raises(DatasetError, match="already exists"):
            write_shards(gen, tmp_path / "s", 3)
        sh = write_shards(gen, tmp_path / "s", 3, overwrite=True)
        assert sh.n_shards == 3

    def test_invalid_shard_count(self, gen, tmp_path):
        with pytest.raises(InvalidParameterError, match="positive"):
            write_shards(gen, tmp_path / "s", 0)

    def test_refuses_empty_stream(self, tmp_path):
        with pytest.raises(DatasetError, match="empty"):
            write_shards(ArrayStream(np.empty((0, 2)), chunk_size=4), tmp_path, 2)


class TestShardedStream:
    def test_per_shard_streams_open_and_pickle_independently(
        self, gen, materialised, tmp_path
    ):
        sh = write_shards(gen, tmp_path / "s", 5)
        for j in range(sh.n_shards):
            start, stop = sh.shard_span(j)
            shard = pickle.loads(pickle.dumps(sh.shard(j)))
            assert shard.n == stop - start
            if shard.n:
                assert isinstance(shard, MemmapStream)
                np.testing.assert_array_equal(
                    np.concatenate([b for b, _ in shard]),
                    materialised[start:stop],
                )

    def test_whole_stream_pickles_by_reopening(self, gen, tmp_path):
        sh = write_shards(gen, tmp_path / "s", 3)
        clone = pickle.loads(pickle.dumps(sh))
        np.testing.assert_array_equal(clone.read_chunk(2), sh.read_chunk(2))
        assert clone.shard_bounds.tolist() == sh.shard_bounds.tolist()

    def test_accepts_manifest_path_and_rejects_rechunk(self, gen, tmp_path):
        write_shards(gen, tmp_path / "s", 2)
        via_manifest = ShardedStream(tmp_path / "s" / MANIFEST_NAME)
        assert via_manifest.n == gen.n
        with pytest.raises(InvalidParameterError, match="re-chunk"):
            ShardedStream(tmp_path / "s", chunk_size=gen.chunk_size + 1)

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(DatasetError, match="manifest"):
            ShardedStream(tmp_path)

    def test_corrupt_manifest_rejected(self, gen, tmp_path):
        sh = write_shards(gen, tmp_path / "s", 2)
        manifest = json.loads((tmp_path / "s" / MANIFEST_NAME).read_text())
        manifest["shards"][0]["rows"] += 1  # no longer a contiguous cover
        (tmp_path / "s" / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(DatasetError, match="contiguous"):
            ShardedStream(tmp_path / "s")
        del sh

    def test_shard_file_shape_validated_against_manifest(self, gen, tmp_path):
        write_shards(gen, tmp_path / "s", 2)
        manifest = json.loads((tmp_path / "s" / MANIFEST_NAME).read_text())
        entry = manifest["shards"][0]
        np.save(
            tmp_path / "s" / entry["file"],
            np.zeros((entry["rows"] + 5, manifest["dim"])),
        )
        manifest["shards"][0]["rows"] = entry["rows"]  # manifest left stale
        sh = ShardedStream(tmp_path / "s")
        with pytest.raises(DatasetError, match="shape"):
            sh.read_chunk(0)


class TestCoercion:
    def test_as_stream_and_as_space_accept_directories(self, gen, tmp_path):
        write_shards(gen, tmp_path / "s", 3)
        stream = as_stream(str(tmp_path / "s"))
        assert isinstance(stream, ShardedStream)
        space = as_space(tmp_path / "s")
        assert isinstance(space, ChunkedMetricSpace)
        assert space.n == gen.n

    def test_slice_stream_over_shards(self, gen, materialised, tmp_path):
        sh = write_shards(gen, tmp_path / "s", 4)
        view = SliceStream(sh, 700, 2300)
        np.testing.assert_array_equal(
            np.concatenate([b for b, _ in view]), materialised[700:2300]
        )
        clone = pickle.loads(pickle.dumps(view))
        np.testing.assert_array_equal(clone.read_chunk(0), view.read_chunk(0))

    def test_slice_chunks_never_alias_parent_chunks(self):
        # A view chunk that would be a plain row slice of a parent chunk
        # must still be a copy: caching it may not pin the parent array.
        parent = ArrayStream(np.arange(40.0).reshape(20, 2), chunk_size=5)
        view = SliceStream(parent, 5, 15)  # aligned: 1 part per chunk
        chunk = view.read_chunk(0)
        assert not np.shares_memory(chunk, parent.points)

    def test_fingerprint_matches_in_memory_twin(self, gen, materialised, tmp_path):
        from repro.metric.euclidean import EuclideanSpace

        sh = write_shards(gen, tmp_path / "s", 4)
        assert (
            ChunkedMetricSpace(sh).fingerprint()
            == EuclideanSpace(materialised).fingerprint()
        )
