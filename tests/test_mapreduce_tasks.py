"""The task contract, enforced: every registered solver's round tasks
pickle, re-execute deterministically, and closures cannot cross the
``run_round`` boundary.

These are the acceptance tests of the `repro.mapreduce.tasks` layer:

* **pickle round-trip** — run every registered solver under
  :func:`~repro.mapreduce.tasks.capture_specs` and round-trip every
  captured :class:`~repro.mapreduce.tasks.TaskSpec` through ``pickle``;
  the clone must execute to a bit-identical result.  This is the
  machine-checked form of "no closure crosses a run_round boundary for
  any registered solver".
* **per-task-seed determinism** — a seeded spec executed twice (the
  duplicate-fault / speculative-re-execution scenario) reproduces its
  first output exactly.
* **guard** — lambdas and locally-defined closures are rejected, both at
  ``TaskSpec`` construction and at the ``run_round`` boundary.
"""

import pickle

import numpy as np
import pytest

import repro
from repro.errors import InvalidParameterError
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.tasks import TaskOutput, TaskSpec, capture_specs, commit
from repro.metric.euclidean import EuclideanSpace
from repro.solvers.registry import solver_names

# (n, k, extra options) per solver — sized so every MapReduce solver's
# round structure actually engages (EIM's options pull its loop threshold
# below n, so the iterative rounds run instead of the GON fallback).
CASES = {
    "eim": (400, 3, {"m": 4, "eps": 0.3, "threshold_coeff": 0.05}),
    "exact": (16, 2, {}),
    "gon": (120, 4, {}),
    "hs": (120, 4, {}),
    "mrg": (400, 3, {"m": 4}),
    "mrhs": (400, 3, {"m": 4}),
    "stream": (120, 4, {}),
}

MAPREDUCE = {"eim", "mrg", "mrhs"}


def _points(n: int) -> np.ndarray:
    return np.random.default_rng(42).normal(size=(n, 3))


def _capture_all(algorithm: str):
    """Run one solve of ``algorithm``; return every (label, spec) bound.

    MapReduce solvers fan out through ``run_round``; single-machine
    solvers go through the ``solve_many`` batch path — both funnel into
    ``bind_round``, so the capture hook sees every task that would cross
    an executor boundary.
    """
    n, k, opts = CASES[algorithm]
    space = EuclideanSpace(_points(n))
    with capture_specs() as records:
        if algorithm in MAPREDUCE:
            repro.solve(space, k, algorithm=algorithm, seed=11, **opts)
        else:
            repro.solve_many(space, k, algorithms=[(algorithm, opts)], seeds=(11,))
    return [(label, spec) for label, specs in records for spec in specs]


def _flat(value):
    """Flatten a task result into comparable leaves."""
    if isinstance(value, TaskOutput):
        yield from _flat(value.value)
        yield value.dist_evals
    elif isinstance(value, (tuple, list)):
        for item in value:
            yield from _flat(item)
    else:
        yield value


def _assert_bit_identical(a, b, context: str):
    la, lb = list(_flat(a)), list(_flat(b))
    assert len(la) == len(lb), context
    for x, y in zip(la, lb):
        if isinstance(x, np.ndarray):
            assert np.array_equal(x, y, equal_nan=True), context
        elif hasattr(x, "centers"):  # KCenterResult (solo / solve_many tasks)
            assert np.array_equal(x.centers, y.centers), context
            assert x.radius == y.radius, context
        else:
            assert x == y, context


class TestEverySolverHonoursTheContract:
    def test_cases_cover_the_whole_registry(self):
        assert sorted(CASES) == solver_names()

    @pytest.mark.parametrize("algorithm", sorted(CASES))
    def test_specs_pickle_and_round_trip_bit_identically(self, algorithm):
        captured = _capture_all(algorithm)
        assert captured, f"{algorithm}: no TaskSpec crossed a dispatch boundary"
        for label, spec in captured:
            clone = pickle.loads(pickle.dumps(spec))
            context = f"{algorithm}: task of round {label!r}"
            # Tasks are pure functions of their (copied-on-pickle) args,
            # so original and clone must agree bit for bit.
            _assert_bit_identical(spec(), clone(), context)

    @pytest.mark.parametrize("algorithm", sorted(CASES))
    def test_specs_are_deterministic_under_duplication(self, algorithm):
        # The duplicate-fault / speculative re-execution scenario: the
        # same task object runs twice; both attempts must agree exactly.
        for label, spec in _capture_all(algorithm):
            context = f"{algorithm}: duplicated task of round {label!r}"
            _assert_bit_identical(spec(), spec(), context)

    @pytest.mark.parametrize("algorithm", ["eim", "mrg"])
    def test_randomised_rounds_bind_their_seed_in_the_spec(self, algorithm):
        # The randomised solvers must expose per-task randomness as the
        # first-class `seed` field — a live generator smuggled through
        # args would draw differently on its second execution.
        seeded = [s for _, s in _capture_all(algorithm) if s.seed is not None]
        assert seeded, f"{algorithm}: expected at least one seeded task"


def _module_level_ok():
    return "ok"


class TestContractGuards:
    def test_run_round_rejects_bare_callables(self):
        cluster = SimulatedCluster(m=2)
        with pytest.raises(InvalidParameterError, match="TaskSpec"):
            cluster.run_round("r", [lambda: 1], task_sizes=[1])
        assert cluster.stats.n_rounds == 0, "no partial work on rejection"

    def test_taskspec_rejects_lambdas_at_construction(self):
        with pytest.raises(InvalidParameterError, match="lambda or closure"):
            TaskSpec(lambda: 1)

    def test_taskspec_rejects_local_closures_at_construction(self):
        state = []

        def local_task():
            state.append(1)

        with pytest.raises(InvalidParameterError, match="lambda or closure"):
            TaskSpec(local_task)

    def test_taskspec_accepts_module_level_functions(self):
        spec = TaskSpec(_module_level_ok)
        assert pickle.loads(pickle.dumps(spec))() == "ok"

    def test_taskspec_rejects_unknown_counting_policy(self):
        with pytest.raises(InvalidParameterError, match="counting"):
            TaskSpec(_module_level_ok, counting="sometimes")

    def test_commit_enforces_output_counting_policy(self):
        spec = TaskSpec(_module_level_ok, counting="output")
        with pytest.raises(InvalidParameterError, match="counting='output'"):
            commit(["bare value"], [spec])

    def test_commit_folds_task_output_into_counter(self):
        from repro.metric.base import DistCounter

        counter = DistCounter()
        values = commit(
            [TaskOutput("a", 3), "b", TaskOutput("c", 4)],
            counter=counter,
        )
        assert values == ["a", "b", "c"]
        assert counter.evals == 7
