"""Unit tests for the theory module (Table 1, Eq. (1)-(2))."""

import math

import pytest

from repro.core.theory import (
    PHI_PAPER_THRESHOLD,
    eim_cost,
    eim_expected_slowdown,
    gon_cost,
    mrg_cost,
    phi_feasibility_threshold,
    phi_feasible,
    table1_rows,
)
from repro.errors import InvalidParameterError


class TestCostFormulas:
    def test_gon_linear_in_both(self):
        assert gon_cost(1000, 10) == 10_000
        assert gon_cost(2000, 10) == 2 * gon_cost(1000, 10)
        assert gon_cost(1000, 20) == 2 * gon_cost(1000, 10)

    def test_mrg_two_terms(self):
        n, k, m = 100_000, 10, 50
        assert mrg_cost(n, k, m) == pytest.approx(k * n / m + k * k * m)

    def test_mrg_k2m_term_dominates_small_n(self):
        # Paper Section 8.2: for large k and small n, the k^2 m term wins.
        k, m = 100, 50
        small = mrg_cost(10_000, k, m)
        assert k * k * m > k * 10_000 / m  # the regime itself
        assert small == pytest.approx(k * 10_000 / m + k * k * m)

    def test_eim_cost_positive_and_superlinear(self):
        assert eim_cost(10_000, 10, 50) > 0
        # n^(1+eps) log n growth: doubling n more than doubles cost.
        assert eim_cost(200_000, 10, 50) > 2 * eim_cost(100_000, 10, 50)

    def test_eim_slowdown_formula(self):
        n, eps = 100_000, 0.1
        damp = 1 - n**-eps
        expect = n**eps * math.log(n) / damp**2
        assert eim_expected_slowdown(n, eps) == pytest.approx(expect)

    def test_eim_slowdown_is_large(self):
        # The analysis predicts roughly two orders of magnitude at n=10^6.
        assert 50 < eim_expected_slowdown(1_000_000) < 500

    def test_invalid_args(self):
        with pytest.raises(InvalidParameterError):
            gon_cost(-1, 2)
        with pytest.raises(InvalidParameterError):
            mrg_cost(10, 2, 0)
        with pytest.raises(InvalidParameterError):
            eim_cost(10, 2, 5, eps=1.5)

    def test_ratio_consistency(self):
        """EIM/MRG cost ratio ~ the predicted slowdown when kn/m dominates."""
        n, k, m, eps = 1_000_000, 10, 50, 0.1
        ratio = eim_cost(n, k, m, eps) / (k * n / m)
        assert ratio == pytest.approx(eim_expected_slowdown(n, eps), rel=1e-9)


class TestTable1:
    def test_rows_verbatim(self):
        rows = table1_rows()
        assert [r.algorithm for r in rows] == ["GON [9]", "MRG", "EIM [8]"]
        assert [r.approx_factor for r in rows] == ["2", "4", "10"]
        assert rows[1].rounds == "2"
        assert "1/eps" in rows[2].rounds


class TestPhiBound:
    def test_paper_grid_verdicts(self):
        """phi in {6, 8} must be feasible; phi = 1 must not (Section 7.2
        benchmarks 4 and 1 as 'below the bound')."""
        assert phi_feasible(8.0)
        assert phi_feasible(6.0)
        assert not phi_feasible(1.0)

    def test_feasibility_monotone_in_phi(self):
        t = phi_feasibility_threshold()
        for phi in (t + 0.01, t + 1, t + 10):
            assert phi_feasible(phi)
        for phi in (t - 0.01, t / 2):
            assert not phi_feasible(phi)

    def test_threshold_below_paper_quote(self):
        """Inequality (2) evaluated as printed yields a threshold a bit
        below the paper's quoted 5.15 (documented discrepancy)."""
        t = phi_feasibility_threshold()
        assert 3.0 < t < PHI_PAPER_THRESHOLD

    def test_larger_gamma_needs_larger_phi(self):
        assert phi_feasibility_threshold(gamma=1.0) > phi_feasibility_threshold(gamma=0.0)

    def test_smaller_b_needs_larger_phi(self):
        assert phi_feasibility_threshold(b=3.0) > phi_feasibility_threshold(b=5.0)

    def test_invalid_args(self):
        with pytest.raises(InvalidParameterError):
            phi_feasible(0.0)
        with pytest.raises(InvalidParameterError):
            phi_feasible(5.0, b=6.0)
        with pytest.raises(InvalidParameterError):
            phi_feasible(5.0, gamma=-0.5)
