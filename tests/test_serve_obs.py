"""Serving-layer observability: stats schema, metrics surface, progress.

Three scrape surfaces must agree: the ``stats`` op (stable JSON schema,
every key always present), the ``metrics`` op (Prometheus text over the
NDJSON protocol), and the optional plain-HTTP ``/metrics`` listener.
The scrape-consistency contract is exact: the server refreshes its
snapshot gauges from ``stats()`` immediately before every render, so a
scraper and a stats client see the same numbers.  The ``progress`` op
streams span events mid-solve and must end with a final response whose
result is bit-identical to a plain solve.
"""

import json
import urllib.request

import numpy as np
import pytest

import repro
from repro.mapreduce.faults import Fault, FaultSchedule
from repro.obs import metrics as obs_metrics
from repro.serve import ServeConfig, ServerHandle

from test_obs_metrics import assert_prometheus_text

# Every key the stats op promises, always, in this exact set — the
# schema regression gate for scrapers that index blindly.
STATS_SCHEMA = {
    "server_version", "uptime_seconds", "backend", "pool_size",
    "received", "answered", "rejected", "failed", "abandoned",
    "batches", "coalesced_requests", "isolation_splits", "pending",
    "draining", "retries", "speculative_wins", "wasted_task_seconds",
    "cache",
}


@pytest.fixture(scope="module")
def rows():
    return np.random.default_rng(3).normal(size=(70, 3)).tolist()


class TestStatsSchema:
    def test_schema_is_stable_without_cache(self, rows):
        config = ServeConfig(backend="sequential", cache_points=0)
        with ServerHandle(config) as h, h.client() as client:
            client.solve("gon", 3, points=rows)
            stats = client.stats()
        assert set(stats) == STATS_SCHEMA
        assert stats["server_version"] == repro.__version__
        assert stats["uptime_seconds"] > 0
        assert stats["cache"] == {}  # no cache: empty dict, never absent
        assert stats["retries"] == 0
        assert stats["speculative_wins"] == 0
        assert stats["wasted_task_seconds"] == 0.0
        assert stats["answered"] == 1

    def test_schema_is_stable_with_cache(self, rows):
        config = ServeConfig(backend="sequential", cache_points=1000)
        with ServerHandle(config) as h, h.client() as client:
            client.solve("gon", 3, points=rows)
            stats = client.stats()
        assert set(stats) == STATS_SCHEMA
        assert stats["cache"] != {}
        assert stats["cache"]["hits"] + stats["cache"]["misses"] >= 1

    def test_uptime_counts_from_start(self, rows):
        config = ServeConfig(backend="sequential")
        with ServerHandle(config) as h, h.client() as client:
            first = client.stats()["uptime_seconds"]
            client.solve("gon", 3, points=rows)
            second = client.stats()["uptime_seconds"]
        assert 0 < first <= second


class TestMetricsOp:
    def test_metrics_op_renders_parseable_prometheus_text(self, rows):
        config = ServeConfig(backend="sequential")
        with ServerHandle(config) as h, h.client() as client:
            client.solve("gon", 3, points=rows)
            response = client.request({"op": "metrics"})
            assert response["ok"]
            assert response["content_type"] == obs_metrics.CONTENT_TYPE
            samples = assert_prometheus_text(response["metrics"])
        for series in (
            'repro_serve_requests_total{outcome="received"}',
            'repro_serve_requests_total{outcome="answered"}',
            "repro_serve_batches_total",
            "repro_serve_uptime_seconds",
            "repro_serve_queue_wait_seconds_count",
            "repro_solves_total{algorithm=\"gon\"}",
        ):
            assert series in samples, f"missing series {series}"

    def test_scrape_counters_match_stats_op_under_faults(self, rows):
        # Task 0 of every batch crashes once; the resilient pool retries
        # it.  After load, the Prometheus render and the stats op must
        # tell the same story — the ISSUE's scrape-consistency gate.
        config = ServeConfig(
            backend="thread",
            pool_size=2,
            fault_retries=2,
            fault_injector=FaultSchedule({(None, 0): Fault("crash")}),
        )
        with ServerHandle(config) as h, h.client() as client:
            obs_metrics.REGISTRY.reset()  # isolate from earlier servers
            for seed in (1, 2, 3):
                client.solve("mrg", 4, points=rows, seed=seed)
            stats = client.stats()
            samples = assert_prometheus_text(client.metrics())
        assert stats["retries"] >= 1
        assert samples["repro_serve_retries"] == stats["retries"]
        assert samples["repro_task_retries_total"] == stats["retries"]
        assert (
            samples["repro_serve_speculative_wins"]
            == stats["speculative_wins"]
        )
        assert (
            samples['repro_serve_requests_total{outcome="answered"}']
            == stats["answered"]
            == 3
        )
        assert samples["repro_serve_batches_total"] == stats["batches"]
        assert samples["repro_serve_wasted_task_seconds"] == pytest.approx(
            stats["wasted_task_seconds"]
        )


class TestHttpScrape:
    def test_http_metrics_listener(self, rows):
        config = ServeConfig(backend="sequential", metrics_port=0)
        with ServerHandle(config) as h, h.client() as client:
            client.solve("gon", 3, points=rows)
            assert h.server.metrics_address is not None
            host, port = h.server.metrics_address
            with urllib.request.urlopen(
                f"http://{host}:{port}/metrics", timeout=5
            ) as response:
                assert response.status == 200
                assert (
                    response.headers["Content-Type"]
                    == obs_metrics.CONTENT_TYPE
                )
                samples = assert_prometheus_text(
                    response.read().decode("utf-8")
                )
        assert 'repro_serve_requests_total{outcome="answered"}' in samples
        assert samples["repro_serve_uptime_seconds"] > 0

    def test_http_unknown_path_is_404(self, rows):
        config = ServeConfig(backend="sequential", metrics_port=0)
        with ServerHandle(config) as h:
            host, port = h.server.metrics_address
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(
                    f"http://{host}:{port}/nope", timeout=5
                )
            assert err.value.code == 404

    def test_no_listener_without_metrics_port(self):
        with ServerHandle(ServeConfig(backend="sequential")) as h:
            assert h.server.metrics_address is None


class TestProgressOp:
    def test_progress_streams_events_then_bit_identical_final(self, rows):
        config = ServeConfig(backend="thread", pool_size=2)
        with ServerHandle(config) as h, h.client() as client:
            plain = client.solve("mrg", 4, points=rows, seed=5)
            events, final = client.solve_progress(
                "mrg", 4, points=rows, seed=5
            )
        assert final["ok"] and final["final"] is True
        for key in ("algorithm", "centers", "radius", "k", "dist_evals"):
            assert final["result"][key] == plain["result"][key]
        assert final["accounting"]["spans"] >= len(events)
        assert final["accounting"]["run_id"]
        cats = {event["cat"] for event in events}
        assert cats <= {"solve", "round", "attempt"}
        assert "round" in cats and "solve" in cats
        for event in events:
            assert event["duration"] >= 0
            assert event["start"] >= 0
        # Events arrive before the final line (streaming, not a recap):
        # the last event is the whole-solve span, closed before commit.
        assert events[-1]["cat"] == "solve"

    def test_progress_surfaces_abandoned_attempts(self, rows):
        config = ServeConfig(
            backend="thread",
            pool_size=2,
            fault_retries=2,
            fault_injector=FaultSchedule({(None, 0): Fault("crash")}),
        )
        with ServerHandle(config) as h, h.client() as client:
            events, final = client.solve_progress(
                "mrg", 4, points=rows, seed=5
            )
        assert final["ok"]
        attempts = [e for e in events if e["cat"] == "attempt"]
        assert attempts, "the crashed attempt must stream as an event"
        assert all(a["args"]["abandoned"] is True for a in attempts)

    def test_progress_error_still_ends_with_final_line(self, rows):
        from repro.serve import E_BAD_REQUEST, ServeError

        with ServerHandle(ServeConfig(backend="sequential")) as h:
            with h.client() as client:
                with pytest.raises(ServeError) as err:
                    client.solve_progress(
                        "mrg", 4, points=rows,
                        options={"executor": "process"},  # server owns pool
                    )
                assert err.value.code == E_BAD_REQUEST
                # The connection stays usable after the failed stream.
                assert client.ping()["ok"]

    def test_progress_events_are_json_clean(self, rows):
        # Every event must round-trip through the wire encoding (no
        # numpy scalars or other unserializable args).
        config = ServeConfig(backend="sequential")
        with ServerHandle(config) as h, h.client() as client:
            events, _ = client.solve_progress("gon", 3, points=rows)
        json.dumps(events)
