"""Sharded input through the MapReduce solvers (ISSUE 4 acceptance).

Three contracts:

* **bit-identity** — ``solve("mr_hs", k, data=<shard dir>)`` (and mrg)
  returns the same radius, centers and ``dist_evals`` as the in-memory
  mapreduce run, at every shard count including 1 and more shards than
  chunks;
* **bounded driver memory** — the sharded solve's peak traced allocation
  stays below full materialisation of ``(n, d)``;
* **backend parity** — ``solve_many`` records over a sharded directory
  are bit-identical on Sequential/Thread/Process backends (shards
  re-open via ``__reduce__`` in workers), and the in-solver executors
  agree too, per-round accounting included.
"""

import tracemalloc

import numpy as np
import pytest

import repro
from repro.core.mr_hochbaum_shmoys import mr_hochbaum_shmoys
from repro.core.mrg import mrg
from repro.mapreduce import (
    ProcessPoolExecutorBackend,
    SequentialExecutor,
    ThreadPoolExecutorBackend,
    block_partition,
    shard_aligned_partitioner,
)
from repro.metric.euclidean import EuclideanSpace
from repro.store import GeneratorStream, ShardedStream, machine_view, write_shards

K = 5
M = 6
N = 3000
CHUNK = 500  # 6 chunks: shard counts 1/4/7 cover aligned, split and empty


@pytest.fixture(scope="module")
def gen():
    return GeneratorStream("gau", N, seed=21, chunk_size=CHUNK, k_prime=8)


@pytest.fixture(scope="module")
def points(gen):
    return np.concatenate([block for block, _ in gen])


@pytest.fixture(scope="module")
def shard_dirs(gen, tmp_path_factory):
    root = tmp_path_factory.mktemp("shards")
    dirs = {}
    for shards in (1, 4, 7):
        write_shards(gen, root / f"s{shards}", shards)
        dirs[shards] = str(root / f"s{shards}")
    return dirs


class TestBitIdentity:
    @pytest.mark.parametrize("shards", [1, 4, 7])
    def test_mr_hs_matches_in_memory_run(self, points, shard_dirs, shards):
        base = mr_hochbaum_shmoys(EuclideanSpace(points), K, m=M, seed=0)
        got = repro.solve("mr_hs", K, data=shard_dirs[shards], m=M, seed=0)
        assert np.array_equal(got.centers, base.centers)
        assert got.radius == base.radius
        assert got.stats.dist_evals == base.stats.dist_evals
        assert [r.dist_evals for r in got.stats.rounds] == [
            r.dist_evals for r in base.stats.rounds
        ]

    @pytest.mark.parametrize("shards", [1, 4, 7])
    def test_mrg_matches_in_memory_run(self, points, shard_dirs, shards):
        base = mrg(EuclideanSpace(points), K, m=M, seed=7)
        got = repro.solve("mrg", K, data=shard_dirs[shards], m=M, seed=7)
        assert np.array_equal(got.centers, base.centers)
        assert got.radius == base.radius
        assert got.stats.dist_evals == base.stats.dist_evals

    def test_multi_round_regime_matches_too(self, points, shard_dirs):
        # Small capacity forces MRG's while loop to iterate; the later
        # rounds run over non-contiguous center subsets (the local-view
        # fallback path of machine_view).
        base = mrg(EuclideanSpace(points), K, m=50, capacity=100, seed=3)
        got = repro.solve("mrg", K, data=shard_dirs[4], m=50, capacity=100, seed=3)
        assert base.extra["reduction_rounds"] > 1
        assert np.array_equal(got.centers, base.centers)
        assert got.radius == base.radius
        assert got.stats.dist_evals == base.stats.dist_evals


class TestBoundedDriverMemory:
    def test_sharded_mr_hs_peaks_below_full_materialisation(self, tmp_path):
        # d large relative to n/m^2 so the per-shard HS candidate matrix
        # ((n/m)^2) stays well under the (n, d) footprint the sharded
        # path must never allocate.
        n, d, m, k = 20_000, 64, 50, 4
        gen = GeneratorStream(
            "gau", n, seed=5, chunk_size=512, gen_block=512, dim=d, k_prime=10
        )
        path = write_shards(gen, tmp_path / "s", m).path
        full_bytes = n * d * 8
        tracemalloc.start()
        result = repro.solve("mr_hs", k, data=str(path), m=m, seed=0)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert result.stats.n_rounds == 2
        assert peak < 0.8 * full_bytes, (peak, full_bytes)


class TestBackendParity:
    GRID = dict(algorithms=("mrg", "mrhs", "stream", "gon"), seeds=(0, 1), m=M)

    @pytest.fixture(scope="class")
    def reference(self, shard_dirs):
        return repro.solve_many(
            shard_dirs[4], K, executor=SequentialExecutor(), **self.GRID
        )

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: ThreadPoolExecutorBackend(max_workers=4),
            lambda: ProcessPoolExecutorBackend(max_workers=2),
        ],
        ids=["thread", "process"],
    )
    def test_solve_many_records_bit_identical(self, shard_dirs, reference, factory):
        batch = repro.solve_many(shard_dirs[4], K, executor=factory(), **self.GRID)
        assert batch.keys() == reference.keys()
        for key in reference:
            assert np.array_equal(batch[key].centers, reference[key].centers), key
            assert batch[key].radius == reference[key].radius, key
            ref_stats, got_stats = reference[key].stats, batch[key].stats
            if ref_stats is not None:
                assert got_stats.dist_evals == ref_stats.dist_evals, key
                assert got_stats.n_rounds == ref_stats.n_rounds, key

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: ThreadPoolExecutorBackend(max_workers=4),
            lambda: ProcessPoolExecutorBackend(max_workers=2),
        ],
        ids=["thread", "process"],
    )
    def test_in_solver_executor_round_accounting_identical(
        self, shard_dirs, factory
    ):
        # Reducer tasks are picklable partials returning TaskOutput, so
        # even per-round dist_evals survive a process boundary.
        base = repro.solve("mr_hs", K, data=shard_dirs[4], m=M, seed=0)
        got = repro.solve(
            "mr_hs", K, data=shard_dirs[4], m=M, seed=0, executor=factory()
        )
        assert np.array_equal(got.centers, base.centers)
        assert got.radius == base.radius
        assert [r.dist_evals for r in got.stats.rounds] == [
            r.dist_evals for r in base.stats.rounds
        ]


class TestMachineView:
    def test_contiguous_range_stays_out_of_core(self, shard_dirs):
        space = repro.store.as_space(shard_dirs[4])
        view = machine_view(space, np.arange(500, 2100))
        from repro.store import ChunkedMetricSpace

        assert isinstance(view, ChunkedMetricSpace)
        assert view.n == 1600
        assert view.counter is not space.counter

    def test_non_contiguous_indices_materialise(self, shard_dirs, points):
        space = repro.store.as_space(shard_dirs[4])
        idx = np.asarray([5, 17, 900, 2999], dtype=np.intp)
        view = machine_view(space, idx)
        assert isinstance(view, EuclideanSpace)
        np.testing.assert_array_equal(view.points, points[idx])

    def test_views_are_bit_identical_between_paths(self, shard_dirs, points):
        space = repro.store.as_space(shard_dirs[4])
        idx = np.arange(600, 1700)
        chunked = machine_view(space, idx)
        local = EuclideanSpace(points[idx])
        ref = np.arange(chunked.n, dtype=np.intp)
        np.testing.assert_array_equal(
            chunked.cross(ref[:50], ref), local.cross(ref[:50], ref)
        )


class TestShardAlignedPartition:
    def test_boundaries_mode_cuts_only_at_permitted_offsets(self):
        bounds = np.asarray([0, 500, 1000, 1500, 2000, 2500, 3000])
        parts = block_partition(3000, 4, boundaries=bounds)
        cuts = [0] + [int(p[-1]) + 1 for p in parts if len(p)]
        assert all(c in set(bounds.tolist()) for c in cuts)
        assert np.array_equal(np.concatenate(parts), np.arange(3000))

    def test_more_machines_than_boundary_intervals(self):
        parts = block_partition(100, 5, boundaries=[0, 50, 100])
        assert np.array_equal(np.concatenate(parts), np.arange(100))
        assert sum(1 for p in parts if len(p)) <= 2

    def test_align_and_boundaries_are_exclusive(self):
        from repro.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError, match="not both"):
            block_partition(100, 2, align=10, boundaries=[0, 100])

    def test_partitioner_feeds_solvers(self, shard_dirs, points):
        stream = ShardedStream(shard_dirs[4])
        part = shard_aligned_partitioner(stream.shard_bounds)
        # Shard-aligned cuts trade balance for whole-file reducer inputs,
        # so the capacity must fit the largest shard union.
        got = repro.solve(
            "mrg", K, data=shard_dirs[4], m=M, seed=2, partitioner=part,
            capacity=1500,
        )
        base = mrg(
            EuclideanSpace(points), K, m=M, seed=2, partitioner=part,
            capacity=1500,
        )
        assert np.array_equal(got.centers, base.centers)
        assert got.radius == base.radius
        # Every reducer input in round 1 is a union of whole shards: the
        # cumulative machine cuts all land on shard boundaries.
        cuts = np.cumsum([0] + got.extra["shard_sizes"][0])
        assert set(cuts.tolist()) <= set(stream.shard_bounds.tolist())

    def test_multi_round_falls_back_to_plain_blocks(self, points):
        # Later MRG rounds partition a shrunken center subset; dataset
        # shard offsets no longer apply and must not be misused (this
        # used to raise "boundaries must be offsets within [0, n]").
        # Boundary granularity must fit the small capacity in round 1.
        part = shard_aligned_partitioner(np.arange(0, N + 1, 100, dtype=np.intp))
        result = mrg(
            EuclideanSpace(points), K, m=50, capacity=100, seed=3,
            partitioner=part,
        )
        assert result.extra["reduction_rounds"] > 1


class TestEagerViewBinding:
    def test_process_pool_over_in_memory_space_ships_only_shards(self, points):
        # Bit-identity of the eager path (prebuilt views under a process
        # pool) against the default lazy sequential path.
        base = mr_hochbaum_shmoys(EuclideanSpace(points), K, m=M, seed=0)
        got = mr_hochbaum_shmoys(
            EuclideanSpace(points), K, m=M, seed=0,
            executor=ProcessPoolExecutorBackend(max_workers=2),
        )
        assert np.array_equal(got.centers, base.centers)
        assert got.radius == base.radius
        assert [r.dist_evals for r in got.stats.rounds] == [
            r.dist_evals for r in base.stats.rounds
        ]
        base_g = mrg(EuclideanSpace(points), K, m=M, seed=4)
        got_g = mrg(
            EuclideanSpace(points), K, m=M, seed=4,
            executor=ProcessPoolExecutorBackend(max_workers=2),
        )
        assert np.array_equal(got_g.centers, base_g.centers)
        assert got_g.radius == base_g.radius
        assert got_g.stats.dist_evals == base_g.stats.dist_evals
