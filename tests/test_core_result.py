"""Unit tests for the shared result type."""

import numpy as np
import pytest

from repro.core.result import KCenterResult
from repro.mapreduce.accounting import JobStats, RoundStats


def _result(**kw):
    defaults = dict(
        algorithm="X", centers=np.array([1, 2]), radius=1.5, k=3
    )
    defaults.update(kw)
    return KCenterResult(**defaults)


class TestValidation:
    def test_basic_fields(self):
        r = _result()
        assert r.n_centers == 2
        assert r.parallel_time == r.wall_time == 0.0
        assert r.n_rounds == 0

    def test_duplicate_centers_rejected(self):
        with pytest.raises(ValueError, match="duplicates"):
            _result(centers=np.array([1, 1]))

    def test_too_many_centers_rejected(self):
        with pytest.raises(ValueError, match="centers returned"):
            _result(centers=np.array([1, 2, 3, 4]), k=3)

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            _result(radius=-0.1)

    def test_2d_centers_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            _result(centers=np.array([[1], [2]]))

    def test_centers_cast_to_intp(self):
        r = _result(centers=[4, 5])
        assert r.centers.dtype == np.intp


class TestStatsIntegration:
    def _stats(self):
        job = JobStats()
        job.add(RoundStats("a", task_times=[0.2, 0.1], task_sizes=[5, 5], dist_evals=3))
        return job

    def test_parallel_time_prefers_stats(self):
        r = _result(stats=self._stats(), wall_time=9.0)
        assert r.parallel_time == pytest.approx(0.2)
        assert r.n_rounds == 1

    def test_summary_with_stats(self):
        s = _result(stats=self._stats(), wall_time=1.0).summary()
        assert s["cpu_time"] == pytest.approx(0.3)
        assert s["dist_evals"] == 3
        assert s["rounds"] == 1

    def test_summary_without_stats(self):
        s = _result(wall_time=1.0).summary()
        assert "cpu_time" not in s
        assert s["parallel_time"] == 1.0
