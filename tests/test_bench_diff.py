"""The BENCH trajectory diff tool: gates, tolerances, vacuous passes."""

import json

import pytest

from benchmarks.bench_diff import FAIL, PASS, USAGE, load_records, main


def perf_payload(records):
    return {"bench": 5, "schema": "repro-perf-v1", "records": records}


def cell(**overrides):
    record = {
        "workload": "mrg",
        "backing": "in-memory",
        "executor": "sequential",
        "n": 4000,
        "k": 8,
        "m": 8,
        "wall_s": 1.0,
        "dist_evals": 123456,
        "radius": 2.5,
        "peak_rss_kb": 100_000,
    }
    record.update(overrides)
    return record


@pytest.fixture
def write(tmp_path):
    def _write(name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    return _write


class TestGates:
    def test_identical_trajectories_pass(self, write, capsys):
        a = write("a.json", perf_payload([cell()]))
        b = write("b.json", perf_payload([cell()]))
        assert main([a, b]) == PASS
        assert "PASS" in capsys.readouterr().out

    def test_dist_evals_divergence_fails(self, write, capsys):
        a = write("a.json", perf_payload([cell()]))
        b = write("b.json", perf_payload([cell(dist_evals=123457)]))
        assert main([a, b]) == FAIL
        assert "dist_evals" in capsys.readouterr().err

    def test_radius_divergence_fails(self, write, capsys):
        a = write("a.json", perf_payload([cell()]))
        b = write("b.json", perf_payload([cell(radius=2.5000001)]))
        assert main([a, b]) == FAIL
        assert "radius" in capsys.readouterr().err

    def test_rss_within_tolerance_passes(self, write):
        a = write("a.json", perf_payload([cell()]))
        b = write("b.json", perf_payload([cell(peak_rss_kb=150_000)]))
        assert main([a, b]) == PASS

    def test_rss_blowup_fails(self, write, capsys):
        a = write("a.json", perf_payload([cell()]))
        b = write("b.json", perf_payload([cell(peak_rss_kb=250_000)]))
        assert main([a, b]) == FAIL
        assert "peak_rss_kb" in capsys.readouterr().err

    def test_wall_regression_is_report_only_by_default(self, write, capsys):
        a = write("a.json", perf_payload([cell()]))
        b = write("b.json", perf_payload([cell(wall_s=10.0)]))
        assert main([a, b]) == PASS
        assert "wall" in capsys.readouterr().out

    def test_wall_tol_opts_into_a_gate(self, write, capsys):
        a = write("a.json", perf_payload([cell()]))
        b = write("b.json", perf_payload([cell(wall_s=10.0)]))
        assert main([a, b, "--wall-tol", "1.5"]) == FAIL
        assert "tolerance 1.5x" in capsys.readouterr().err

    def test_skip_drops_one_gate(self, write, capsys):
        # The PR-over-PR baseline diff: radius bits differ across BLAS
        # builds, so CI skips that gate while dist_evals still bites.
        a = write("a.json", perf_payload([cell()]))
        b = write("b.json", perf_payload([cell(radius=2.5000001)]))
        assert main([a, b]) == FAIL
        capsys.readouterr()
        assert main([a, b, "--skip", "radius"]) == PASS

    def test_skip_is_repeatable(self, write):
        a = write("a.json", perf_payload([cell()]))
        b = write(
            "b.json",
            perf_payload([cell(radius=3.0, peak_rss_kb=900_000)]),
        )
        assert main([a, b, "--skip", "radius"]) == FAIL  # RSS still gated
        assert main(
            [a, b, "--skip", "radius", "--skip", "peak_rss_kb"]
        ) == PASS

    def test_skipped_gate_does_not_mask_others(self, write, capsys):
        a = write("a.json", perf_payload([cell()]))
        b = write("b.json", perf_payload([cell(dist_evals=1)]))
        assert main([a, b, "--skip", "radius"]) == FAIL
        assert "dist_evals" in capsys.readouterr().err

    def test_unknown_skip_field_rejected(self, write):
        a = write("a.json", perf_payload([cell()]))
        with pytest.raises(SystemExit):
            main([a, a, "--skip", "bogus"])


class TestSchemas:
    def test_cross_schema_diff_is_a_vacuous_pass(self, write, capsys):
        perf = write("perf.json", perf_payload([cell()]))
        serve = write(
            "serve.json",
            {
                "bench": 6,
                "schema": "repro-serve-v1",
                "records": [
                    {"phase": "small-burst", "n": 512, "wall_s": 0.5}
                ],
            },
        )
        assert main([perf, serve]) == PASS
        assert "no comparable cells" in capsys.readouterr().out

    def test_new_and_removed_cells_are_reported_not_gated(self, write, capsys):
        a = write("a.json", perf_payload([cell()]))
        b = write(
            "b.json",
            perf_payload([cell(), cell(workload="gon", m=None)]),
        )
        assert main([a, b]) == PASS
        assert "only in new trajectory" in capsys.readouterr().out

    def test_duplicate_cell_is_a_usage_error(self, write, capsys):
        bad = write("bad.json", perf_payload([cell(), cell()]))
        good = write("good.json", perf_payload([cell()]))
        assert main([bad, good]) == USAGE
        assert "duplicate cell" in capsys.readouterr().err

    def test_missing_file_is_a_usage_error(self, write, capsys):
        a = write("a.json", perf_payload([cell()]))
        assert main([a, str(a) + ".does-not-exist"]) == USAGE

    def test_load_records_skips_foreign_schemas(self, write, tmp_path):
        path = tmp_path / "mixed.json"
        path.write_text(
            json.dumps(
                perf_payload([cell(), {"phase": "serve-only", "wall_s": 1.0}])
            )
        )
        cells = load_records(path)
        assert len(cells) == 1
