"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metric.euclidean import EuclideanSpace
from repro.metric.precomputed import PrecomputedSpace


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_points(rng) -> np.ndarray:
    """60 points in 3 well-separated planar clusters."""
    centers = np.array([[0.0, 0.0], [10.0, 0.0], [5.0, 8.0]])
    pts = np.concatenate(
        [c + rng.normal(0, 0.4, size=(20, 2)) for c in centers]
    )
    return pts


@pytest.fixture
def small_space(small_points) -> EuclideanSpace:
    return EuclideanSpace(small_points)


@pytest.fixture
def tiny_space(rng) -> EuclideanSpace:
    """12 random points — small enough for the exact oracle at k <= 4."""
    return EuclideanSpace(rng.normal(size=(12, 2)))


@pytest.fixture
def line_space() -> PrecomputedSpace:
    """5 points on a line at positions 0, 1, 2, 4, 8 (easy to reason about)."""
    pos = np.array([0.0, 1.0, 2.0, 4.0, 8.0])
    return PrecomputedSpace(np.abs(pos[:, None] - pos[None, :]))
