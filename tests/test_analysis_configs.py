"""Unit tests for the per-experiment configurations."""

import pytest

from repro.analysis.configs import (
    EXPERIMENT_IDS,
    experiment_config,
    figure4_n_grid,
    resolve_scale,
)
from repro.analysis.paper import PAPER_K_GRID
from repro.errors import ExperimentError


class TestResolveScale:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert resolve_scale() == "default"

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert resolve_scale() == "paper"

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert resolve_scale("default") == "default"

    def test_invalid(self):
        with pytest.raises(ExperimentError):
            resolve_scale("huge")


class TestExperimentConfigs:
    @pytest.mark.parametrize("exp", sorted(EXPERIMENT_IDS))
    def test_all_ids_build(self, exp):
        spec = experiment_config(exp, scale="default")
        assert spec.n > 0
        assert spec.algorithms

    def test_unknown_id(self):
        with pytest.raises(ExperimentError, match="unknown experiment"):
            experiment_config("table99")

    def test_paper_scale_sizes(self):
        assert experiment_config("table2", scale="paper").n == 1_000_000
        assert experiment_config("table2", scale="default").n < 1_000_000

    def test_table5_full_size_at_both_scales(self):
        # Poker Hand is small; we keep the real size even at default scale.
        assert experiment_config("table5", scale="default").n == 25_010
        assert experiment_config("table5", scale="paper").n == 25_010

    def test_figure3b_keeps_paper_n(self):
        # Small-n fallback is the figure's point: n = 50,000 at both scales.
        assert experiment_config("figure3b", scale="default").n == 50_000
        assert experiment_config("figure3b", scale="paper").n == 50_000

    def test_k_grids(self):
        assert tuple(experiment_config("table3").ks) == PAPER_K_GRID
        assert experiment_config("figure4a").ks == [10]
        assert experiment_config("figure4b").ks == [100]

    def test_paper_protocol_repeats(self):
        spec = experiment_config("table2", scale="paper")
        assert (spec.n_instances, spec.n_runs) == (3, 2)
        real = experiment_config("table5", scale="paper")
        assert (real.n_instances, real.n_runs) == (1, 4)

    def test_phi_experiments_have_four_algorithms(self):
        spec = experiment_config("table6")
        assert len(spec.algorithms) == 4
        assert {a.name for a in spec.algorithms} == {
            "EIM(phi=1)", "EIM(phi=4)", "EIM(phi=6)", "EIM(phi=8)"
        }

    def test_gau_experiments_carry_k_prime(self):
        assert experiment_config("table2").dataset_params["k_prime"] == 25
        assert experiment_config("figure3a").dataset_params["k_prime"] == 50

    def test_figure4_n_grid(self):
        default = figure4_n_grid("default")
        paper = figure4_n_grid("paper")
        assert default == sorted(default)
        assert paper[-1] == 1_000_000
        assert default[-1] < paper[-1]
