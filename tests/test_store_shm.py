"""Zero-copy shared-memory space transport (`repro.store.shm`).

The contract: inside a :func:`~repro.store.shm.shared_space` scope an
in-memory space pickles as a ~100-byte handle, workers attach the
published block by name and see the *exact* float64 bytes, the segment
dies with the scope — and none of it changes a single output bit.
"""

import os
import pickle

import numpy as np
import pytest

import repro
from repro.core.mr_hochbaum_shmoys import mr_hochbaum_shmoys
from repro.core.mrg import _bind_views_eagerly, mrg
from repro.mapreduce.executor import (
    ProcessPoolExecutorBackend,
    SequentialExecutor,
    ThreadPoolExecutorBackend,
)
from repro.metric.euclidean import EuclideanSpace
from repro.metric.minkowski import MinkowskiSpace
from repro.store.shm import SharedPoints, publish_points, shared_space, transport_mode


@pytest.fixture
def points():
    return np.random.default_rng(17).normal(size=(400, 3))


def _attach_shape(handle: SharedPoints):
    return handle.attach().shape


class TestPublishAttach:
    def test_roundtrip_is_bit_identical_and_readonly(self, points):
        handle = publish_points(points)
        try:
            attached = handle.attach()
            assert attached.dtype == np.float64
            assert np.array_equal(attached, points)
            assert not attached.flags.writeable
            # squared norms match the in-memory space's einsum bit-for-bit
            _, sq = handle.attach_with_sq()
            assert np.array_equal(sq, np.einsum("ij,ij->i", points, points))
        finally:
            handle.unpublish()

    def test_handle_pickles_small(self, points):
        handle = publish_points(points)
        try:
            blob = pickle.dumps(handle)
            assert len(blob) < 512  # a handle, not the rows
            clone = pickle.loads(blob)
            assert np.array_equal(clone.attach(), points)
        finally:
            handle.unpublish()

    def test_unpublish_is_idempotent_and_blocks_new_attach(self, points):
        handle = publish_points(points)
        handle.unpublish()
        handle.unpublish()
        fresh = SharedPoints(handle.kind, handle.token, handle.shape)
        with pytest.raises((FileNotFoundError, OSError)):
            fresh.attach()

    def test_spill_fallback_roundtrip_and_cleanup(self, points, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_TRANSPORT", "spill")
        assert transport_mode() == "spill"
        handle = publish_points(points)
        assert handle.kind == "spill"
        path = handle.token
        try:
            assert os.path.exists(path)
            assert np.array_equal(handle.attach(), points)
        finally:
            handle.unpublish()
        assert not os.path.exists(path)

    def test_transport_off_publishes_nothing(self, points, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_TRANSPORT", "off")
        assert publish_points(points) is None

    def test_unknown_transport_mode_warns_and_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_TRANSPORT", "disabled")  # typo for off
        with pytest.warns(RuntimeWarning, match="shm/spill/off"):
            assert transport_mode() == "shm"

    def test_worker_attachment_is_cached_per_process(self, points):
        handle = publish_points(points)
        try:
            first = handle.attach()
            second = pickle.loads(pickle.dumps(handle)).attach()
            assert second is first  # one mapping per process, not per task
        finally:
            handle.unpublish()


class TestSharedSpaceScope:
    def test_noop_for_sequential_and_thread_backends(self, points):
        space = EuclideanSpace(points)
        for executor in (SequentialExecutor(), ThreadPoolExecutorBackend(2)):
            with shared_space(space, executor) as out:
                assert out is space

    def test_process_backend_gets_a_published_clone(self, points):
        space = EuclideanSpace(points)
        executor = ProcessPoolExecutorBackend(max_workers=1)
        with shared_space(space, executor) as out:
            assert out is not space
            assert out._shared is not None
            assert out.counter is space.counter  # shallow clone: shared state
            # pickling the clone ships the handle, not the (400, 3) rows
            blob = pickle.dumps(out)
            assert len(blob) < points.nbytes / 4
            revived = pickle.loads(blob)
            assert np.array_equal(revived.points, points)
            assert np.array_equal(revived._sq, space._sq)
            # eager view prebuilding is then pointless and skipped
            assert not _bind_views_eagerly(out, executor)
            assert _bind_views_eagerly(space, executor)
        assert space._shared is None  # original untouched

    def test_scope_cleans_up_on_error(self, points):
        space = EuclideanSpace(points)
        executor = ProcessPoolExecutorBackend(max_workers=1)
        with pytest.raises(RuntimeError, match="boom"):
            with shared_space(space, executor) as out:
                handle = out._shared
                raise RuntimeError("boom")
        fresh = SharedPoints(handle.kind, handle.token, handle.shape)
        with pytest.raises((FileNotFoundError, OSError)):
            fresh.attach()

    def test_minkowski_ships_by_handle(self, points):
        space = MinkowskiSpace(points, p=1.0)
        executor = ProcessPoolExecutorBackend(max_workers=1)
        with shared_space(space, executor) as out:
            revived = pickle.loads(pickle.dumps(out))
            assert revived.p == 1.0
            assert np.array_equal(revived.points, points)
            ref = space.cross(np.arange(10), np.arange(10, 20))
            assert np.array_equal(revived.cross(np.arange(10), np.arange(10, 20)), ref)

    def test_off_mode_reverts_to_eager_views(self, points, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_TRANSPORT", "off")
        space = EuclideanSpace(points)
        executor = ProcessPoolExecutorBackend(max_workers=1)
        with shared_space(space, executor) as out:
            assert out is space
            assert _bind_views_eagerly(out, executor)


class TestEndToEndParity:
    """The acceptance claim: every transport path reproduces the
    sequential in-memory bits — centers, radius, dist_evals."""

    @pytest.fixture(scope="class")
    def big(self):
        return np.random.default_rng(23).normal(size=(3000, 4))

    @pytest.fixture(scope="class")
    def reference(self, big):
        return {
            "mrg": mrg(EuclideanSpace(big), 8, m=6, seed=3),
            "mrhs": mr_hochbaum_shmoys(EuclideanSpace(big), 8, m=6, seed=3),
        }

    @pytest.mark.parametrize("mode", ["shm", "spill"])
    def test_process_pool_solvers_bit_identical(
        self, big, reference, mode, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SHM_TRANSPORT", mode)
        with ProcessPoolExecutorBackend(max_workers=2) as ex:
            got = {
                "mrg": mrg(EuclideanSpace(big), 8, m=6, seed=3, executor=ex),
                "mrhs": mr_hochbaum_shmoys(
                    EuclideanSpace(big), 8, m=6, seed=3, executor=ex
                ),
            }
        for name, ref in reference.items():
            assert (got[name].centers == ref.centers).all(), (mode, name)
            assert got[name].radius == ref.radius, (mode, name)
            assert got[name].stats.dist_evals == ref.stats.dist_evals, (mode, name)

    def test_solve_many_process_fanout_bit_identical(self, big):
        grid = dict(algorithms=("gon", "mrg"), seeds=(0, 1), m=6)
        ref = repro.solve_many(EuclideanSpace(big), 6, **grid)
        with ProcessPoolExecutorBackend(max_workers=2) as ex:
            got = repro.solve_many(EuclideanSpace(big), 6, executor=ex, **grid)
        assert got.keys() == ref.keys()
        for key in ref:
            assert (got[key].centers == ref[key].centers).all(), key
            assert got[key].radius == ref[key].radius, key
        assert got.summary.dist_evals == ref.summary.dist_evals
