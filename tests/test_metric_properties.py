"""Hypothesis property tests for the metric layer.

The chunked kernels must agree with the dense scipy oracle for *any*
input shapes and scales, and every space type must satisfy the metric
axioms — these are the invariants the approximation proofs stand on.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays
from scipy.spatial.distance import cdist

from repro.metric import kernels
from repro.metric.euclidean import EuclideanSpace
from repro.metric.minkowski import MinkowskiSpace
from repro.metric.validation import check_metric_axioms

finite = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False, width=64)


def points_strategy(max_n=40, max_d=5):
    return st.integers(1, max_d).flatmap(
        lambda d: arrays(
            np.float64,
            st.tuples(st.integers(1, max_n), st.just(d)),
            elements=finite,
        )
    )


@st.composite
def two_point_sets(draw, max_n=40, max_d=5):
    d = draw(st.integers(1, max_d))
    x = draw(arrays(np.float64, (draw(st.integers(1, max_n)), d), elements=finite))
    y = draw(arrays(np.float64, (draw(st.integers(1, max_n)), d), elements=finite))
    return x, y


def _scale_atol(x, y):
    """Honest error bound of the GEMM expansion: |x|^2 + |y|^2 - 2 x.y
    carries absolute error of a few ulps of the squared magnitude, so the
    distance error scales with the coordinate magnitude when the true
    distance is near zero (sqrt of the squared-distance error)."""
    m = max(1.0, np.abs(x).max(), np.abs(y).max())
    return 4e-7 * m


@settings(max_examples=60, deadline=None)
@given(two_point_sets())
def test_pairwise_matches_cdist(xy):
    x, y = xy
    ours = kernels.pairwise_dists(x, y)
    oracle = cdist(x, y)
    np.testing.assert_allclose(ours, oracle, atol=_scale_atol(x, y), rtol=1e-7)


@settings(max_examples=60, deadline=None)
@given(two_point_sets())
def test_min_dists_matches_cdist(xy):
    x, y = xy
    np.testing.assert_allclose(
        kernels.min_dists(x, y),
        cdist(x, y).min(axis=1),
        atol=_scale_atol(x, y),
        rtol=1e-7,
    )


@settings(max_examples=40, deadline=None)
@given(two_point_sets(), st.integers(1024, 2**18))
def test_chunking_is_invisible(xy, block_bytes):
    """Block size must never change results (only memory traffic)."""
    x, y = xy
    a = kernels.min_dists(x, y)
    b = kernels.min_dists(x, y, block_bytes=block_bytes)
    np.testing.assert_allclose(a, b, atol=1e-9, rtol=1e-12)


@settings(max_examples=40, deadline=None)
@given(points_strategy(max_n=24))
def test_euclidean_space_is_a_metric(pts):
    # Scale-aware tolerance: see _scale_atol on the GEMM expansion error.
    assert check_metric_axioms(
        EuclideanSpace(pts), rtol=1e-6, atol=_scale_atol(pts, pts)
    )


@settings(max_examples=25, deadline=None)
@given(points_strategy(max_n=16), st.sampled_from([1.0, 1.5, 2.0, 4.0, np.inf]))
def test_minkowski_space_is_a_metric(pts, p):
    assert check_metric_axioms(MinkowskiSpace(pts, p=p), rtol=1e-6, atol=1e-5)


@settings(max_examples=40, deadline=None)
@given(two_point_sets(max_n=30))
def test_update_min_dists_is_running_minimum(xy):
    """Folding references in two batches equals folding them at once."""
    x, y = xy
    if len(y) < 2:
        return
    split = len(y) // 2
    once = kernels.min_dists(x, y)
    twice = kernels.min_dists(x, y[:split])
    kernels.update_min_dists(twice, x, y[split:])
    np.testing.assert_allclose(once, twice, atol=_scale_atol(x, y), rtol=1e-9)


@settings(max_examples=40, deadline=None)
@given(points_strategy(max_n=30), st.data())
def test_nearest_consistent_with_min_dists(pts, data):
    space = EuclideanSpace(pts)
    n = space.n
    j = data.draw(
        st.lists(st.integers(0, n - 1), min_size=1, max_size=n, unique=True)
    )
    j = np.asarray(j, dtype=np.intp)
    pos, dist = space.nearest(None, j)
    np.testing.assert_allclose(
        dist, space.min_dists(None, j), atol=_scale_atol(pts, pts)
    )
    assert ((0 <= pos) & (pos < len(j))).all()
