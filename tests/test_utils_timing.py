"""Unit tests for repro.utils.timing."""

import time

import pytest

from repro.utils.timing import Timer, timed


class TestTimer:
    def test_accumulates_across_blocks(self):
        t = Timer()
        with t:
            time.sleep(0.01)
        first = t.elapsed
        with t:
            time.sleep(0.01)
        assert t.elapsed > first >= 0.01

    def test_stop_returns_interval(self):
        t = Timer()
        t.start()
        time.sleep(0.005)
        interval = t.stop()
        assert interval == pytest.approx(t.elapsed)
        assert interval >= 0.005

    def test_double_start_rejected(self):
        t = Timer().start()
        with pytest.raises(RuntimeError, match="already running"):
            t.start()
        t.stop()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError, match="not running"):
            Timer().stop()

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0

    def test_reset_while_running_rejected(self):
        t = Timer().start()
        with pytest.raises(RuntimeError, match="running"):
            t.reset()
        t.stop()

    def test_running_property(self):
        t = Timer()
        assert not t.running
        t.start()
        assert t.running
        t.stop()
        assert not t.running


def test_timed_returns_result_and_seconds():
    result, seconds = timed(lambda a, b=1: a + b, 2, b=3)
    assert result == 5
    assert seconds >= 0.0
