"""Tracing tests: span propagation, export, and exactness under faults.

The load-bearing contracts:

* **Neutrality** — an activated tracer must not change results: centers,
  radius and ``dist_evals`` stay bit-identical on every backend.
* **Propagation** — task spans fold back through ``TaskOutput`` from
  wherever the executor ran them (in-process or worker process), so a
  traced solve shows the full ``solve -> round -> task`` tree.
* **Exactness under faults** — a retried / speculative task commits
  exactly one task span (the winning attempt's); losing attempts appear
  only as driver-side ``attempt`` spans annotated ``abandoned=True``,
  and metrics never double-count.
* **Consistency** — per round, the longest committed task span agrees
  with the round's simulated ``parallel_time`` (that statistic *is* the
  max task time).
"""

import json
import pickle
from functools import partial

import numpy as np
import pytest

import repro
from repro.mapreduce.cluster import TaskOutput
from repro.mapreduce.executor import (
    ProcessPoolExecutorBackend,
    SequentialExecutor,
    ThreadPoolExecutorBackend,
)
from repro.mapreduce.faults import Fault, FaultSchedule
from repro.mapreduce.resilient import FaultPolicy
from repro.obs import metrics, trace
from repro.solvers.registry import get_solver


@pytest.fixture(scope="module")
def rows():
    return np.random.default_rng(7).normal(size=(400, 3))


def make_backend(name):
    if name == "sequential":
        return SequentialExecutor()
    if name == "thread":
        return ThreadPoolExecutorBackend(max_workers=2)
    return ProcessPoolExecutorBackend(max_workers=2)


def by_cat(tracer, cat):
    return [s for s in tracer.spans if s.cat == cat]


# ---------------------------------------------------------------------- #
# tracer unit behaviour
# ---------------------------------------------------------------------- #
class TestTracerBasics:
    def test_span_records_name_cat_args_duration(self):
        tracer = trace.Tracer(run_id="t")
        with tracer.span("work", cat="round", tasks=3):
            pass
        (span,) = tracer.spans
        assert span.name == "work"
        assert span.cat == "round"
        assert span.args == {"tasks": 3}
        assert span.duration >= 0

    def test_span_records_even_on_error(self):
        tracer = trace.Tracer()
        with pytest.raises(ValueError):
            with tracer.span("broken"):
                raise ValueError("x")
        assert [s.name for s in tracer.spans] == ["broken"]

    def test_ambient_helpers_are_noop_without_tracer(self):
        assert trace.current_tracer() is None
        assert trace.span("x") is trace.NULL_SPAN
        assert trace.block_span("x") is trace.NULL_SPAN

    def test_activate_installs_and_restores(self):
        tracer = trace.Tracer()
        with trace.activate(tracer) as active:
            assert active is tracer
            assert trace.current_tracer() is tracer
            with trace.span("inner", cat="solve"):
                pass
        assert trace.current_tracer() is None
        assert [s.name for s in tracer.spans] == ["inner"]

    def test_block_span_requires_block_detail(self):
        coarse = trace.Tracer(detail=trace.DETAIL_TASK)
        with trace.activate(coarse):
            assert trace.block_span("k") is trace.NULL_SPAN
        fine = trace.Tracer(detail=trace.DETAIL_BLOCK)
        with trace.activate(fine):
            with trace.block_span("k"):
                pass
        assert [s.cat for s in fine.spans] == ["block"]

    def test_bad_detail_rejected(self):
        with pytest.raises(ValueError):
            trace.Tracer(detail="everything")

    def test_live_sink_sees_spans_and_survives_sink_errors(self):
        seen = []

        def sink(span):
            seen.append(span.name)
            raise RuntimeError("sinks are advisory")

        tracer = trace.Tracer(on_span=sink)
        with tracer.span("a"):
            pass
        assert seen == ["a"]
        assert len(tracer.spans) == 1

    def test_fold_notify_false_skips_sink(self):
        seen = []
        tracer = trace.Tracer(on_span=seen.append)
        other = trace.Tracer()
        with other.span("remote", cat="task"):
            pass
        tracer.fold(other.spans, notify=False)
        assert seen == []
        assert [s.name for s in tracer.spans] == ["remote"]


def _five() -> int:
    return 5


class TestTaskWrapping:
    CTX = trace.TaskTraceContext(run_id="r", name="round[0]", index=0)

    def test_run_traced_task_returns_taskoutput_with_spans(self):
        out = trace.run_traced_task(_five, self.CTX)
        assert isinstance(out, TaskOutput)
        assert out.value == 5
        assert [s.cat for s in out.spans] == ["task"]
        assert out.spans[0].args["task"] == 0

    def test_existing_taskoutput_keeps_value_and_evals(self):
        out = trace.run_traced_task(
            lambda: TaskOutput("v", 17), self.CTX
        )
        assert out.value == "v"
        assert out.dist_evals == 17
        assert len(out.spans) == 1

    def test_wrap_task_without_sink_pickles(self):
        wrapped = trace.wrap_task(partial(_five), self.CTX)
        clone = pickle.loads(pickle.dumps(wrapped))
        assert clone().value == 5

    def test_worker_tracer_does_not_leak_into_caller(self):
        trace.run_traced_task(_five, self.CTX)
        assert trace.current_tracer() is None


class TestChromeExport:
    def test_export_is_valid_trace_event_json(self, tmp_path):
        tracer = trace.Tracer(run_id="export-test")
        with trace.activate(tracer):
            with trace.span("outer", cat="solve"):
                with trace.span("inner", cat="round"):
                    pass
        path = tracer.export_chrome(tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert payload["otherData"]["run_id"] == "export-test"
        assert {e["name"] for e in events} == {"outer", "inner"}
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0  # rebased to the earliest span
            assert event["dur"] >= 0
            assert isinstance(event["pid"], int)
        # The nested span must sit inside its parent on the timeline.
        outer = next(e for e in events if e["name"] == "outer")
        inner = next(e for e in events if e["name"] == "inner")
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1


# ---------------------------------------------------------------------- #
# end-to-end propagation through real solves
# ---------------------------------------------------------------------- #
class TestSolvePropagation:
    @pytest.mark.parametrize("backend", ["sequential", "thread", "process"])
    def test_traced_solve_is_bit_identical_and_fully_spanned(
        self, rows, backend
    ):
        clean = repro.solve(rows, 5, "mrg", m=4, seed=1)
        tracer = trace.Tracer()
        with make_backend(backend) as executor, trace.activate(tracer):
            traced = repro.solve(rows, 5, "mrg", m=4, seed=1, executor=executor)

        # Neutrality: tracing must not perturb the computation.
        assert traced.radius == clean.radius
        np.testing.assert_array_equal(traced.centers, clean.centers)
        assert traced.stats.dist_evals == clean.stats.dist_evals

        solves = by_cat(tracer, "solve")
        rounds = by_cat(tracer, "round")
        tasks = by_cat(tracer, "task")
        assert len(solves) == 1 and solves[0].name == "solve"
        assert len(rounds) == len(traced.stats.rounds)
        # Every dispatched task folded exactly one span back, labelled
        # by its round.
        per_round = {r.name: r.args["tasks"] for r in rounds}
        for label, n_tasks in per_round.items():
            named = [t for t in tasks if t.name.startswith(f"{label}[")]
            assert len(named) == n_tasks
            assert sorted(t.args["task"] for t in named) == list(range(n_tasks))
        assert len(tasks) == sum(per_round.values())

    def test_task_spans_agree_with_round_parallel_time(self, rows):
        # RoundStats.parallel_time is the max per-task wall time the
        # executor measured; the committed task span times the same call
        # from inside, so per round: max span ~= parallel_time.
        tracer = trace.Tracer()
        with trace.activate(tracer):
            result = repro.solve(rows, 5, "mrg", m=4, seed=1)
        tasks = by_cat(tracer, "task")
        for round_stats in result.stats.rounds:
            durations = [
                t.duration for t in tasks
                if t.name.startswith(f"{round_stats.label}[")
            ]
            assert durations, f"no task spans for round {round_stats.label}"
            assert max(durations) <= round_stats.parallel_time + 0.02
            assert max(durations) >= round_stats.parallel_time - 0.02

    def test_block_detail_adds_kernel_spans(self, rows):
        tracer = trace.Tracer(detail=trace.DETAIL_BLOCK)
        with trace.activate(tracer):
            repro.solve(rows, 5, "mrg", m=4, seed=1)
        blocks = by_cat(tracer, "block")
        assert blocks, "block detail must record kernel-block spans"
        assert all(b.name == "kernels.sq_dists_block" for b in blocks)
        assert all(b.args["rows"] >= 1 for b in blocks)

    def test_task_detail_records_no_kernel_spans(self, rows):
        tracer = trace.Tracer()
        with trace.activate(tracer):
            repro.solve(rows, 5, "mrg", m=4, seed=1)
        assert by_cat(tracer, "block") == []

    def test_solve_many_traces_each_run(self, rows):
        tracer = trace.Tracer()
        with trace.activate(tracer):
            batch = repro.solve_many(rows, 4, ["gon", "mrg"], seeds=[0], m=4)
        assert len(by_cat(tracer, "solve")) == 1
        names = [t.name for t in by_cat(tracer, "task")]
        for key in batch:
            # One run-level span per batch entry; a MapReduce run also
            # folds back its own nested round/task spans.
            assert names.count(str(key)) == 1

    def test_untraced_solve_stays_untraced(self, rows):
        # The zero-cost default: no ambient tracer, no spans anywhere.
        result = repro.solve(rows, 5, "mrg", m=4, seed=1)
        assert result.radius > 0
        assert trace.current_tracer() is None


# ---------------------------------------------------------------------- #
# exactness under injected faults
# ---------------------------------------------------------------------- #
class TestFaultExactness:
    POLICY = FaultPolicy(max_retries=2, speculate_after=None)

    @pytest.mark.parametrize("backend", ["sequential", "thread", "process"])
    def test_retried_task_commits_exactly_one_span(self, rows, backend):
        clean = repro.solve(rows, 5, "mrg", m=4, seed=1)
        tracer = trace.Tracer()
        faults = FaultSchedule({(0, 0): Fault("crash")})
        with make_backend(backend) as executor, trace.activate(tracer):
            faulted = repro.solve(
                rows, 5, "mrg", m=4, seed=1, executor=executor,
                fault_policy=self.POLICY, fault_injector=faults,
            )
        assert faulted.radius == clean.radius
        assert faulted.stats.dist_evals == clean.stats.dist_evals

        # Exactly one committed span per task, crash or no crash.
        names = [t.name for t in by_cat(tracer, "task")]
        assert len(names) == len(set(names)), (
            f"duplicated committed task spans: {sorted(names)}"
        )
        # The losing attempt shows up only as an abandoned attempt span.
        attempts = by_cat(tracer, "attempt")
        assert len(attempts) == 1
        (attempt,) = attempts
        assert attempt.args["abandoned"] is True
        assert attempt.args["task"] == 0

    def test_duplicate_fault_annotates_speculative_attempt(self, rows):
        tracer = trace.Tracer()
        faults = FaultSchedule({(0, 1): Fault("duplicate")})
        with trace.activate(tracer):
            repro.solve(
                rows, 5, "mrg", m=4, seed=1,
                fault_policy=self.POLICY, fault_injector=faults,
            )
        names = [t.name for t in by_cat(tracer, "task")]
        assert len(names) == len(set(names))
        attempts = by_cat(tracer, "attempt")
        assert len(attempts) == 1
        assert attempts[0].args["abandoned"] is True
        assert attempts[0].args["speculative"] is True

    def test_metrics_never_double_count_under_retries(self, rows):
        algo = get_solver("mrg").name
        with metrics.capture() as registry:
            clean = repro.solve(rows, 5, "mrg", m=4, seed=1)
        evals = registry.counter(
            "repro_dist_evals_total", labelnames=("algorithm",)
        )
        clean_evals = evals.value(algorithm=algo)
        # The metric counts physical distance evaluations (evaluation
        # phase included), so it upper-bounds the task accounting.
        assert clean_evals >= clean.stats.dist_evals

        faults = FaultSchedule({(0, 0): Fault("crash"), (1, 0): Fault("crash")})
        with metrics.capture():  # reset=True zeroes the clean run
            repro.solve(
                rows, 5, "mrg", m=4, seed=1,
                fault_policy=self.POLICY, fault_injector=faults,
            )
        assert evals.value(algorithm=algo) == clean_evals
        retries = registry.counter("repro_task_retries_total")
        assert retries.value() == 2
        solves = registry.counter(
            "repro_solves_total", labelnames=("algorithm",)
        )
        assert solves.value(algorithm=algo) == 1

    def test_round_metrics_match_round_stats(self, rows):
        with metrics.capture() as registry:
            result = repro.solve(rows, 5, "mrg", m=4, seed=1)
        rounds = registry.counter("repro_rounds_total", labelnames=("round",))
        total = sum(
            rounds.value(round=label)
            for label in {
                r.label.partition("[")[0] for r in result.stats.rounds
            }
        )
        assert total == len(result.stats.rounds)
        parallel = registry.histogram(
            "repro_round_parallel_seconds", labelnames=("round",)
        )
        observed = sum(
            parallel.value(round=label)
            for label in {
                r.label.partition("[")[0] for r in result.stats.rounds
            }
        )
        expected = sum(r.parallel_time for r in result.stats.rounds)
        assert observed == pytest.approx(expected)
