"""Unit tests for the UNIF / GAU / UNB generators."""

import numpy as np
import pytest

from repro.data.synthetic import clustered_points, gau, unb, unif
from repro.errors import DatasetError


class TestUnif:
    def test_shape_and_range(self):
        pts = unif(1000, side=100.0, seed=0)
        assert pts.shape == (1000, 2)
        assert pts.min() >= 0.0 and pts.max() <= 100.0

    def test_deterministic(self):
        np.testing.assert_array_equal(unif(50, seed=3), unif(50, seed=3))

    def test_custom_dim(self):
        assert unif(10, dim=5, seed=0).shape == (10, 5)

    def test_roughly_uniform(self):
        pts = unif(20_000, side=1.0, seed=0)
        # Quadrant occupancy within 5% of a quarter each.
        q = ((pts[:, 0] > 0.5).astype(int) * 2 + (pts[:, 1] > 0.5)).astype(int)
        counts = np.bincount(q, minlength=4) / len(pts)
        assert np.allclose(counts, 0.25, atol=0.05)

    def test_invalid(self):
        with pytest.raises(DatasetError):
            unif(0)
        with pytest.raises(DatasetError):
            unif(10, side=-1.0)
        with pytest.raises(DatasetError):
            unif(10, dim=0)


class TestGau:
    def test_shape(self):
        pts = gau(500, k_prime=5, seed=0)
        assert pts.shape == (500, 3)

    def test_labels_returned(self):
        pts, labels = gau(500, k_prime=5, seed=0, return_labels=True)
        assert labels.shape == (500,)
        assert set(np.unique(labels)) <= set(range(5))

    def test_clusters_roughly_balanced(self):
        _, labels = gau(10_000, k_prime=10, seed=0, return_labels=True)
        counts = np.bincount(labels, minlength=10)
        assert counts.min() > 700 and counts.max() < 1300

    def test_in_cluster_spread_matches_sigma(self):
        pts, labels = gau(5000, k_prime=2, sigma=0.1, seed=0, return_labels=True)
        c0 = pts[labels == 0]
        spread = c0.std(axis=0).mean()
        assert 0.05 < spread < 0.2

    def test_scale_convention(self):
        """Inter-cluster distances ~100, in-cluster radii ~1: the ratio the
        paper's Table 2 values imply."""
        pts, labels = gau(20_000, k_prime=25, seed=1, return_labels=True)
        within = np.linalg.norm(
            pts[labels == 0] - pts[labels == 0].mean(axis=0), axis=1
        ).max()
        overall = np.linalg.norm(pts.max(axis=0) - pts.min(axis=0))
        assert within < 1.0
        assert overall > 50.0

    def test_invalid(self):
        with pytest.raises(DatasetError):
            gau(10, k_prime=0)


class TestUnb:
    def test_half_mass_in_one_cluster(self):
        _, labels = unb(20_000, k_prime=25, seed=0, return_labels=True)
        counts = np.bincount(labels, minlength=25)
        frac = counts[0] / counts.sum()
        assert 0.45 < frac < 0.55
        # Remaining clusters are each ~ (1/2) / 24 of the data.
        others = counts[1:] / counts.sum()
        assert others.max() < 0.1

    def test_heavy_fraction_parameter(self):
        _, labels = unb(20_000, k_prime=10, heavy_fraction=0.8, seed=0, return_labels=True)
        assert np.bincount(labels)[0] / 20_000 > 0.75

    def test_invalid(self):
        with pytest.raises(DatasetError):
            unb(10, k_prime=1)
        with pytest.raises(DatasetError):
            unb(10, heavy_fraction=1.5)


class TestClusteredPoints:
    def test_weights_validation(self):
        centers = np.zeros((2, 2))
        with pytest.raises(DatasetError):
            clustered_points(10, centers, np.array([1.0]), 0.1)
        with pytest.raises(DatasetError):
            clustered_points(10, centers, np.array([-1.0, 2.0]), 0.1)
        with pytest.raises(DatasetError):
            clustered_points(10, centers, np.array([0.0, 0.0]), 0.1)

    def test_sigma_zero_collapses_to_centers(self):
        centers = np.array([[0.0, 0.0], [10.0, 10.0]])
        pts, labels = clustered_points(100, centers, np.array([1.0, 1.0]), 0.0, seed=0)
        np.testing.assert_allclose(pts, centers[labels])

    def test_negative_sigma_rejected(self):
        with pytest.raises(DatasetError):
            clustered_points(10, np.zeros((2, 2)), np.ones(2), -0.1)

    def test_bad_centers_rejected(self):
        with pytest.raises(DatasetError):
            clustered_points(10, np.zeros((0, 2)), np.ones(0), 0.1)
