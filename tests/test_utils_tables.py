"""Unit tests for repro.utils.tables."""

import pytest

from repro.utils.tables import format_table, format_value


class TestFormatValue:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (96.04, "96.04"),
            (0.961, "0.9610"),
            (9.144, "9.144"),
            (0, "0"),
            (0.0, "0.000"),
            (12, "12"),
            ("abc", "abc"),
            (None, "None"),
            (True, "True"),
        ],
    )
    def test_paper_style_formatting(self, value, expected):
        assert format_value(value) == expected

    def test_nan(self):
        assert format_value(float("nan")) == "nan"

    def test_huge_and_tiny_use_exponent(self):
        assert "e" in format_value(3.2e9)
        assert "e" in format_value(4.1e-7)

    def test_negative(self):
        assert format_value(-9.144) == "-9.144"


class TestFormatTable:
    def test_alignment_and_header(self):
        out = format_table(["k", "v"], [[2, 96.04], [100, 0.961]])
        lines = out.splitlines()
        assert lines[0].strip().startswith("k")
        widths = {len(line) for line in lines}
        assert len(widths) == 1, "all lines equal width"

    def test_title(self):
        out = format_table(["a"], [[1]], title="Table X")
        assert out.splitlines()[0] == "Table X"

    def test_markdown_mode(self):
        out = format_table(["a", "b"], [[1, 2]], markdown=True)
        assert out.splitlines()[1].startswith("|-")
        assert out.splitlines()[0].startswith("| ")

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        out = format_table(["a", "b"], [])
        assert "a" in out and "b" in out
