"""Unit tests for the declarative MapReduce job layer."""

import numpy as np
import pytest

from repro.errors import InvalidParameterError
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.job import MapReduceJob, MapReduceRound


def _split(state, m, rng):
    """Partition a list into m roughly equal chunks."""
    chunks = [state[i::m] for i in range(m)]
    return [c for c in chunks if c]


class TestMapReduceJob:
    def test_word_count_style_job(self):
        # Round 1: per-machine partial sums; round 2: single-machine total.
        rounds = [
            MapReduceRound(
                label="partial-sum",
                partition=_split,
                reduce=lambda payload, rng: sum(payload),
            ),
            MapReduceRound(
                label="total",
                partition=lambda sums, m, rng: [sums],
                reduce=lambda payload, rng: sum(payload),
                combine=lambda results: results[0],
            ),
        ]
        cluster = SimulatedCluster(m=4)
        total = MapReduceJob(rounds).run(cluster, list(range(101)), seed=0)
        assert total == sum(range(101))
        assert cluster.stats.n_rounds == 2

    def test_per_machine_rngs_are_deterministic(self):
        rnd = MapReduceRound(
            label="draw",
            partition=lambda state, m, rng: [None] * m,
            reduce=lambda payload, rng: rng.integers(0, 10**9),
        )
        a = MapReduceJob([rnd]).run(SimulatedCluster(m=3), None, seed=7)
        b = MapReduceJob([rnd]).run(SimulatedCluster(m=3), None, seed=7)
        assert a == b
        c = MapReduceJob([rnd]).run(SimulatedCluster(m=3), None, seed=8)
        assert a != c

    def test_machine_rngs_are_independent(self):
        rnd = MapReduceRound(
            label="draw",
            partition=lambda state, m, rng: [None] * m,
            reduce=lambda payload, rng: rng.integers(0, 10**9),
        )
        draws = MapReduceJob([rnd]).run(SimulatedCluster(m=4), None, seed=7)
        assert len(set(draws)) == 4

    def test_rounds_draw_fresh_rngs(self):
        """Successive rounds must not reuse the same machine streams."""
        rnd = MapReduceRound(
            label="draw",
            partition=lambda state, m, rng: [None] * m,
            reduce=lambda payload, rng: int(rng.integers(0, 10**9)),
            combine=lambda results: results,
        )
        out = MapReduceJob([rnd, rnd]).run(SimulatedCluster(m=3), None, seed=7)
        # The job threads state: after round 2, `out` is round 2's draws.
        first = MapReduceJob([rnd]).run(SimulatedCluster(m=3), None, seed=7)
        assert out != first

    def test_too_many_payloads_rejected(self):
        rnd = MapReduceRound(
            label="bad",
            partition=lambda state, m, rng: [None] * (m + 1),
            reduce=lambda payload, rng: None,
        )
        with pytest.raises(InvalidParameterError, match="payloads"):
            MapReduceJob([rnd]).run(SimulatedCluster(m=2), None, seed=0)

    def test_empty_job_rejected(self):
        with pytest.raises(InvalidParameterError, match="at least one round"):
            MapReduceJob([])

    def test_size_of_default_handles_unsized(self):
        rnd = MapReduceRound(
            label="unsized",
            partition=lambda state, m, rng: [object()],
            reduce=lambda payload, rng: "ok",
        )
        cluster = SimulatedCluster(m=1)
        MapReduceJob([rnd]).run(cluster, None, seed=0)
        assert cluster.stats.rounds[0].task_sizes == [1]
