"""Tests for the one-pass streaming doubling solver (STREAM)."""

import numpy as np
import pytest

import repro
from repro.core.exact import exact_kcenter
from repro.core.streaming import doubling_trace, stream_kcenter
from repro.errors import InvalidParameterError
from repro.metric.euclidean import EuclideanSpace


@pytest.fixture(scope="module")
def space():
    points = np.random.default_rng(11).normal(size=(500, 3))
    return EuclideanSpace(points)


@pytest.fixture(scope="module")
def tiny_space():
    points = np.random.default_rng(4).normal(size=(30, 2))
    return EuclideanSpace(points)


class TestApproximation:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_radius_within_8x_exact(self, tiny_space, k):
        opt = exact_kcenter(tiny_space, k).radius
        result = stream_kcenter(tiny_space, k)
        assert result.radius <= 8.0 * opt + 1e-12

    @pytest.mark.parametrize("k", [2, 3])
    def test_shuffled_orders_stay_within_8x(self, tiny_space, k):
        opt = exact_kcenter(tiny_space, k).radius
        for seed in range(5):
            result = stream_kcenter(tiny_space, k, seed=seed, shuffle=True)
            assert result.radius <= 8.0 * opt + 1e-12

    def test_certificate_brackets_radius(self, space):
        result = stream_kcenter(space, 8, seed=0)
        # threshold < OPT <= radius <= radius_bound <= 8 * threshold
        assert result.extra["threshold"] <= result.radius + 1e-12
        assert result.radius <= result.extra["radius_bound"] + 1e-12
        assert result.extra["radius_bound"] <= 8.0 * result.extra["threshold"] + 1e-12

    def test_result_fields(self, space):
        result = stream_kcenter(space, 8, seed=0)
        assert result.algorithm == "STREAM"
        assert result.approx_factor == 8.0
        assert result.n_centers <= 8
        assert result.n_rounds == 0  # sequential: no MapReduce accounting
        assert result.stats is None
        assert result.extra["doublings"] >= 1


class TestDeterminism:
    def test_default_order_is_deterministic(self, space):
        a = stream_kcenter(space, 6)
        b = stream_kcenter(space, 6)
        assert (a.centers == b.centers).all()
        assert a.radius == b.radius
        assert a.extra == {**b.extra}

    def test_same_shuffle_seed_same_result(self, space):
        a = stream_kcenter(space, 6, seed=42, shuffle=True)
        b = stream_kcenter(space, 6, seed=42, shuffle=True)
        assert (a.centers == b.centers).all()
        assert a.radius == b.radius

    def test_order_sensitivity_under_different_seeds(self, space):
        # The pass is order-sensitive: across several shuffle seeds at
        # least one arrival order must select a different center set.
        baseline = stream_kcenter(space, 6, seed=0, shuffle=True)
        assert any(
            not np.array_equal(
                stream_kcenter(space, 6, seed=s, shuffle=True).centers,
                baseline.centers,
            )
            for s in range(1, 6)
        )

    def test_batch_size_never_changes_the_solution(self, space):
        # Centers, threshold and doubling count are batch-size invariant.
        # cover_bound is deliberately NOT compared: its tightness (never
        # its validity) depends on batch granularity — the screen records
        # coverage distances against the batch-start snapshot.
        reference = doubling_trace(space, 5)
        true_radius = space.covering_radius(reference.centers)
        for batch_size in (1, 3, 17, 100, 10_000):
            trace = doubling_trace(space, 5, batch_size=batch_size)
            assert (trace.centers == reference.centers).all()
            assert trace.threshold == reference.threshold
            assert trace.doublings == reference.doublings
            # every batching's certificate stays valid
            assert true_radius <= trace.cover_bound + 1e-12
            assert trace.cover_bound <= 8.0 * trace.threshold + 1e-12


class TestEdgeCases:
    def test_empty_space(self):
        result = stream_kcenter(EuclideanSpace(np.empty((0, 2))), 3)
        assert result.n_centers == 0
        assert result.radius == 0.0

    def test_fewer_points_than_k(self):
        pts = np.random.default_rng(0).normal(size=(4, 2))
        result = stream_kcenter(EuclideanSpace(pts), 10)
        # every distinct point becomes a center: perfect cover
        assert result.n_centers == 4
        assert result.radius == 0.0

    def test_duplicate_points_are_absorbed(self):
        pts = np.repeat(np.random.default_rng(1).normal(size=(3, 2)), 20, axis=0)
        result = stream_kcenter(EuclideanSpace(pts), 3)
        assert result.n_centers == 3
        assert result.radius == 0.0

    def test_k_one(self, tiny_space):
        opt = exact_kcenter(tiny_space, 1).radius
        result = stream_kcenter(tiny_space, 1)
        assert result.n_centers == 1
        assert result.radius <= 8.0 * opt + 1e-12

    def test_invalid_parameters(self, tiny_space):
        with pytest.raises(InvalidParameterError, match="positive"):
            stream_kcenter(tiny_space, 0)
        with pytest.raises(InvalidParameterError, match="batch_size"):
            stream_kcenter(tiny_space, 2, batch_size=0)

    def test_no_evaluate_stays_one_pass(self, space):
        result = stream_kcenter(space, 5, evaluate=False)
        assert result.radius == 0.0
        assert result.eval_time == 0.0
        # the certificate still covers the true radius
        true_radius = space.covering_radius(result.centers)
        assert true_radius <= result.extra["radius_bound"] + 1e-12

    def test_centers_are_valid_and_unique(self, space):
        centers = stream_kcenter(space, 7, seed=1, shuffle=True).centers
        assert len(np.unique(centers)) == len(centers)
        assert centers.min() >= 0 and centers.max() < space.n


class TestFacadeIntegration:
    def test_facade_matches_direct_call(self, space):
        direct = stream_kcenter(space, 5, seed=3, shuffle=True)
        via = repro.solve(space, 5, algorithm="stream", seed=3, shuffle=True)
        assert (via.centers == direct.centers).all()
        assert via.radius == direct.radius

    def test_aliases(self, space):
        for alias in ("streaming", "doubling", "charikar", "STREAM"):
            result = repro.solve(space, 4, algorithm=alias)
            assert result.algorithm == "STREAM"

    def test_unknown_option_rejected_up_front(self, space):
        with pytest.raises(InvalidParameterError, match="unknown option"):
            repro.solve(space, 4, algorithm="stream", buffer_size=10)

    def test_cluster_knob_rejected(self, space):
        with pytest.raises(InvalidParameterError, match="does not accept"):
            repro.solve(space, 4, algorithm="stream", m=50)

    def test_solve_many_mixes_stream_with_mapreduce(self, space):
        batch = repro.solve_many(
            space, 4, algorithms=("stream", "mrg"), seeds=(0, 1), m=4
        )
        assert len(batch) == 4
        assert batch["stream", 0].algorithm == "STREAM"
        assert batch["mrg", 1].algorithm == "MRG"

    def test_top_level_export(self):
        assert repro.stream_kcenter is stream_kcenter
        assert "stream_kcenter" in repro.__all__
