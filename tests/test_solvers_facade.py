"""Facade tests: solve()/solve_many() vs direct calls, batch determinism."""

import numpy as np
import pytest

import repro
from repro.core.eim import eim
from repro.core.exact import exact_kcenter
from repro.core.gonzalez import gonzalez
from repro.core.hochbaum_shmoys import hochbaum_shmoys
from repro.core.mr_hochbaum_shmoys import mr_hochbaum_shmoys
from repro.core.mrg import mrg
from repro.errors import InvalidParameterError
from repro.mapreduce.executor import ProcessPoolExecutorBackend, SequentialExecutor
from repro.metric.euclidean import EuclideanSpace
from repro.solvers import BatchKey, solve, solve_many


@pytest.fixture(scope="module")
def space():
    points = np.random.default_rng(7).normal(size=(400, 3))
    return EuclideanSpace(points)


@pytest.fixture(scope="module")
def tiny_space(space):
    return space.local(np.arange(14, dtype=np.intp))


# (algorithm, direct fn, kwargs) — kwargs go verbatim to both routes.
EQUIVALENCE_CASES = [
    ("gon", gonzalez, {"seed": 0}),
    ("gon", gonzalez, {"seed": 5, "first_center": 3}),
    ("mrg", mrg, {"seed": 0, "m": 6}),
    ("mrg", mrg, {"seed": 2, "m": 4, "partitioner": "random"}),
    ("eim", eim, {"seed": 0, "m": 6}),
    ("eim", eim, {"seed": 2, "m": 4, "phi": 4.0, "eps": 0.2}),
    ("mrhs", mr_hochbaum_shmoys, {"seed": 0, "m": 5}),
]


class TestSolveEquivalence:
    @pytest.mark.parametrize("algorithm,direct,kwargs", EQUIVALENCE_CASES)
    def test_same_centers_as_direct_call(self, space, algorithm, direct, kwargs):
        via_facade = solve(space, 4, algorithm=algorithm, **kwargs)
        direct_result = direct(space, 4, **kwargs)
        assert (via_facade.centers == direct_result.centers).all()
        assert via_facade.radius == direct_result.radius
        assert via_facade.algorithm == direct_result.algorithm

    def test_deterministic_solvers_match(self, tiny_space):
        hs_pair = (solve(tiny_space, 3, "hs"), hochbaum_shmoys(tiny_space, 3))
        exact_pair = (
            solve(tiny_space, 3, "exact", seed=9),  # seed is ignored
            exact_kcenter(tiny_space, 3),
        )
        for facade_result, direct_result in (hs_pair, exact_pair):
            assert (facade_result.centers == direct_result.centers).all()
            assert facade_result.radius == direct_result.radius

    def test_aliases_resolve(self, space):
        a = solve(space, 3, algorithm="gonzalez", seed=1)
        b = solve(space, 3, algorithm="GON", seed=1)
        assert (a.centers == b.centers).all()

    def test_seed_sweep_matches_direct(self, space):
        for seed in range(3):
            facade_result = solve(space, 5, "eim", seed=seed, m=5)
            direct_result = eim(space, 5, seed=seed, m=5)
            assert (facade_result.centers == direct_result.centers).all()


class TestSolveValidation:
    def test_unknown_algorithm(self, space):
        with pytest.raises(InvalidParameterError, match="unknown algorithm"):
            solve(space, 3, algorithm="kmeans")

    def test_unknown_option(self, space):
        with pytest.raises(InvalidParameterError, match="unknown option"):
            solve(space, 3, algorithm="mrg", phi=4.0)

    def test_shared_knob_not_taken(self, space):
        with pytest.raises(InvalidParameterError, match="does not accept"):
            solve(space, 3, algorithm="gon", m=10)

    def test_invalid_k(self, space):
        with pytest.raises(InvalidParameterError):
            solve(space, 0, algorithm="gon")

    def test_validation_happens_before_running(self, space):
        # An unknown option must not start the (expensive) algorithm.
        before = space.counter.evals
        with pytest.raises(InvalidParameterError):
            solve(space, 3, algorithm="eim", bogus=1)
        assert space.counter.evals == before


class TestSolveMany:
    def test_keys_and_results(self, space):
        batch = solve_many(space, 4, algorithms=("gon", "mrg"), seeds=(0, 1), m=5)
        assert set(batch) == {
            BatchKey("gon", 0),
            BatchKey("gon", 1),
            BatchKey("mrg", 0),
            BatchKey("mrg", 1),
        }
        # Plain tuples work as lookup keys too.
        assert batch["gon", 0].algorithm == "GON"
        for key, result in batch.items():
            assert result.n_centers == 4

    def test_matches_individual_solves(self, space):
        batch = solve_many(space, 4, algorithms=("gon", "eim"), seeds=(0, 1), m=5)
        for (name, seed), batched in batch.items():
            single = solve(space, 4, algorithm=name, seed=seed,
                           **({"m": 5} if name == "eim" else {}))
            assert (batched.centers == single.centers).all()

    def test_single_string_algorithm(self, space):
        batch = solve_many(space, 3, algorithms="gon", seeds=(0,))
        assert list(batch) == [BatchKey("gon", 0)]

    def test_batch_knobs_skip_sequential_solvers(self, space):
        # m applies to mrg but must not error on gon.
        batch = solve_many(space, 3, algorithms=("gon", "mrg"), seeds=(0,), m=4)
        assert batch["mrg", 0].extra["m"] == 4

    def test_batch_options_apply_where_accepted(self, space):
        batch = solve_many(
            space, 3, algorithms=("gon", "eim"), seeds=(0,), m=4, phi=4.0
        )
        assert batch["eim", 0].extra["params"].phi == 4.0

    def test_labelled_option_sweep(self, space):
        batch = solve_many(
            space,
            4,
            algorithms=[
                ("eim", {"phi": phi, "label": f"eim-phi{phi:g}"})
                for phi in (1.0, 8.0)
            ],
            seeds=(0,),
            m=5,
        )
        assert set(key.algorithm for key in batch) == {"eim-phi1", "eim-phi8"}

    def test_per_entry_shared_knob_overrides_batch(self, space):
        batch = solve_many(
            space, 3,
            algorithms=[("mrg", {"m": 4}), ("eim", {"executor": SequentialExecutor()})],
            seeds=(0,),
            m=8,
        )
        assert batch["mrg", 0].extra["m"] == 4
        assert batch["eim", 0].extra["m"] == 8

    def test_per_entry_knob_strictly_validated(self, space):
        with pytest.raises(InvalidParameterError, match="does not accept 'm'"):
            solve_many(space, 3, algorithms=[("gon", {"m": 4})], seeds=(0,))

    def test_per_entry_seed_rejected(self, space):
        with pytest.raises(InvalidParameterError, match="seeds grid"):
            solve_many(space, 3, algorithms=[("gon", {"seed": 1})], seeds=(0,))

    def test_orphaned_batch_option_rejected(self, space):
        # A typo'd batch-wide option must not silently run defaults.
        with pytest.raises(InvalidParameterError, match="no solver in this batch"):
            solve_many(space, 3, algorithms=("gon", "eim"), seeds=(0,), phy=99.0)

    def test_duplicate_key_rejected(self, space):
        with pytest.raises(InvalidParameterError, match="duplicate"):
            solve_many(space, 3, algorithms=("gon", "gonzalez"), seeds=(0,))

    def test_per_entry_option_validated(self, space):
        with pytest.raises(InvalidParameterError, match="unknown option"):
            solve_many(space, 3, algorithms=[("gon", {"phi": 1.0})], seeds=(0,))

    def test_empty_inputs_rejected(self, space):
        with pytest.raises(InvalidParameterError, match="at least one algorithm"):
            solve_many(space, 3, algorithms=[], seeds=(0,))
        with pytest.raises(InvalidParameterError, match="at least one seed"):
            solve_many(space, 3, algorithms=("gon",), seeds=())

    def test_deterministic_across_executors(self, space):
        grid = dict(algorithms=("gon", "mrg", "eim", "hs"), seeds=(0, 1), m=5)
        sequential = solve_many(space, 4, executor=SequentialExecutor(), **grid)
        pooled = solve_many(
            space, 4, executor=ProcessPoolExecutorBackend(max_workers=2), **grid
        )
        assert sequential.keys() == pooled.keys()
        for key in sequential:
            assert (sequential[key].centers == pooled[key].centers).all()
            assert sequential[key].radius == pooled[key].radius


class TestTopLevelExports:
    def test_facade_reexported(self):
        assert repro.solve is solve
        assert repro.solve_many is solve_many
        assert "solve" in repro.__all__ and "solve_many" in repro.__all__

    def test_registry_reexported(self):
        assert repro.get_solver("gon").name == "gon"
        assert [spec.name for spec in repro.list_solvers()] == repro.solver_names()


class TestDataCoercion:
    """solve()/solve_many() accept arrays, streams and .npy paths."""

    @pytest.fixture
    def pts(self):
        return np.random.default_rng(12).uniform(0.0, 100.0, size=(250, 3))

    def test_array_input(self, pts):
        want = solve(EuclideanSpace(pts), 5, algorithm="gon", seed=0)
        got = solve(pts, 5, algorithm="gon", seed=0)
        assert np.array_equal(want.centers, got.centers)
        assert want.radius == got.radius

    def test_npy_path_is_solved_out_of_core(self, pts, tmp_path):
        from repro.store import ChunkedMetricSpace

        path = tmp_path / "pts.npy"
        np.save(path, pts)
        want = solve(EuclideanSpace(pts), 5, algorithm="stream", seed=0)
        got = solve(str(path), 5, algorithm="stream", seed=0, chunk_size=64)
        assert np.array_equal(want.centers, got.centers)
        assert want.radius == got.radius
        # and the coercion really picks the chunked adapter
        from repro.store import as_space

        assert isinstance(as_space(str(path)), ChunkedMetricSpace)

    def test_algorithm_first_form(self, pts, tmp_path):
        """ISSUE acceptance: repro.solve("stream", ..., data=path)."""
        path = tmp_path / "pts.npy"
        np.save(path, pts)
        want = solve(EuclideanSpace(pts), 6, algorithm="stream", seed=1)
        got = repro.solve("stream", 6, data=str(path), seed=1)
        assert np.array_equal(want.centers, got.centers)
        assert want.radius == got.radius

    def test_stream_input(self, pts):
        from repro.store import ArrayStream

        want = solve(EuclideanSpace(pts), 4, algorithm="stream", seed=0)
        got = solve(ArrayStream(pts, chunk_size=33), 4, algorithm="stream", seed=0)
        assert np.array_equal(want.centers, got.centers)

    def test_space_and_data_together_rejected(self, pts):
        with pytest.raises(InvalidParameterError):
            solve(EuclideanSpace(pts), 4, data=pts)

    def test_solve_many_accepts_path(self, pts, tmp_path):
        path = tmp_path / "pts.npy"
        np.save(path, pts)
        want = solve_many(EuclideanSpace(pts), 4, algorithms=("stream",), seeds=(0,))
        got = solve_many(str(path), 4, algorithms=("stream",), seeds=(0,), chunk_size=50)
        key = BatchKey("stream", 0)
        assert np.array_equal(want[key].centers, got[key].centers)
        assert want[key].radius == got[key].radius

    def test_conflicting_algorithms_rejected(self, pts, tmp_path):
        path = tmp_path / "pts.npy"
        np.save(path, pts)
        with pytest.raises(InvalidParameterError, match="two algorithms"):
            solve("gon", 5, algorithm="stream", data=str(path))

    def test_forgotten_data_kwarg_is_diagnosed(self):
        with pytest.raises(InvalidParameterError, match="data="):
            solve("stream", 5)


class TestHeterogeneousBatches:
    """Per-entry ``k`` and entry-owned seeding — the serve scheduler's
    contract: one batch may mix center counts and seeds while every run's
    result and accounting stay identical to a standalone solve."""

    @pytest.fixture(scope="class")
    def pts(self):
        return np.random.default_rng(20).normal(size=(120, 3))

    def test_per_entry_k_overrides_batch_k(self, pts):
        batch = solve_many(
            pts,
            4,
            [("gon", {"k": 2, "label": "g2"}), ("gon", {"label": "g4"})],
            seeds=(0,),
        )
        assert batch[BatchKey("g2", 0)].k == 2
        assert batch[BatchKey("g4", 0)].k == 4
        for k in (2, 4):
            direct = repro.solve(pts, k, "gon", seed=0)
            got = batch[BatchKey(f"g{k}", 0)]
            assert np.array_equal(got.centers, direct.centers)
            assert got.radius == direct.radius

    def test_entry_owned_seeding(self, pts):
        batch = solve_many(
            pts,
            3,
            [
                ("gon", {"seed": 0, "label": "a"}),
                ("gon", {"seed": 7, "label": "b"}),
                ("gon", {"label": "c"}),  # default seed None
            ],
            seeds=None,
        )
        assert set(batch) == {
            BatchKey("a", 0),
            BatchKey("b", 7),
            BatchKey("c", None),
        }
        for label, seed in (("a", 0), ("b", 7)):
            direct = repro.solve(pts, 3, "gon", seed=seed)
            assert batch[BatchKey(label, seed)].radius == direct.radius

    def test_per_entry_seed_still_rejected_under_seed_grid(self, pts):
        with pytest.raises(InvalidParameterError, match="seeds grid"):
            solve_many(pts, 3, [("gon", {"seed": 1})], seeds=(0, 1))

    def test_run_summaries_fold_into_the_batch_summary(self, pts):
        batch = solve_many(
            pts, 3, ("gon", "mrg"), seeds=(0, 1), m=4
        )
        assert set(batch.run_summaries) == set(batch)
        assert all(s.runs == 1 for s in batch.run_summaries.values())
        total = batch.summary
        parts = batch.run_summaries.values()
        assert total.runs == len(batch)
        assert total.dist_evals == sum(s.dist_evals for s in parts)
        assert total.cpu_time == pytest.approx(sum(s.cpu_time for s in parts))
        assert total.parallel_time == max(s.parallel_time for s in parts)

    def test_heterogeneous_batch_matches_standalone_accounting(self, pts):
        """Mixed-k batch runs report the same result and per-run
        dist_evals as the same runs made in single-entry batches."""
        batch = solve_many(
            pts,
            4,
            [("mrg", {"k": 3, "m": 4, "label": "m3"}),
             ("mrg", {"m": 4, "label": "m4"})],
            seeds=(0,),
        )
        for label, k in (("m3", 3), ("m4", 4)):
            solo = solve_many(pts, k, [("mrg", {"m": 4})], seeds=(0,))
            direct = solo[BatchKey("mrg", 0)]
            got = batch[BatchKey(label, 0)]
            assert np.array_equal(got.centers, direct.centers)
            assert got.radius == direct.radius
            assert (
                batch.run_summaries[BatchKey(label, 0)].dist_evals
                == solo.run_summaries[BatchKey("mrg", 0)].dist_evals
            )
