"""The persistent execution engine: pool lifecycle, batched accounting,
workspace kernels and the batch roll-up.

Contracts under test (docs/architecture.md, "Execution engine"):

* pool backends spawn their workers once and reuse them across ``run``
  calls (worker-PID stability) unless ``persistent=False``;
* the context manager closes the pool on *every* exit path, and a closed
  backend transparently re-opens;
* per-task private counters (lock-free ``TaskCounter``) keep totals
  exactly equal to the locked shared-counter path;
* ``solve_many`` returns a ``BatchResults`` whose summary matches the
  per-run ground truth on every backend;
* the per-thread kernel :class:`~repro.metric.kernels.Workspace` recycles
  buffers without changing a bit, even under concurrent thread tasks.
"""

import os
import threading
import time
from functools import partial

import numpy as np
import pytest

import repro
from repro.mapreduce.accounting import BatchSummary
from repro.mapreduce.executor import (
    ProcessPoolExecutorBackend,
    SequentialExecutor,
    ThreadPoolExecutorBackend,
)
from repro.metric import kernels
from repro.metric.base import DistCounter, TaskCounter
from repro.metric.euclidean import EuclideanSpace
from repro.solvers import BatchResults
from repro.store import DistanceCache, machine_view


@pytest.fixture(scope="module")
def space():
    return EuclideanSpace(np.random.default_rng(5).normal(size=(300, 3)))


def _sleep_pid(seconds: float = 0.01) -> int:
    time.sleep(seconds)
    return os.getpid()


def _ident() -> int:
    return threading.get_ident()


class TestPoolLifecycle:
    def test_process_workers_stable_across_runs(self):
        """The tentpole claim: one spawn per job, not per round.  Three
        rounds' worth of tasks on one backend must see at most
        ``max_workers`` distinct worker PIDs in total."""
        with ProcessPoolExecutorBackend(max_workers=2, chunksize=1) as ex:
            pids = set()
            for _ in range(3):
                results, _ = ex.run([partial(_sleep_pid, 0.02)] * 4)
                pids.update(results)
        assert 1 <= len(pids) <= 2, pids

    def test_nonpersistent_respawns_per_run(self):
        ex = ProcessPoolExecutorBackend(max_workers=1, persistent=False)
        (first,), _ = ex.run([os.getpid])
        (second,), _ = ex.run([os.getpid])
        assert first != second  # a fresh pool per run means fresh workers
        assert not ex.is_open

    def test_thread_workers_stable_across_runs(self):
        with ThreadPoolExecutorBackend(max_workers=2) as ex:
            idents = set()
            for _ in range(3):
                results, _ = ex.run([_ident] * 4)
                idents.update(results)
        assert 1 <= len(idents) <= 2, idents

    def test_open_close_idempotent_and_reopenable(self):
        ex = ThreadPoolExecutorBackend(max_workers=1)
        assert not ex.is_open
        ex.open()
        ex.open()
        assert ex.is_open
        ex.close()
        ex.close()
        assert not ex.is_open
        results, _ = ex.run([_ident])  # transparently re-opens
        assert ex.is_open and len(results) == 1
        ex.close()

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: ThreadPoolExecutorBackend(max_workers=2),
            lambda: ProcessPoolExecutorBackend(max_workers=1),
        ],
        ids=["thread", "process"],
    )
    def test_context_manager_closes_on_error(self, factory):
        ex = factory()
        with pytest.raises(RuntimeError, match="boom"):
            with ex:
                ex.run([os.getpid])
                assert ex.is_open
                raise RuntimeError("boom")
        assert not ex.is_open

    def test_sequential_lifecycle_is_noop(self):
        ex = SequentialExecutor()
        with ex as inner:
            assert inner is ex
        ex.open()
        ex.close()
        assert ex.run([]) == ([], [])

    def test_backend_pickles_without_its_pool(self):
        import pickle

        ex = ProcessPoolExecutorBackend(max_workers=2, chunksize=3)
        ex.open()
        try:
            clone = pickle.loads(pickle.dumps(ex))
        finally:
            ex.close()
        assert not clone.is_open
        assert clone.max_workers == 2 and clone.chunksize == 3

    def test_chunksize_heuristic_and_override(self):
        ex = ProcessPoolExecutorBackend(max_workers=4)
        assert ex._resolve_chunksize(3) == 1
        assert ex._resolve_chunksize(160) == 10
        assert ProcessPoolExecutorBackend(chunksize=7)._resolve_chunksize(1000) == 7
        with pytest.raises(ValueError):
            ProcessPoolExecutorBackend(chunksize=0)

    def test_chunked_submission_preserves_task_order(self):
        with ProcessPoolExecutorBackend(max_workers=2, chunksize=5) as ex:
            results, times = ex.run([partial(int, i) for i in range(23)])
        assert results == list(range(23))
        assert len(times) == 23 and all(t >= 0 for t in times)

    def test_mrg_job_spawns_one_pool_across_rounds(self, space):
        """A multi-round MRG job must not respawn between rounds."""
        spawns = []

        class CountingBackend(ProcessPoolExecutorBackend):
            def _make_pool(self):
                spawns.append(1)
                return super()._make_pool()

        with CountingBackend(max_workers=2) as ex:
            # k*m = 64 > capacity = 40 >= ceil(n/m): the multi-round
            # regime — at least reduce[1], reduce[2] and the final round.
            result = repro.solve(
                space, 8, "mrg", m=8, capacity=40, seed=0, executor=ex
            )
        assert result.stats.n_rounds >= 3
        assert sum(spawns) == 1


class TestTaskCounter:
    def test_machine_view_counter_is_lock_free_and_exact(self, space):
        parent_before = space.counter.evals
        view = machine_view(space, np.arange(100))
        assert isinstance(view.counter, TaskCounter)
        view.min_dists(None, np.array([0, 1]))
        assert view.counter.evals == 100 * 2
        assert space.counter.evals == parent_before  # private: parent untouched

    def test_task_counter_roundtrips_through_pickle(self):
        import pickle

        counter = TaskCounter()
        counter.add(5)
        counter.count_cache(True)
        clone = pickle.loads(pickle.dumps(counter))
        clone.add(2)
        assert (clone.evals, clone.cache_hits) == (7, 1)
        clone.reset()
        assert clone.evals == 0

    def test_shared_counter_keeps_its_lock(self):
        # The shared-space counter must stay the locked base class: EIM's
        # closure tasks hammer it from concurrent threads.
        assert type(EuclideanSpace(np.zeros((2, 1))).counter) is DistCounter

    def test_batched_fold_totals_match_locked_path(self, space):
        """One lock acquisition per task (TaskOutput fold) must tally the
        same total as per-block locking on the shared counter."""
        idx = np.arange(space.n)
        expected = space.n * 3  # dists_to charges |I| per reference point

        shared = DistCounter()
        shared_view = space.local(idx)
        shared_view.counter = shared
        for j in (0, 1, 2):
            shared_view.dists_to(None, j)

        folded = DistCounter()
        view = machine_view(space, idx)
        for j in (0, 1, 2):
            view.dists_to(None, j)
        folded.add(view.counter.evals)  # the single per-task fold

        assert shared.evals == folded.evals == expected


class TestBatchSummary:
    GRID = dict(algorithms=("gon", "mrg", "stream"), seeds=(0, 1), m=4)

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: None,
            lambda: ThreadPoolExecutorBackend(max_workers=3),
            lambda: ProcessPoolExecutorBackend(max_workers=2),
        ],
        ids=["sequential", "thread", "process"],
    )
    def test_summary_matches_per_run_ground_truth(self, space, factory):
        executor = factory()
        try:
            batch = repro.solve_many(space, 4, executor=executor, **self.GRID)
        finally:
            if executor is not None:
                executor.close()
        assert isinstance(batch, BatchResults)
        assert isinstance(batch.summary, BatchSummary)
        summary = batch.summary
        assert summary.runs == len(batch) == 6
        # Ground truth: re-run each cell alone with a private counter.
        total = 0
        for key, result in batch.items():
            solo = repro.solve_many(
                space, 4, key.algorithm, seeds=(key.seed,), m=4
            )
            total += solo.summary.dist_evals
            assert (solo[list(solo)[0]].centers == result.centers).all()
        assert summary.dist_evals == total
        assert summary.solver_rounds == sum(
            r.stats.n_rounds for r in batch.values() if r.stats is not None
        )
        assert 0.0 < summary.parallel_time <= summary.cpu_time
        assert summary.summary()["runs"] == 6

    def test_cache_reuse_is_visible_but_records_invariant(self, space):
        plain = repro.solve_many(space, 3, ("gon", "hs"), seeds=(0, 1))
        cached = repro.solve_many(
            space, 3, ("gon", "hs"), seeds=(0, 1), cache=DistanceCache()
        )
        assert cached.summary.dist_evals == plain.summary.dist_evals
        assert plain.summary.cache_hits == plain.summary.cache_misses == 0
        assert cached.summary.cache_misses == 1  # first run computes
        assert cached.summary.cache_hits == 3  # the rest reuse
        for key in plain:
            assert (plain[key].centers == cached[key].centers).all()


class TestWorkspace:
    def test_take_recycles_buffers(self):
        ws = kernels.Workspace()
        a = ws.take("gemm", (8, 4))
        b = ws.take("gemm", (6, 4))
        # same backing allocation, no realloc
        assert a.__array_interface__["data"][0] == b.__array_interface__["data"][0]
        c = ws.take("gemm", (64, 64))  # growth reallocates once
        assert c.shape == (64, 64) and ws.nbytes >= c.nbytes
        ws.release()
        assert ws.nbytes == 0

    def test_oversized_requests_are_not_retained(self):
        """A dataset-sized temporary (whole-space dists_to_point on a big
        in-memory set) must not be pinned by the thread-local workspace:
        held scratch stays O(block budget), never O(n*d)."""
        ws = kernels.Workspace()
        rows = kernels.MAX_RETAINED_BYTES // 8 + 1
        big = ws.take("diff", (rows, 1))
        assert big.shape == (rows, 1)
        assert ws.nbytes == 0  # transient allocation, nothing held
        small = ws.take("diff", (16, 4))
        assert ws.nbytes == small.nbytes

    def test_workspace_is_per_thread(self):
        seen = {}

        def grab(tag):
            seen[tag] = kernels.workspace()

        t = threading.Thread(target=grab, args=("other",))
        t.start()
        t.join()
        grab("main")
        assert seen["main"] is kernels.workspace()
        assert seen["main"] is not seen["other"]

    def test_workspace_kernels_bit_identical_to_fresh_buffers(self):
        rng = np.random.default_rng(9)
        x = rng.normal(size=(157, 5))
        y = rng.normal(size=(23, 5))
        ws = kernels.Workspace()
        expected = kernels.sq_dists_block(x, y)  # fresh allocation path
        for _ in range(3):  # reuse must not leak state between calls
            got = kernels.sq_dists_block(x, y, ws=ws)
            assert np.array_equal(got, expected)
        assert np.array_equal(
            kernels.min_dists(x, y, ws=ws), kernels.min_dists(x, y)
        )
        current = np.full(x.shape[0], np.inf)
        reference = np.full(x.shape[0], np.inf)
        kernels.update_min_dists(current, x, y, ws=ws)
        kernels.update_min_dists(reference, x, y)
        assert np.array_equal(current, reference)
        assert np.array_equal(
            kernels.dists_to_point(x, y[0], ws=ws), kernels.dists_to_point(x, y[0])
        )

    def test_concurrent_thread_tasks_do_not_corrupt_each_other(self):
        """Each thread gets its own workspace: hammering the kernels from
        a pool must reproduce the single-thread bits exactly."""
        rng = np.random.default_rng(3)
        x = rng.normal(size=(400, 4))
        y = rng.normal(size=(37, 4))
        expected = kernels.min_dists(x, y)

        def task():
            return kernels.min_dists(x, y)

        results, _ = ThreadPoolExecutorBackend(max_workers=8).run([task] * 32)
        for got in results:
            assert np.array_equal(got, expected)

    def test_solver_parity_sequential_vs_thread_with_workspaces(self, space):
        ref = repro.solve(space, 5, "mrg", m=6, seed=1)
        with ThreadPoolExecutorBackend(max_workers=4) as ex:
            got = repro.solve(space, 5, "mrg", m=6, seed=1, executor=ex)
        assert (ref.centers == got.centers).all()
        assert ref.radius == got.radius
        assert ref.stats.dist_evals == got.stats.dist_evals
