"""Unit tests for the paper-vs-measured shape checks."""

import pytest

from repro.analysis.experiments import RunRecord
from repro.analysis.paper import TABLE2
from repro.analysis.report import (
    CheckResult,
    check_phi_runtime_direction,
    check_runtime_ordering,
    check_winner_agreement,
    fallback_ks,
    render_checks,
    speedup_summary,
)
from repro.errors import ExperimentError


def _rec(algo, k, radius=1.0, t=0.1, extra=None):
    return RunRecord(
        experiment="t", dataset="d", n=10, instance=0, run=0,
        algorithm=algo, k=k, radius=radius, parallel_time=t,
        wall_time=t, cpu_time=t, rounds=1, dist_evals=0, extra=extra or {},
    )


class TestWinnerAgreement:
    def test_perfect_agreement(self):
        # Paper Table 2 winners: EIM at every k except... compute directly.
        rows = [[k, *TABLE2[k]] for k in TABLE2]
        result = check_winner_agreement(rows, TABLE2)
        assert result.passed
        assert "6/6" in result.detail

    def test_disagreement_reported(self):
        # Invert the winners badly: make column 0 hugely better everywhere,
        # while the paper's winner column stays far off (tie tol 5%).
        rows = [[k, 0.1, 100.0, 100.0] for k in TABLE2]
        result = check_winner_agreement(rows, TABLE2, min_agreement=0.99)
        # Paper winner is mostly col 1 (EIM); measured col 0 wins and col 1
        # is 1000x worse -> disagreement.
        assert not result.passed
        assert "k=" in result.detail

    def test_near_tie_counts_as_agreement(self):
        rows = [[k, 1.00, 1.02, 5.0] for k in TABLE2]  # col0 wins, col1 within 5%
        # Paper winner at k=25 is col 1; measured col1 is within tolerance.
        result = check_winner_agreement(rows, TABLE2)
        assert result.passed

    def test_no_rows(self):
        with pytest.raises(ExperimentError):
            check_winner_agreement([[999, 1, 2, 3]], TABLE2)


class TestRuntimeOrdering:
    def test_paper_ordering_passes(self):
        recs = []
        for k in (2, 5):
            recs += [
                _rec("MRG", k, t=0.01),
                _rec("GON", k, t=1.0),
                _rec("EIM", k, t=5.0),
            ]
        result = check_runtime_ordering(recs)
        assert result.passed

    def test_wrong_ordering_fails(self):
        recs = []
        for k in (2, 5):
            recs += [
                _rec("MRG", k, t=5.0),
                _rec("GON", k, t=1.0),
                _rec("EIM", k, t=0.01),
            ]
        assert not check_runtime_ordering(recs).passed

    def test_missing_algorithm_detected(self):
        recs = [_rec("MRG", 2), _rec("GON", 2)]
        with pytest.raises(ExperimentError, match="missing"):
            check_runtime_ordering(recs)


class TestSpeedupSummary:
    def test_ratios(self):
        recs = [
            _rec("MRG", 2, t=0.01),
            _rec("GON", 2, t=1.0),
            _rec("EIM", 2, t=2.0),
        ]
        ratios = speedup_summary(recs)
        assert ratios["GON"][2] == pytest.approx(100.0)
        assert ratios["EIM"][2] == pytest.approx(200.0)

    def test_missing_baseline(self):
        with pytest.raises(ExperimentError, match="baseline"):
            speedup_summary([_rec("GON", 2)])


class TestPhiDirection:
    def test_faster_low_phi_passes(self):
        recs = []
        for k in (2, 5):
            recs += [
                _rec("EIM(phi=1)", k, t=0.1),
                _rec("EIM(phi=8)", k, t=1.0),
            ]
        assert check_phi_runtime_direction(recs, phis=(1.0, 8.0)).passed

    def test_slower_low_phi_fails(self):
        recs = []
        for k in (2, 5):
            recs += [
                _rec("EIM(phi=1)", k, t=2.0),
                _rec("EIM(phi=8)", k, t=1.0),
            ]
        assert not check_phi_runtime_direction(recs, phis=(1.0, 8.0)).passed

    def test_no_records(self):
        with pytest.raises(ExperimentError):
            check_phi_runtime_direction([_rec("EIM", 2)], phis=(1.0, 8.0))


class TestFallbackAndRendering:
    def test_fallback_ks(self):
        recs = [
            _rec("EIM", 2, extra={"fallback_to_gon": False}),
            _rec("EIM", 100, extra={"fallback_to_gon": True}),
            _rec("EIM", 100, extra={"fallback_to_gon": True}),
            _rec("EIM", 50, extra={"fallback_to_gon": True}),
            _rec("EIM", 50, extra={"fallback_to_gon": False}),  # mixed: excluded
        ]
        assert fallback_ks(recs) == [100]

    def test_render_checks(self):
        out = render_checks(
            [CheckResult("a", True, "ok"), CheckResult("b", False, "bad")]
        )
        assert "[PASS] a" in out and "[FAIL] b" in out
