"""Unit tests for GON (Gonzalez's farthest-first traversal)."""

import numpy as np
import pytest

from repro.core.exact import exact_kcenter
from repro.core.gonzalez import gonzalez, gonzalez_trace
from repro.errors import InvalidParameterError
from repro.metric.euclidean import EuclideanSpace
from repro.metric.precomputed import PrecomputedSpace


class TestTrace:
    def test_line_space_selection_order(self, line_space):
        # Points at 0, 1, 2, 4, 8.  Seeded at 0, the farthest is 8, then 4
        # (dist 4 to {0,8}) is next.
        trace = gonzalez_trace(line_space, 3, first_center=0)
        np.testing.assert_array_equal(trace.centers, [0, 4, 3])
        assert trace.selection_radii[1] == 8.0
        assert trace.selection_radii[2] == 4.0
        assert trace.radius == 2.0  # point at 2 -> center at 4

    def test_selection_radii_non_increasing(self, small_space):
        trace = gonzalez_trace(small_space, 10, first_center=0)
        radii = trace.selection_radii[1:]
        assert (np.diff(radii) <= 1e-12).all()

    def test_final_dists_max_is_radius(self, small_space):
        trace = gonzalez_trace(small_space, 5, first_center=0)
        assert trace.radius == pytest.approx(trace.final_dists.max())

    def test_radius_is_next_selection_radius(self, small_space):
        """r_k (covering radius of k centers) equals the (k+1)-th selection."""
        t_k = gonzalez_trace(small_space, 4, first_center=0)
        t_k1 = gonzalez_trace(small_space, 5, first_center=0)
        assert t_k.radius == pytest.approx(t_k1.selection_radii[4])

    def test_centers_distinct(self, small_space):
        trace = gonzalez_trace(small_space, 30, first_center=0)
        assert len(np.unique(trace.centers)) == len(trace.centers)

    def test_k_larger_than_n(self, tiny_space):
        trace = gonzalez_trace(tiny_space, 100, first_center=0)
        assert len(trace.centers) == tiny_space.n
        assert trace.radius == pytest.approx(0.0, abs=1e-7)

    def test_duplicate_points_stop_early(self):
        space = EuclideanSpace(np.array([[0.0, 0.0], [0.0, 0.0], [1.0, 0.0]]))
        trace = gonzalez_trace(space, 3, first_center=0)
        # Only 2 distinct locations: the third selection would be a
        # zero-distance duplicate and must be skipped.
        assert len(trace.centers) == 2
        assert trace.radius == 0.0

    def test_empty_space(self):
        trace = gonzalez_trace(EuclideanSpace(np.empty((0, 2))), 3)
        assert len(trace.centers) == 0
        assert trace.radius == 0.0

    def test_invalid_k(self, tiny_space):
        with pytest.raises(InvalidParameterError):
            gonzalez_trace(tiny_space, 0)

    def test_invalid_first_center(self, tiny_space):
        with pytest.raises(InvalidParameterError, match="out of range"):
            gonzalez_trace(tiny_space, 2, first_center=99)

    def test_seed_determinism(self, small_space):
        a = gonzalez_trace(small_space, 4, seed=42)
        b = gonzalez_trace(small_space, 4, seed=42)
        np.testing.assert_array_equal(a.centers, b.centers)


class TestGonzalezResult:
    def test_result_fields(self, small_space):
        res = gonzalez(small_space, 3, seed=1)
        assert res.algorithm == "GON"
        assert res.k == 3 and res.n_centers == 3
        assert res.approx_factor == 2.0
        assert res.wall_time > 0.0
        assert res.n_rounds == 0  # sequential: no MapReduce stats
        assert "selection_radii" in res.extra

    def test_radius_matches_objective(self, small_space):
        res = gonzalez(small_space, 3, seed=1)
        assert res.radius == pytest.approx(
            small_space.covering_radius(res.centers), abs=1e-7
        )

    def test_two_approximation_vs_exact(self, tiny_space):
        for k in (1, 2, 3):
            opt = exact_kcenter(tiny_space, k).radius
            for seed in range(5):
                got = gonzalez(tiny_space, k, seed=seed).radius
                assert got <= 2.0 * opt + 1e-7

    def test_identifies_well_separated_clusters(self, small_space):
        # 3 clusters with sigma=0.4, separated by ~10: k=3 must find them.
        res = gonzalez(small_space, 3, seed=0)
        assert res.radius < 3.0

    def test_runtime_scales_linearly_in_k(self, rng):
        """O(k n): distance evaluations, not wall time (too noisy)."""
        space = EuclideanSpace(rng.normal(size=(2000, 2)))
        space.counter.reset()
        gonzalez(space, 5, seed=0)
        evals_k5 = space.counter.evals
        space.counter.reset()
        gonzalez(space, 10, seed=0)
        evals_k10 = space.counter.evals
        assert evals_k5 == 5 * 2000
        assert evals_k10 == 10 * 2000

    def test_works_on_precomputed_space(self, line_space):
        # Centers seeded at 0: second center is 8.  Distances to {0,8}:
        # 1->1, 2->2, 4->4.  Radius = 4.
        res = gonzalez(line_space, 2, first_center=0)
        assert res.radius == pytest.approx(4.0)
