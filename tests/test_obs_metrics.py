"""Unit tests for the dependency-free metrics registry.

The registry's contract has three legs: *disabled is free* (the default
process-wide registry ignores writes until something enables it),
*get-or-create identity* (a metric name maps to exactly one kind and
label set for the life of the process), and *Prometheus text exposition*
(the render parses under the 0.0.4 grammar, histograms included).
"""

import math
import re

import pytest

from repro.errors import InvalidParameterError
from repro.obs import metrics
from repro.obs.metrics import CONTENT_TYPE, DEFAULT_BUCKETS, MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry(enabled=True)


# A Prometheus text-format line: comment, blank, or `name{labels} value`.
_SAMPLE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})?'
    r" [^ ]+$"
)
_COMMENT = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*$")


def assert_prometheus_text(text: str) -> dict[str, float]:
    """Parse exposition text; returns ``{series-with-labels: value}``."""
    samples: dict[str, float] = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            assert _COMMENT.match(line), f"bad comment line: {line!r}"
            continue
        assert _SAMPLE.match(line), f"bad sample line: {line!r}"
        series, value = line.rsplit(" ", 1)
        samples[series] = float(value)
    return samples


class TestCounter:
    def test_inc_accumulates(self, registry):
        c = registry.counter("t_total", "a test counter")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_negative_inc_rejected(self, registry):
        c = registry.counter("t_total")
        with pytest.raises(InvalidParameterError):
            c.inc(-1)

    def test_labelled_series_are_independent(self, registry):
        c = registry.counter("req_total", labelnames=("outcome",))
        c.labels(outcome="ok").inc(3)
        c.labels(outcome="err").inc()
        assert c.value(outcome="ok") == 3
        assert c.value(outcome="err") == 1
        assert c.value(outcome="never-written") == 0

    def test_wrong_labels_rejected(self, registry):
        c = registry.counter("req_total", labelnames=("outcome",))
        with pytest.raises(InvalidParameterError):
            c.labels(result="ok")
        with pytest.raises(InvalidParameterError):
            c.inc()  # labelled metric needs .labels(...)


class TestGauge:
    def test_set_and_inc(self, registry):
        g = registry.gauge("g")
        g.set(4.0)
        g.inc(0.5)
        assert g.value() == 4.5
        g.set(-1.0)  # gauges may go anywhere
        assert g.value() == -1.0


class TestHistogram:
    def test_sum_and_count(self, registry):
        h = registry.histogram("h_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        assert h.value() == pytest.approx(5.55)
        assert h.counts() == 3

    def test_buckets_are_cumulative_in_render(self, registry):
        h = registry.histogram("h_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            h.observe(v)
        samples = assert_prometheus_text(registry.render())
        assert samples['h_seconds_bucket{le="0.1"}'] == 1
        assert samples['h_seconds_bucket{le="1.0"}'] == 2
        assert samples['h_seconds_bucket{le="+Inf"}'] == 3
        assert samples["h_seconds_sum"] == pytest.approx(5.55)
        assert samples["h_seconds_count"] == 3

    def test_boundary_lands_in_its_bucket(self, registry):
        # Prometheus buckets are `le` (inclusive upper bound).
        h = registry.histogram("h", buckets=(1.0, 2.0))
        h.observe(1.0)
        samples = assert_prometheus_text(registry.render())
        assert samples['h_bucket{le="1.0"}'] == 1

    def test_needs_buckets(self, registry):
        with pytest.raises(InvalidParameterError):
            registry.histogram("h", buckets=())

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert all(math.isfinite(b) for b in DEFAULT_BUCKETS)


class TestRegistryIdentity:
    def test_get_or_create_returns_same_object(self, registry):
        assert registry.counter("x_total") is registry.counter("x_total")

    def test_kind_conflict_rejected(self, registry):
        registry.counter("x_total")
        with pytest.raises(InvalidParameterError):
            registry.gauge("x_total")

    def test_label_conflict_rejected(self, registry):
        registry.counter("x_total", labelnames=("a",))
        with pytest.raises(InvalidParameterError):
            registry.counter("x_total", labelnames=("b",))


class TestDisabledIsFree:
    def test_writes_are_ignored_while_disabled(self):
        registry = MetricsRegistry(enabled=False)
        c = registry.counter("x_total")
        h = registry.histogram("h", buckets=(1.0,))
        c.inc()
        h.observe(0.5)
        assert c.value() == 0
        assert h.counts() == 0
        registry.enable()
        c.inc()
        assert c.value() == 1

    def test_registration_works_while_disabled(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("x_total", "registered early")
        assert "x_total" in registry.render()

    def test_reset_keeps_registrations(self, registry):
        c = registry.counter("x_total")
        c.inc()
        registry.reset()
        assert c.value() == 0
        assert "x_total" in registry.render()


class TestExposition:
    def test_full_render_parses(self, registry):
        registry.counter("a_total", "with a\nnewline").inc()
        registry.gauge("b", labelnames=("x",)).labels(x='quo"te').set(2)
        registry.histogram("c_seconds").observe(0.2)
        samples = assert_prometheus_text(registry.render())
        assert samples["a_total"] == 1
        assert samples['b{x="quo\\"te"}'] == 2

    def test_content_type_pins_text_format(self):
        assert "text/plain" in CONTENT_TYPE
        assert "0.0.4" in CONTENT_TYPE

    def test_snapshot_shape(self, registry):
        registry.counter("a_total").inc(2)
        registry.histogram("c_seconds").observe(0.2)
        snap = registry.snapshot()
        assert snap["a_total"] == {(): 2.0}
        assert snap["c_seconds"][()]["count"] == 1


class TestDefaultRegistryCapture:
    def test_capture_enables_resets_and_restores(self):
        prior = metrics.REGISTRY.enabled
        metrics.REGISTRY.disable()
        c = metrics.counter("t_capture_total")
        c.inc()  # disabled: lost
        try:
            with metrics.capture() as reg:
                assert reg is metrics.REGISTRY
                assert reg.enabled
                c.inc()
                assert c.value() == 1
            assert not metrics.REGISTRY.enabled
            # Series survive the block for inspection.
            assert c.value() == 1
        finally:
            metrics.REGISTRY.enabled = prior

    def test_module_helpers_hit_default_registry(self):
        c = metrics.counter("t_helper_total")
        assert c is metrics.REGISTRY.counter("t_helper_total")
        assert "t_helper_total" in metrics.render()
