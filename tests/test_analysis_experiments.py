"""Unit tests for the experiment harness."""

import numpy as np
import pytest

from repro.analysis.experiments import (
    AlgorithmSpec,
    ExperimentSpec,
    RunRecord,
    aggregate,
    eim_spec,
    gon_spec,
    mrg_spec,
    run_experiment,
    solver_spec,
)
from repro.core.gonzalez import gonzalez
from repro.errors import ExperimentError
from repro.mapreduce.executor import (
    ProcessPoolExecutorBackend,
    ThreadPoolExecutorBackend,
)


def _spec(**kw):
    defaults = dict(
        name="t",
        dataset="unif",
        n=300,
        ks=[2, 3],
        algorithms=[gon_spec(), mrg_spec(m=4)],
        n_instances=2,
        n_runs=1,
        master_seed=0,
    )
    defaults.update(kw)
    return ExperimentSpec(**defaults)


class TestRunExperiment:
    def test_grid_is_complete(self):
        records = run_experiment(_spec())
        # 2 instances x 1 run x 2 algorithms x 2 ks
        assert len(records) == 8
        combos = {(r.algorithm, r.k, r.instance) for r in records}
        assert len(combos) == 8

    def test_records_carry_metadata(self):
        rec = run_experiment(_spec())[0]
        assert rec.experiment == "t"
        assert rec.dataset == "unif"
        assert rec.n == 300
        assert rec.radius > 0
        assert rec.parallel_time >= 0

    def test_deterministic_in_master_seed(self):
        a = run_experiment(_spec(master_seed=5))
        b = run_experiment(_spec(master_seed=5))
        assert [r.radius for r in a] == [r.radius for r in b]

    def test_different_instances_different_data(self):
        records = run_experiment(_spec())
        gon_k2 = [r.radius for r in records if r.algorithm == "GON" and r.k == 2]
        assert gon_k2[0] != gon_k2[1]

    def test_progress_callback_called(self):
        seen = []
        run_experiment(_spec(), progress=seen.append)
        assert len(seen) == 8
        assert "GON" in seen[0] or "MRG" in seen[0]

    def test_empty_ks_rejected(self):
        with pytest.raises(ExperimentError, match="empty k grid"):
            run_experiment(_spec(ks=[]))

    def test_no_algorithms_rejected(self):
        with pytest.raises(ExperimentError, match="no algorithms"):
            run_experiment(_spec(algorithms=[]))

    def test_duplicate_names_rejected(self):
        with pytest.raises(ExperimentError, match="duplicate"):
            run_experiment(_spec(algorithms=[gon_spec(), gon_spec()]))

    def test_scaled_copy(self):
        spec = _spec()
        assert spec.scaled(999).n == 999
        assert spec.n == 300  # original untouched

    def test_eim_spec_runs(self):
        records = run_experiment(
            _spec(algorithms=[eim_spec(m=4)], ks=[2], n_instances=1)
        )
        assert records[0].algorithm == "EIM"
        assert "iterations" in records[0].extra

    def test_eim_spec_phi_naming(self):
        assert eim_spec(phi=4.0).name == "EIM(phi=4)"
        assert eim_spec(phi=8.0).name == "EIM"
        assert eim_spec(phi=4.0, name="custom").name == "custom"

    def test_solver_spec_carries_registry_info(self):
        spec = solver_spec("mrg", m=4, partitioner="block")
        assert spec.algorithm == "mrg"
        assert spec.options == {"m": 4, "partitioner": "block"}
        assert gon_spec().algorithm == "gon"


class TestRunExperimentExecutors:
    def _spec(self, **kw):
        defaults = dict(
            name="t",
            dataset="unif",
            n=400,
            ks=[2, 3],
            algorithms=[gon_spec(), mrg_spec(m=4), eim_spec(m=4)],
            n_instances=1,
            n_runs=2,
            master_seed=3,
        )
        defaults.update(kw)
        return ExperimentSpec(**defaults)

    def _key(self, rec):
        # dist_evals included deliberately: a backend that shares
        # accounting state across concurrent runs corrupts exactly this
        # field while leaving radius untouched.
        return (
            rec.algorithm, rec.k, rec.instance, rec.run,
            rec.radius, rec.rounds, rec.dist_evals,
        )

    def test_thread_pool_records_bit_identical(self):
        spec = self._spec()
        sequential = run_experiment(spec)
        threaded = run_experiment(
            spec, executor=ThreadPoolExecutorBackend(max_workers=4)
        )
        assert [self._key(r) for r in sequential] == [self._key(r) for r in threaded]

    def test_process_pool_records_bit_identical(self):
        spec = self._spec(ks=[2])
        sequential = run_experiment(spec)
        pooled = run_experiment(
            spec, executor=ProcessPoolExecutorBackend(max_workers=2)
        )
        assert [self._key(r) for r in sequential] == [self._key(r) for r in pooled]

    def test_streaming_solver_in_a_grid(self):
        records = run_experiment(
            self._spec(algorithms=[solver_spec("stream"), gon_spec()], ks=[3])
        )
        assert {r.algorithm for r in records} == {"STREAM", "GON"}
        assert all(r.radius > 0 for r in records)

    def test_opaque_callable_still_runs_sequentially(self):
        opaque = AlgorithmSpec("RAWGON", lambda space, k, seed: gonzalez(space, k, seed=seed))
        records = run_experiment(self._spec(algorithms=[opaque], ks=[2], n_runs=1))
        assert len(records) == 1
        assert records[0].algorithm == "RAWGON"

    def test_opaque_callable_rejected_on_executor_path(self):
        opaque = AlgorithmSpec("RAWGON", lambda space, k, seed: gonzalez(space, k, seed=seed))
        with pytest.raises(ExperimentError, match="registry-backed"):
            run_experiment(
                self._spec(algorithms=[opaque]),
                executor=ThreadPoolExecutorBackend(),
            )


class TestAggregate:
    def _records(self):
        def rec(algo, k, radius, t):
            return RunRecord(
                experiment="t", dataset="d", n=10, instance=0, run=0,
                algorithm=algo, k=k, radius=radius, parallel_time=t,
                wall_time=t, cpu_time=t, rounds=1, dist_evals=0,
            )

        return [
            rec("A", 2, 1.0, 0.1),
            rec("A", 2, 3.0, 0.3),
            rec("A", 5, 10.0, 1.0),
            rec("B", 2, 5.0, 0.5),
        ]

    def test_mean_by_algorithm_k(self):
        means = aggregate(self._records())
        assert means[("A", 2)] == pytest.approx(2.0)
        assert means[("A", 5)] == pytest.approx(10.0)
        assert means[("B", 2)] == pytest.approx(5.0)

    def test_other_value_field(self):
        means = aggregate(self._records(), value="parallel_time")
        assert means[("A", 2)] == pytest.approx(0.2)

    def test_custom_grouping(self):
        means = aggregate(self._records(), by=("algorithm",))
        assert means[("A",)] == pytest.approx((1 + 3 + 10) / 3)
