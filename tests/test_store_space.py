"""ChunkedMetricSpace: out-of-core parity with the in-memory space.

The acceptance bar for the store layer: every primitive, and every solver
run on top of them, must be **bit-identical** between a
ChunkedMetricSpace (over any backing stream, at any chunk size) and an
EuclideanSpace over the materialised points — including the distance
evaluation counts, which validate the paper's operation-count claims.
"""

import tracemalloc

import numpy as np
import pytest

from repro.core.streaming import stream_kcenter, stream_kcenter_from_stream
from repro.core.mrg import mrg
from repro.errors import MetricError
from repro.mapreduce.partition import block_partition
from repro.metric import EuclideanSpace, check_metric_axioms
from repro.store import (
    ArrayStream,
    ChunkedMetricSpace,
    GeneratorStream,
    MemmapStream,
    as_space,
)

CHUNK_SIZES = (1, 17, 64, 200, 1000)  # includes chunk=1 and chunk > n


@pytest.fixture(scope="module")
def points():
    return np.random.default_rng(42).uniform(0.0, 100.0, size=(300, 3))


@pytest.fixture(scope="module")
def reference(points):
    return EuclideanSpace(points)


def chunked(points, chunk_size):
    return ChunkedMetricSpace(ArrayStream(points, chunk_size=chunk_size))


class TestPrimitiveParity:
    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_all_primitives_bit_identical(self, points, chunk_size):
        ref = EuclideanSpace(points)
        cms = chunked(points, chunk_size)
        rng = np.random.default_rng(1)
        idx = rng.choice(300, 80, replace=False).astype(np.intp)
        jdx = rng.choice(300, 7, replace=False).astype(np.intp)

        assert np.array_equal(ref.dists_to(None, 13), cms.dists_to(None, 13))
        assert np.array_equal(ref.dists_to(idx, 13), cms.dists_to(idx, 13))
        assert np.array_equal(ref.cross(idx, jdx), cms.cross(idx, jdx))

        cur_r = np.full(300, np.inf)
        cur_c = np.full(300, np.inf)
        ref.update_min_dists(cur_r, None, jdx)
        cms.update_min_dists(cur_c, None, jdx)
        assert np.array_equal(cur_r, cur_c)

        pos_r, d_r = ref.nearest(None, jdx)
        pos_c, d_c = cms.nearest(None, jdx)
        assert np.array_equal(pos_r, pos_c)
        assert np.array_equal(d_r, d_c)

        pos_r, d_r = ref.nearest(idx, jdx)
        pos_c, d_c = cms.nearest(idx, jdx)
        assert np.array_equal(pos_r, pos_c)
        assert np.array_equal(d_r, d_c)

        loc_r, loc_c = ref.local(idx), cms.local(idx)
        assert np.array_equal(loc_r.points, loc_c.points)

        # identical accounting, call for call
        assert ref.counter.evals == cms.counter.evals

    def test_satisfies_metric_axioms(self, points):
        # unit-scale coordinates: at scale ~100 the GEMM expansion's
        # documented round-off (~1e-8 * max|coord|) exceeds the checker's
        # self-distance atol for the in-memory space just the same
        check_metric_axioms(chunked(points[:40] / 100.0, 7), max_points=40)

    def test_dense_cap_enforced(self, points, monkeypatch):
        # same guard as the in-memory space; cap it down to force the path
        import repro.metric.kernels as kernels

        monkeypatch.setattr(kernels, "MAX_DENSE_ELEMENTS", 100)
        cms = chunked(points, 64)
        with pytest.raises(MetricError):
            cms.cross(None, None)

    def test_rejects_out_of_range(self, points):
        cms = chunked(points, 50)
        with pytest.raises(MetricError):
            cms.dists_to(None, 300)
        with pytest.raises(MetricError):
            cms.cross(np.array([300]), None)


class TestStreamSolverParity:
    """ISSUE acceptance: stream solver over Memmap/Generator streams is
    bit-identical to the in-memory path across chunk sizes."""

    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_memmap_parity(self, points, chunk_size, tmp_path):
        path = tmp_path / "pts.npy"
        np.save(path, points)
        ref_space = EuclideanSpace(points)
        want = stream_kcenter(ref_space, 9, seed=0)

        cms = ChunkedMetricSpace(MemmapStream(path, chunk_size=chunk_size))
        got = stream_kcenter(cms, 9, seed=0)

        assert np.array_equal(want.centers, got.centers)
        assert want.radius == got.radius
        assert want.extra["threshold"] == got.extra["threshold"]
        assert want.extra["doublings"] == got.extra["doublings"]
        assert ref_space.counter.evals == cms.counter.evals

    @pytest.mark.parametrize("chunk_size", (1, 29, 128, 700))
    def test_generator_parity(self, chunk_size):
        gen = GeneratorStream(
            "gau", 400, seed=5, chunk_size=chunk_size, gen_block=97, k_prime=6
        )
        pts = np.concatenate([b for b, _ in gen])
        ref_space = EuclideanSpace(pts)
        want = stream_kcenter(ref_space, 7, seed=0)

        cms = ChunkedMetricSpace(gen)
        got = stream_kcenter(cms, 7, seed=0)

        assert np.array_equal(want.centers, got.centers)
        assert want.radius == got.radius
        assert ref_space.counter.evals == cms.counter.evals

    def test_from_stream_entry_point(self, points, tmp_path):
        path = tmp_path / "pts.npy"
        np.save(path, points)
        want = stream_kcenter(EuclideanSpace(points), 5, seed=1)
        got = stream_kcenter_from_stream(str(path), 5, chunk_size=64, seed=1)
        assert np.array_equal(want.centers, got.centers)
        assert want.radius == got.radius

    def test_shuffled_arrival_also_identical(self, points):
        want = stream_kcenter(EuclideanSpace(points), 6, seed=3, shuffle=True)
        got = stream_kcenter(chunked(points, 41), 6, seed=3, shuffle=True)
        assert np.array_equal(want.centers, got.centers)
        assert want.radius == got.radius


class TestMapReduceOverStreams:
    def test_mrg_with_chunk_aligned_partition(self, points):
        """MapReduce solvers consume streams via chunk-aligned block
        partitioning: each machine's local view loads whole chunks."""
        chunk_size = 50

        def aligned(n, m):
            return block_partition(n, m, align=chunk_size)

        # capacity covers the relaxed chunk-granular cap (2 chunks/machine)
        want = mrg(
            EuclideanSpace(points), 6, m=4, capacity=150, seed=0, partitioner=aligned
        )
        got = mrg(
            chunked(points, chunk_size), 6, m=4, capacity=150, seed=0,
            partitioner=aligned,
        )
        assert np.array_equal(want.centers, got.centers)
        assert want.radius == got.radius
        assert want.stats.dist_evals == got.stats.dist_evals


class TestBoundedMemory:
    def test_no_full_size_allocation(self):
        """A solve over a stream must allocate nothing of shape (n, d) or
        (n, n): peak traced allocation stays far below the full array."""
        n, dim, chunk = 60_000, 8, 1024
        gen = GeneratorStream(
            "unif", n, seed=0, chunk_size=chunk, dim=dim, gen_block=2048
        )
        full_bytes = n * dim * 8

        # dataset (3.8 MB) deliberately exceeds the configured budget
        cms = ChunkedMetricSpace(gen, block_bytes=2**20)
        tracemalloc.start()
        result = stream_kcenter(cms, 8, seed=0)  # includes full-eval pass
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        assert 0 < result.n_centers <= 8 and result.radius > 0
        # generous bound: chunks, 1-D temporaries and the kernels' retained
        # per-thread Workspace scratch (O(block_bytes), not O(n d)) —
        # never the (n, d) array itself.
        assert peak < 0.6 * full_bytes, f"peak {peak} vs full array {full_bytes}"

    def test_as_space_array_stays_in_memory(self, points):
        assert isinstance(as_space(points), EuclideanSpace)
        assert isinstance(as_space(points, chunk_size=32), ChunkedMetricSpace)


class TestFullReferenceSweeps:
    """j_idx=None reference sets stream chunk-wise (no (n, d) gather)."""

    def test_update_min_dists_full_reference(self, points):
        ref = EuclideanSpace(points)
        cms = chunked(points, 41)
        idx = np.arange(30, dtype=np.intp)
        a = np.full(30, np.inf)
        b = np.full(30, np.inf)
        ref.update_min_dists(a, idx, None)
        cms.update_min_dists(b, idx, None)
        assert np.array_equal(a, b)
        assert ref.counter.evals == cms.counter.evals

    def test_nearest_full_reference(self, points):
        ref = EuclideanSpace(points)
        cms = chunked(points, 41)
        idx = np.arange(25, dtype=np.intp)
        for i in (idx, None):
            pa, da = ref.nearest(i, None)
            pb, db = cms.nearest(i, None)
            assert np.array_equal(pa, pb)
            assert np.array_equal(da, db)
        assert ref.counter.evals == cms.counter.evals


class TestConcurrencyAndPickling:
    def test_thread_pool_batch_over_stream(self, points):
        """Shared chunk/row caches are lock-guarded: a thread-pool batch
        over one chunked space must not race (and stays bit-identical)."""
        import repro
        from repro.mapreduce.executor import ThreadPoolExecutorBackend

        cms = chunked(points, 23)
        plain = repro.solve_many(cms, 6, algorithms=("stream",), seeds=range(6))
        threaded = repro.solve_many(
            cms, 6, algorithms=("stream",), seeds=range(6),
            executor=ThreadPoolExecutorBackend(max_workers=4),
        )
        for key in plain:
            assert np.array_equal(plain[key].centers, threaded[key].centers)
            assert plain[key].radius == threaded[key].radius

    def test_chunked_space_pickles(self, points, tmp_path):
        import pickle

        path = tmp_path / "pts.npy"
        np.save(path, points)
        cms = ChunkedMetricSpace(MemmapStream(path, chunk_size=64))
        cms.dists_to(None, 0)  # warm the caches
        clone = pickle.loads(pickle.dumps(cms))
        assert np.array_equal(clone.dists_to(None, 3), cms.dists_to(None, 3))

    def test_generator_stream_pickles(self):
        import pickle

        gen = GeneratorStream("gau", 200, seed=2, chunk_size=32, k_prime=3)
        want = np.concatenate([b for b, _ in gen])
        clone = pickle.loads(pickle.dumps(gen))
        assert np.array_equal(want, np.concatenate([b for b, _ in clone]))


class TestSingleRowReferenceChunks:
    """1-row reference chunks (chunk_size=1, or n % chunk_size == 1) must
    keep the full-reference sweeps bit-identical to the in-memory space."""

    @pytest.mark.parametrize("chunk_size", (1, 13, 299))  # 300 % 13 == 1
    def test_full_reference_parity_with_singleton_chunks(self, points, chunk_size):
        ref = EuclideanSpace(points)
        cms = chunked(points, chunk_size)
        idx = np.arange(35, dtype=np.intp)

        a = np.full(35, np.inf)
        b = np.full(35, np.inf)
        ref.update_min_dists(a, idx, None)
        cms.update_min_dists(b, idx, None)
        assert np.array_equal(a, b)

        pa, da = ref.nearest(idx, None)
        pb, db = cms.nearest(idx, None)
        assert np.array_equal(pa, pb)
        assert np.array_equal(da, db)
        assert ref.counter.evals == cms.counter.evals

    def test_single_point_space(self):
        pts = np.array([[3.0, 4.0]])
        ref = EuclideanSpace(pts)
        cms = chunked(pts, 1)
        a = np.full(1, np.inf)
        b = np.full(1, np.inf)
        ref.update_min_dists(a, None, None)
        cms.update_min_dists(b, None, None)
        assert np.array_equal(a, b)
